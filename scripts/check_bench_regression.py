#!/usr/bin/env python3
"""Compare a fresh BENCH_simperf.json against committed baselines.

Usage: check_bench_regression.py BASELINE [BASELINE ...] FRESH
                                 [--threshold=0.20]

Every path but the last is a baseline; the last is the fresh run.  A
guarded benchmark passes if it is within the threshold of its *best*
baseline value -- multiple baselines let CI compare against, say, both
the committed trajectory file and the previous job's artifact without
failing on whichever happens to be slower.

Fails (exit 1) if any guarded benchmark's items_per_second dropped by
more than the threshold relative to every baseline.  Only the
simulator hot-path benchmarks are guarded: wall-clock noise on shared
CI runners makes guarding everything counterproductive, but a >20%
drop on the event kernel or the full-system run is a real regression.
On failure the absolute items/sec values are printed alongside the
ratio, so a CI log is diagnosable without downloading the artifacts.

RELATIVE_GUARDS additionally compare benchmarks *within the fresh
run*: the always-on incident-observability layer (flight recorder +
watchdog, BM_FullSystemBlackbox) must stay within 5% of the bare
full-system run, and the waste profiler within 10%.  These are
same-machine same-run comparisons, so they are immune to runner noise
and use tight thresholds.

Benchmarks present in only one file are reported but never fatal, so
adding or renaming benchmarks does not break CI in the same PR.
"""

import json
import sys

GUARDED_PREFIXES = ("BM_EventQueue", "BM_FullSystem/",
                    "BM_FullSystemProfiled", "BM_FullSystemBlackbox")

# (benchmark, reference, max fractional slowdown vs reference) --
# checked within the fresh file only.
RELATIVE_GUARDS = (
    ("BM_FullSystemBlackbox", "BM_FullSystem/1", 0.05),
    ("BM_FullSystemProfiled", "BM_FullSystem/1", 0.10),
)


def load(path):
    """Read {benchmark name: items/sec}, naming whatever is malformed.

    A raw KeyError here would point at this script rather than at the
    file that is missing a field, so every required key gets its own
    message instead.

    Runs made with --benchmark_repetitions produce one entry per
    repetition (same name) plus suffixed aggregate rows; the
    aggregates are skipped and repeated names averaged, so the tight
    same-run overhead guards see a mean instead of one noisy sample.
    """
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" not in doc:
        sys.exit(f"error: {path}: no 'benchmarks' array "
                 f"(is this a BENCH_simperf.json?)")
    sums, counts = {}, {}
    for i, bench in enumerate(doc["benchmarks"]):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None:
            sys.exit(f"error: {path}: benchmarks[{i}] has no 'name'")
        if "items_per_second" not in bench:
            sys.exit(f"error: {path}: benchmark '{name}' has no "
                     f"'items_per_second'")
        sums[name] = sums.get(name, 0.0) + bench["items_per_second"]
        counts[name] = counts.get(name, 0) + 1
    return {name: sums[name] / counts[name] for name in sums}


def check_baselines(baselines, fresh, threshold):
    """Guarded benchmarks vs their best baseline.  Returns failures."""
    failures = []
    guarded = sorted(
        {name for b in baselines.values() for name in b
         if name.startswith(GUARDED_PREFIXES)})
    for name in guarded:
        bases = {path: b[name] for path, b in baselines.items()
                 if name in b}
        if name not in fresh:
            # A guarded benchmark vanishing would otherwise pass the
            # guard silently; removing one on purpose means updating
            # the committed baseline in the same PR.
            print(f"FAILURE: guarded benchmark {name} is in a "
                  f"baseline but missing from the fresh run")
            failures.append(name)
            continue
        now = fresh[name]
        best_path, best = max(bases.items(), key=lambda kv: kv[1])
        ratio = now / best if best else float("inf")
        if ratio < 1.0 - threshold:
            failures.append(name)
            print(f"{name}: REGRESSION -- {now:.4g} items/s vs best "
                  f"baseline {best:.4g} items/s ({best_path}); "
                  f"{ratio:.1%} of baseline, allowed >= "
                  f"{1.0 - threshold:.0%}")
            for path, base in sorted(bases.items()):
                print(f"    {path}: {base:.4g} items/s "
                      f"({now / base if base else float('inf'):.1%})")
        else:
            print(f"{name}: {best:.4g} -> {now:.4g} items/s "
                  f"({ratio:.1%} of best of {len(bases)} baseline(s)) "
                  f"ok")
    return failures


def check_relative(fresh):
    """Same-run overhead guards.  Returns failures."""
    failures = []
    for name, ref, budget in RELATIVE_GUARDS:
        if name not in fresh or ref not in fresh:
            print(f"note: relative guard {name} vs {ref} skipped "
                  f"(benchmark missing from the fresh run)")
            continue
        now, base = fresh[name], fresh[ref]
        ratio = now / base if base else float("inf")
        if ratio < 1.0 - budget:
            failures.append(name)
            print(f"{name}: OVERHEAD -- {now:.4g} items/s is "
                  f"{1.0 - ratio:.1%} below {ref} ({base:.4g} "
                  f"items/s); budget is {budget:.0%}")
        else:
            print(f"{name}: {ratio:.1%} of {ref} "
                  f"(budget {1.0 - budget:.0%}) ok")
    return failures


def main(argv):
    threshold = 0.20
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baselines = {path: load(path) for path in paths[:-1]}
    fresh = load(paths[-1])

    failures = check_baselines(baselines, fresh, threshold)
    failures += check_relative(fresh)

    baseline_names = set()
    for b in baselines.values():
        baseline_names |= set(b)
    for name in sorted(set(fresh) - baseline_names):
        if name.startswith(GUARDED_PREFIXES):
            print(f"note: guarded benchmark {name} is new (not in any "
                  f"baseline yet); commit a refreshed baseline to "
                  f"guard it")
        else:
            print(f"note: {name} not in any baseline (unguarded)")

    if failures:
        print(f"\n{len(failures)} check(s) failed: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"\nno guarded benchmark regressed beyond {threshold:.0%} "
          f"and every overhead budget held")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
