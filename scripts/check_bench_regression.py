#!/usr/bin/env python3
"""Compare a fresh BENCH_simperf.json against committed baselines.

Usage: check_bench_regression.py BASELINE [BASELINE ...] FRESH
                                 [--threshold=0.20]

Every path but the last is a baseline; the last is the fresh run.  A
guarded benchmark passes if it is within the threshold of its *best*
baseline value -- multiple baselines let CI compare against, say, both
the committed trajectory file and the previous job's artifact without
failing on whichever happens to be slower.

Fails (exit 1) if any guarded benchmark's items_per_second dropped by
more than the threshold relative to every baseline.  Only the
simulator hot-path benchmarks are guarded: wall-clock noise on shared
CI runners makes guarding everything counterproductive, but a >20%
drop on the event kernel or the full-system run is a real regression.
On failure the absolute items/sec values are printed alongside the
ratio, so a CI log is diagnosable without downloading the artifacts.

RELATIVE_GUARDS additionally compare benchmarks *within the fresh
run*: the always-on incident-observability layer (flight recorder +
watchdog, BM_FullSystemBlackbox) must stay within 5% of the bare
full-system run, and the waste profiler within 10%.  These are
same-machine same-run comparisons, so they are immune to runner noise
and use tight thresholds.

The sharded parallel-simulation curve (BM_FullSystemParallel/N) gets a
same-run speedup floor: the best multi-shard variant must reach at
least PARALLEL_SPEEDUP_FLOOR x the single-shard reference.  The check
is gated on the host_cpus counter each variant records -- a speedup
claim is only meaningful when the host physically has the cores, so an
under-provisioned runner skips the floor with an explicit note rather
than failing (or trivially passing) on hardware that cannot show it.

Parallel benchmarks are baseline-guarded with the same gate on BOTH
sides: a baseline entry whose recorded host_cpus is smaller than its
shard count was measured on a machine that could not actually run the
shards concurrently (its numbers are serialization artifacts, not a
performance floor), and a fresh run on such a machine cannot be held
to a properly-provisioned baseline either.  Stale baselines of this
kind are skipped per benchmark with a printed notice instead of
producing a comparison that is either trivially passed or spuriously
failed.

Benchmarks present in only one file are reported but never fatal, so
adding or renaming benchmarks does not break CI in the same PR.

When a check fails and the caller passed --triage-baseline=SPEC,
--triage-fresh=SPEC and --fl-report=PATH, the fl_report binary is run
on the two runs' artifacts (SPEC is "stats.json[,profile.json]") and
its triage block -- waste-bucket deltas, worst regressed symbols,
hot-link movement -- is appended to the failure output, so the CI log
answers "what got slower" next to "that it got slower".  Triage is
best-effort: a missing binary or artifact prints a note and never
changes the exit code.
"""

import json
import statistics
import subprocess
import sys

GUARDED_PREFIXES = ("BM_EventQueue", "BM_FullSystem/",
                    "BM_FullSystemProfiled", "BM_FullSystemBlackbox",
                    "BM_FullSystemReqTrace",
                    "BM_FullSystemParallel/",
                    "BM_FullSystemParallelTelemetry/",
                    "BM_FullSystemMesh64")

# (benchmark, reference, max fractional slowdown vs reference) --
# checked within the fresh file only.
RELATIVE_GUARDS = (
    ("BM_FullSystemBlackbox", "BM_FullSystem/1", 0.05),
    ("BM_FullSystemProfiled", "BM_FullSystem/1", 0.10),
    # Per-request span tracing at the shipped default sampling rate
    # (1 in 64 misses, what --tail-report enables); budget is 5% over
    # the tracing-off run.
    ("BM_FullSystemReqTrace/64", "BM_FullSystem/1", 0.05),
    # Every miss traced: the bound is the post-run span assembly,
    # O(traced misses) by design (sort + one heap span per miss), so
    # on this short benchmark sim it legitimately costs tens of
    # percent.  The loose guard is a tripwire for accidental
    # quadratic blowups in assembly/attribution, not an overhead
    # promise -- the 5% promise is the /64 row above.
    ("BM_FullSystemReqTrace/1", "BM_FullSystem/1", 0.60),
    # Host-waste telemetry: same 16-core sharded run with the per-shard
    # accounting on; ISSUE budget is 5% at matched shard count.
    ("BM_FullSystemParallelTelemetry/4/real_time",
     "BM_FullSystemParallel/4/real_time", 0.05),
)

# Sharded parallel simulation: best BM_FullSystemParallel/N vs the /1
# reference, enforced only when the host has enough hardware threads
# to drive the widest variant.
PARALLEL_PREFIX = "BM_FullSystemParallel/"
PARALLEL_REF = "BM_FullSystemParallel/1"
PARALLEL_SPEEDUP_FLOOR = 2.5
PARALLEL_MIN_HOST_CPUS = 8

# Benchmarks whose baseline comparison is only meaningful when the
# recording host had at least as many hardware threads as shards.
PARALLEL_GUARD_PREFIXES = ("BM_FullSystemParallel/",
                           "BM_FullSystemParallelTelemetry/")


def parallel_provisioning(counters, name):
    """(shards, host_cpus) a run recorded for @p name, or None.

    Entries predating the shards/host_cpus counters get (None): with
    no provenance there is nothing to gate on, so they are treated as
    stale rather than trusted.
    """
    c = counters.get(name, {})
    if "shards" not in c or "host_cpus" not in c:
        return None
    return c["shards"], c["host_cpus"]


def load(path):
    """Read {benchmark name: items/sec}, naming whatever is malformed.

    A raw KeyError here would point at this script rather than at the
    file that is missing a field, so every required key gets its own
    message instead.

    Runs made with --benchmark_repetitions produce one entry per
    repetition (same name) plus suffixed aggregate rows; the
    aggregates are skipped and repeated names reduced to their MEDIAN.
    The median, not the mean: one repetition landing in a lucky (or
    throttled) scheduler window on a shared runner shifts a mean of
    three by several percent -- enough to flip the tight same-run
    overhead guards -- while the median ignores it entirely.
    """
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" not in doc:
        sys.exit(f"error: {path}: no 'benchmarks' array "
                 f"(is this a BENCH_simperf.json?)")
    samples = {}
    for i, bench in enumerate(doc["benchmarks"]):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None:
            sys.exit(f"error: {path}: benchmarks[{i}] has no 'name'")
        if "items_per_second" not in bench:
            sys.exit(f"error: {path}: benchmark '{name}' has no "
                     f"'items_per_second'")
        samples.setdefault(name, []).append(bench["items_per_second"])
    return {name: statistics.median(v) for name, v in samples.items()}


def load_counters(path):
    """Read {benchmark name: {counter: median value}} (user counters)."""
    with open(path) as f:
        doc = json.load(f)
    samples = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None:
            continue
        for cname, value in bench.get("counters", {}).items():
            samples.setdefault((name, cname), []).append(value)
    out = {}
    for (name, cname), values in samples.items():
        out.setdefault(name, {})[cname] = statistics.median(values)
    return out


def check_parallel_speedup(fresh, counters):
    """Same-run sharded-simulation speedup floor.  Returns failures."""
    # The benchmark measures wall time, so names carry google-
    # benchmark's "/real_time" suffix; normalize it away.
    para = {}
    for n, v in fresh.items():
        if n.startswith(PARALLEL_PREFIX):
            base_name = n[:-len("/real_time")] \
                if n.endswith("/real_time") else n
            para[base_name] = (n, v)
    variants = sorted(n for n in para if n != PARALLEL_REF)
    if PARALLEL_REF not in para or not variants:
        print(f"note: parallel-sim speedup floor skipped "
              f"({PARALLEL_PREFIX}* missing from the fresh run)")
        return []
    host_cpus = max(
        counters.get(para[n][0], {}).get("host_cpus", 0.0)
        for n in [PARALLEL_REF] + variants)
    if host_cpus < PARALLEL_MIN_HOST_CPUS:
        print(f"note: parallel-sim speedup floor skipped: the host "
              f"reports {host_cpus:.0f} hardware thread(s), fewer "
              f"than the {PARALLEL_MIN_HOST_CPUS} needed to "
              f"demonstrate a {PARALLEL_SPEEDUP_FLOOR}x speedup "
              f"(results are still byte-identical; only the scaling "
              f"claim is unverifiable here)")
        return []
    base = para[PARALLEL_REF][1]
    best_name, best = max(((n, para[n][1]) for n in variants),
                          key=lambda kv: kv[1])
    speedup = best / base if base else float("inf")
    if speedup < PARALLEL_SPEEDUP_FLOOR:
        print(f"{best_name}: SPEEDUP -- only {speedup:.2f}x the "
              f"{PARALLEL_REF} reference ({best:.4g} vs {base:.4g} "
              f"items/s) on a {host_cpus:.0f}-thread host; floor is "
              f"{PARALLEL_SPEEDUP_FLOOR}x")
        return [best_name]
    print(f"{best_name}: {speedup:.2f}x the single-shard reference "
          f"(floor {PARALLEL_SPEEDUP_FLOOR}x, "
          f"{host_cpus:.0f}-thread host) ok")
    return []


def check_baselines(baselines, fresh, threshold,
                    baseline_counters, fresh_counters):
    """Guarded benchmarks vs their best baseline.  Returns failures."""
    failures = []
    guarded = sorted(
        {name for b in baselines.values() for name in b
         if name.startswith(GUARDED_PREFIXES)})
    for name in guarded:
        bases = {path: b[name] for path, b in baselines.items()
                 if name in b}
        if name.startswith(PARALLEL_GUARD_PREFIXES):
            # Stale-baseline gate: a parallel benchmark recorded on a
            # host with fewer hardware threads than shards measured
            # serialized shards, not parallel execution.
            fresh_prov = parallel_provisioning(fresh_counters, name)
            if fresh_prov is not None and fresh_prov[1] < fresh_prov[0]:
                print(f"note: {name}: baseline comparison skipped -- "
                      f"this host reports {fresh_prov[1]:.0f} hardware "
                      f"thread(s), fewer than the benchmark's "
                      f"{fresh_prov[0]:.0f} shards")
                continue
            for path in sorted(bases):
                prov = parallel_provisioning(
                    baseline_counters.get(path, {}), name)
                if prov is None or prov[1] < prov[0]:
                    detail = ("no shards/host_cpus counters"
                              if prov is None else
                              f"{prov[1]:.0f} hardware thread(s) for "
                              f"{prov[0]:.0f} shards")
                    print(f"note: {name}: stale baseline {path} "
                          f"skipped ({detail}; its numbers measured "
                          f"serialized shards)")
                    del bases[path]
            if not bases:
                print(f"note: {name}: every baseline is stale; "
                      f"commit a refreshed BENCH_simperf.json from a "
                      f"host with enough hardware threads to guard it")
                continue
        if name not in fresh:
            # A guarded benchmark vanishing would otherwise pass the
            # guard silently; removing one on purpose means updating
            # the committed baseline in the same PR.
            print(f"FAILURE: guarded benchmark {name} is in a "
                  f"baseline but missing from the fresh run")
            failures.append(name)
            continue
        now = fresh[name]
        best_path, best = max(bases.items(), key=lambda kv: kv[1])
        ratio = now / best if best else float("inf")
        if ratio < 1.0 - threshold:
            failures.append(name)
            print(f"{name}: REGRESSION -- {now:.4g} items/s vs best "
                  f"baseline {best:.4g} items/s ({best_path}); "
                  f"{ratio:.1%} of baseline, allowed >= "
                  f"{1.0 - threshold:.0%}")
            for path, base in sorted(bases.items()):
                print(f"    {path}: {base:.4g} items/s "
                      f"({now / base if base else float('inf'):.1%})")
        else:
            print(f"{name}: {best:.4g} -> {now:.4g} items/s "
                  f"({ratio:.1%} of best of {len(bases)} baseline(s)) "
                  f"ok")
    return failures


def check_relative(fresh):
    """Same-run overhead guards.  Returns failures."""
    failures = []
    for name, ref, budget in RELATIVE_GUARDS:
        if name not in fresh or ref not in fresh:
            print(f"note: relative guard {name} vs {ref} skipped "
                  f"(benchmark missing from the fresh run)")
            continue
        now, base = fresh[name], fresh[ref]
        ratio = now / base if base else float("inf")
        if ratio < 1.0 - budget:
            failures.append(name)
            print(f"{name}: OVERHEAD -- {now:.4g} items/s is "
                  f"{1.0 - ratio:.1%} below {ref} ({base:.4g} "
                  f"items/s); budget is {budget:.0%}")
        else:
            print(f"{name}: {ratio:.1%} of {ref} "
                  f"(budget {1.0 - budget:.0%}) ok")
    return failures


def run_triage(fl_report, triage_baseline, triage_fresh):
    """Append fl_report's triage block to a failing run.  Best-effort:
    triage must never turn a clean failure report into a crash."""
    cmd = [fl_report,
           f"--baseline=baseline={triage_baseline}",
           f"--run=fresh={triage_fresh}",
           "--triage"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=120)
    except (OSError, subprocess.TimeoutExpired) as e:
        print(f"note: fl_report triage unavailable: {e}")
        return
    if proc.returncode != 0:
        print(f"note: fl_report triage failed: "
              f"{proc.stderr.strip() or proc.stdout.strip()}")
        return
    print("\n-- fl_report triage (baseline vs fresh) --")
    print(proc.stdout.rstrip())


def main(argv):
    threshold = 0.20
    paths = []
    fl_report = None
    triage_baseline = None
    triage_fresh = None
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--fl-report="):
            fl_report = arg.split("=", 1)[1]
        elif arg.startswith("--triage-baseline="):
            triage_baseline = arg.split("=", 1)[1]
        elif arg.startswith("--triage-fresh="):
            triage_fresh = arg.split("=", 1)[1]
        else:
            paths.append(arg)
    if len(paths) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baselines = {path: load(path) for path in paths[:-1]}
    fresh = load(paths[-1])
    baseline_counters = {path: load_counters(path)
                         for path in paths[:-1]}
    fresh_counters = load_counters(paths[-1])

    failures = check_baselines(baselines, fresh, threshold,
                               baseline_counters, fresh_counters)
    failures += check_relative(fresh)
    failures += check_parallel_speedup(fresh, fresh_counters)

    baseline_names = set()
    for b in baselines.values():
        baseline_names |= set(b)
    for name in sorted(set(fresh) - baseline_names):
        if name.startswith(GUARDED_PREFIXES):
            print(f"note: guarded benchmark {name} is new (not in any "
                  f"baseline yet); commit a refreshed baseline to "
                  f"guard it")
        else:
            print(f"note: {name} not in any baseline (unguarded)")

    if failures:
        if fl_report and triage_baseline and triage_fresh:
            run_triage(fl_report, triage_baseline, triage_fresh)
        print(f"\n{len(failures)} check(s) failed: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"\nno guarded benchmark regressed beyond {threshold:.0%} "
          f"and every overhead budget held")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
