#!/usr/bin/env python3
"""Compare a fresh BENCH_simperf.json against the committed baseline.

Usage: check_bench_regression.py BASELINE FRESH [--threshold=0.20]

Fails (exit 1) if any guarded benchmark's items_per_second dropped by
more than the threshold relative to the baseline.  Only the simulator
hot-path benchmarks are guarded: wall-clock noise on shared CI runners
makes guarding everything counterproductive, but a >20% drop on the
event kernel or the full-system run is a real regression.

Benchmarks present in only one file are reported but never fatal, so
adding or renaming benchmarks does not break CI in the same PR.
"""

import json
import sys

GUARDED_PREFIXES = ("BM_EventQueue", "BM_FullSystem/",
                    "BM_FullSystemProfiled")


def load(path):
    """Read {benchmark name: items/sec}, naming whatever is malformed.

    A raw KeyError here would point at this script rather than at the
    file that is missing a field, so every required key gets its own
    message instead.
    """
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" not in doc:
        sys.exit(f"error: {path}: no 'benchmarks' array "
                 f"(is this a BENCH_simperf.json?)")
    out = {}
    for i, bench in enumerate(doc["benchmarks"]):
        name = bench.get("name")
        if name is None:
            sys.exit(f"error: {path}: benchmarks[{i}] has no 'name'")
        if "items_per_second" not in bench:
            sys.exit(f"error: {path}: benchmark '{name}' has no "
                     f"'items_per_second'")
        out[name] = bench["items_per_second"]
    return out


def main(argv):
    threshold = 0.20
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baseline = load(paths[0])
    fresh = load(paths[1])

    failures = []
    for name, base in sorted(baseline.items()):
        if not name.startswith(GUARDED_PREFIXES):
            continue
        if name not in fresh:
            # A guarded benchmark vanishing would otherwise pass the
            # guard silently; removing one on purpose means updating
            # the committed baseline in the same PR.
            print(f"FAILURE: guarded benchmark {name} is in the "
                  f"baseline but missing from the fresh run")
            failures.append(name)
            continue
        now = fresh[name]
        ratio = now / base if base else float("inf")
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            failures.append(name)
        print(f"{name}: {base:.3g} -> {now:.3g} items/s "
              f"({ratio:.1%} of baseline) {status}")

    for name in sorted(set(fresh) - set(baseline)):
        if name.startswith(GUARDED_PREFIXES):
            print(f"note: guarded benchmark {name} is new (not in the "
                  f"baseline yet); commit a refreshed baseline to "
                  f"guard it")
        else:
            print(f"note: {name} not in baseline (unguarded)")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed more than "
              f"{threshold:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("\nno guarded benchmark regressed beyond "
          f"{threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
