/**
 * @file
 * Litmus tests: the outcome sets of SB, MP and IRIW shapes under each
 * consistency model, baseline and speculative.  Speculation must change
 * performance, never the allowed outcome set.
 */

#include <gtest/gtest.h>

#include "tests/sim_test_util.hh"
#include "workload/litmus.hh"

using namespace fenceless;
using namespace fenceless::test;
using namespace fenceless::workload;

namespace
{

harness::SystemConfig
litmusConfig(cpu::ConsistencyModel model, bool speculative)
{
    harness::SystemConfig cfg = testConfig(4, model);
    if (speculative)
        cfg.spec.mode = spec::SpecMode::OnDemand;
    return cfg;
}

} // namespace

TEST(Litmus, SbForbiddenUnderSc)
{
    LitmusSB sb(false);
    auto outcomes = runLitmus(sb, litmusConfig(
        cpu::ConsistencyModel::SC, false));
    EXPECT_FALSE(contains(outcomes, {0, 0}));
    EXPECT_TRUE(contains(outcomes, {1, 1}) ||
                contains(outcomes, {0, 1}) ||
                contains(outcomes, {1, 0}));
}

TEST(Litmus, SbObservableUnderTso)
{
    LitmusSB sb(false);
    auto outcomes = runLitmus(sb, litmusConfig(
        cpu::ConsistencyModel::TSO, false));
    EXPECT_TRUE(contains(outcomes, {0, 0}))
        << "store buffering must be observable under TSO";
}

TEST(Litmus, SbFencedForbiddenEverywhere)
{
    LitmusSB sb(true);
    for (auto model : {cpu::ConsistencyModel::SC,
                       cpu::ConsistencyModel::TSO,
                       cpu::ConsistencyModel::RMO}) {
        auto outcomes = runLitmus(sb, litmusConfig(model, false));
        EXPECT_FALSE(contains(outcomes, {0, 0}))
            << consistencyModelName(model);
    }
}

TEST(Litmus, SbSpeculativeScStillForbidden)
{
    // The headline transparency property: speculative SC behaves like
    // SC, not like TSO.
    LitmusSB sb(false);
    auto outcomes = runLitmus(sb, litmusConfig(
        cpu::ConsistencyModel::SC, true));
    EXPECT_FALSE(contains(outcomes, {0, 0}));
}

TEST(Litmus, SbFencedSpeculativeForbidden)
{
    LitmusSB sb(true);
    for (auto model : {cpu::ConsistencyModel::SC,
                       cpu::ConsistencyModel::TSO,
                       cpu::ConsistencyModel::RMO}) {
        auto outcomes = runLitmus(sb, litmusConfig(model, true));
        EXPECT_FALSE(contains(outcomes, {0, 0}))
            << consistencyModelName(model) << " + speculation";
    }
}

TEST(Litmus, MpForbiddenUnderTso)
{
    LitmusMP mp(false);
    auto outcomes = runLitmus(mp, litmusConfig(
        cpu::ConsistencyModel::TSO, false));
    EXPECT_FALSE(contains(outcomes, {1, 0}));
}

TEST(Litmus, MpObservableUnderRmo)
{
    LitmusMP mp(false);
    auto outcomes = runLitmus(mp, litmusConfig(
        cpu::ConsistencyModel::RMO, false), 40, 2);
    EXPECT_TRUE(contains(outcomes, {1, 0}))
        << "store-store reordering must be observable under RMO";
}

TEST(Litmus, MpReleaseForbiddenUnderRmo)
{
    LitmusMP mp(true);
    auto outcomes = runLitmus(mp, litmusConfig(
        cpu::ConsistencyModel::RMO, false));
    EXPECT_FALSE(contains(outcomes, {1, 0}));
}

TEST(Litmus, MpReleaseSpeculativeRmoForbidden)
{
    LitmusMP mp(true);
    auto outcomes = runLitmus(mp, litmusConfig(
        cpu::ConsistencyModel::RMO, true));
    EXPECT_FALSE(contains(outcomes, {1, 0}));
}

TEST(Litmus, MpSpeculativeRmoStillRelaxed)
{
    // Speculation must not silently *strengthen* the model either: the
    // unfenced MP relaxation should remain observable under RMO with
    // speculation enabled (speculation only bypasses stalls, and
    // unfenced RMO stores never stall).
    LitmusMP mp(false);
    auto outcomes = runLitmus(mp, litmusConfig(
        cpu::ConsistencyModel::RMO, true), 40, 2);
    EXPECT_TRUE(contains(outcomes, {1, 0}));
}

TEST(Litmus, IriwFencedAgreesOnOrder)
{
    LitmusIRIW iriw(true);
    for (bool speculative : {false, true}) {
        auto outcomes = runLitmus(iriw, litmusConfig(
            cpu::ConsistencyModel::SC, speculative), 16, 5);
        // Readers must never disagree on the write order:
        // r0=1,r1=0 (X before Y) together with r2=1,r3=0 (Y before X).
        EXPECT_FALSE(contains(outcomes, {1, 0, 1, 0}))
            << "speculative=" << speculative;
    }
}

TEST(Litmus, CoRRForbiddenEverywhere)
{
    // Per-location coherence: a reader may never see the new value and
    // then the old one, under any model, with or without speculation.
    LitmusCoRR corr;
    for (auto model : {cpu::ConsistencyModel::SC,
                       cpu::ConsistencyModel::TSO,
                       cpu::ConsistencyModel::RMO}) {
        for (bool speculative : {false, true}) {
            auto outcomes = runLitmus(corr,
                                      litmusConfig(model, speculative));
            EXPECT_FALSE(contains(outcomes, {1, 0}))
                << consistencyModelName(model) << " spec="
                << speculative;
        }
    }
}

TEST(Litmus, TwoPlusTwoWForbiddenUnderTso)
{
    // Final (X,Y) == (1,1) needs both threads' *second* stores ordered
    // before their first -- impossible with in-order drain.
    Litmus22W w(false);
    for (auto model : {cpu::ConsistencyModel::SC,
                       cpu::ConsistencyModel::TSO}) {
        auto outcomes = runLitmus(w, litmusConfig(model, false));
        EXPECT_FALSE(contains(outcomes, {1, 1}))
            << consistencyModelName(model);
    }
}

TEST(Litmus, TwoPlusTwoWObservableUnderRmo)
{
    Litmus22W w(false);
    auto outcomes = runLitmus(w, litmusConfig(
        cpu::ConsistencyModel::RMO, false), 40, 2);
    EXPECT_TRUE(contains(outcomes, {1, 1}))
        << "store-store reordering must make (1,1) reachable";
}

TEST(Litmus, TwoPlusTwoWReleaseForbiddenUnderRmo)
{
    Litmus22W w(true);
    auto outcomes = runLitmus(w, litmusConfig(
        cpu::ConsistencyModel::RMO, false), 40, 2);
    EXPECT_FALSE(contains(outcomes, {1, 1}));
}

TEST(Litmus, TwoPlusTwoWSpeculativeMatchesBaseline)
{
    Litmus22W w(false);
    auto base = runLitmus(w, litmusConfig(
        cpu::ConsistencyModel::SC, false));
    auto specd = runLitmus(w, litmusConfig(
        cpu::ConsistencyModel::SC, true));
    EXPECT_FALSE(contains(specd, {1, 1}));
    // The speculative outcome set is not broader than the baseline's.
    for (const auto &o : specd)
        EXPECT_TRUE(base.count(o)) << "extra outcome under speculation";
}
