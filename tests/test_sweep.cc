/**
 * @file
 * Unit tests for the host-parallel sweep runner: result ordering,
 * error propagation, and the determinism guarantee (a table rendered
 * from simulation runs is byte-identical for any worker count).  Also
 * covers the pooled one-shot event path the runner's workloads lean
 * on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "sim/eventq.hh"
#include "workload/microbench.hh"

using namespace fenceless;

namespace
{

/** Render one small real simulation into a table row. */
std::vector<std::string>
runPoint(std::uint32_t cores, bool speculative)
{
    harness::SystemConfig cfg;
    cfg.num_cores = cores;
    cfg.model = cpu::ConsistencyModel::TSO;
    if (speculative)
        cfg.withSpeculation();
    workload::SpinlockCrit wl;
    isa::Program prog = wl.build(cores);
    harness::System sys(cfg, prog);
    EXPECT_TRUE(sys.run());
    return {std::to_string(cores), speculative ? "IF" : "base",
            std::to_string(sys.runtimeCycles())};
}

/** The full sweep -> table -> string path at a given worker count. */
std::string
renderSweep(unsigned jobs)
{
    std::vector<std::function<std::vector<std::string>()>> tasks;
    for (std::uint32_t cores : {1u, 2u, 4u}) {
        for (bool speculative : {false, true}) {
            tasks.push_back([cores, speculative] {
                return runPoint(cores, speculative);
            });
        }
    }
    harness::SweepRunner runner(jobs);
    auto rows = runner.map(std::move(tasks));
    harness::Table table({"cores", "mode", "cycles"});
    for (auto &row : rows)
        table.addRow(std::move(row));
    std::ostringstream os;
    table.print(os);
    return os.str();
}

} // namespace

TEST(SweepRunner, ResolvesJobCounts)
{
    EXPECT_GE(harness::SweepRunner::resolveJobs(0), 1u);
    EXPECT_EQ(harness::SweepRunner::resolveJobs(1), 1u);
    EXPECT_EQ(harness::SweepRunner::resolveJobs(6), 6u);
    EXPECT_EQ(harness::SweepRunner(3).jobs(), 3u);
}

TEST(SweepRunner, MapPreservesSubmissionOrder)
{
    const std::size_t n = 64;
    for (unsigned jobs : {1u, 8u}) {
        std::vector<std::function<int()>> tasks;
        for (std::size_t i = 0; i < n; ++i)
            tasks.push_back([i] { return static_cast<int>(i * i); });
        harness::SweepRunner runner(jobs);
        auto results = runner.map(std::move(tasks));
        ASSERT_EQ(results.size(), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(results[i], static_cast<int>(i * i));
    }
}

TEST(SweepRunner, RunExecutesEveryTaskExactlyOnce)
{
    std::atomic<int> count{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 40; ++i)
        tasks.push_back([&count] { ++count; });
    harness::SweepRunner runner(8);
    runner.run(std::move(tasks));
    EXPECT_EQ(count.load(), 40);
}

TEST(SweepRunner, LowestIndexExceptionWins)
{
    for (unsigned jobs : {1u, 8u}) {
        std::vector<std::function<int()>> tasks;
        for (int i = 0; i < 16; ++i) {
            tasks.push_back([i]() -> int {
                if (i == 3 || i == 11) {
                    throw std::runtime_error(
                        "task " + std::to_string(i));
                }
                return i;
            });
        }
        harness::SweepRunner runner(jobs);
        try {
            runner.map(std::move(tasks));
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &err) {
            // Same exception a sequential run would surface first.
            EXPECT_STREQ(err.what(), "task 3");
        }
    }
}

TEST(SweepRunner, SimulationTableIsIdenticalAcrossWorkerCounts)
{
    const std::string sequential = renderSweep(1);
    EXPECT_FALSE(sequential.empty());
    EXPECT_EQ(renderSweep(8), sequential);
    EXPECT_EQ(renderSweep(3), sequential);
}

TEST(OneShotPool, ReusesNodesAcrossBursts)
{
    sim::EventQueue eq;
    std::uint64_t fired = 0;
    for (int burst = 0; burst < 10; ++burst) {
        for (int i = 0; i < 100; ++i)
            eq.scheduleOneShot(eq.curTick() + 1 + i % 3,
                               [&fired] { ++fired; });
        eq.run();
        // Every node is back on the free list between bursts...
        EXPECT_EQ(eq.oneShotNodesFree(), eq.oneShotNodesAllocated());
    }
    EXPECT_EQ(fired, 1000u);
    // ...and the pool never grew past the first burst's peak.
    EXPECT_LE(eq.oneShotNodesAllocated(), 100u);
}

TEST(OneShotPool, ReentrantScheduleFromInsideProcess)
{
    sim::EventQueue eq;
    std::vector<int> log;
    eq.scheduleOneShot(1, [&] {
        log.push_back(1);
        eq.scheduleOneShot(eq.curTick() + 1, [&] {
            log.push_back(2);
            eq.scheduleOneShot(eq.curTick() + 1,
                               [&] { log.push_back(3); });
        });
    });
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.oneShotNodesFree(), eq.oneShotNodesAllocated());
}

TEST(OneShotPool, LargeClosureFallsBackToHeapBox)
{
    sim::EventQueue eq;
    // 128 bytes of captured state: too big for the inline buffer, so
    // this exercises the boxed path of OneShotFn.
    std::array<std::uint64_t, 16> payload{};
    std::iota(payload.begin(), payload.end(), 1);
    std::uint64_t sum = 0;
    eq.scheduleOneShot(5, [payload, &sum] {
        for (std::uint64_t v : payload)
            sum += v;
    });
    eq.run();
    EXPECT_EQ(sum, 136u);
    EXPECT_EQ(eq.oneShotNodesFree(), eq.oneShotNodesAllocated());
}

TEST(OneShotPool, TeardownWithPendingOneShotIsClean)
{
    bool fired = false;
    {
        sim::EventQueue eq;
        eq.scheduleOneShot(100, [&fired] { fired = true; });
        // Destroy the queue with the event still pending: the pool
        // owns the node, so nothing leaks and nothing asserts.
    }
    EXPECT_FALSE(fired);
}
