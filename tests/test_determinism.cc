/**
 * @file
 * Determinism guarantees of the simulation kernel.
 *
 * The calendar event queue, the L1 hit fast path, and the idle-core
 * sleep protocol are all pure performance work: they must not change a
 * single stat.  These tests pin that down three ways:
 *
 *  - the same configuration run twice produces byte-identical stats
 *    JSON (covers bucket-vs-heap ordering and idle-sleep accounting);
 *  - a host-parallel sweep produces the same per-task results
 *    regardless of worker count;
 *  - a randomized schedule/deschedule/reschedule stress confirms the
 *    two-level queue fires events in exactly the documented
 *    (when, priority, stamp) total order, near and far alike;
 *  - a sharded run (SystemConfig::shards >= 2) produces stats,
 *    profile, and flight-recorder documents byte-identical to the
 *    single-threaded reference, for any shard count, inside or outside
 *    a host-parallel sweep;
 *  - cross-shard mailbox drains deliver in the canonical
 *    (arrival, src, chan_seq) order no matter how the mailboxes were
 *    permuted;
 *  - host-waste telemetry (SystemConfig::host_telemetry) keeps its
 *    deterministic counters byte-identical run to run at a fixed shard
 *    count, and changes no guest-visible stat when enabled.
 */

#include <gtest/gtest.h>

#include <deque>
#include <sstream>
#include <string>
#include <vector>

#include "base/random.hh"
#include "harness/sweep.hh"
#include "harness/system.hh"
#include "sim/eventq.hh"
#include "workload/microbench.hh"

using namespace fenceless;

namespace
{

/** Build, run, and render one system's full stats registry. */
std::string
runAndRenderStats(const harness::SystemConfig &cfg)
{
    workload::SpinlockCrit wl;
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    EXPECT_TRUE(sys.run());
    std::ostringstream os;
    sys.writeStatsJson(os);
    return os.str();
}

/**
 * Erase the self-describing `"sim_mode"` stanza from a provenance-
 * stamped document: the one intentional difference between a sharded
 * run's output and the single-threaded reference's.
 */
std::string
stripSimMode(std::string s)
{
    const std::string key = ", \"sim_mode\": {";
    for (auto pos = s.find(key); pos != std::string::npos;
         pos = s.find(key)) {
        const auto end = s.find('}', pos);
        EXPECT_NE(end, std::string::npos);
        if (end == std::string::npos)
            break;
        s.erase(pos, end - pos + 1);
    }
    return s;
}

/** Every externally-visible document of one run. */
struct RunArtifacts
{
    bool completed = false;
    std::string stats;        //!< writeStatsJson (sim_mode stripped)
    std::string profile_json; //!< profile().writeJson
    std::string folded;       //!< profile().writeFolded
    std::string blackbox;     //!< writeBlackbox (sim_mode stripped)
};

/** Build and run one sharded system; collect all output documents. */
RunArtifacts
runSharded(std::uint32_t shards, std::uint32_t dir_banks = 1,
           mem::Topology topology = mem::Topology::Crossbar)
{
    harness::SystemConfig cfg;
    cfg.num_cores = 8;
    cfg.model = cpu::ConsistencyModel::TSO;
    cfg.withSpeculation().withProfiling().withShards(shards);
    cfg.withDirBanks(dir_banks).withTopology(topology);
    workload::SpinlockCrit wl;
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);

    RunArtifacts a;
    a.completed = sys.run();
    {
        std::ostringstream os;
        sys.writeStatsJson(os);
        a.stats = stripSimMode(os.str());
    }
    {
        std::ostringstream os;
        sys.profile().writeJson(os);
        a.profile_json = os.str();
    }
    {
        std::ostringstream os;
        sys.profile().writeFolded(os);
        a.folded = os.str();
    }
    {
        std::ostringstream os;
        sys.writeBlackbox(os);
        a.blackbox = stripSimMode(os.str());
    }
    return a;
}

/** Sum one scalar stat across all core groups. */
double
sumCoreStat(harness::System &sys, const std::string &stat)
{
    double total = 0;
    for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
        const auto *group =
            sys.stats().findGroup("core_" + std::to_string(i));
        EXPECT_NE(group, nullptr);
        const auto *s = group->find(stat);
        EXPECT_NE(s, nullptr) << stat;
        total += s->value();
    }
    return total;
}

} // namespace

// ---------------------------------------------------------------------
// same config, same stats -- byte for byte
// ---------------------------------------------------------------------

TEST(Determinism, SameConfigTwiceByteIdenticalBaseline)
{
    harness::SystemConfig cfg;
    cfg.num_cores = 4;
    cfg.model = cpu::ConsistencyModel::TSO;
    const std::string first = runAndRenderStats(cfg);
    const std::string second = runAndRenderStats(cfg);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(Determinism, SameConfigTwiceByteIdenticalSpeculative)
{
    harness::SystemConfig cfg;
    cfg.num_cores = 4;
    cfg.model = cpu::ConsistencyModel::TSO;
    cfg.withSpeculation();
    const std::string first = runAndRenderStats(cfg);
    const std::string second = runAndRenderStats(cfg);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(Determinism, SameConfigTwiceByteIdenticalSC)
{
    // SC stalls on every ordering point, so this leans hardest on the
    // idle-sleep bulk accounting.
    harness::SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.model = cpu::ConsistencyModel::SC;
    const std::string first = runAndRenderStats(cfg);
    const std::string second = runAndRenderStats(cfg);
    EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------
// sweep worker count must not leak into results
// ---------------------------------------------------------------------

TEST(Determinism, SweepJobsOneVsMany)
{
    auto make_tasks = [] {
        std::vector<std::function<std::string()>> tasks;
        for (std::uint32_t cores : {1u, 2u, 4u}) {
            for (auto model : {cpu::ConsistencyModel::TSO,
                               cpu::ConsistencyModel::SC}) {
                tasks.push_back([cores, model]() -> std::string {
                    harness::SystemConfig cfg;
                    cfg.num_cores = cores;
                    cfg.model = model;
                    return runAndRenderStats(cfg);
                });
            }
        }
        return tasks;
    };

    harness::SweepRunner serial(1);
    harness::SweepRunner parallel(4);
    const auto seq = serial.map(make_tasks());
    const auto par = parallel.map(make_tasks());
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(seq[i], par[i]) << "task " << i;
}

// ---------------------------------------------------------------------
// calendar queue vs the documented total order
// ---------------------------------------------------------------------

TEST(Determinism, CalendarQueueRandomizedOrdering)
{
    // Randomly schedule events near (inside the 64-tick bucket window)
    // and far (overflow heap), with mixed priorities, then deschedule
    // and reschedule a slice of them.  The fire order must match the
    // (when, priority, stamp) total order, where stamp order is the
    // order of the last (re)schedule call.
    constexpr int num_events = 500;
    sim::EventQueue eq;
    Random rng(12345);

    struct Fired
    {
        int id;
        Tick when;
    };
    std::vector<Fired> fired;

    std::deque<sim::EventFunctionWrapper> events;
    std::vector<Tick> when(num_events, 0);
    std::vector<int> pri(num_events, 0);
    std::vector<std::uint64_t> seq(num_events, 0); // last schedule op
    std::vector<bool> live(num_events, false);
    std::uint64_t op = 0;

    for (int id = 0; id < num_events; ++id) {
        pri[id] = static_cast<int>(rng.range(0, 4)) * 25; // 0..100
        events.emplace_back(
            [id, &eq, &fired] { fired.push_back({id, eq.curTick()}); },
            "determinism.rec", pri[id]);
    }
    for (int id = 0; id < num_events; ++id) {
        // Mostly a dense band (near entries plus far entries that
        // migrate into the window as time advances); every 50th event
        // lands on a sparse tail with >64-tick gaps, which the queue
        // must pop straight from the far heap (the time-jump path).
        when[id] = (id % 50 == 49)
            ? 10'000 + static_cast<Tick>(id) * 100
            : 1 + rng.range(0, 199);
        eq.schedule(&events[id], when[id]);
        seq[id] = op++;
        live[id] = true;
    }
    // Perturb: deschedule ~10%, reschedule ~30% (leaving stale
    // entries for the pop path to skip).
    for (int id = 0; id < num_events; ++id) {
        const std::uint64_t roll = rng.range(0, 9);
        if (roll == 0) {
            eq.deschedule(&events[id]);
            live[id] = false;
        } else if (roll <= 3) {
            when[id] = 1 + rng.range(0, 199);
            eq.reschedule(&events[id], when[id]);
            seq[id] = op++;
        }
    }

    eq.run();

    // Every live event fired exactly once; no descheduled event fired.
    std::vector<int> count(num_events, 0);
    for (const Fired &f : fired)
        ++count[f.id];
    for (int id = 0; id < num_events; ++id)
        EXPECT_EQ(count[id], live[id] ? 1 : 0) << "event " << id;

    // Fire order == sort by (when, priority, stamp).
    std::vector<int> expected;
    for (int id = 0; id < num_events; ++id) {
        if (live[id])
            expected.push_back(id);
    }
    std::sort(expected.begin(), expected.end(), [&](int a, int b) {
        if (when[a] != when[b])
            return when[a] < when[b];
        if (pri[a] != pri[b])
            return pri[a] < pri[b];
        return seq[a] < seq[b];
    });
    ASSERT_EQ(fired.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(fired[i].id, expected[i]) << "position " << i;
        EXPECT_EQ(fired[i].when, when[fired[i].id]);
    }

    // The stress actually exercised all three pop paths.
    EXPECT_GT(eq.stalePops(), 0u);
    EXPECT_GT(eq.nearPops(), 0u);
    EXPECT_GT(eq.farPops(), 0u);
}

// ---------------------------------------------------------------------
// idle-sleep stall accounting
// ---------------------------------------------------------------------

TEST(Determinism, IdleSleepStallAccountingExercised)
{
    // A contended spinlock misses constantly, so cores spend most of
    // their time asleep waiting on loads and atomics.  The bulk
    // accounting must (a) be deterministic and (b) actually attribute
    // the slept cycles.
    harness::SystemConfig cfg;
    cfg.num_cores = 4;
    cfg.model = cpu::ConsistencyModel::TSO;
    workload::SpinlockCrit wl;
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());

    const double load_stalls = sumCoreStat(sys, "stall_load_access");
    const double amo_stalls = sumCoreStat(sys, "stall_amo_access");
    EXPECT_GT(load_stalls + amo_stalls, 0.0);

    // A core cannot have stalled longer than it ran: per core, the
    // accounted cycles (instructions + all stall reasons) must not
    // exceed its halt tick.
    for (std::uint32_t i = 0; i < sys.numCores(); ++i) {
        const auto *group =
            sys.stats().findGroup("core_" + std::to_string(i));
        ASSERT_NE(group, nullptr);
        double accounted = group->find("instructions")->value();
        for (int r = 0;
             r < static_cast<int>(cpu::StallReason::NumReasons); ++r) {
            accounted += group
                ->find(std::string("stall_") + cpu::stallReasonName(
                           static_cast<cpu::StallReason>(r)))
                ->value();
        }
        EXPECT_LE(accounted, group->find("halt_tick")->value() + 1)
            << "core " << i;
    }
}

// ---------------------------------------------------------------------
// sharded simulation: byte-identical to the single-threaded reference
// ---------------------------------------------------------------------

TEST(Determinism, ShardedRunByteIdenticalToReference)
{
    const RunArtifacts ref = runSharded(1);
    EXPECT_TRUE(ref.completed);
    EXPECT_FALSE(ref.stats.empty());
    EXPECT_FALSE(ref.profile_json.empty());
    EXPECT_FALSE(ref.blackbox.empty());

    for (std::uint32_t shards : {2u, 4u}) {
        const RunArtifacts got = runSharded(shards);
        EXPECT_EQ(got.completed, ref.completed) << shards << " shards";
        EXPECT_EQ(got.stats, ref.stats) << shards << " shards";
        EXPECT_EQ(got.profile_json, ref.profile_json)
            << shards << " shards";
        EXPECT_EQ(got.folded, ref.folded) << shards << " shards";
        EXPECT_EQ(got.blackbox, ref.blackbox) << shards << " shards";
    }
}

TEST(Determinism, ShardedRunByteIdenticalInsideParallelSweep)
{
    // Shard-level threads must compose with sweep-level threads: the
    // same shards x jobs grid always lands on the reference output.
    auto make_tasks = [] {
        std::vector<std::function<std::string()>> tasks;
        for (std::uint32_t shards : {1u, 2u, 4u}) {
            tasks.push_back([shards]() -> std::string {
                return runSharded(shards).stats;
            });
        }
        return tasks;
    };

    harness::SweepRunner serial(1);
    harness::SweepRunner parallel(4);
    const auto seq = serial.map(make_tasks());
    const auto par = parallel.map(make_tasks());
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i], par[i]) << "task " << i;
        EXPECT_EQ(seq[i], seq[0]) << "shard count leaked into stats";
    }
}

TEST(Determinism, CrossShardDrainOrderCanonical)
{
    // Mailbox drains hand arrivals to the network in whatever order the
    // source shards filled them; the per-node ingress heap must restore
    // the canonical (arrival, src, chan_seq) delivery order.  Permute
    // the handoff order randomly and check delivery stays put.
    Random rng(98765);

    struct Delivery
    {
        mem::NodeId src;
        std::uint64_t req_id;
        Tick tick;

        bool operator==(const Delivery &) const = default;
    };

    std::vector<Delivery> reference;
    for (int round = 0; round < 20; ++round) {
        sim::SimContext ctx;
        mem::Network::Params p;
        p.latency = 4;
        mem::Network net(ctx, "net", p);

        // Node 0 (the receiver) on shard 0; sender nodes 1..4 on a
        // different shard, so every send crosses the mailbox.
        struct Collector : mem::MsgReceiver
        {
            sim::SimContext *ctx;
            std::vector<Delivery> seen;
            void
            receiveMsg(const mem::Msg &m) override
            {
                seen.push_back({m.src, m.req_id, ctx->curTick()});
            }
        };
        Collector sink;
        sink.ctx = &ctx;
        net.bindNode(0, ctx, 0);
        for (mem::NodeId s = 1; s <= 4; ++s)
            net.bindNode(s, ctx, 1);
        net.registerEndpoint(0, &sink);

        std::vector<mem::Network::PendingMsg> mailbox;
        net.setCrossShardPush(
            [&](std::uint32_t, std::uint32_t,
                mem::Network::PendingMsg &&pm) {
                mailbox.push_back(std::move(pm));
            });

        // The message pattern is fixed across rounds (only the drain
        // permutation below varies, via the outer rng).
        Random msg_rng(4242);
        std::uint64_t next_id = 0;
        for (int i = 0; i < 40; ++i) {
            mem::Msg m;
            m.type = (i % 3 == 0) ? mem::MsgType::DataM
                                  : mem::MsgType::GetS;
            m.src = 1 + static_cast<mem::NodeId>(msg_rng.range(0, 3));
            m.dst = 0;
            m.block_addr = 64 * static_cast<Addr>(i);
            m.req_id = ++next_id;
            if (m.type == mem::MsgType::DataM)
                m.data.assign(64, 0xab);
            net.send(std::move(m));
        }
        ASSERT_EQ(mailbox.size(), 40u);

        // The drain order is arbitrary: shuffle before handing over.
        for (std::size_t i = mailbox.size(); i > 1; --i) {
            std::swap(mailbox[i - 1],
                      mailbox[rng.range(0, i - 1)]);
        }
        for (auto &pm : mailbox)
            net.enqueueArrival(std::move(pm));
        ctx.eventq.run();

        ASSERT_EQ(sink.seen.size(), 40u);
        if (round == 0) {
            reference = sink.seen;
            // Deliveries are tick-monotone and, within a tick, ordered
            // by source node id.
            for (std::size_t i = 1; i < reference.size(); ++i) {
                ASSERT_LE(reference[i - 1].tick, reference[i].tick);
                if (reference[i - 1].tick == reference[i].tick) {
                    ASSERT_LE(reference[i - 1].src,
                              reference[i].src);
                }
            }
        } else {
            EXPECT_EQ(sink.seen, reference) << "round " << round;
        }
    }
}

// ---------------------------------------------------------------------
// host-waste telemetry: deterministic fields reproduce; guest output
// is untouched
// ---------------------------------------------------------------------

namespace
{

/** Everything a telemetered sharded run exposes. */
struct TelemetryRun
{
    bool completed = false;
    std::string stats; //!< writeStatsJson (sim_mode stripped)
    std::string det;   //!< ShardTelemetry::deterministicJson
    std::uint64_t events = 0; //!< summed over shards
    std::uint64_t steps = 0;  //!< coordinator invocations
};

TelemetryRun
runTelemetered(std::uint32_t shards)
{
    harness::SystemConfig cfg;
    cfg.num_cores = 8;
    cfg.model = cpu::ConsistencyModel::TSO;
    cfg.withShards(shards).withHostTelemetry();
    workload::SpinlockCrit wl;
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    TelemetryRun r;
    r.completed = sys.run();
    std::ostringstream os;
    sys.writeStatsJson(os);
    r.stats = stripSimMode(os.str());
    // The indent matches what writeStatsJson's host stanza uses, so
    // the verbatim-embedding assertion below can compare bytes.
    r.det = sys.telemetry().deterministicJson("    ");
    for (std::uint32_t s = 0; s < sys.telemetry().shards(); ++s)
        r.events += sys.telemetry().slot(s).events;
    r.steps = sys.telemetry().coord().steps;
    return r;
}

/**
 * Erase the stats-json "host" stanza: its wallclock_ns half varies
 * with host scheduling by design, so comparisons against an
 * untelemetered document must drop the stanza wholesale.
 */
std::string
stripHostSection(std::string s)
{
    const std::string key = ",\n  \"host\": ";
    const auto pos = s.find(key);
    if (pos == std::string::npos)
        return s;
    const auto end = s.find(",\n  \"snapshots\"", pos);
    EXPECT_NE(end, std::string::npos);
    if (end == std::string::npos)
        return s;
    s.erase(pos, end - pos);
    return s;
}

} // namespace

TEST(Determinism, TelemetryDeterministicFieldsStableRunToRun)
{
    const TelemetryRun a = runTelemetered(4);
    const TelemetryRun b = runTelemetered(4);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_GT(a.events, 0u);
    EXPECT_GT(a.steps, 0u);
    // The deterministic half (events, quanta, messages, boundary
    // causes) is a pure function of the simulation: byte for byte.
    EXPECT_EQ(a.det, b.det);
    // And it is embedded verbatim in the stats document, next to (but
    // never mixed with) the wall-clock half.
    EXPECT_NE(a.stats.find("\"deterministic\""), std::string::npos);
    EXPECT_NE(a.stats.find("\"wallclock_ns\""), std::string::npos);
    EXPECT_NE(a.stats.find(a.det), std::string::npos);
}

TEST(Determinism, TelemetryLeavesGuestStatsUntouched)
{
    // Telemetry on vs off at the same shard count: stripping the
    // "host" stanza must recover the untelemetered document exactly --
    // the probes change no guest-visible stat, and the telemetry-off
    // document itself has no host stanza at all.
    harness::SystemConfig cfg;
    cfg.num_cores = 8;
    cfg.model = cpu::ConsistencyModel::TSO;
    cfg.withShards(4);
    const std::string off = runAndRenderStats(cfg);
    EXPECT_EQ(off.find(",\n  \"host\": "), std::string::npos);

    harness::SystemConfig on_cfg = cfg;
    on_cfg.withHostTelemetry();
    const std::string on = runAndRenderStats(on_cfg);
    EXPECT_NE(on.find(",\n  \"host\": "), std::string::npos);
    EXPECT_EQ(stripHostSection(on), off);
}

TEST(Determinism, TelemetryOffStatsIdenticalAcrossShardCounts)
{
    // Belt and braces over ShardedRunByteIdenticalToReference: the
    // plain stats document (no profiling) with the percentile fields
    // in every distribution must not depend on the shard count --
    // PercentileSketch::merge has to be order-independent for that.
    harness::SystemConfig cfg;
    cfg.num_cores = 8;
    cfg.model = cpu::ConsistencyModel::TSO;
    cfg.withShards(1);
    const std::string ref = stripSimMode(runAndRenderStats(cfg));
    EXPECT_NE(ref.find("\"p95\""), std::string::npos);
    for (std::uint32_t shards : {2u, 4u}) {
        harness::SystemConfig c = cfg;
        c.withShards(shards);
        EXPECT_EQ(stripSimMode(runAndRenderStats(c)), ref)
            << shards << " shards";
    }
}

// ---------------------------------------------------------------------
// banked directory x sharding: byte-identity at every bank count
// ---------------------------------------------------------------------

TEST(Determinism, BankedShardedByteIdenticalAcrossShardCounts)
{
    // Banking changes WHAT is simulated (per-bank L2 slices, DRAM
    // channels), so different bank counts legitimately differ; the
    // guarantee is that at every FIXED bank count, the shard count --
    // pure host parallelism, including the banked all-shards layout
    // with banks homed round-robin -- changes nothing.
    for (std::uint32_t banks : {1u, 4u, 8u}) {
        const RunArtifacts ref = runSharded(1, banks);
        ASSERT_TRUE(ref.completed) << banks << " banks";
        for (std::uint32_t shards : {2u, 4u}) {
            const RunArtifacts run = runSharded(shards, banks);
            ASSERT_TRUE(run.completed)
                << banks << " banks, " << shards << " shards";
            EXPECT_EQ(run.stats, ref.stats)
                << banks << " banks, " << shards << " shards";
            EXPECT_EQ(run.profile_json, ref.profile_json)
                << banks << " banks, " << shards << " shards";
            EXPECT_EQ(run.folded, ref.folded)
                << banks << " banks, " << shards << " shards";
            EXPECT_EQ(run.blackbox, ref.blackbox)
                << banks << " banks, " << shards << " shards";
        }
    }
}

TEST(Determinism, BankedMeshShardedByteIdenticalToReference)
{
    // The full tentpole stack at once: banked directory behind a mesh
    // NoC, sharded.  Hop-dependent arrival times are sender-computed,
    // so the canonical ingress order -- and every document -- must
    // still be shard-count independent.
    const RunArtifacts ref = runSharded(1, 4, mem::Topology::Mesh);
    ASSERT_TRUE(ref.completed);
    for (std::uint32_t shards : {2u, 4u}) {
        const RunArtifacts run = runSharded(shards, 4,
                                            mem::Topology::Mesh);
        ASSERT_TRUE(run.completed) << shards << " shards";
        EXPECT_EQ(run.stats, ref.stats) << shards << " shards";
        EXPECT_EQ(run.blackbox, ref.blackbox) << shards << " shards";
    }
}

TEST(Determinism, BankedRingShardedStatsIdentical)
{
    const RunArtifacts ref = runSharded(1, 8, mem::Topology::Ring);
    ASSERT_TRUE(ref.completed);
    const RunArtifacts run = runSharded(4, 8, mem::Topology::Ring);
    ASSERT_TRUE(run.completed);
    EXPECT_EQ(run.stats, ref.stats);
    EXPECT_EQ(run.profile_json, ref.profile_json);
}

TEST(Determinism, BankedMesh64CoreEndToEnd)
{
    // The headline configuration: 64 simulated cores on a 9x8 mesh
    // with 8 directory banks, sharded.  Light per-core work keeps the
    // test quick; completion + byte-identity is the point.
    auto run = [](std::uint32_t shards) {
        harness::SystemConfig cfg;
        cfg.num_cores = 64;
        cfg.model = cpu::ConsistencyModel::TSO;
        cfg.withDirBanks(8).withTopology(mem::Topology::Mesh);
        cfg.withShards(shards);
        workload::LocalLockStream::Params p;
        p.iters = 8;
        workload::LocalLockStream wl(p);
        isa::Program prog = wl.build(cfg.num_cores);
        harness::System sys(cfg, prog);
        EXPECT_TRUE(sys.run()) << shards << " shards";
        std::ostringstream os;
        sys.writeStatsJson(os);
        return stripSimMode(os.str());
    };
    const std::string ref = run(1);
    EXPECT_NE(ref.find("l2dir.bank7"), std::string::npos);
    EXPECT_NE(ref.find("network.hops"), std::string::npos);
    EXPECT_EQ(run(4), ref);
}
