/**
 * @file
 * Incident-observability tests: the flight recorder (ring capture and
 * dump), the hang watchdog (a seeded true deadlock fires it; slow and
 * rollback-heavy-but-live runs do not), the wait-for graph (cycle
 * detection and deterministic printing), and the stall dossier.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "sim/blackbox.hh"
#include "sim/waitgraph.hh"
#include "sim/watchdog.hh"
#include "tests/sim_test_util.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::test;
using sim::WaitGraph;
using sim::WaitNode;

namespace
{

WaitNode
coreNode(std::uint32_t i)
{
    return {WaitNode::Kind::Core, i, 0};
}

WaitNode
mshrNode(std::uint32_t i, Addr a)
{
    return {WaitNode::Kind::Mshr, i, a};
}

WaitNode
txnNode(Addr a)
{
    return {WaitNode::Kind::DirTxn, 0, a};
}

std::string
printGraph(const WaitGraph &g)
{
    std::ostringstream os;
    g.print(os);
    return os.str();
}

/** Build the seeded-deadlock system with the Fwd*Ack fault injection. */
std::unique_ptr<harness::System>
buildDeadlockedSystem(workload::SeededDeadlock &wl,
                      harness::SystemConfig cfg)
{
    isa::Program prog = wl.build(cfg.num_cores);
    cfg.net.drop_fwd_acks_for = {wl.blockX(), wl.blockY()};
    return std::make_unique<harness::System>(cfg, prog);
}

} // namespace

// ---------------------------------------------------------------------
// WaitGraph
// ---------------------------------------------------------------------

TEST(WaitGraph, AcyclicGraphHasNoCycles)
{
    WaitGraph g;
    g.addEdge(coreNode(0), mshrNode(0, 0x100), "load miss");
    g.addEdge(mshrNode(0, 0x100), txnNode(0x100), "GetS");
    EXPECT_TRUE(g.cycles().empty());
    const std::string out = printGraph(g);
    EXPECT_NE(out.find("no wait-for cycle"), std::string::npos);
    EXPECT_EQ(out.find("DEADLOCK CYCLE"), std::string::npos);
}

TEST(WaitGraph, SimpleCycleFound)
{
    WaitGraph g;
    g.addEdge(coreNode(0), coreNode(1), "waits");
    g.addEdge(coreNode(1), coreNode(0), "waits");
    const auto cycles = g.cycles();
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_EQ(cycles[0].size(), 2u);
    EXPECT_EQ(cycles[0][0], coreNode(0)); // rooted at smallest node
    EXPECT_NE(printGraph(g).find("DEADLOCK CYCLE: core_0 -> core_1 "
                                 "-> core_0"),
              std::string::npos);
}

TEST(WaitGraph, CycleOutputIndependentOfEdgeOrder)
{
    // The six-node shape the seeded deadlock produces, registered in
    // two different orders.
    const std::vector<std::pair<WaitNode, WaitNode>> edges = {
        {coreNode(0), mshrNode(0, 0x100)},
        {mshrNode(0, 0x100), txnNode(0x100)},
        {txnNode(0x100), coreNode(1)},
        {coreNode(1), mshrNode(1, 0x140)},
        {mshrNode(1, 0x140), txnNode(0x140)},
        {txnNode(0x140), coreNode(0)},
    };
    WaitGraph fwd, rev;
    for (const auto &[a, b] : edges)
        fwd.addEdge(a, b, "x");
    for (auto it = edges.rbegin(); it != edges.rend(); ++it)
        rev.addEdge(it->first, it->second, "x");
    ASSERT_EQ(fwd.cycles().size(), 1u);
    EXPECT_EQ(fwd.cycles(), rev.cycles());
    EXPECT_EQ(fwd.cycles()[0].size(), 6u);
}

TEST(WaitGraph, TwoDisjointCyclesBothReported)
{
    WaitGraph g;
    g.addEdge(coreNode(0), coreNode(1), "a");
    g.addEdge(coreNode(1), coreNode(0), "b");
    g.addEdge(coreNode(2), coreNode(3), "c");
    g.addEdge(coreNode(3), coreNode(2), "d");
    EXPECT_EQ(g.cycles().size(), 2u);
}

TEST(WaitGraph, SelfLoopIsACycle)
{
    WaitGraph g;
    g.addEdge(coreNode(5), coreNode(5), "spin");
    ASSERT_EQ(g.cycles().size(), 1u);
    EXPECT_EQ(g.cycles()[0].size(), 1u);
}

TEST(WaitGraph, DuplicateEdgesDoNotDuplicateCycles)
{
    WaitGraph g;
    g.addEdge(coreNode(0), coreNode(1), "a");
    g.addEdge(coreNode(0), coreNode(1), "a again");
    g.addEdge(coreNode(1), coreNode(0), "b");
    EXPECT_EQ(g.cycles().size(), 1u);
}

TEST(WaitGraph, NodeNames)
{
    EXPECT_EQ(coreNode(3).toString(), "core_3");
    EXPECT_EQ(mshrNode(1, 0x1040).toString(), "l1_1.mshr[0x1040]");
    EXPECT_EQ(txnNode(0x80).toString(), "l2dir.txn[0x80]");
    EXPECT_EQ((WaitNode{WaitNode::Kind::StoreBuffer, 2, 0}).toString(),
              "core_2.sb");
    EXPECT_EQ((WaitNode{WaitNode::Kind::Dram, 0, 0}).toString(),
              "dram");
}

// ---------------------------------------------------------------------
// Watchdog: the seeded deadlock fires it with a named cycle
// ---------------------------------------------------------------------

TEST(Watchdog, SeededDeadlockFiresWithNamedCycle)
{
    workload::SeededDeadlock wl;
    harness::SystemConfig cfg = testConfig(2);
    cfg.watchdog_interval = 5'000;
    auto sys = buildDeadlockedSystem(wl, cfg);

    EXPECT_FALSE(sys->run());
    EXPECT_TRUE(sys->hung());
    EXPECT_EQ(sys->watchdogReport().cause,
              sim::Watchdog::Cause::NoRetirement);

    const std::string &dossier = sys->dossier();
    EXPECT_NE(dossier.find("DEADLOCK CYCLE"), std::string::npos);
    // The cycle names both cores, both MSHRs and both directory
    // transactions: who waits on what, held by whom.
    EXPECT_NE(dossier.find("core_0"), std::string::npos);
    EXPECT_NE(dossier.find("core_1"), std::string::npos);
    EXPECT_NE(dossier.find("l1_0.mshr["), std::string::npos);
    EXPECT_NE(dossier.find("l2dir.txn["), std::string::npos);
    EXPECT_NE(dossier.find("awaiting Fwd*Ack"), std::string::npos);
    // Architectural state and flight-recorder tail ride along.
    EXPECT_NE(dossier.find("architectural state:"), std::string::npos);
    EXPECT_NE(dossier.find("flight recorder tail"), std::string::npos);
    EXPECT_NE(dossier.find("cause=no-retirement"), std::string::npos);
}

TEST(Watchdog, DeadlockDossierIsDeterministic)
{
    std::string dossiers[2];
    for (std::string &d : dossiers) {
        workload::SeededDeadlock wl;
        harness::SystemConfig cfg = testConfig(2);
        cfg.watchdog_interval = 5'000;
        auto sys = buildDeadlockedSystem(wl, cfg);
        EXPECT_FALSE(sys->run());
        d = sys->dossier();
    }
    EXPECT_EQ(dossiers[0], dossiers[1]);
}

TEST(Watchdog, DeadlockDossierIdenticalAcrossSweepJobs)
{
    // The same deadlocked run placed on a 1-thread and a 4-thread
    // SweepRunner must produce byte-identical dossiers: dossier
    // construction only reads the run's own SimContext.
    auto run_one = []() -> std::string {
        workload::SeededDeadlock wl;
        harness::SystemConfig cfg = testConfig(2);
        cfg.watchdog_interval = 5'000;
        auto sys = buildDeadlockedSystem(wl, cfg);
        sys->run();
        return sys->dossier();
    };
    std::vector<std::vector<std::string>> by_jobs;
    for (unsigned jobs : {1u, 4u}) {
        harness::SweepRunner runner(jobs);
        std::vector<std::function<std::string()>> tasks(4, run_one);
        by_jobs.push_back(runner.map(std::move(tasks)));
    }
    ASSERT_EQ(by_jobs[0].size(), by_jobs[1].size());
    for (std::size_t i = 0; i < by_jobs[0].size(); ++i) {
        EXPECT_FALSE(by_jobs[0][i].empty());
        EXPECT_EQ(by_jobs[0][i], by_jobs[1][i]);
    }
}

TEST(Watchdog, FiresUnderParallelSimWithIdenticalDossier)
{
    // The watchdog is a coordinator-side probe, so sharding the
    // simulation must not change when it fires or what it reports: the
    // seeded deadlock aborts at the same cycle with a byte-identical
    // stall dossier for every shard count.
    auto run_one = [](std::uint32_t shards) {
        workload::SeededDeadlock wl;
        harness::SystemConfig cfg = testConfig(2);
        cfg.watchdog_interval = 5'000;
        cfg.withShards(shards);
        auto sys = buildDeadlockedSystem(wl, cfg);
        EXPECT_FALSE(sys->run()) << shards << " shards";
        EXPECT_TRUE(sys->hung()) << shards << " shards";
        EXPECT_EQ(sys->watchdogReport().cause,
                  sim::Watchdog::Cause::NoRetirement)
            << shards << " shards";
        return std::pair(sys->watchdogReport().fire_tick,
                         sys->dossier());
    };

    const auto [ref_tick, ref_dossier] = run_one(1);
    EXPECT_NE(ref_dossier.find("DEADLOCK CYCLE"), std::string::npos);
    for (std::uint32_t shards : {2u, 3u}) {
        const auto [tick, dossier] = run_one(shards);
        EXPECT_EQ(tick, ref_tick) << shards << " shards";
        EXPECT_EQ(dossier, ref_dossier) << shards << " shards";
    }
}

TEST(Watchdog, HealthyRunOfSeededWorkloadPasses)
{
    // Without the fault injection the same program terminates and
    // verifies: the deadlock really is the injected fault.
    workload::SeededDeadlock wl;
    harness::SystemConfig cfg = testConfig(2);
    cfg.watchdog_interval = 5'000;
    runWorkload(wl, cfg);
}

// ---------------------------------------------------------------------
// Watchdog: no false positives
// ---------------------------------------------------------------------

TEST(Watchdog, SlowMemoryDoesNotFalsePositive)
{
    // 320-cycle DRAM with a watchdog window barely above it: every
    // window still retires something, so the watchdog must stay quiet.
    workload::LocalLockStream wl;
    harness::SystemConfig cfg = testConfig(4);
    cfg.l2.dram_latency = 320;
    cfg.watchdog_interval = 2'000;
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    EXPECT_FALSE(sys.hung());
    std::string error;
    EXPECT_TRUE(wl.check(sys.memReader(), cfg.num_cores, error))
        << error;
}

TEST(Watchdog, RollbackHeavyRunDoesNotFalsePositive)
{
    // Dekker under speculative SC rolls back constantly, but the
    // exponential cooldown guarantees retirement in every window --
    // neither NoRetirement nor RollbackStorm may fire.
    workload::Dekker wl;
    harness::SystemConfig cfg =
        testConfig(2, cpu::ConsistencyModel::SC);
    cfg.withSpeculation();
    cfg.watchdog_interval = 2'000;
    cfg.watchdog_storm = 16; // tight threshold on purpose
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    EXPECT_FALSE(sys.hung());
    EXPECT_GT(sys.totalRollbacks(), 0u)
        << "test should exercise a rollback-heavy run";
    std::string error;
    EXPECT_TRUE(wl.check(sys.memReader(), cfg.num_cores, error))
        << error;
}

TEST(Watchdog, StatsUnchangedByWatchdog)
{
    // The watchdog is pure observation: cycle counts and instruction
    // counts are identical with it on or off.
    std::pair<Tick, std::uint64_t> off, on;
    for (Tick interval : {Tick(0), Tick(1'000)}) {
        workload::LocalLockStream wl;
        harness::SystemConfig cfg = testConfig(2);
        cfg.watchdog_interval = interval;
        isa::Program prog = wl.build(cfg.num_cores);
        harness::System sys(cfg, prog);
        ASSERT_TRUE(sys.run());
        auto &slot = interval == 0 ? off : on;
        slot = {sys.runtimeCycles(), sys.totalInstructions()};
    }
    EXPECT_EQ(off, on);
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(Blackbox, RingWrapsAndDumpIsValidTrace)
{
    // A tiny ring on a long run: the ring must wrap many times and
    // still dump a valid Chrome trace-event document with provenance.
    workload::LocalLockStream wl;
    harness::SystemConfig cfg = testConfig(2);
    cfg.blackbox_records = 4;
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());

    const trace::TraceSink &sink = sys.tracer();
    EXPECT_GT(sink.ringPushes(),
              static_cast<std::uint64_t>(sink.ringCapacity()))
        << "run too short to wrap the ring";

    std::ostringstream os;
    sys.writeBlackbox(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"provenance\""), std::string::npos);
    EXPECT_NE(json.find("\"git\""), std::string::npos);

    // Ring entries replay oldest -> newest with monotone sequence.
    const auto records = trace::blackboxRecords(sink);
    EXPECT_FALSE(records.empty());
}

TEST(Blackbox, DisabledRingRecordsNothing)
{
    workload::LocalLockStream wl;
    harness::SystemConfig cfg = testConfig(2);
    cfg.blackbox_records = 0;
    cfg.watchdog_interval = 0;
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.tracer().ringPushes(), 0u);
    EXPECT_TRUE(trace::blackboxRecords(sys.tracer()).empty());
}

TEST(Blackbox, RecorderDoesNotChangeSimulation)
{
    std::pair<Tick, std::uint64_t> with, without;
    for (std::size_t records : {std::size_t(0), std::size_t(256)}) {
        workload::LocalLockStream wl;
        harness::SystemConfig cfg = testConfig(2);
        cfg.blackbox_records = records;
        isa::Program prog = wl.build(cfg.num_cores);
        harness::System sys(cfg, prog);
        ASSERT_TRUE(sys.run());
        auto &slot = records == 0 ? without : with;
        slot = {sys.runtimeCycles(), sys.totalInstructions()};
    }
    EXPECT_EQ(with, without);
}

TEST(Blackbox, TailNamesComponentsAndEvents)
{
    workload::LocalLockStream wl;
    harness::SystemConfig cfg = testConfig(2);
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    std::ostringstream os;
    sys.writeBlackboxTail(os);
    const std::string tail = os.str();
    EXPECT_NE(tail.find("flight recorder tail"), std::string::npos);
    EXPECT_NE(tail.find("l1_0:"), std::string::npos);
    EXPECT_NE(tail.find("l2dir:"), std::string::npos);
}

// ---------------------------------------------------------------------
// On-demand dossier of a healthy system
// ---------------------------------------------------------------------

TEST(Dossier, HealthySystemReportsNoCycle)
{
    workload::LocalLockStream wl;
    harness::SystemConfig cfg = testConfig(2);
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    std::ostringstream os;
    sys.writeStallDossier(os);
    const std::string dossier = os.str();
    EXPECT_NE(dossier.find("stall dossier"), std::string::npos);
    EXPECT_NE(dossier.find("architectural state:"), std::string::npos);
    EXPECT_EQ(dossier.find("DEADLOCK CYCLE"), std::string::npos);
}
