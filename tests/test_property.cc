/**
 * @file
 * Property-based tests: randomly generated multithreaded programs whose
 * final memory is interleaving-independent by construction (disjoint
 * per-thread regions + commutative shared atomics).  The timing
 * simulator's final memory must equal the functional reference
 * executor's, for every consistency model and speculation mode, and the
 * coherence invariants must hold afterwards.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "isa/assembler.hh"
#include "isa/interp.hh"
#include "tests/sim_test_util.hh"

using namespace fenceless;
using namespace fenceless::isa;
using namespace fenceless::test;

namespace
{

constexpr std::uint64_t region_words = 64;

struct GeneratedProgram
{
    isa::Program prog;
    Addr regions;       //!< per-thread private regions (shared-visible)
    Addr shared_atomics;//!< commutative AMO counters
    unsigned num_atomics;
};

/**
 * Generate a random program: each thread executes a straight-line
 * sequence of loads/stores in its own region, ALU ops, fences of all
 * kinds, and fetch-add on shared counters.  The final memory image is
 * the same under any interleaving.
 */
GeneratedProgram
generate(std::uint64_t seed, std::uint32_t num_threads,
         unsigned ops_per_thread)
{
    Random rng(seed);
    Assembler as;
    const unsigned num_atomics = 4;
    GeneratedProgram out;
    out.regions = as.alloc("regions",
                           num_threads * region_words * 8, 64);
    out.shared_atomics = as.alloc("atomics", num_atomics * 8, 64);
    out.num_atomics = num_atomics;

    // Dispatch each thread to its own code block.
    for (std::uint32_t t = 0; t < num_threads; ++t) {
        as.li(t0, t);
        as.beq(tp, t0, "thread" + std::to_string(t));
    }
    as.halt();

    for (std::uint32_t t = 0; t < num_threads; ++t) {
        as.label("thread" + std::to_string(t));
        as.li(a0, out.regions + t * region_words * 8);
        as.li(a1, out.shared_atomics);
        // Working registers s0..s3 hold evolving values.
        for (RegId r : {s0, s1, s2, s3})
            as.li(r, rng.next() & 0xffff);

        for (unsigned op = 0; op < ops_per_thread; ++op) {
            const RegId dst =
                static_cast<RegId>(s0 + rng.range(0, 3));
            const RegId src =
                static_cast<RegId>(s0 + rng.range(0, 3));
            const auto off = static_cast<std::int64_t>(
                rng.range(0, region_words - 1) * 8);
            switch (rng.range(0, 9)) {
              case 0:
              case 1:
              case 2:
                as.st(src, a0, off);
                break;
              case 3:
              case 4:
                as.ld(dst, a0, off);
                break;
              case 5:
                as.add(dst, dst, src);
                break;
              case 6:
                as.xor_(dst, dst, src);
                break;
              case 7: {
                const auto kind = rng.range(0, 2);
                as.fence(kind == 0 ? FenceKind::Full
                         : kind == 1 ? FenceKind::Acquire
                                     : FenceKind::Release);
                break;
              }
              case 8: {
                // Commutative shared update with a constant delta.
                const auto idx = static_cast<std::int64_t>(
                    rng.range(0, num_atomics - 1) * 8);
                as.li(t1, rng.range(1, 7));
                as.addi(t2, a1, idx);
                as.amoadd(t3, t1, t2);
                break;
              }
              case 9: {
                // Sub-word store of a deterministic value.
                const unsigned size = 1u << rng.range(0, 2);
                const auto aligned =
                    off & ~static_cast<std::int64_t>(size - 1);
                as.st(src, a0, aligned,
                      static_cast<std::uint8_t>(size));
                break;
              }
            }
        }
        as.halt();
    }

    out.prog = as.finish();
    return out;
}

void
compareAgainstReference(const GeneratedProgram &gen,
                        harness::SystemConfig cfg)
{
    ReferenceExecutor ref(gen.prog, cfg.num_cores);
    ASSERT_TRUE(ref.run());

    harness::System sys(cfg, gen.prog);
    ASSERT_TRUE(sys.run());
    sys.auditCoherence();

    for (std::uint32_t t = 0; t < cfg.num_cores; ++t) {
        for (std::uint64_t w = 0; w < region_words; ++w) {
            const Addr a = gen.regions + (t * region_words + w) * 8;
            ASSERT_EQ(sys.debugRead(a, 8), ref.memory().read64(a))
                << "thread " << t << " word " << w;
        }
    }
    for (unsigned i = 0; i < gen.num_atomics; ++i) {
        const Addr a = gen.shared_atomics + i * 8;
        ASSERT_EQ(sys.debugRead(a, 8), ref.memory().read64(a))
            << "atomic " << i;
    }
}

struct PropertyParam
{
    std::uint64_t seed;
    cpu::ConsistencyModel model;
    spec::SpecMode mode;
};

std::string
propertyName(const testing::TestParamInfo<PropertyParam> &info)
{
    std::string s = "seed" + std::to_string(info.param.seed);
    s += "_";
    s += consistencyModelName(info.param.model);
    s += "_";
    s += spec::specModeName(info.param.mode);
    for (auto &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

class RandomPrograms : public testing::TestWithParam<PropertyParam>
{
};

} // namespace

TEST_P(RandomPrograms, TimingMatchesReference)
{
    const auto &p = GetParam();
    GeneratedProgram gen = generate(p.seed, 4, 250);
    harness::SystemConfig cfg = testConfig(4, p.model);
    cfg.spec.mode = p.mode;
    compareAgainstReference(gen, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomPrograms,
    testing::Values(
        PropertyParam{1, cpu::ConsistencyModel::SC, spec::SpecMode::Off},
        PropertyParam{1, cpu::ConsistencyModel::TSO,
                      spec::SpecMode::Off},
        PropertyParam{1, cpu::ConsistencyModel::RMO,
                      spec::SpecMode::Off},
        PropertyParam{1, cpu::ConsistencyModel::SC,
                      spec::SpecMode::OnDemand},
        PropertyParam{2, cpu::ConsistencyModel::TSO,
                      spec::SpecMode::OnDemand},
        PropertyParam{2, cpu::ConsistencyModel::RMO,
                      spec::SpecMode::OnDemand},
        PropertyParam{3, cpu::ConsistencyModel::SC,
                      spec::SpecMode::Continuous},
        PropertyParam{3, cpu::ConsistencyModel::TSO,
                      spec::SpecMode::Continuous},
        PropertyParam{4, cpu::ConsistencyModel::SC,
                      spec::SpecMode::OnDemand},
        PropertyParam{5, cpu::ConsistencyModel::TSO,
                      spec::SpecMode::Continuous},
        PropertyParam{6, cpu::ConsistencyModel::RMO,
                      spec::SpecMode::Continuous},
        PropertyParam{7, cpu::ConsistencyModel::SC,
                      spec::SpecMode::Off}),
    propertyName);

TEST(RandomProgramsStress, TinyCachesManySeeds)
{
    // Small caches force evictions, recalls and speculation overflow.
    for (std::uint64_t seed = 10; seed < 16; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        GeneratedProgram gen = generate(seed, 4, 150);
        harness::SystemConfig cfg =
            testConfig(4, cpu::ConsistencyModel::SC);
        cfg.l1.size = 1024;
        cfg.l1.assoc = 2;
        cfg.l2.size = 16 * 1024;
        cfg.spec.mode = spec::SpecMode::OnDemand;
        compareAgainstReference(gen, cfg);
    }
}

TEST(RandomProgramsStress, DirectMappedWithSpeculation)
{
    // The geometry that once exposed a probe-handler/rollback
    // reentrancy race: a direct-mapped L1 so small that overflow-fill
    // retries constantly evict blocks while probes are in flight.
    for (std::uint64_t seed = 20; seed < 26; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        GeneratedProgram gen = generate(seed, 4, 200);
        harness::SystemConfig cfg =
            testConfig(4, cpu::ConsistencyModel::SC);
        cfg.l1.size = 512;
        cfg.l1.assoc = 1;
        cfg.l2.size = 16 * 1024;
        cfg.spec.mode =
            (seed % 2) ? spec::SpecMode::Continuous
                       : spec::SpecMode::OnDemand;
        cfg.spec.overflow = (seed % 3)
            ? spec::OverflowPolicy::Stall
            : spec::OverflowPolicy::Rollback;
        compareAgainstReference(gen, cfg);
    }
}

TEST(RandomProgramsStress, ManyCoresSharedAtomics)
{
    for (std::uint64_t seed = 30; seed < 34; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        GeneratedProgram gen = generate(seed, 8, 120);
        harness::SystemConfig cfg =
            testConfig(8, cpu::ConsistencyModel::TSO);
        cfg.spec.mode = spec::SpecMode::OnDemand;
        compareAgainstReference(gen, cfg);
    }
}
