/**
 * @file
 * Cross-run analysis tests: the JSON parser, the loaders' schema
 * gate and group tolerance, differential waste attribution, and the
 * report renderers' byte-for-byte determinism against a committed
 * golden.
 */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/diff.hh"
#include "analysis/json.hh"
#include "analysis/loader.hh"
#include "analysis/report.hh"
#include "base/stats.hh"
#include "base/stats_json.hh"
#include "sim/profiler.hh"

using namespace fenceless;
using namespace fenceless::analysis;

namespace
{

std::string
dataPath(const std::string &name)
{
    return std::string(FENCELESS_TEST_DATA_DIR) + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::string text, error;
    EXPECT_TRUE(readFile(path, text, error)) << error;
    return text;
}

/** Load the committed fixture pair the golden was generated from. */
std::vector<RunInput>
fixtureRuns()
{
    std::vector<RunInput> runs(2);
    std::string error;
    EXPECT_TRUE(loadStatsRun(slurp(dataPath("report_base.stats.json")),
                             "base", runs[0].stats, error))
        << error;
    EXPECT_TRUE(loadProfileRun(
        slurp(dataPath("report_base.prof.json")), runs[0].profile,
        error))
        << error;
    runs[0].label = "base";
    runs[0].has_profile = true;
    EXPECT_TRUE(loadStatsRun(slurp(dataPath("report_cand.stats.json")),
                             "cand", runs[1].stats, error))
        << error;
    EXPECT_TRUE(loadProfileRun(
        slurp(dataPath("report_cand.prof.json")), runs[1].profile,
        error))
        << error;
    runs[1].label = "cand";
    runs[1].has_profile = true;
    return runs;
}

} // namespace

// ---------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------

TEST(AnalysisJson, ParsesScalarsArraysObjects)
{
    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parse(
        R"({"a": 1, "b": [true, false, null, -2.5], "c": {"d": "x"}})",
        doc, error))
        << error;
    EXPECT_EQ(doc["a"].asU64(), 1u);
    ASSERT_EQ(doc["b"].array().size(), 4u);
    EXPECT_TRUE(doc["b"].array()[0].asBool());
    EXPECT_TRUE(doc["b"].array()[2].isNull());
    EXPECT_DOUBLE_EQ(doc["b"].array()[3].asDouble(), -2.5);
    EXPECT_EQ(doc["c"]["d"].asString(), "x");
    // Missing members chain safely to the shared null.
    EXPECT_TRUE(doc["missing"]["deep"]["deeper"].isNull());
}

TEST(AnalysisJson, DecodesEscapes)
{
    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parse(
        R"({"s": "a\"b\\c\nd\teA"})", doc, error))
        << error;
    EXPECT_EQ(doc["s"].asString(), "a\"b\\c\nd\teA");
}

TEST(AnalysisJson, ReportsErrorPosition)
{
    Json doc;
    std::string error;
    EXPECT_FALSE(Json::parse("{\"a\": 1,\n  \"b\" 2}", doc, error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find("':'"), std::string::npos) << error;
    EXPECT_TRUE(doc.isNull());

    EXPECT_FALSE(Json::parse("{} trailing", doc, error));
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(AnalysisJson, DuplicateKeysLastWins)
{
    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parse(R"({"k": 1, "k": 2})", doc, error));
    EXPECT_EQ(doc["k"].asU64(), 2u);
}

TEST(AnalysisJson, NegativeNumbersClampToZeroAsU64)
{
    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parse(R"({"n": -7})", doc, error));
    EXPECT_EQ(doc["n"].asU64(), 0u);
    EXPECT_EQ(doc["n"].asI64(), -7);
}

// ---------------------------------------------------------------------
// Loaders: schema gate and tolerance
// ---------------------------------------------------------------------

TEST(ReportLoader, RefusesMismatchedStatsSchemaVersion)
{
    StatsRun run;
    std::string error;
    EXPECT_FALSE(loadStatsRun(
        R"({"schema_version": 99, "groups": {}})", "x", run, error));
    EXPECT_NE(error.find("99"), std::string::npos) << error;
    EXPECT_NE(error.find("refusing"), std::string::npos) << error;
}

TEST(ReportLoader, RefusesMissingSchemaVersion)
{
    StatsRun run;
    std::string error;
    EXPECT_FALSE(loadStatsRun(R"({"groups": {}})", "x", run, error));
    EXPECT_NE(error.find("schema_version"), std::string::npos)
        << error;

    ProfileRun prof;
    EXPECT_FALSE(loadProfileRun(R"({"pcs": []})", prof, error));
    EXPECT_NE(error.find("schema_version"), std::string::npos)
        << error;
}

TEST(ReportLoader, LoadsFixtures)
{
    auto runs = fixtureRuns();
    const StatsRun &base = runs[0].stats;
    // The fixtures are schema v1 (no "p999"); the loader accepts every
    // version in [1, current] because newer layouts are additive.
    EXPECT_EQ(base.schema_version, 1);
    EXPECT_GE(statistics::stats_schema_version, base.schema_version);
    EXPECT_EQ(base.topology, "crossbar");
    EXPECT_EQ(base.shards, 2u);
    EXPECT_DOUBLE_EQ(base.scalar("core_0", "core_0.instructions"),
                     1000.0);
    EXPECT_DOUBLE_EQ(base.maxOver("core_", "halt_tick"), 2000.0);
    EXPECT_DOUBLE_EQ(base.sumOver("spec_", "rollbacks"), 3.0);
    // Prefix lookup bridges monolithic and banked directory groups.
    EXPECT_DOUBLE_EQ(base.sumOver("l2dir", "gets"), 64.0);
    EXPECT_DOUBLE_EQ(runs[1].stats.sumOver("l2dir", "gets"),
                     34.0 + 30.0);
    // Units come from the self-describing schema block.
    ASSERT_TRUE(base.schema.count("network.msg_latency"));
    EXPECT_EQ(base.schema.at("network.msg_latency").unit, "cycles");
    // Host telemetry: deterministic slice only.
    ASSERT_TRUE(base.host.present);
    EXPECT_EQ(base.host.quanta, 40u);
    EXPECT_EQ(base.host.messages[0][1], 120u);
    EXPECT_EQ(base.host.boundary_causes.at("lookahead"), 38u);
}

TEST(ReportLoader, ToleratesMissingGroups)
{
    auto runs = fixtureRuns();
    StatsDiff diff = diffStats(runs[0].stats, runs[1].stats, 10);
    EXPECT_EQ(diff.presence.added.size(), 2u);
    EXPECT_EQ(diff.presence.added[0], "l2dir.bank0");
    EXPECT_EQ(diff.presence.added[1], "l2dir.bank1");
    ASSERT_EQ(diff.presence.removed.size(), 1u);
    EXPECT_EQ(diff.presence.removed[0], "l2dir");
}

TEST(ReportLoader, SweepRowsOnePerLine)
{
    std::vector<Json> rows;
    std::string error;
    ASSERT_TRUE(loadSweepRows(
        "{\"cores\": 16, \"speedup\": 1.5}\n"
        "\n"
        "{\"cores\": 32, \"speedup\": 1.8}\n",
        rows, error))
        << error;
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1]["cores"].asU64(), 32u);

    rows.clear();
    EXPECT_FALSE(loadSweepRows("{\"a\": 1}\nnot json\n", rows, error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// ---------------------------------------------------------------------
// Differential waste attribution
// ---------------------------------------------------------------------

TEST(ReportDiff, BucketTotalsAreExactIntegerSums)
{
    auto runs = fixtureRuns();
    ProfileDiff diff =
        diffProfiles(runs[0].profile, runs[1].profile, 10);
    ASSERT_EQ(diff.buckets.size(), prof::num_buckets);
    // Taxonomy order, exact counts summed over the fixtures' pcs.
    EXPECT_EQ(diff.buckets[0].bucket, "execute");
    EXPECT_EQ(diff.buckets[0].base, 910u);
    EXPECT_EQ(diff.buckets[0].cand, 940u);
    EXPECT_EQ(diff.buckets[1].bucket, "fence_stall");
    EXPECT_EQ(diff.buckets[1].base, 1005u);
    EXPECT_EQ(diff.buckets[1].cand, 1125u);
    EXPECT_EQ(diff.buckets[1].delta(), 120);
    EXPECT_EQ(diff.buckets[4].bucket, "rollback_discarded");
    EXPECT_EQ(diff.buckets[4].delta(), 30);
}

TEST(ReportDiff, RanksRegressedAndImprovedSymbols)
{
    auto runs = fixtureRuns();
    ProfileDiff diff =
        diffProfiles(runs[0].profile, runs[1].profile, 10);
    ASSERT_GE(diff.regressed.size(), 2u);
    EXPECT_EQ(diff.regressed[0].sym, "hot_loop");
    EXPECT_EQ(diff.regressed[0].delta(), 290);
    EXPECT_EQ(diff.regressed[1].sym, "new_sym");
    EXPECT_TRUE(diff.regressed[1].only_cand);
    ASSERT_GE(diff.improved.size(), 2u);
    EXPECT_EQ(diff.improved[0].sym, "lock_spin");
    EXPECT_EQ(diff.improved[0].delta(), -100);
    EXPECT_TRUE(diff.improved[1].only_base);
}

TEST(ReportDiff, FoldedDiffCoversUnionOfStacks)
{
    auto runs = fixtureRuns();
    ProfileDiff diff =
        diffProfiles(runs[0].profile, runs[1].profile, 10);
    // Folded rows carry the union of non-zero stacks of both runs,
    // diffing one-sided stacks against zero.
    std::map<std::string, FoldedDiffRow> by_stack;
    for (const FoldedDiffRow &r : diff.folded)
        by_stack[r.stack] = r;
    ASSERT_TRUE(by_stack.count("hot_loop;fence_stall"));
    EXPECT_EQ(by_stack["hot_loop;fence_stall"].base, 300u);
    EXPECT_EQ(by_stack["hot_loop;fence_stall"].cand, 500u);
    ASSERT_TRUE(by_stack.count("old_sym;fence_stall"));
    EXPECT_EQ(by_stack["old_sym;fence_stall"].cand, 0u);
    ASSERT_TRUE(by_stack.count("new_sym;miss_wait"));
    EXPECT_EQ(by_stack["new_sym;miss_wait"].base, 0u);
    // Sorted by stack for byte-stable --folded-diff output.
    for (std::size_t i = 1; i < diff.folded.size(); ++i)
        EXPECT_LT(diff.folded[i - 1].stack, diff.folded[i].stack);
}

TEST(ReportDiff, PercentileDeltasFromDistributions)
{
    auto runs = fixtureRuns();
    StatsDiff diff = diffStats(runs[0].stats, runs[1].stats, 10);
    bool saw_p99 = false;
    for (const StatDelta &d : diff.percentiles) {
        if (d.stat == "network.msg_latency" && d.field == "p99") {
            saw_p99 = true;
            EXPECT_DOUBLE_EQ(d.base, 16.0);
            EXPECT_DOUBLE_EQ(d.cand, 24.0);
            EXPECT_EQ(d.unit, "cycles");
        }
    }
    EXPECT_TRUE(saw_p99);
}

TEST(ReportDiff, SummaryAndScaling)
{
    auto runs = fixtureRuns();
    RunSummary s = summarize(runs[0]);
    EXPECT_EQ(s.cores, 2u);
    EXPECT_DOUBLE_EQ(s.cycles, 2000.0);
    EXPECT_DOUBLE_EQ(s.insts, 2000.0);
    EXPECT_DOUBLE_EQ(s.rollbacks, 3.0);
    EXPECT_EQ(s.waste.at("fence_stall"), 1005u);

    ScalingTable table = buildScaling(runs, "topology");
    ASSERT_EQ(table.rows.size(), 2u);
    EXPECT_EQ(table.rows[0].axis_label, "crossbar");
    EXPECT_EQ(table.rows[1].axis_label, "mesh");
    EXPECT_DOUBLE_EQ(table.rows[0].speedup, 1.0);
    EXPECT_LT(table.rows[1].speedup, 1.0);
}

// ---------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------

TEST(ReportRender, MarkdownMatchesGoldenByteForByte)
{
    // The golden was produced by fl_report with the same inputs and
    // settings; any rendering change must update it deliberately.
    ReportModel model =
        buildReport(fixtureRuns(), {}, "topology", 10);
    std::ostringstream os;
    writeMarkdown(os, model);
    EXPECT_EQ(os.str(), slurp(dataPath("report_golden.md")));
}

TEST(ReportRender, OutputIsDeterministic)
{
    ReportModel a = buildReport(fixtureRuns(), {}, "topology", 10);
    ReportModel b = buildReport(fixtureRuns(), {}, "topology", 10);
    std::ostringstream md_a, md_b, html_a, html_b, tri_a, tri_b;
    writeMarkdown(md_a, a);
    writeMarkdown(md_b, b);
    writeHtml(html_a, a);
    writeHtml(html_b, b);
    writeTriage(tri_a, a);
    writeTriage(tri_b, b);
    EXPECT_EQ(md_a.str(), md_b.str());
    EXPECT_EQ(html_a.str(), html_b.str());
    EXPECT_EQ(tri_a.str(), tri_b.str());
}

TEST(ReportRender, TriageNamesWasteAndHotLinks)
{
    ReportModel model =
        buildReport(fixtureRuns(), {}, "topology", 10);
    std::ostringstream os;
    writeTriage(os, model);
    const std::string out = os.str();
    EXPECT_NE(out.find("triage: waste fence_stall 1005 -> 1125 "
                       "(+120)"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("triage: waste total_wasted 1175 -> 1400 "
                       "(+225)"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("triage: hot-link msgs 0 -> 40"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("triage: regressed-symbol hot_loop +290"),
              std::string::npos)
        << out;
}

TEST(ReportRender, HtmlIsSelfContained)
{
    ReportModel model =
        buildReport(fixtureRuns(), {}, "topology", 10);
    std::ostringstream os;
    writeHtml(os, model);
    const std::string html = os.str();
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_EQ(html.find("<script"), std::string::npos);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
    // Flamegraph bars and the shaded heatmap made it in.
    EXPECT_NE(html.find("class=\"flame\""), std::string::npos);
    EXPECT_NE(html.find("hot_loop;fence_stall"), std::string::npos);
    EXPECT_NE(html.find("background:rgba"), std::string::npos);
}

TEST(ReportRender, FoldedDiffIsDifffoldedFormat)
{
    ReportModel model =
        buildReport(fixtureRuns(), {}, "topology", 10);
    std::ostringstream os;
    writeFoldedDiff(os, model);
    EXPECT_NE(os.str().find("hot_loop;fence_stall 300 500\n"),
              std::string::npos)
        << os.str();
}

// ---------------------------------------------------------------------
// Stats-json self-description (the registry side of the contract)
// ---------------------------------------------------------------------

TEST(ReportSchema, RegistryJsonRoundTripsThroughLoader)
{
    statistics::StatRegistry registry;
    auto &group = registry.createGroup("core_0");
    group.addScalar("instructions", "committed instructions") += 7;
    group.addScalar("halt_tick", "tick at halt") += 42;
    auto &lat = group.addDistribution("load_latency", "load latency");
    lat.sample(10);
    lat.sample(20);

    std::ostringstream os;
    statistics::printJson(os, registry);

    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parse(os.str(), doc, error)) << error;
    EXPECT_EQ(doc["schema_version"].asI64(),
              statistics::stats_schema_version);
    const Json &schema = doc["schema"];
    EXPECT_EQ(schema["core_0.instructions"]["unit"].asString(),
              "instructions");
    EXPECT_EQ(schema["core_0.halt_tick"]["unit"].asString(),
              "cycles");
    EXPECT_EQ(schema["core_0.load_latency"]["unit"].asString(),
              "cycles");
    EXPECT_EQ(schema["core_0.load_latency"]["kind"].asString(),
              "distribution");
    EXPECT_EQ(schema["core_0.instructions"]["desc"].asString(),
              "committed instructions");
}
