/**
 * @file
 * Unit tests for the base utilities: bitfield helpers, the PRNG, the
 * flat memory, and the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/bitfield.hh"
#include "base/flat_memory.hh"
#include "base/random.hh"
#include "base/stats.hh"

using namespace fenceless;


TEST(Bitfield, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(96));
}

TEST(Bitfield, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(1ULL << 40), 40u);
}

TEST(Bitfield, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(Bitfield, Bits)
{
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xff, 3, 0), 0xfu);
    EXPECT_EQ(bits(0x80, 7, 7), 1u);
}

TEST(Bitfield, Align)
{
    EXPECT_EQ(alignDown(0x12345, 64), 0x12340u);
    EXPECT_EQ(alignUp(0x12345, 64), 0x12380u);
    EXPECT_EQ(alignUp(0x12340, 64), 0x12340u);
    EXPECT_EQ(alignDown(63, 64), 0u);
}

TEST(Bitfield, SignExtend)
{
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(5, 64), 5);
}

TEST(Random, Deterministic)
{
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, SeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Random, RangeBounds)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.range(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Random, RealUnitInterval)
{
    Random r(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(FlatMemory, ZeroInitialised)
{
    FlatMemory mem;
    EXPECT_EQ(mem.readInt(0x1234, 8), 0u);
    EXPECT_EQ(mem.numPages(), 0u);
}

TEST(FlatMemory, ReadBackWrites)
{
    FlatMemory mem;
    mem.writeInt(0x1000, 8, 0xdeadbeefcafe1234ULL);
    EXPECT_EQ(mem.readInt(0x1000, 8), 0xdeadbeefcafe1234ULL);
    EXPECT_EQ(mem.readInt(0x1000, 4), 0xcafe1234ULL);
    EXPECT_EQ(mem.readInt(0x1000, 1), 0x34u);
}

TEST(FlatMemory, CrossPageAccess)
{
    FlatMemory mem;
    const Addr addr = FlatMemory::page_size - 3;
    std::uint8_t out[8] = {};
    const std::uint8_t in[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    mem.write(addr, in, 8);
    mem.read(addr, out, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], in[i]);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(Stats, ScalarOps)
{
    statistics::StatGroup group("g");
    auto &s = group.addScalar("count", "a counter");
    ++s;
    s += 5;
    EXPECT_EQ(s.count(), 6u);
    s.maxOf(3);
    EXPECT_EQ(s.count(), 6u);
    s.maxOf(10);
    EXPECT_EQ(s.count(), 10u);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, DistributionMoments)
{
    statistics::StatGroup group("g");
    auto &d = group.addDistribution("d", "values");
    d.sample(1);
    d.sample(2);
    d.sample(3);
    EXPECT_EQ(d.samples(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 3.0);
    EXPECT_NEAR(d.stdev(), 0.8165, 1e-3);
}

TEST(Stats, HistogramBuckets)
{
    statistics::StatGroup group("g");
    auto &h = group.addHistogram("h", "hist", 0, 10, 5);
    h.sample(-1);
    h.sample(0);
    h.sample(3.9);
    h.sample(4.0);
    h.sample(100);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(Stats, FormulaDerivesFromScalars)
{
    statistics::StatGroup group("g");
    auto &num = group.addScalar("num", "numerator");
    auto &den = group.addScalar("den", "denominator");
    auto &ipc = group.addFormula("ratio", "num/den", [&] {
        return den.count() ? num.value() / den.value() : 0.0;
    });
    num += 10;
    den += 4;
    EXPECT_DOUBLE_EQ(ipc.value(), 2.5);
}

TEST(Stats, GroupLookup)
{
    statistics::StatGroup group("core0");
    group.addScalar("loads", "loads");
    EXPECT_NE(group.find("loads"), nullptr);
    EXPECT_EQ(group.find("stores"), nullptr);
    EXPECT_EQ(group.find("loads")->name(), "core0.loads");
}

TEST(Stats, RegistryPrint)
{
    statistics::StatRegistry reg;
    auto &g = reg.createGroup("x");
    auto &s = g.addScalar("v", "value");
    s += 7;
    std::ostringstream os;
    reg.print(os);
    EXPECT_NE(os.str().find("x.v"), std::string::npos);
    EXPECT_NE(os.str().find("7"), std::string::npos);
}

#include <sstream>

#include "base/trace.hh"

namespace
{

struct FakeObj
{
    std::string name() const { return "obj"; }
    fenceless::Tick curTick() const { return 42; }
};

} // namespace

TEST(Trace, DisabledByDefaultAndFree)
{
    trace::setEnabled(0);
    std::ostringstream os;
    trace::setStream(&os);
    FakeObj obj;
    FL_TRACE(trace::Flag::L1, obj, "should not appear");
    EXPECT_TRUE(os.str().empty());
    trace::setStream(nullptr);
}

TEST(Trace, EmitsWhenEnabled)
{
    trace::setEnabled(static_cast<std::uint32_t>(trace::Flag::L1));
    std::ostringstream os;
    trace::setStream(&os);
    FakeObj obj;
    FL_TRACE(trace::Flag::L1, obj, "fill 0x", std::hex, 64);
    FL_TRACE(trace::Flag::Dir, obj, "filtered");
    trace::setStream(nullptr);
    trace::setEnabled(0);
    EXPECT_NE(os.str().find("42: obj: fill 0x40"), std::string::npos);
    EXPECT_EQ(os.str().find("filtered"), std::string::npos);
}

TEST(Trace, ParseFlags)
{
    using trace::Flag;
    std::uint32_t mask = 0;
    std::string error;
    EXPECT_TRUE(trace::parseFlags("l1", mask, error));
    EXPECT_EQ(mask, static_cast<std::uint32_t>(Flag::L1));
    EXPECT_TRUE(trace::parseFlags("core,spec", mask, error));
    EXPECT_EQ(mask, static_cast<std::uint32_t>(Flag::Core) |
                        static_cast<std::uint32_t>(Flag::Spec));
    EXPECT_TRUE(trace::parseFlags("all", mask, error));
    EXPECT_EQ(mask, ~0u);
    EXPECT_TRUE(trace::parseFlags("", mask, error));
    EXPECT_EQ(mask, 0u);
}

TEST(Trace, ParseFlagsReportsUnknownNames)
{
    std::uint32_t mask = 0xdead;
    std::string error;
    EXPECT_FALSE(trace::parseFlags("l1,bogus", mask, error));
    EXPECT_EQ(mask, 0xdeadu) << "mask must be untouched on failure";
    EXPECT_NE(error.find("bogus"), std::string::npos);
    // The error lists every valid flag so a sweep log is actionable.
    EXPECT_NE(error.find(trace::validFlagNames()), std::string::npos);
    EXPECT_NE(trace::validFlagNames().find("req"), std::string::npos);
    EXPECT_NE(trace::validFlagNames().find("stall"), std::string::npos);
}
