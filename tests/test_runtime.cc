/**
 * @file
 * Guest runtime tests: the lock/barrier/PRNG code emitted by
 * workload/runtime is functionally correct (reference executor with
 * randomized interleavings) and provides mutual exclusion / rendezvous
 * in the timing simulator.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/interp.hh"
#include "tests/sim_test_util.hh"
#include "workload/runtime.hh"

using namespace fenceless;
using namespace fenceless::isa;
using namespace fenceless::workload;
using namespace fenceless::test;

namespace
{

/** N threads increment a counter K times under a spin lock. */
Program
spinLockProgram(std::uint64_t iters, Addr *counter_out)
{
    Assembler as;
    const Addr lock = as.paddedWord("lock", 0);
    const Addr counter = as.paddedWord("counter", 0);
    as.li(a0, lock);
    as.li(a1, counter);
    as.li(s0, iters);
    as.label("loop");
    emitSpinLockAcquire(as, a0, t0, t1);
    as.ld(t0, a1);
    as.addi(t0, t0, 1);
    as.st(t0, a1);
    emitSpinLockRelease(as, a0);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.halt();
    *counter_out = counter;
    return as.finish();
}

} // namespace

TEST(Runtime, SpinLockMutualExclusionFunctional)
{
    // Randomized fine-grained interleavings in the reference executor:
    // without the lock the read-modify-write would lose updates.
    for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
        Addr counter = 0;
        Program prog = spinLockProgram(50, &counter);
        ReferenceExecutor exec(prog, 4, 3);
        exec.randomize(seed);
        ASSERT_TRUE(exec.run());
        EXPECT_EQ(exec.memory().read64(counter), 200u)
            << "seed " << seed;
    }
}

TEST(Runtime, SpinLockMutualExclusionTimed)
{
    Addr counter = 0;
    Program prog = spinLockProgram(100, &counter);
    for (auto model : {cpu::ConsistencyModel::SC,
                       cpu::ConsistencyModel::TSO,
                       cpu::ConsistencyModel::RMO}) {
        harness::System sys(testConfig(4, model), prog);
        ASSERT_TRUE(sys.run());
        EXPECT_EQ(sys.debugRead(counter, 8), 400u)
            << consistencyModelName(model);
    }
}

TEST(Runtime, TicketLockIsFifoFair)
{
    // Record the order of critical-section entries; with a ticket lock
    // every thread must appear exactly `iters` times (no starvation).
    Assembler as;
    const Addr next = as.paddedWord("next", 0);
    const Addr serving = as.paddedWord("serving", 0);
    const Addr log_idx = as.paddedWord("log_idx", 0);
    const std::uint64_t iters = 20;
    const Addr log = as.alloc("log", 4 * iters * 8, 64);

    as.li(a0, next);
    as.li(a1, serving);
    as.li(a2, log_idx);
    as.li(a3, log);
    as.li(s0, iters);
    as.label("loop");
    emitTicketLockAcquire(as, a0, a1, t0, t1);
    as.ld(t0, a2);      // log[idx++] = tid (inside the lock)
    as.slli(t1, t0, 3);
    as.add(t1, a3, t1);
    as.st(tp, t1);
    as.addi(t0, t0, 1);
    as.st(t0, a2);
    emitTicketLockRelease(as, a1, t0);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.halt();
    Program prog = as.finish();

    harness::System sys(testConfig(4), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.debugRead(log_idx, 8), 4 * iters);
    std::uint64_t per_thread[4] = {};
    for (std::uint64_t i = 0; i < 4 * iters; ++i) {
        const std::uint64_t tid = sys.debugRead(log + i * 8, 8);
        ASSERT_LT(tid, 4u);
        ++per_thread[tid];
    }
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(per_thread[t], iters) << "thread " << t;
}

TEST(Runtime, BarrierRendezvous)
{
    // After phase p's barrier, every thread's slot must read >= p for
    // all threads.  A racy barrier would let a fast thread read a slot
    // still holding p-1.
    Assembler as;
    const Addr count = as.paddedWord("count", 0);
    const Addr sense = as.paddedWord("sense", 0);
    const Addr slots = as.alloc("slots", 4 * 64, 64);
    const Addr violations = as.paddedWord("violations", 0);
    const std::uint64_t phases = 25;

    as.li(a0, count);
    as.li(a1, sense);
    as.li(a2, slots);
    as.li(a3, violations);
    as.csrr(s1, Csr::NumCores);
    as.slli(t0, tp, 6);
    as.add(s3, a2, t0);
    as.li(s0, 0);
    as.label("loop");
    as.addi(t5, s0, 1);
    as.st(t5, s3);
    emitBarrier(as, a0, a1, s2, s1, t0, t1);
    // Check every slot.
    as.li(s4, 0); // slot index
    as.label("check");
    as.slli(t0, s4, 6);
    as.add(t0, a2, t0);
    as.ld(t1, t0);
    as.addi(t5, s0, 1);
    as.bgeu(t1, t5, "slot_ok");
    as.li(t2, 1);
    as.amoadd(t3, t2, a3);
    as.label("slot_ok");
    as.addi(s4, s4, 1);
    as.bne(s4, s1, "check");
    emitBarrier(as, a0, a1, s2, s1, t0, t1);
    as.addi(s0, s0, 1);
    as.li(t0, phases);
    as.bne(s0, t0, "loop");
    as.halt();
    Program prog = as.finish();

    for (auto model : {cpu::ConsistencyModel::SC,
                       cpu::ConsistencyModel::RMO}) {
        harness::System sys(testConfig(4, model), prog);
        ASSERT_TRUE(sys.run()) << consistencyModelName(model);
        EXPECT_EQ(sys.debugRead(violations, 8), 0u)
            << consistencyModelName(model);
    }
}

TEST(Runtime, BarrierWithSpeculation)
{
    // Same rendezvous property with fence speculation enabled.
    Assembler as;
    const Addr count = as.paddedWord("count", 0);
    const Addr sense = as.paddedWord("sense", 0);
    as.li(a0, count);
    as.li(a1, sense);
    as.csrr(s1, Csr::NumCores);
    as.li(s0, 50);
    as.label("loop");
    emitBarrier(as, a0, a1, s2, s1, t0, t1);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.halt();
    Program prog = as.finish();

    harness::SystemConfig cfg = testConfig(8,
                                           cpu::ConsistencyModel::SC);
    cfg.spec.mode = spec::SpecMode::OnDemand;
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    // All 8 cores crossed 50 barriers: the count word ends at 0.
    EXPECT_EQ(sys.debugRead(count, 8), 0u);
    sys.auditCoherence();
}

TEST(Runtime, XorshiftMatchesHostModel)
{
    Assembler as;
    const Addr out = as.alloc("out", 10 * 8, 64);
    as.li(s6, 0x12345);
    as.li(a0, out);
    as.li(s0, 10);
    as.label("loop");
    emitXorshift(as, s6, t0);
    as.st(s6, a0);
    as.addi(a0, a0, 8);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.halt();
    Program prog = as.finish();

    ReferenceExecutor exec(prog, 1);
    ASSERT_TRUE(exec.run());
    std::uint64_t x = 0x12345;
    for (int i = 0; i < 10; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        EXPECT_EQ(exec.memory().read64(out + i * 8), x) << "step " << i;
    }
}

TEST(Runtime, DelayCostsCycles)
{
    Assembler as;
    emitDelay(as, t0, 100);
    as.halt();
    Program prog = as.finish();

    harness::System sys(testConfig(1), prog);
    ASSERT_TRUE(sys.run());
    // 100 iterations x 2 single-cycle instructions, plus setup/halt.
    EXPECT_GE(sys.runtimeCycles(), 200u);
    EXPECT_LE(sys.runtimeCycles(), 230u);
}

TEST(Runtime, UniqueLabelsNeverCollide)
{
    // Two locks emitted into one program must not share labels.
    Assembler as;
    const Addr l1 = as.paddedWord("l1", 0);
    const Addr l2 = as.paddedWord("l2", 0);
    as.li(a0, l1);
    as.li(a1, l2);
    emitSpinLockAcquire(as, a0, t0, t1);
    emitSpinLockAcquire(as, a1, t0, t1);
    emitSpinLockRelease(as, a1);
    emitSpinLockRelease(as, a0);
    as.halt();
    Program prog = as.finish(); // panics on duplicate labels
    EXPECT_GT(prog.code.size(), 10u);
}
