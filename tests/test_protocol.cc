/**
 * @file
 * Protocol-level unit tests: drive L1 caches and the directory directly
 * (no cores) through a real network, stepping the event queue, and
 * inspect the resulting MESI states, directory bookkeeping and message
 * behaviour -- including the transient races (writeback vs probe,
 * buffered fill vs invalidation) and the speculation-specific states
 * (WbClean, MStale).
 */

#include <gtest/gtest.h>

#include <optional>

#include "mem/directory.hh"
#include "mem/l1_cache.hh"
#include "mem/network.hh"
#include "sim/sim_object.hh"

using namespace fenceless;
using namespace fenceless::mem;

namespace
{

/**
 * A tiny two-L1 + directory test bench.  @p banks splits the directory
 * into address-interleaved banks (nodes 2 .. 2 + banks - 1), the same
 * arrangement the System builds; 1 keeps the classic monolith.
 */
class ProtocolBench
{
  public:
    explicit ProtocolBench(std::uint32_t nbanks = 1,
                           Topology topology = Topology::Crossbar)
        : banks(nbanks)
    {
        Network::Params net_params;
        net_params.topology = topology;
        net_params.latency = 2;
        net_params.hop_latency = 1;
        net_params.num_nodes = 2 + banks;
        network = std::make_unique<Network>(ctx, "network", net_params);

        const DirectoryMap dirmap(2, banks, 6);
        L1Cache::Params l1p;
        l1p.size = 1024;
        l1p.assoc = 2;
        l1p.hit_latency = 1;
        l1s.push_back(std::make_unique<L1Cache>(ctx, "l1_0", l1p, 0,
                                                dirmap, *network));
        l1s.push_back(std::make_unique<L1Cache>(ctx, "l1_1", l1p, 1,
                                                dirmap, *network));

        Directory::Params l2p;
        l2p.size = 64 * 1024;
        l2p.assoc = 4;
        l2p.latency = 2;
        l2p.dram_latency = 10;
        for (std::uint32_t b = 0; b < banks; ++b) {
            Directory::Params bp = l2p;
            bp.size = l2p.size / banks;
            bp.banks = banks;
            bp.bank = b;
            dirs.push_back(std::make_unique<Directory>(
                ctx,
                banks == 1 ? std::string("dir")
                           : "dir.bank" + std::to_string(b),
                bp, 2 + b, 2, *network, backing));
        }
    }

    /** The bank serving @p addr (bank 0 when monolithic). */
    Directory &
    bankFor(Addr addr) const
    {
        return *dirs[(addr >> 6) & (banks - 1)];
    }

    /** Issue a load and run to completion. @return the loaded value. */
    std::uint64_t
    load(unsigned core, Addr addr, unsigned size = 8)
    {
        std::optional<std::uint64_t> result;
        MemRequest req;
        req.op = MemOp::Load;
        req.addr = addr;
        req.size = static_cast<std::uint8_t>(size);
        req.callback = [&result](std::uint64_t v) { result = v; };
        l1s[core]->access(std::move(req));
        ctx.eventq.run();
        EXPECT_TRUE(result.has_value()) << "load did not complete";
        return result.value_or(0);
    }

    /** Issue a store and run to completion. */
    void
    store(unsigned core, Addr addr, std::uint64_t value,
          unsigned size = 8)
    {
        bool done = false;
        MemRequest req;
        req.op = MemOp::Store;
        req.addr = addr;
        req.size = static_cast<std::uint8_t>(size);
        req.store_data = value;
        req.callback = [&done](std::uint64_t) { done = true; };
        l1s[core]->access(std::move(req));
        ctx.eventq.run();
        EXPECT_TRUE(done) << "store did not complete";
    }

    /** Issue an AMO and run to completion. @return the old value. */
    std::uint64_t
    amoAdd(unsigned core, Addr addr, std::uint64_t delta)
    {
        std::optional<std::uint64_t> result;
        MemRequest req;
        req.op = MemOp::Amo;
        req.addr = addr;
        req.size = 8;
        req.amo_func = [delta](std::uint64_t old_v) {
            return old_v + delta;
        };
        req.callback = [&result](std::uint64_t v) { result = v; };
        l1s[core]->access(std::move(req));
        ctx.eventq.run();
        EXPECT_TRUE(result.has_value()) << "AMO did not complete";
        return result.value_or(0);
    }

    L1State
    state(unsigned core, Addr addr) const
    {
        const L1Block *blk = l1s[core]->findBlock(addr);
        return blk && blk->valid ? blk->state : L1State::I;
    }

    const L2Block *dirEntry(Addr addr) const
    {
        return bankFor(addr).findBlock(addr);
    }

    /** Summed over banks, so callers are bank-count agnostic. */
    std::uint64_t
    dirStat(const std::string &name) const
    {
        std::uint64_t total = 0;
        for (const auto &d : dirs)
            total += d->statGroup().scalarCount(name);
        return total;
    }

    sim::SimContext ctx;
    FlatMemory backing;
    std::uint32_t banks;
    std::unique_ptr<Network> network;
    std::vector<std::unique_ptr<L1Cache>> l1s;
    std::vector<std::unique_ptr<Directory>> dirs;
};

} // namespace

TEST(Protocol2, FirstReaderGetsExclusive)
{
    ProtocolBench b;
    b.backing.write64(0x1000, 77);
    EXPECT_EQ(b.load(0, 0x1000), 77u);
    EXPECT_EQ(b.state(0, 0x1000), L1State::E);
    const L2Block *e = b.dirEntry(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->owner, 0u);
    EXPECT_FALSE(e->hasSharers());
}

TEST(Protocol2, SecondReaderDowngradesToShared)
{
    ProtocolBench b;
    b.backing.write64(0x1000, 5);
    b.load(0, 0x1000);
    EXPECT_EQ(b.load(1, 0x1000), 5u);
    EXPECT_EQ(b.state(0, 0x1000), L1State::S);
    EXPECT_EQ(b.state(1, 0x1000), L1State::S);
    const L2Block *e = b.dirEntry(0x1000);
    EXPECT_FALSE(e->hasOwner());
    EXPECT_TRUE(e->isSharer(0));
    EXPECT_TRUE(e->isSharer(1));
}

TEST(Protocol2, SilentExclusiveToModifiedUpgrade)
{
    ProtocolBench b;
    b.load(0, 0x1000);
    EXPECT_EQ(b.state(0, 0x1000), L1State::E);
    b.store(0, 0x1000, 42);
    EXPECT_EQ(b.state(0, 0x1000), L1State::M);
    // No extra directory transaction for the silent upgrade.
    EXPECT_EQ(b.dirStat("getm"), 0u);
}

TEST(Protocol2, WriterInvalidatesSharers)
{
    ProtocolBench b;
    b.load(0, 0x1000);
    b.load(1, 0x1000);
    b.store(1, 0x1000, 9);
    EXPECT_EQ(b.state(0, 0x1000), L1State::I);
    EXPECT_EQ(b.state(1, 0x1000), L1State::M);
    const L2Block *e = b.dirEntry(0x1000);
    EXPECT_EQ(e->owner, 1u);
    EXPECT_FALSE(e->isSharer(0));
    EXPECT_GE(b.dirStat("invs_sent"), 1u);
}

TEST(Protocol2, DirtyDataForwardsOnRead)
{
    ProtocolBench b;
    b.store(0, 0x1000, 1234);
    EXPECT_EQ(b.load(1, 0x1000), 1234u);
    EXPECT_EQ(b.state(0, 0x1000), L1State::S);
    EXPECT_EQ(b.state(1, 0x1000), L1State::S);
    EXPECT_GE(b.dirStat("fwds_sent"), 1u);
    // The forward updated the L2 copy.
    EXPECT_EQ(b.dirEntry(0x1000)->readInt(0, 8), 1234u);
}

TEST(Protocol2, DirtyDataForwardsOnWrite)
{
    ProtocolBench b;
    b.store(0, 0x1000, 50);
    b.store(1, 0x1000, 60);
    EXPECT_EQ(b.state(0, 0x1000), L1State::I);
    EXPECT_EQ(b.state(1, 0x1000), L1State::M);
    EXPECT_EQ(b.load(1, 0x1000), 60u);
}

TEST(Protocol2, OwnershipPingPongKeepsLatestValue)
{
    ProtocolBench b;
    for (int i = 0; i < 10; ++i)
        b.store(i % 2, 0x2000, static_cast<std::uint64_t>(i));
    EXPECT_EQ(b.load(0, 0x2000), 9u);
}

TEST(Protocol2, AmoIsReadModifyWrite)
{
    ProtocolBench b;
    b.backing.write64(0x3000, 10);
    EXPECT_EQ(b.amoAdd(0, 0x3000, 5), 10u);
    EXPECT_EQ(b.amoAdd(1, 0x3000, 7), 15u);
    EXPECT_EQ(b.load(0, 0x3000), 22u);
}

TEST(Protocol2, SubwordStoresMergeWithinBlock)
{
    ProtocolBench b;
    b.store(0, 0x1000, 0xffffffffffffffffULL, 8);
    b.store(0, 0x1002, 0xab, 1);
    b.store(1, 0x1004, 0xcdef, 2); // forces ownership migration
    EXPECT_EQ(b.load(0, 0x1000, 8), 0xffffcdefffabffffULL);
}

TEST(Protocol2, EvictionWritesBackDirtyData)
{
    ProtocolBench b;
    // 1 KiB, 2-way, 64B blocks -> 8 sets; same set every 512 bytes.
    b.store(0, 0x1000, 111);
    b.store(0, 0x1000 + 512, 222);
    b.store(0, 0x1000 + 1024, 333); // evicts 0x1000
    EXPECT_EQ(b.state(0, 0x1000), L1State::I);
    // The directory received the PutM and owns the current data.
    EXPECT_EQ(b.dirEntry(0x1000)->readInt(0, 8), 111u);
    EXPECT_FALSE(b.dirEntry(0x1000)->hasOwner());
    // And a re-read returns it.
    EXPECT_EQ(b.load(0, 0x1000), 111u);
}

TEST(Protocol2, CleanEvictionSendsPutS)
{
    ProtocolBench b;
    b.load(0, 0x1000);
    b.load(1, 0x1000); // both S
    const auto puts_before = b.dirStat("puts");
    b.load(0, 0x1000 + 512);
    b.load(0, 0x1000 + 1024); // evicts 0x1000 from S
    EXPECT_EQ(b.state(0, 0x1000), L1State::I);
    EXPECT_GT(b.dirStat("puts"), puts_before);
    EXPECT_FALSE(b.dirEntry(0x1000)->isSharer(0));
    EXPECT_TRUE(b.dirEntry(0x1000)->isSharer(1));
}

TEST(Protocol2, L2RecallPullsBackOwnedBlock)
{
    ProtocolBench b;
    // L2: 64 KiB, 4-way, 64B -> 256 sets; same L2 set every 16 KiB.
    // Fill one L2 set with four blocks held across BOTH L1s (two each,
    // matching the 2-way L1 sets), then touch a fifth: the L2 victim
    // is still owned, so the directory must recall it.
    b.store(0, 0x10000 + 0 * 0x4000, 100);
    b.store(0, 0x10000 + 1 * 0x4000, 101);
    b.store(1, 0x10000 + 2 * 0x4000, 102);
    b.store(1, 0x10000 + 3 * 0x4000, 103);
    b.store(0, 0x10000 + 4 * 0x4000, 104);
    EXPECT_GE(b.dirStat("recalls"), 1u);
    // All data survives.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(b.load(1, 0x10000 + i * 0x4000), 100u + i);
}

TEST(Protocol2, ConcurrentLoadsSameBlockCoalesceInMshr)
{
    ProtocolBench b;
    b.backing.write64(0x5000, 1);
    b.backing.write64(0x5008, 2);
    std::uint64_t r1 = 0, r2 = 0;
    MemRequest a;
    a.op = MemOp::Load;
    a.addr = 0x5000;
    a.size = 8;
    a.callback = [&r1](std::uint64_t v) { r1 = v; };
    MemRequest c;
    c.op = MemOp::Load;
    c.addr = 0x5008;
    c.size = 8;
    c.callback = [&r2](std::uint64_t v) { r2 = v; };
    b.l1s[0]->access(std::move(a));
    b.l1s[0]->access(std::move(c)); // queued on the same MSHR
    b.ctx.eventq.run();
    EXPECT_EQ(r1, 1u);
    EXPECT_EQ(r2, 2u);
    // Exactly one directory transaction for the block.
    EXPECT_EQ(b.dirStat("gets"), 1u);
}

TEST(Protocol2, RacingWritersBothComplete)
{
    ProtocolBench b;
    bool done0 = false, done1 = false;
    MemRequest a;
    a.op = MemOp::Store;
    a.addr = 0x6000;
    a.size = 8;
    a.store_data = 10;
    a.callback = [&done0](std::uint64_t) { done0 = true; };
    MemRequest c;
    c.op = MemOp::Store;
    c.addr = 0x6000;
    c.size = 8;
    c.store_data = 20;
    c.callback = [&done1](std::uint64_t) { done1 = true; };
    b.l1s[0]->access(std::move(a));
    b.l1s[1]->access(std::move(c)); // same tick, racing GetMs
    b.ctx.eventq.run();
    EXPECT_TRUE(done0);
    EXPECT_TRUE(done1);
    // The block ends with exactly one owner holding one of the values.
    const std::uint64_t v = b.load(0, 0x6000);
    EXPECT_TRUE(v == 10 || v == 20);
}

TEST(Protocol2, ReadersAndWriterRace)
{
    ProtocolBench b;
    b.backing.write64(0x7000, 7);
    std::uint64_t r = 0;
    bool done = false;
    MemRequest ld;
    ld.op = MemOp::Load;
    ld.addr = 0x7000;
    ld.size = 8;
    ld.callback = [&r](std::uint64_t v) { r = v; };
    MemRequest st;
    st.op = MemOp::Store;
    st.addr = 0x7000;
    st.size = 8;
    st.store_data = 8;
    st.callback = [&done](std::uint64_t) { done = true; };
    b.l1s[0]->access(std::move(ld));
    b.l1s[1]->access(std::move(st));
    b.ctx.eventq.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(r == 7 || r == 8);
    // Afterwards everyone agrees.
    EXPECT_EQ(b.load(0, 0x7000), 8u);
    EXPECT_EQ(b.load(1, 0x7000), 8u);
}

TEST(Protocol2, PrefetchExGrantsOwnershipWithoutWriting)
{
    ProtocolBench b;
    b.backing.write64(0x8000, 99);
    bool done = false;
    MemRequest pf;
    pf.op = MemOp::PrefetchEx;
    pf.addr = 0x8000;
    pf.size = 8;
    pf.callback = [&done](std::uint64_t) { done = true; };
    b.l1s[0]->access(std::move(pf));
    b.ctx.eventq.run();
    EXPECT_TRUE(done);
    const L1Block *blk = b.l1s[0]->findBlock(0x8000);
    ASSERT_NE(blk, nullptr);
    EXPECT_TRUE(blk->state == L1State::M || blk->state == L1State::E);
    EXPECT_FALSE(blk->dirty);
    EXPECT_EQ(b.load(0, 0x8000), 99u);
}

TEST(Protocol2, BlockBoundaryAccessRejected)
{
    ProtocolBench b;
    MemRequest req;
    req.op = MemOp::Load;
    req.addr = 0x103c; // 4 bytes before a 64B boundary
    req.size = 8;
    req.callback = [](std::uint64_t) {};
    EXPECT_DEATH(b.l1s[0]->access(std::move(req)), "crosses");
}

TEST(Protocol2, NetworkPreservesChannelFifo)
{
    sim::SimContext ctx;
    Network::Params p;
    p.latency = 3;
    Network net(ctx, "net", p);

    struct Collector : MsgReceiver
    {
        std::vector<MsgType> seen;
        void receiveMsg(const Msg &m) override
        {
            seen.push_back(m.type);
        }
    };

    Collector sink;
    net.registerEndpoint(0, &sink);
    Collector src;
    net.registerEndpoint(1, &src);

    // A large data message followed by a small control message: the
    // control message must not overtake despite shorter serialization.
    Msg big;
    big.type = MsgType::DataM;
    big.src = 1;
    big.dst = 0;
    big.data.assign(64, 0xff);
    net.send(big);
    Msg small;
    small.type = MsgType::Inv;
    small.src = 1;
    small.dst = 0;
    net.send(small);
    ctx.eventq.run();

    ASSERT_EQ(sink.seen.size(), 2u);
    EXPECT_EQ(sink.seen[0], MsgType::DataM);
    EXPECT_EQ(sink.seen[1], MsgType::Inv);
}

// ---------------------------------------------------------------------
// Speculation tags at the protocol level (mock controller, no cores)
// ---------------------------------------------------------------------

namespace
{

/** A scriptable SpecHooks implementation. */
class MockSpec : public SpecHooks
{
  public:
    bool specActive() const override { return active; }
    std::uint32_t specEpoch() const override { return epoch; }

    void
    specConflict(Addr block_addr, bool remote_write, bool had_sw)
        override
    {
        conflicts.push_back({block_addr, remote_write, had_sw});
        // A real controller flash-invalidates the tags by bumping the
        // epoch; SW blocks are converted by the L1 helper.
        l1->rollbackSpecWrites();
        ++epoch;
    }

    bool
    specOverflow(Addr, bool) override
    {
        ++overflows;
        l1->rollbackSpecWrites();
        ++epoch;
        return true;
    }

    struct Conflict
    {
        Addr addr;
        bool remote_write;
        bool had_sw;
    };

    L1Cache *l1 = nullptr;
    bool active = true;
    std::uint32_t epoch = 1;
    std::vector<Conflict> conflicts;
    unsigned overflows = 0;
};

/** ProtocolBench with a mock speculation controller on L1 0. */
class SpecBench : public ProtocolBench
{
  public:
    SpecBench()
    {
        mock.l1 = l1s[0].get();
        l1s[0]->setSpecHooks(&mock);
    }

    /** Speculative load on core 0. */
    std::uint64_t
    specLoad(Addr addr)
    {
        std::optional<std::uint64_t> result;
        MemRequest req;
        req.op = MemOp::Load;
        req.addr = addr;
        req.size = 8;
        req.spec = true;
        req.spec_epoch = mock.epoch;
        req.callback = [&result](std::uint64_t v) { result = v; };
        l1s[0]->access(std::move(req));
        ctx.eventq.run();
        EXPECT_TRUE(result.has_value());
        return result.value_or(0);
    }

    /** Speculative store on core 0. */
    void
    specStore(Addr addr, std::uint64_t value)
    {
        bool done = false;
        MemRequest req;
        req.op = MemOp::Store;
        req.addr = addr;
        req.size = 8;
        req.store_data = value;
        req.spec = true;
        req.spec_epoch = mock.epoch;
        req.callback = [&done](std::uint64_t) { done = true; };
        l1s[0]->access(std::move(req));
        ctx.eventq.run();
        EXPECT_TRUE(done);
    }

    MockSpec mock;
};

} // namespace

TEST(SpecProtocol, RemoteWriteOnSpecReadConflicts)
{
    SpecBench b;
    b.backing.write64(0x1000, 5);
    EXPECT_EQ(b.specLoad(0x1000), 5u);
    EXPECT_EQ(b.l1s[0]->numSpecReadBlocks(), 1u);

    b.store(1, 0x1000, 6); // remote write -> conflict
    ASSERT_EQ(b.mock.conflicts.size(), 1u);
    EXPECT_EQ(b.mock.conflicts[0].addr, 0x1000u);
    EXPECT_TRUE(b.mock.conflicts[0].remote_write);
    EXPECT_FALSE(b.mock.conflicts[0].had_sw);
    EXPECT_EQ(b.l1s[0]->numSpecReadBlocks(), 0u);
    // The remote writer proceeded normally.
    EXPECT_EQ(b.load(1, 0x1000), 6u);
}

TEST(SpecProtocol, RemoteReadOnSpecReadDoesNotConflict)
{
    SpecBench b;
    b.backing.write64(0x1000, 5);
    b.specLoad(0x1000);
    EXPECT_EQ(b.load(1, 0x1000), 5u); // remote READ: no conflict
    EXPECT_TRUE(b.mock.conflicts.empty());
    // And the tag survives the downgrade to S.
    EXPECT_EQ(b.l1s[0]->numSpecReadBlocks(), 1u);
}

TEST(SpecProtocol, RemoteReadOnSpecWriteConflictsAndHidesData)
{
    SpecBench b;
    b.backing.write64(0x1000, 5);
    b.specStore(0x1000, 99); // speculative write (SW)
    EXPECT_EQ(b.l1s[0]->numSpecWrittenBlocks(), 1u);

    // A remote reader must trigger the conflict AND must NOT observe
    // the speculative 99: the rollback discards it and the directory
    // serves the pre-speculation copy.
    EXPECT_EQ(b.load(1, 0x1000), 5u);
    ASSERT_EQ(b.mock.conflicts.size(), 1u);
    EXPECT_FALSE(b.mock.conflicts[0].remote_write);
    EXPECT_TRUE(b.mock.conflicts[0].had_sw);
}

TEST(SpecProtocol, CleanBeforeSpecWritePreservesDirtyData)
{
    SpecBench b;
    // Commit 1111 as ordinary dirty data (non-speculative store).
    b.mock.active = false;
    b.store(0, 0x1000, 1111);
    b.mock.active = true;

    // Speculatively overwrite; the L1 must push 1111 to the L2 first.
    b.specStore(0x1000, 2222);
    EXPECT_GE(b.l1s[0]->statGroup().scalarCount("wb_clean"), 1u);
    EXPECT_EQ(b.dirEntry(0x1000)->readInt(0, 8), 1111u);

    // Remote read -> rollback; the reader sees the committed 1111.
    EXPECT_EQ(b.load(1, 0x1000), 1111u);
}

TEST(SpecProtocol, CommitMakesSpecWritesArchitectural)
{
    SpecBench b;
    b.specStore(0x1000, 42);
    // Flash commit: SW -> dirty, epoch bump invalidates tags.
    b.l1s[0]->commitSpecWrites();
    ++b.mock.epoch;
    EXPECT_EQ(b.l1s[0]->numSpecWrittenBlocks(), 0u);
    // A remote reader now sees the committed data, with no conflict.
    EXPECT_EQ(b.load(1, 0x1000), 42u);
    EXPECT_TRUE(b.mock.conflicts.empty());
}

TEST(SpecProtocol, MStaleRefetchesFromDirectory)
{
    SpecBench b;
    b.backing.write64(0x1000, 7);
    b.specStore(0x1000, 8);
    // Roll back directly (as the controller would on any conflict).
    b.l1s[0]->rollbackSpecWrites();
    ++b.mock.epoch;
    const L1Block *blk = b.l1s[0]->findBlock(0x1000);
    ASSERT_NE(blk, nullptr);
    EXPECT_EQ(blk->state, L1State::MStale);
    // Directory still records us as owner.
    EXPECT_EQ(b.dirEntry(0x1000)->owner, 0u);
    // A local access refetches the pre-speculation value.
    b.mock.active = false;
    EXPECT_EQ(b.load(0, 0x1000), 7u);
    EXPECT_EQ(b.l1s[0]->findBlock(0x1000)->state, L1State::M);
}

TEST(SpecProtocol, StaleEpochStoreIsDropped)
{
    SpecBench b;
    b.backing.write64(0x1000, 3);
    // Issue a speculative store, then advance the epoch before it is
    // applied... here it applies synchronously on a hit, so instead
    // test the stale-drop path directly: a request carrying an old
    // epoch id must not modify memory.
    b.specStore(0x1000, 50); // epoch 1, applied
    b.l1s[0]->rollbackSpecWrites();
    ++b.mock.epoch; // now epoch 2

    bool done = false;
    MemRequest req;
    req.op = MemOp::Store;
    req.addr = 0x1008;
    req.size = 8;
    req.store_data = 60;
    req.spec = true;
    req.spec_epoch = 1; // stale!
    req.callback = [&done](std::uint64_t) { done = true; };
    b.l1s[0]->access(std::move(req));
    b.ctx.eventq.run();
    EXPECT_TRUE(done); // completes as a no-op
    b.mock.active = false;
    EXPECT_EQ(b.load(0, 0x1008), 0u); // the stale 60 was never applied
    EXPECT_EQ(b.load(0, 0x1000), 3u); // pre-speculation value intact
}

TEST(SpecProtocol, OverflowInvokedWhenSetFullOfTags)
{
    SpecBench b;
    // 1 KiB, 2-way: fill one set's both ways with spec-read blocks,
    // then demand a third block in the same set (same-set stride 512).
    b.backing.write64(0x2000, 1);
    b.backing.write64(0x2200, 2);
    b.backing.write64(0x2400, 3);
    b.specLoad(0x2000);
    b.specLoad(0x2200);
    EXPECT_EQ(b.mock.overflows, 0u);
    EXPECT_EQ(b.specLoad(0x2400), 3u);
    EXPECT_EQ(b.mock.overflows, 1u); // mock resolved it by rolling back
}

// ---------------------------------------------------------------------
// Banked directory: the same MESI machinery split across
// address-interleaved banks (see mem::DirectoryMap).
// ---------------------------------------------------------------------

TEST(BankedProtocol, RequestsRouteToTheirHomeBank)
{
    ProtocolBench b(4);
    // Block index selects the bank: consecutive blocks round-robin.
    for (std::uint32_t bank = 0; bank < 4; ++bank)
        b.backing.write64(0x1000 + bank * 64, 10 + bank);
    for (std::uint32_t bank = 0; bank < 4; ++bank)
        EXPECT_EQ(b.load(0, 0x1000 + bank * 64), 10u + bank);
    // Each bank served exactly its own block, nobody else's.
    for (std::uint32_t bank = 0; bank < 4; ++bank) {
        EXPECT_EQ(b.dirs[bank]->statGroup().scalarCount("gets"), 1u)
            << "bank " << bank;
        EXPECT_NE(b.dirs[bank]->findBlock(0x1000 + bank * 64), nullptr);
    }
}

TEST(BankedProtocol, OwnershipTransferAcrossBankedDirectory)
{
    ProtocolBench b(4);
    // Write on core 0, read on core 1, at one address per bank: the
    // full M -> S downgrade (Fwd + WbClean bookkeeping) must work
    // through every bank.
    for (std::uint32_t bank = 0; bank < 4; ++bank) {
        const Addr a = 0x2000 + bank * 64;
        b.store(0, a, 77 + bank);
        EXPECT_EQ(b.load(1, a), 77u + bank);
        EXPECT_EQ(b.state(0, a), L1State::S);
        EXPECT_EQ(b.state(1, a), L1State::S);
        const L2Block *e = b.dirEntry(a);
        ASSERT_NE(e, nullptr);
        EXPECT_TRUE(e->isSharer(0));
        EXPECT_TRUE(e->isSharer(1));
        EXPECT_FALSE(e->hasOwner());
    }
    EXPECT_EQ(b.dirStat("fwds_sent"), 4u);
}

TEST(BankedProtocol, TotalsMatchTheMonolithicDirectory)
{
    // The same request sequence must produce the same values and the
    // same transaction totals whether the directory is one bank or
    // eight -- banking repartitions the work, it must not change it.
    auto drive = [](ProtocolBench &b) {
        for (int i = 0; i < 16; ++i)
            b.store(0, 0x3000 + i * 64, 1000 + i);
        for (int i = 0; i < 16; ++i)
            EXPECT_EQ(b.load(1, 0x3000 + i * 64), 1000u + i);
        b.store(1, 0x3000, 5);
        EXPECT_EQ(b.amoAdd(0, 0x3000, 7), 5u);
    };
    ProtocolBench mono(1), banked(8);
    drive(mono);
    drive(banked);
    for (const char *stat : {"gets", "getm", "puts", "fwds_sent",
                             "invs_sent", "dram_reads"}) {
        EXPECT_EQ(mono.dirStat(stat), banked.dirStat(stat))
            << "stat " << stat;
    }
    EXPECT_EQ(mono.load(0, 0x3000), banked.load(0, 0x3000));
}

TEST(BankedProtocol, RecallWorksInsideABankSlice)
{
    // 64 KiB / 4 banks = 16 KiB per bank, 4-way, 64 sets: five blocks
    // with stride 0x4000 share bank 0 AND one set of its slice, so the
    // fifth forces an L2 eviction recall inside the bank.
    ProtocolBench b(4);
    // Spread across both L1s so the L2 victim still has a live L1 copy
    // (an unowned victim would evict silently, recall-free).
    b.store(0, 0x10000 + 0 * 0x4000, 100);
    b.store(0, 0x10000 + 1 * 0x4000, 101);
    b.store(1, 0x10000 + 2 * 0x4000, 102);
    b.store(1, 0x10000 + 3 * 0x4000, 103);
    b.store(0, 0x10000 + 4 * 0x4000, 104);
    EXPECT_GE(b.dirs[0]->statGroup().scalarCount("recalls"), 1u);
    for (std::uint32_t bank = 1; bank < 4; ++bank)
        EXPECT_EQ(b.dirs[bank]->statGroup().scalarCount("recalls"), 0u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(b.load(0, 0x10000 + i * 0x4000), 100u + i);
}

TEST(BankedProtocol, BankingComposesWithRingAndMesh)
{
    // Banks behind a real NoC: per-hop routing must not perturb the
    // protocol, only the timing.  Same sequence, same final state and
    // transaction totals on every topology.
    auto drive = [](ProtocolBench &b) {
        for (int i = 0; i < 8; ++i)
            b.store(i % 2, 0x4000 + i * 64, 40 + i);
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(b.load((i + 1) % 2, 0x4000 + i * 64), 40u + i);
    };
    ProtocolBench crossbar(4, Topology::Crossbar);
    ProtocolBench ring(4, Topology::Ring);
    ProtocolBench mesh(4, Topology::Mesh);
    drive(crossbar);
    drive(ring);
    drive(mesh);
    for (const char *stat : {"gets", "getm", "fwds_sent", "invs_sent"}) {
        EXPECT_EQ(crossbar.dirStat(stat), ring.dirStat(stat))
            << "stat " << stat;
        EXPECT_EQ(crossbar.dirStat(stat), mesh.dirStat(stat))
            << "stat " << stat;
    }
}
