/**
 * @file
 * Unit tests for the event queue: ordering, determinism, deschedule/
 * reschedule semantics, and one-shot helpers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/eventq.hh"

using namespace fenceless;
using namespace fenceless::sim;

namespace
{

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> &log, int id,
                   int priority = prio_default)
        : Event(priority), log_(log), id_(id)
    {}

    void process() override { log_.push_back(id_); }

  private:
    std::vector<int> &log_;
    int id_;
};

} // namespace

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent e1(log, 1), e2(log, 2), e3(log, 3);
    eq.schedule(&e2, 20);
    eq.schedule(&e1, 10);
    eq.schedule(&e3, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickInsertionOrder)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent e1(log, 1), e2(log, 2), e3(log, 3);
    eq.schedule(&e1, 5);
    eq.schedule(&e2, 5);
    eq.schedule(&e3, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityBeatsInsertion)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent low(log, 1, Event::prio_lowest);
    RecordingEvent high(log, 2, Event::prio_highest);
    eq.schedule(&low, 5);
    eq.schedule(&high, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, Deschedule)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent e1(log, 1), e2(log, 2);
    eq.schedule(&e1, 10);
    eq.schedule(&e2, 20);
    eq.deschedule(&e1);
    EXPECT_FALSE(e1.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, Reschedule)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent e1(log, 1), e2(log, 2);
    eq.schedule(&e1, 10);
    eq.schedule(&e2, 20);
    eq.reschedule(&e1, 30); // move past e2
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, RunHorizonStopsEarly)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent e1(log, 1), e2(log, 2);
    eq.schedule(&e1, 10);
    eq.schedule(&e2, 100);
    eq.run(50);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(eq.curTick(), 50u);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    std::vector<Tick> fired;
    EventFunctionWrapper second([&] { fired.push_back(eq.curTick()); },
                                "second");
    EventFunctionWrapper first(
        [&] {
            fired.push_back(eq.curTick());
            eq.schedule(&second, eq.curTick() + 7);
        },
        "first");
    eq.schedule(&first, 3);
    eq.run();
    EXPECT_EQ(fired, (std::vector<Tick>{3, 10}));
}

TEST(EventQueue, OneShotSelfDeletes)
{
    EventQueue eq;
    int count = 0;
    scheduleOneShot(eq, 5, [&] { ++count; });
    scheduleOneShot(eq, 5, [&] { ++count; });
    eq.run();
    EXPECT_EQ(count, 2);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, StepFiresExactlyOne)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent e1(log, 1), e2(log, 2);
    eq.schedule(&e1, 1);
    eq.schedule(&e2, 2);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(log.size(), 1u);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, NumPendingTracksLazyDeletes)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent e1(log, 1);
    eq.schedule(&e1, 10);
    EXPECT_EQ(eq.numPending(), 1u);
    eq.deschedule(&e1);
    EXPECT_EQ(eq.numPending(), 0u);
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_TRUE(log.empty());
}
