/**
 * @file
 * Waste-attribution profiler tests: disabled-by-default semantics,
 * bucket staging across speculative epochs, false-sharing detection,
 * rollback attribution, deterministic (byte-identical) rendering
 * across repeated runs and sweep job counts, and the folded-stack
 * golden output on a litmus workload.  Also covers the --trace flag
 * parser's multi-error reporting.
 */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "base/trace.hh"
#include "harness/sweep.hh"
#include "isa/assembler.hh"
#include "sim/profiler.hh"
#include "tests/sim_test_util.hh"
#include "workload/litmus.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::isa;
using namespace fenceless::test;

namespace
{

/** Every rendering of a profile concatenated, for byte comparisons. */
std::string
renderAll(const prof::Profile &p)
{
    std::ostringstream os;
    p.writeJson(os);
    os << "\n---\n";
    p.writeFolded(os);
    os << "\n---\n";
    p.writeReport(os);
    return os.str();
}

/**
 * Four cores increment private counters that share one cache line:
 * textbook false sharing.  Core 0 additionally owns a padded control
 * word that must *not* be flagged.
 */
isa::Program
falseSharingProgram(std::uint64_t iters)
{
    Assembler as;
    const Addr hot = as.alloc("hot", 4 * 8, 64);
    const Addr ctrl = as.paddedWord("ctrl", 0);

    as.li(a0, hot);
    as.slli(t0, tp, 3); // tid * 8: each core its own 8-byte slot
    as.add(a0, a0, t0);
    as.li(s0, iters);
    as.label("loop");
    as.ld(t1, a0);
    as.addi(t1, t1, 1);
    as.st(t1, a0);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.bne(tp, x0, "done");
    as.li(a1, ctrl);
    as.li(t1, 1);
    as.st(t1, a1);
    as.label("done");
    as.halt();
    return as.finish();
}

/**
 * Core 0 speculates past a fence and reads a block core 1 keeps
 * writing: every epoch is at risk of a remote-write rollback (same
 * shape as Spec.RemoteWriteConflictRollsBack).
 */
isa::Program
conflictProgram()
{
    Assembler as;
    const Addr sink = as.paddedWord("sink", 0);
    const Addr contended = as.paddedWord("contended", 0);
    const Addr res = as.paddedWord("res", 0);
    as.bne(tp, x0, "writer");
    as.li(a0, sink);
    as.li(a1, contended);
    as.li(a2, res);
    as.li(s0, 200);
    as.li(s2, 0);
    as.label("rloop");
    as.st(s0, a0); // miss keeps the SB busy
    as.fence();    // speculate past
    as.ld(t1, a1); // speculative read of the contended block
    as.add(s2, s2, t1);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "rloop");
    as.st(s2, a2);
    as.halt();
    as.label("writer");
    as.li(a0, sink);
    as.li(a1, contended);
    as.li(s0, 200);
    as.label("wloop");
    as.st(s0, a0, 8);
    as.st(s0, a1);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "wloop");
    as.halt();
    return as.finish();
}

/** Run SpinlockCrit on a profiling test system and snapshot it. */
prof::Profile
runProfiledSpinlock(const std::string &scope, unsigned iters = 64)
{
    harness::SystemConfig cfg = testConfig(4);
    cfg.withSpeculation();
    cfg.profile = true;
    workload::SpinlockCrit::Params p;
    p.iters = iters;
    workload::SpinlockCrit wl(p);
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    EXPECT_TRUE(sys.run());
    return sys.profile(scope);
}

} // namespace

// --- unit-level profiler behaviour -----------------------------------------

TEST(WasteProfiler, DisabledByDefaultAndCostsNothing)
{
    prof::WasteProfiler p;
    EXPECT_FALSE(p.enabled());
    EXPECT_EQ(p.ifEnabled(), nullptr);
    EXPECT_TRUE(p.snapshot().empty());
}

TEST(WasteProfiler, SystemWithoutProfileFlagStaysEmpty)
{
    workload::SpinlockCrit::Params p;
    p.iters = 8;
    workload::SpinlockCrit wl(p);
    harness::SystemConfig cfg = testConfig(2);
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    EXPECT_FALSE(sys.context().profiler.enabled());
    EXPECT_TRUE(sys.profile().empty());
}

TEST(WasteProfiler, StagingCommitAndRollback)
{
    prof::WasteProfiler p;
    p.configure(8, 2, 64, {{0, "start"}, {4, "tail"}},
                {{0x1000, 8, "var"}});
    ASSERT_EQ(p.ifEnabled(), &p);

    // Non-speculative charges land immediately.
    p.addCycles(0, 1, prof::CycleBucket::Execute, 3, false);
    p.addCycles(0, 1, prof::CycleBucket::FenceStall, 10, false);
    // Core 1 stages inside an epoch, then commits.
    p.addCycles(1, 2, prof::CycleBucket::Execute, 2, true);
    p.commitEpoch(1);
    // Core 0 stages inside an epoch, then rolls back: the staged
    // execute cycles become RollbackDiscarded at the PC that ran them.
    p.addCycles(0, 4, prof::CycleBucket::Execute, 7, true);
    p.rollbackEpoch(0, "remote_write", 0x1000, 4, 5);

    prof::Profile snap = p.snapshot();
    ASSERT_EQ(snap.pcs.count("start+1"), 1u);
    const auto &s1 = snap.pcs.at("start+1");
    EXPECT_EQ(s1.cycles[0], 3u);  // Execute
    EXPECT_EQ(s1.cycles[1], 10u); // FenceStall
    EXPECT_EQ(s1.execs, 1u);
    EXPECT_EQ(s1.wasted(), 10u);

    ASSERT_EQ(snap.pcs.count("start+2"), 1u);
    EXPECT_EQ(snap.pcs.at("start+2").cycles[0], 2u);
    EXPECT_EQ(snap.pcs.at("start+2").execs, 1u);

    ASSERT_EQ(snap.pcs.count("tail"), 1u);
    const auto &t = snap.pcs.at("tail");
    EXPECT_EQ(t.cycles[0], 0u); // discarded, not executed
    EXPECT_EQ(t.execs, 0u);
    EXPECT_EQ(t.cycles[4], 7u); // RollbackDiscarded
    EXPECT_EQ(t.wasted(), 7u);

    ASSERT_EQ(snap.rollbacks.size(), 1u);
    const auto &rb = snap.rollbacks.begin()->second;
    EXPECT_EQ(rb.cause, "remote_write");
    EXPECT_EQ(rb.victim, "tail");
    EXPECT_EQ(rb.line, "var");
    EXPECT_EQ(rb.count, 1u);
    EXPECT_EQ(rb.discarded_insts, 5u);
}

TEST(WasteProfiler, FalseSharingNeedsDisjointSlots)
{
    prof::WasteProfiler p;
    p.configure(1, 2, 64, {}, {});
    // Line A: two cores, disjoint 8-byte slots -> false sharing.
    p.touchLine(0, 0x40, 0, 8);
    p.touchLine(1, 0x40, 8, 8);
    p.lineInvalidated(0x40);
    // Line B: two cores, same slot -> true sharing.
    p.touchLine(0, 0x80, 0, 8);
    p.touchLine(1, 0x80, 0, 8);
    // Line C: one core only -> no sharing at all.
    p.touchLine(0, 0xc0, 16, 8);

    prof::Profile snap = p.snapshot();
    ASSERT_EQ(snap.lines.size(), 3u);
    EXPECT_TRUE(snap.lines.at("0x40").false_sharing);
    EXPECT_EQ(snap.lines.at("0x40").invalidations, 1u);
    EXPECT_EQ(snap.lines.at("0x40").cores_touched, 2u);
    EXPECT_FALSE(snap.lines.at("0x80").false_sharing);
    EXPECT_FALSE(snap.lines.at("0xc0").false_sharing);
    EXPECT_EQ(snap.lines.at("0xc0").cores_touched, 1u);
}

TEST(Profile, MergeSumsRowsAndScopesKeepThemApart)
{
    prof::WasteProfiler p;
    p.configure(4, 1, 64, {{0, "f"}}, {});
    p.addCycles(0, 0, prof::CycleBucket::Execute, 5, false);
    p.touchLine(0, 0x40, 0, 8);

    prof::Profile a = p.snapshot();
    prof::Profile b = p.snapshot();
    a.merge(b);
    EXPECT_EQ(a.pcs.at("f").cycles[0], 10u);
    EXPECT_EQ(a.pcs.at("f").execs, 2u);
    EXPECT_EQ(a.lines.at("0x40").touches, 2u);

    prof::Profile s1 = p.snapshot("cfgA");
    s1.merge(p.snapshot("cfgB"));
    EXPECT_EQ(s1.pcs.size(), 2u);
    EXPECT_EQ(s1.pcs.count("cfgA;f"), 1u);
    EXPECT_EQ(s1.pcs.count("cfgB;f"), 1u);
}

// --- whole-system attribution ----------------------------------------------

TEST(Profile, FalseSharingMicrobenchAttributesTheHotLine)
{
    harness::SystemConfig cfg = testConfig(4);
    cfg.profile = true;
    isa::Program prog = falseSharingProgram(64);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    sys.auditCoherence();

    prof::Profile snap = sys.profile();
    ASSERT_EQ(snap.lines.count("hot"), 1u);
    const auto &hot = snap.lines.at("hot");
    EXPECT_TRUE(hot.false_sharing);
    EXPECT_EQ(hot.cores_touched, 4u);
    EXPECT_GT(hot.invalidations, 0u);
    EXPECT_GT(hot.ping_pongs, 0u);

    // The known-hot line owns (almost) all invalidations in the run.
    std::uint64_t total_invs = 0;
    for (const auto &[key, row] : snap.lines)
        total_invs += row.invalidations;
    EXPECT_GE(hot.invalidations * 10, total_invs * 9)
        << "hot line owns " << hot.invalidations << " of "
        << total_invs << " invalidations";

    // The core-0-private control word is not false sharing.
    if (snap.lines.count("ctrl")) {
        const auto &ctrl = snap.lines.at("ctrl");
        EXPECT_FALSE(ctrl.false_sharing);
        EXPECT_EQ(ctrl.cores_touched, 1u);
    }
}

TEST(Profile, RollbacksAttributedByCauseVictimAndLine)
{
    harness::SystemConfig cfg = testConfig(2);
    cfg.withSpeculation();
    cfg.profile = true;
    isa::Program prog = conflictProgram();
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    ASSERT_GT(sys.totalRollbacks(), 0u);

    prof::Profile snap = sys.profile();
    ASSERT_FALSE(snap.rollbacks.empty());
    std::uint64_t counted = 0;
    bool remote_write_on_contended = false;
    for (const auto &[key, row] : snap.rollbacks) {
        counted += row.count;
        if (row.cause == "remote_write" &&
            row.line == "contended") {
            remote_write_on_contended = true;
            EXPECT_GT(row.discarded_insts, 0u);
        }
    }
    // Every rollback the controllers counted is attributed somewhere.
    EXPECT_EQ(counted, sys.totalRollbacks());
    EXPECT_TRUE(remote_write_on_contended);

    // The discarded wrong-path work shows up as RollbackDiscarded
    // cycles on the reader's speculative body.
    std::uint64_t discarded_cycles = 0;
    for (const auto &[key, row] : snap.pcs)
        discarded_cycles += row.cycles[4];
    EXPECT_GT(discarded_cycles, 0u);
}

// --- determinism -----------------------------------------------------------

TEST(Profile, ByteIdenticalAcrossRepeatedRuns)
{
    const std::string a = renderAll(runProfiledSpinlock("s"));
    const std::string b = renderAll(runProfiledSpinlock("s"));
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

TEST(Profile, ProfilingDoesNotPerturbTheSimulation)
{
    workload::SpinlockCrit::Params p;
    p.iters = 64;
    workload::SpinlockCrit wl(p);
    harness::SystemConfig cfg = testConfig(4);
    cfg.withSpeculation();
    isa::Program prog = wl.build(cfg.num_cores);

    harness::System plain(cfg, prog);
    ASSERT_TRUE(plain.run());
    cfg.profile = true;
    harness::System profiled(cfg, prog);
    ASSERT_TRUE(profiled.run());

    EXPECT_EQ(plain.runtimeCycles(), profiled.runtimeCycles());
    EXPECT_EQ(plain.totalInstructions(), profiled.totalInstructions());
    EXPECT_EQ(plain.totalRollbacks(), profiled.totalRollbacks());
}

TEST(Profile, SweepMergeIsJobCountInvariant)
{
    auto sweep = [](unsigned jobs) {
        std::vector<std::function<prof::Profile()>> tasks;
        for (int i = 0; i < 4; ++i) {
            const std::string scope = "cfg" + std::to_string(i);
            tasks.push_back([scope]() {
                return runProfiledSpinlock(scope);
            });
        }
        harness::SweepRunner runner(jobs);
        prof::Profile merged;
        for (const prof::Profile &p : runner.map(std::move(tasks)))
            merged.merge(p);
        return renderAll(merged);
    };
    const std::string sequential = sweep(1);
    const std::string parallel = sweep(4);
    EXPECT_EQ(sequential, parallel);
    EXPECT_FALSE(sequential.empty());
}

// --- folded output golden --------------------------------------------------

TEST(Profile, FoldedOutputIsWellFormedAndStable)
{
    workload::LitmusSB litmus(/*with_fences=*/true);
    harness::SystemConfig cfg = testConfig(2);
    cfg.profile = true;
    isa::Program prog = litmus.build({0, 0});
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());

    std::ostringstream os;
    sys.profile().writeFolded(os);
    const std::string folded = os.str();

    // Every line is "symbol;bucket cycles".
    std::istringstream is(folded);
    std::string line;
    std::size_t lines = 0;
    bool saw_fence_stall = false;
    while (std::getline(is, line)) {
        ++lines;
        const auto semi = line.rfind(';');
        const auto space = line.rfind(' ');
        ASSERT_NE(semi, std::string::npos) << line;
        ASSERT_NE(space, std::string::npos) << line;
        ASSERT_LT(semi, space) << line;
        const std::string bucket =
            line.substr(semi + 1, space - semi - 1);
        EXPECT_TRUE(bucket == "execute" || bucket == "fence_stall" ||
                    bucket == "sb_full" || bucket == "miss_wait" ||
                    bucket == "rollback_discarded")
            << line;
        EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
        saw_fence_stall |= bucket == "fence_stall";
    }
    EXPECT_GT(lines, 0u);
    // SB+fences stalls on its full fence: the folded stacks must
    // attribute fence-stall cycles to the litmus body, symbolized via
    // its thread labels.
    EXPECT_TRUE(saw_fence_stall);
    EXPECT_NE(folded.find("t0"), std::string::npos);
    EXPECT_NE(folded.find("t1"), std::string::npos);

    // Golden property: a second identical run folds byte-identically.
    harness::System again(cfg, litmus.build({0, 0}));
    ASSERT_TRUE(again.run());
    std::ostringstream os2;
    again.profile().writeFolded(os2);
    EXPECT_EQ(folded, os2.str());
}

// --- --trace flag parsing (satellite) --------------------------------------

TEST(TraceFlags, ParseAcceptsKnownFlagCombinations)
{
    std::uint32_t mask = 0;
    std::string error;
    ASSERT_TRUE(trace::parseFlags("core,l1", mask, error)) << error;
    EXPECT_EQ(mask, static_cast<std::uint32_t>(trace::Flag::Core) |
                        static_cast<std::uint32_t>(trace::Flag::L1));
    ASSERT_TRUE(trace::parseFlags("all", mask, error)) << error;
    EXPECT_EQ(mask, static_cast<std::uint32_t>(trace::Flag::All));
}

TEST(TraceFlags, ParseRejectsUnknownFlagsListingAllOfThem)
{
    std::uint32_t mask = 0xdead;
    std::string error;
    ASSERT_FALSE(
        trace::parseFlags("core,bogus,l1,typo", mask, error));
    // Both bad tokens in one message, plus the valid vocabulary.
    EXPECT_NE(error.find("bogus"), std::string::npos) << error;
    EXPECT_NE(error.find("typo"), std::string::npos) << error;
    EXPECT_NE(error.find(trace::validFlagNames()), std::string::npos)
        << error;
    // A failed parse leaves the caller's mask untouched.
    EXPECT_EQ(mask, 0xdeadu);
}
