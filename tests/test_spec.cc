/**
 * @file
 * Fence-speculation tests: epochs open at ordering points, commits are
 * local, conflicts roll back to a consistent state, overflow policies
 * behave, per-store granularity hits its storage limit, and speculative
 * runs always produce the same final memory as baseline runs.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "tests/sim_test_util.hh"
#include "workload/kernels.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::isa;
using namespace fenceless::test;

namespace
{

harness::SystemConfig
specConfig(std::uint32_t cores, cpu::ConsistencyModel model,
           spec::SpecMode mode = spec::SpecMode::OnDemand)
{
    harness::SystemConfig cfg = testConfig(cores, model);
    cfg.spec.mode = mode;
    return cfg;
}

std::uint64_t
specStat(harness::System &sys, std::uint32_t i, const std::string &name)
{
    auto *ctrl = sys.specController(i);
    return ctrl ? ctrl->statGroup().scalarCount(name) : 0;
}

/** Store (miss) -> fence -> load other: the classic fence stall. */
isa::Program
fenceStallProgram(Addr *res_out)
{
    Assembler as;
    const Addr var = as.paddedWord("var", 0);
    const Addr other = as.paddedWord("other", 55);
    const Addr res = as.paddedWord("res", 0);
    as.li(a0, var);
    as.li(a1, other);
    as.li(t0, 1);
    as.st(t0, a0);
    as.fence();
    as.ld(t1, a1);
    as.li(a2, res);
    as.st(t1, a2);
    as.halt();
    *res_out = res;
    return as.finish();
}

} // namespace

TEST(Spec, FenceOpensEpochAndCommits)
{
    Addr res = 0;
    isa::Program prog = fenceStallProgram(&res);
    harness::System sys(
        specConfig(1, cpu::ConsistencyModel::TSO), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.debugRead(res, 8), 55u);
    EXPECT_GE(specStat(sys, 0, "epochs_fence"), 1u);
    EXPECT_EQ(sys.specController(0)->commits(),
              sys.specController(0)->epochsStarted());
    EXPECT_EQ(sys.specController(0)->rollbacks(), 0u);
    // The fence did not stall the core.
    EXPECT_EQ(sys.core(0).statGroup().scalarCount("stall_fence_drain"),
              0u);
    sys.auditCoherence();
}

TEST(Spec, ScLoadOpensEpoch)
{
    Addr res = 0;
    isa::Program prog = fenceStallProgram(&res);
    harness::System sys(specConfig(1, cpu::ConsistencyModel::SC), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.debugRead(res, 8), 55u);
    EXPECT_GE(specStat(sys, 0, "epochs_sc_load"), 1u);
    EXPECT_EQ(sys.core(0).statGroup().scalarCount(
                  "stall_sc_load_order"), 0u);
    sys.auditCoherence();
}

TEST(Spec, SpeculativeFasterThanBaseline)
{
    Addr res = 0;
    isa::Program prog = fenceStallProgram(&res);

    harness::System base(testConfig(1, cpu::ConsistencyModel::TSO),
                         prog);
    ASSERT_TRUE(base.run());
    harness::System specd(specConfig(1, cpu::ConsistencyModel::TSO),
                          prog);
    ASSERT_TRUE(specd.run());
    EXPECT_LT(specd.runtimeCycles(), base.runtimeCycles());
}

TEST(Spec, RemoteWriteConflictRollsBack)
{
    // Core 0 speculates past a fence and speculatively reads `shared`;
    // core 1 writes `shared` in a loop, inducing conflicts.
    Assembler as;
    const Addr sink = as.paddedWord("sink", 0);
    const Addr shared = as.paddedWord("shared", 0);
    const Addr res = as.paddedWord("res", 0);
    as.bne(tp, x0, "writer");
    as.li(a0, sink);
    as.li(a1, shared);
    as.li(a2, res);
    as.li(s0, 200);
    as.li(s2, 0);
    as.label("rloop");
    as.st(s0, a0); // miss keeps the SB busy
    as.fence();    // speculate past
    as.ld(t1, a1); // speculative read of the contended block
    as.add(s2, s2, t1);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "rloop");
    as.st(s2, a2);
    as.halt();
    as.label("writer");
    as.li(a0, sink);
    as.li(a1, shared);
    as.li(s0, 200);
    as.label("wloop");
    // Contend on the sink block too, so the reader's pre-fence store
    // keeps missing (otherwise its store buffer would drain instantly
    // and no epoch would ever open).
    as.st(s0, a0, 8);
    as.st(s0, a1);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "wloop");
    as.halt();
    isa::Program prog = as.finish();

    harness::System sys(specConfig(2, cpu::ConsistencyModel::TSO),
                        prog);
    ASSERT_TRUE(sys.run());
    EXPECT_GT(sys.specController(0)->rollbacks(), 0u);
    EXPECT_GT(specStat(sys, 0, "rollback_remote_write"), 0u);
    sys.auditCoherence();
}

TEST(Spec, RollbackRestoresArchState)
{
    // After any number of rollbacks the final counter values must be
    // exact: re-execution may not double-apply or lose work.
    workload::SpinlockCrit::Params p;
    p.iters = 150;
    workload::SpinlockCrit wl(p);
    runWorkload(wl, specConfig(4, cpu::ConsistencyModel::TSO));
}

TEST(Spec, SpecMatchesBaselineFinalState)
{
    for (auto model : {cpu::ConsistencyModel::SC,
                       cpu::ConsistencyModel::TSO,
                       cpu::ConsistencyModel::RMO}) {
        workload::AtomicHistogram wl;
        runWorkload(wl, testConfig(4, model));
        workload::AtomicHistogram wl2;
        runWorkload(wl2, specConfig(4, model));
    }
}

TEST(Spec, ContinuousModeCommitsAndFinishes)
{
    workload::BarrierPhase wl;
    harness::SystemConfig cfg = specConfig(
        4, cpu::ConsistencyModel::SC, spec::SpecMode::Continuous);
    cfg.spec.min_epoch_insts = 64;
    runWorkload(wl, cfg);
}

TEST(Spec, OverflowRollbackPolicy)
{
    // A tiny L1 and a long speculative epoch: tag pressure must trigger
    // overflow handling without corrupting results.
    harness::SystemConfig cfg = specConfig(
        2, cpu::ConsistencyModel::SC, spec::SpecMode::Continuous);
    cfg.l1.size = 512; // 8 blocks
    cfg.l1.assoc = 2;
    cfg.spec.min_epoch_insts = 100'000; // epochs only close on pressure
    cfg.spec.overflow = spec::OverflowPolicy::Rollback;

    workload::Stencil2D::Params p;
    p.n = 8;
    p.iters = 2;
    workload::Stencil2D wl(p);
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    std::string error;
    EXPECT_TRUE(wl.check(sys.memReader(), cfg.num_cores, error))
        << error;
    EXPECT_GT(specStat(sys, 0, "rollback_overflow") +
              specStat(sys, 0, "overflow_commits") +
              specStat(sys, 1, "rollback_overflow") +
              specStat(sys, 1, "overflow_commits"), 0u);
    sys.auditCoherence();
}

TEST(Spec, OverflowStallPolicy)
{
    harness::SystemConfig cfg = specConfig(
        2, cpu::ConsistencyModel::SC, spec::SpecMode::Continuous);
    cfg.l1.size = 512;
    cfg.l1.assoc = 2;
    cfg.spec.min_epoch_insts = 100'000;
    cfg.spec.overflow = spec::OverflowPolicy::Stall;

    workload::Stencil2D::Params p;
    p.n = 8;
    p.iters = 2;
    workload::Stencil2D wl(p);
    runWorkload(wl, cfg);
}

TEST(Spec, PerStoreGranularityHitsLimit)
{
    // Many speculative stores inside one epoch: the bounded per-store
    // queue must stall while block granularity does not.
    Assembler as;
    const Addr sink = as.paddedWord("sink", 0);
    const Addr arr = as.alloc("arr", 64 * 64, 64);
    as.li(a0, sink);
    as.li(a1, arr);
    as.li(t0, 1);
    as.st(t0, a0);
    as.fence(); // open the epoch
    as.li(s0, 48);
    as.label("loop");
    as.st(s0, a1);
    as.addi(a1, a1, 64);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.halt();
    isa::Program prog = as.finish();

    harness::SystemConfig block_cfg =
        specConfig(1, cpu::ConsistencyModel::TSO);
    harness::SystemConfig ps_cfg = block_cfg;
    ps_cfg.spec.granularity = spec::Granularity::PerStore;
    ps_cfg.spec.ps_store_queue = 4;

    harness::System block_sys(block_cfg, prog);
    ASSERT_TRUE(block_sys.run());
    harness::System ps_sys(ps_cfg, prog);
    ASSERT_TRUE(ps_sys.run());

    EXPECT_EQ(specStat(block_sys, 0, "spec_limit_stalls"), 0u);
    EXPECT_GT(specStat(ps_sys, 0, "spec_limit_stalls"), 0u);
    // Both end with the same memory.
    for (std::uint64_t i = 0; i < 48; ++i) {
        EXPECT_EQ(block_sys.debugRead(arr + i * 64, 8),
                  ps_sys.debugRead(arr + i * 64, 8));
    }
}

TEST(Spec, CommitArbitrationLatencySlowsCommit)
{
    workload::BarrierPhase wl;
    harness::SystemConfig fast =
        specConfig(4, cpu::ConsistencyModel::TSO);
    harness::SystemConfig slow = fast;
    slow.spec.commit_arb_latency = 100;

    isa::Program prog = wl.build(4);
    harness::System fast_sys(fast, prog);
    ASSERT_TRUE(fast_sys.run());
    isa::Program prog2 = wl.build(4);
    harness::System slow_sys(slow, prog2);
    ASSERT_TRUE(slow_sys.run());
    EXPECT_LT(fast_sys.runtimeCycles(), slow_sys.runtimeCycles());
}

TEST(Spec, StorageModelScaling)
{
    // Block granularity is constant in depth; per-store grows linearly.
    const auto block_512 = spec::StorageModel::blockGranularityBytes(512);
    EXPECT_LT(block_512, 1024u); // "approximately one kilobyte"
    EXPECT_EQ(spec::StorageModel::blockGranularityBytes(512),
              spec::StorageModel::blockGranularityBytes(512));
    const auto ps16 = spec::StorageModel::perStoreBytes(16, 32);
    const auto ps64 = spec::StorageModel::perStoreBytes(64, 128);
    EXPECT_GT(ps64, ps16);
    EXPECT_GT(ps64 - ps16, 3 * (ps64 / 8)); // clearly linear growth
}

TEST(Spec, WbCleanPreservesCommittedDataAcrossRollback)
{
    // Core 0: commit value A to a block (dirty M), then speculatively
    // write B to the same block inside an epoch that a remote write is
    // guaranteed to roll back.  The final value must never lose A.
    Assembler as;
    const Addr sink = as.paddedWord("sink", 0);
    const Addr victim = as.paddedWord("victim", 0);
    const Addr poke = as.paddedWord("poke", 0);
    as.bne(tp, x0, "poker");
    as.li(a0, sink);
    as.li(a1, victim);
    as.li(a2, poke);
    // Commit A = 1111 (ordinary dirty data).
    as.li(t0, 1111);
    as.st(t0, a1);
    as.fence(); // drain: the block is now M+dirty with A
    // Open an epoch: store to sink (miss) then fence.
    as.li(t0, 1);
    as.st(t0, a0);
    as.fence();
    // Speculative write B and a speculative read of the contended word.
    as.li(t0, 2222);
    as.st(t0, a1); // drains speculatively: WbClean(A) then B + SW
    as.ld(t1, a2); // SR on the block core 1 is hammering
    as.ld(t2, a1);
    as.halt();
    as.label("poker");
    as.li(a2, poke);
    as.li(s0, 400);
    as.label("pl");
    as.st(s0, a2);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "pl");
    as.halt();
    isa::Program prog = as.finish();

    harness::SystemConfig cfg = specConfig(2,
                                           cpu::ConsistencyModel::TSO);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    // Whatever happened (commit or rollback+replay), the block holds
    // either the committed A (if the spec store was discarded and the
    // core had not re-executed it yet... impossible: re-execution
    // always reapplies) -- so exactly B after the program ends.
    EXPECT_EQ(sys.debugRead(0x1000 + 64, 8), 2222u);
    sys.auditCoherence();
}

TEST(Spec, MStaleRefetchReturnsPreSpecValue)
{
    // Force a rollback with a speculatively-written block; the very
    // next access must observe the pre-speculation value (from the L2),
    // then re-execute and produce the final value exactly once.
    workload::IrregularUpdate::Params p;
    p.updates = 300;
    p.bins = 4; // heavy conflicts: many SW rollbacks with MStale
    workload::IrregularUpdate wl(p);
    harness::SystemConfig cfg = specConfig(4,
                                           cpu::ConsistencyModel::SC);
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    std::string error;
    EXPECT_TRUE(wl.check(sys.memReader(), cfg.num_cores, error))
        << error;
    sys.auditCoherence();
}

TEST(Spec, RollbackDuringCommitArbitrationIsSafe)
{
    // With a large arbitration window, conflicts land while commits are
    // "arbitrating"; the scheduled commit must notice the rollback and
    // do nothing.
    workload::IrregularUpdate::Params p;
    p.updates = 200;
    p.bins = 8;
    workload::IrregularUpdate wl(p);
    harness::SystemConfig cfg = specConfig(4,
                                           cpu::ConsistencyModel::SC);
    cfg.spec.commit_arb_latency = 60;
    runWorkload(wl, cfg);
}

TEST(Spec, CooldownForcesNonSpeculativeRetry)
{
    // After the rollback storm in dekker, cooldown windows must produce
    // correct results and strictly fewer epochs than ordering points.
    workload::Dekker::Params p;
    p.iters = 150;
    workload::Dekker wl(p);
    harness::SystemConfig cfg = specConfig(2,
                                           cpu::ConsistencyModel::SC);
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    std::string error;
    EXPECT_TRUE(wl.check(sys.memReader(), cfg.num_cores, error))
        << error;
    // Rollbacks occurred and backoff kicked in (fewer epochs than the
    // ~150 fences each side executes).
    const auto rollbacks = sys.totalRollbacks();
    EXPECT_GT(rollbacks, 0u);
    const auto epochs = sys.specController(0)->epochsStarted() +
                        sys.specController(1)->epochsStarted();
    EXPECT_LT(epochs, 300u);
}

TEST(Spec, HaltCommitsOutstandingEpoch)
{
    // A program that halts while inside an epoch: requestStop must
    // commit (not discard) the speculative work.
    Assembler as;
    const Addr sink = as.paddedWord("sink", 0);
    const Addr out = as.paddedWord("out", 0);
    as.li(a0, sink);
    as.li(a1, out);
    as.li(t0, 1);
    as.st(t0, a0); // slow store keeps the SB busy
    as.fence();    // open the epoch
    as.li(t0, 777);
    as.st(t0, a1); // speculative store
    as.halt();     // halt with the epoch still open
    isa::Program prog = as.finish();

    harness::SystemConfig cfg = specConfig(1,
                                           cpu::ConsistencyModel::TSO);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.debugRead(0x1000 + 64, 8), 777u);
    EXPECT_GE(sys.specController(0)->commits(), 1u);
    sys.auditCoherence();
}

TEST(Spec, ContinuousChainsEpochs)
{
    // In continuous mode epochs follow each other back to back: with a
    // store-heavy single-core program (no conflicts possible) every
    // epoch commits and their count far exceeds the fence count.
    workload::LocalLockStream::Params p;
    p.iters = 64;
    workload::LocalLockStream wl(p);
    harness::SystemConfig cfg = specConfig(
        1, cpu::ConsistencyModel::SC, spec::SpecMode::Continuous);
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    std::string error;
    EXPECT_TRUE(wl.check(sys.memReader(), cfg.num_cores, error))
        << error;
    auto *ctrl = sys.specController(0);
    EXPECT_EQ(ctrl->rollbacks(), 0u);
    EXPECT_EQ(ctrl->commits(), ctrl->epochsStarted());
    EXPECT_GT(ctrl->commits(),
              sys.core(0).statGroup().scalarCount("fences_full"));
}
