/**
 * @file
 * Dedicated tests for the statistics package: Formula evaluation,
 * Histogram bucket edges and under/overflow accounting, registry-wide
 * reset, CSV/JSON rendering of every stat kind, and a numerical
 * regression for the Welford stdev (large mean, small variance).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>

#include "base/stats.hh"
#include "base/stats_json.hh"

using namespace fenceless;
using namespace fenceless::statistics;

namespace
{

/** Parse "name,value" CSV lines into a map for round-trip checks. */
std::map<std::string, double>
parseCsv(const std::string &csv)
{
    std::map<std::string, double> out;
    std::istringstream is(csv);
    std::string line;
    while (std::getline(is, line)) {
        auto comma = line.rfind(',');
        EXPECT_NE(comma, std::string::npos) << "bad CSV line: " << line;
        out[line.substr(0, comma)] = std::stod(line.substr(comma + 1));
    }
    return out;
}

} // namespace

TEST(Formula, EvaluatesLazilyFromOtherStats)
{
    StatGroup g("core");
    Scalar &insts = g.addScalar("insts", "instructions");
    Scalar &cycles = g.addScalar("cycles", "cycles");
    Formula &ipc = g.addFormula("ipc", "IPC", [&] {
        return cycles.count()
                   ? insts.value() / cycles.value()
                   : 0.0;
    });

    EXPECT_EQ(ipc.value(), 0.0);
    insts += 300;
    cycles += 100;
    EXPECT_DOUBLE_EQ(ipc.value(), 3.0);
    // Lazily re-evaluated: later bumps are visible without resampling.
    cycles += 200;
    EXPECT_DOUBLE_EQ(ipc.value(), 1.0);
}

TEST(Formula, EmptyFunctionIsZero)
{
    Formula f("f", "no fn", nullptr);
    EXPECT_EQ(f.value(), 0.0);
    f.reset(); // no-op, must not crash
}

TEST(Histogram, BucketEdges)
{
    // [0, 10) in 5 buckets of width 2.
    Histogram h("h", "edges", 0.0, 10.0, 5);
    h.sample(0.0);   // first bucket, inclusive lower edge
    h.sample(1.999); // still first bucket
    h.sample(2.0);   // exactly on an interior edge -> second bucket
    h.sample(9.999); // last bucket
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.samples(), 4u);
}

TEST(Histogram, UnderflowAndOverflow)
{
    Histogram h("h", "out of range", 0.0, 10.0, 5);
    h.sample(-0.001);     // below lo
    h.sample(-100, 2);    // weighted underflow
    h.sample(10.0);       // hi itself is exclusive -> overflow
    h.sample(1e12);
    EXPECT_EQ(h.underflow(), 3u);
    EXPECT_EQ(h.overflow(), 2u);
    // Under/overflow still count as samples...
    EXPECT_EQ(h.samples(), 5u);
    // ...but land in no bucket.
    for (unsigned i = 0; i < h.numBuckets(); ++i)
        EXPECT_EQ(h.bucketCount(i), 0u);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h("h", "weighted", 0.0, 8.0, 4);
    h.sample(3.0, 7);
    EXPECT_EQ(h.bucketCount(1), 7u);
    EXPECT_EQ(h.samples(), 7u);
}

TEST(Distribution, WelfordLargeMeanSmallVariance)
{
    // The naive sqsum/n - mean^2 form loses every significant digit
    // here (and can go negative); Welford keeps full precision.
    Distribution d("d", "large mean");
    const double base = 1e9;
    d.sample(base + 1);
    d.sample(base + 2);
    d.sample(base + 3);
    EXPECT_DOUBLE_EQ(d.mean(), base + 2);
    // Population stdev of {1,2,3} = sqrt(2/3).
    EXPECT_NEAR(d.stdev(), std::sqrt(2.0 / 3.0), 1e-9);
}

TEST(Distribution, WeightedStdevMatchesRepeatedSamples)
{
    Distribution a("a", "weighted");
    Distribution b("b", "repeated");
    a.sample(5.0, 3);
    a.sample(11.0, 1);
    for (int i = 0; i < 3; ++i)
        b.sample(5.0);
    b.sample(11.0);
    EXPECT_DOUBLE_EQ(a.mean(), b.mean());
    EXPECT_NEAR(a.stdev(), b.stdev(), 1e-12);
    EXPECT_EQ(a.samples(), b.samples());
}

TEST(StatRegistry, ResetClearsEveryKindInEveryGroup)
{
    StatRegistry reg;
    StatGroup &g1 = reg.createGroup("g1");
    StatGroup &g2 = reg.createGroup("g2");
    Scalar &s = g1.addScalar("s", "scalar");
    Distribution &d = g1.addDistribution("d", "dist");
    Histogram &h = g2.addHistogram("h", "hist", 0, 10, 5);
    Scalar &feeder = g2.addScalar("feeder", "formula input");
    Formula &f = g2.addFormula("f", "derived",
                               [&] { return feeder.value() * 2; });

    s += 42;
    d.sample(7);
    d.sample(9);
    h.sample(-1);
    h.sample(3);
    h.sample(99);
    feeder += 10;
    ASSERT_EQ(s.count(), 42u);
    ASSERT_EQ(d.samples(), 2u);
    ASSERT_EQ(h.samples(), 3u);

    reg.reset();

    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.stdev(), 0.0);
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    // Formulas derive from live stats, so reset flows through inputs.
    EXPECT_EQ(f.value(), 0.0);

    // Structure survives: the groups and stats are still registered.
    EXPECT_EQ(reg.findGroup("g1"), &g1);
    EXPECT_NE(g2.find("h"), nullptr);
}

TEST(StatRegistry, CsvRoundTripEveryKind)
{
    StatRegistry reg;
    StatGroup &g = reg.createGroup("comp");
    Scalar &s = g.addScalar("hits", "hits");
    Distribution &d = g.addDistribution("lat", "latency");
    Histogram &h = g.addHistogram("occ", "occupancy", 0, 4, 2);
    g.addFormula("ratio", "derived", [&] { return s.value() / 2; });

    s += 8;
    d.sample(10);
    d.sample(20);
    h.sample(1);
    h.sample(3, 2);
    h.sample(-5);
    h.sample(100);

    std::ostringstream os;
    reg.printCsv(os);
    auto csv = parseCsv(os.str());

    EXPECT_DOUBLE_EQ(csv.at("comp.hits"), 8);
    EXPECT_DOUBLE_EQ(csv.at("comp.lat.mean"), 15);
    EXPECT_DOUBLE_EQ(csv.at("comp.lat.min"), 10);
    EXPECT_DOUBLE_EQ(csv.at("comp.lat.max"), 20);
    EXPECT_DOUBLE_EQ(csv.at("comp.lat.stdev"), 5);
    EXPECT_DOUBLE_EQ(csv.at("comp.lat.n"), 2);
    EXPECT_DOUBLE_EQ(csv.at("comp.occ.n"), 5);
    EXPECT_DOUBLE_EQ(csv.at("comp.occ.underflow"), 1);
    EXPECT_DOUBLE_EQ(csv.at("comp.occ.bucket0"), 1);
    EXPECT_DOUBLE_EQ(csv.at("comp.occ.bucket1"), 2);
    EXPECT_DOUBLE_EQ(csv.at("comp.occ.overflow"), 1);
    EXPECT_DOUBLE_EQ(csv.at("comp.ratio"), 4);
}

TEST(StatsJson, EveryKindRendersItsFullState)
{
    StatRegistry reg;
    StatGroup &g = reg.createGroup("comp");
    Scalar &s = g.addScalar("hits", "hits");
    Distribution &d = g.addDistribution("lat", "latency");
    Histogram &h = g.addHistogram("occ", "occupancy", 0, 4, 2);
    g.addFormula("ratio", "derived", [&] { return s.value() / 2; });

    s += 8;
    d.sample(10);
    d.sample(20);
    h.sample(1);
    h.sample(-5);

    std::ostringstream os;
    printJson(os, reg);
    const std::string json = os.str();

    // Structurally balanced...
    long depth = 0;
    for (char c : json) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);

    // ...and each kind carries its complete state.
    EXPECT_NE(json.find("\"groups\""), std::string::npos);
    EXPECT_NE(json.find("\"comp.hits\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"scalar\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"distribution\""),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"formula\""), std::string::npos);
    EXPECT_NE(json.find("\"mean\""), std::string::npos);
    EXPECT_NE(json.find("\"stdev\""), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p95\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_NE(json.find("\"p999\""), std::string::npos);
    EXPECT_NE(json.find("\"underflow\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(PercentileSketch, ExactForSmallValues)
{
    // Values below 2^(sub_bits + 1) get one bucket each, so small
    // integer latencies (the common cache-hit case) report exactly.
    PercentileSketch s;
    for (int v = 1; v <= 7; ++v)
        s.add(v);
    EXPECT_EQ(s.samples(), 7u);
    // Nearest-rank: k = ceil(q * 7).
    EXPECT_DOUBLE_EQ(s.quantile(0.50), 4.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.99), 7.0);
}

TEST(PercentileSketch, EmptyAndNonPositiveSamples)
{
    PercentileSketch s;
    EXPECT_EQ(s.quantile(0.5), 0.0);
    s.add(-3.0);
    s.add(0.0);
    EXPECT_EQ(s.samples(), 2u);
    EXPECT_DOUBLE_EQ(s.quantile(0.99), 0.0);
}

TEST(PercentileSketch, BoundedRelativeError)
{
    // 8 sub-buckets per octave bound the half-width error at ~6.25%
    // of the value; allow 10% for the rank landing inside a bucket.
    PercentileSketch s;
    for (int v = 1; v <= 10000; ++v)
        s.add(v);
    for (double q : {0.50, 0.90, 0.95, 0.99}) {
        const double exact = std::ceil(q * 10000.0);
        EXPECT_NEAR(s.quantile(q), exact, 0.10 * exact) << "q=" << q;
    }
}

TEST(PercentileSketch, DeepTailKeepsTheSameErrorBound)
{
    // The ~6% bound is a property of the bucket geometry, not of the
    // quantile, so p99.9 (exposed for tail-latency work) needed no
    // extra sub-bucketing: a deep-tail estimate lands within one
    // bucket of the exact sample just like the median does, even on a
    // heavy-tailed population where the p99.9 sits far from the bulk.
    PercentileSketch uniform;
    for (int v = 1; v <= 100000; ++v)
        uniform.add(v);
    EXPECT_NEAR(uniform.quantile(0.999), 99900.0, 0.10 * 99900.0);

    PercentileSketch skewed;
    for (int v = 0; v < 9989; ++v)
        skewed.add(100.0); // the bulk
    for (int v = 0; v < 11; ++v)
        skewed.add(50000.0 + 1000.0 * v); // the tail
    // Exact p99.9 of 10000 samples is the 9990th smallest -- the
    // first tail sample (50000); the estimate must resolve the tail,
    // not report the bulk.
    EXPECT_NEAR(skewed.quantile(0.999), 50000.0, 0.10 * 50000.0);
    EXPECT_NEAR(skewed.quantile(0.50), 100.0, 0.0625 * 100.0);
}

TEST(PercentileSketch, WeightedAddMatchesRepeated)
{
    PercentileSketch a, b;
    a.add(100.0, 5);
    a.add(2000.0, 1);
    for (int i = 0; i < 5; ++i)
        b.add(100.0);
    b.add(2000.0);
    EXPECT_EQ(a.samples(), b.samples());
    for (double q : {0.1, 0.5, 0.9, 1.0})
        EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
}

TEST(PercentileSketch, MergeIsOrderIndependent)
{
    // Elementwise bucket addition makes shard order (and sharding
    // itself) invisible: whole = evens + odds = odds + evens.
    PercentileSketch whole, evens, odds, ab, ba;
    for (int v = 1; v <= 1000; ++v) {
        whole.add(v);
        (v % 2 == 0 ? evens : odds).add(v);
    }
    ab.merge(evens);
    ab.merge(odds);
    ba.merge(odds);
    ba.merge(evens);
    EXPECT_EQ(ab.samples(), whole.samples());
    for (double q : {0.25, 0.5, 0.75, 0.95, 0.99}) {
        EXPECT_DOUBLE_EQ(ab.quantile(q), whole.quantile(q))
            << "q=" << q;
        EXPECT_DOUBLE_EQ(ba.quantile(q), whole.quantile(q))
            << "q=" << q;
    }
}

TEST(PercentileSketch, ResetClears)
{
    PercentileSketch s;
    s.add(42.0, 3);
    s.reset();
    EXPECT_EQ(s.samples(), 0u);
    EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(Distribution, PercentilesTrackSamples)
{
    Distribution d("d", "latencies");
    for (int v = 1; v <= 100; ++v)
        d.sample(v);
    EXPECT_NEAR(d.percentile(0.50), 50.0, 5.0);
    EXPECT_NEAR(d.percentile(0.95), 95.0, 10.0);
    EXPECT_NEAR(d.percentile(0.99), 99.0, 10.0);
    d.reset();
    EXPECT_EQ(d.percentile(0.50), 0.0);
}

TEST(StatsJson, QuoteEscapesSpecials)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(jsonQuote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(jsonQuote("a\nb"), "\"a\\nb\"");
}
