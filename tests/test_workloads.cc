/**
 * @file
 * Every workload runs to completion with correct postconditions under a
 * matrix of consistency models x speculation modes x core counts, with
 * a coherence audit after each run.  Parameterised gtest sweeps keep
 * the matrix explicit.
 */

#include <gtest/gtest.h>

#include "tests/sim_test_util.hh"
#include "workload/workload.hh"

using namespace fenceless;
using namespace fenceless::test;

namespace
{

struct MatrixParam
{
    cpu::ConsistencyModel model;
    spec::SpecMode mode;
    std::uint32_t cores;
};

std::string
paramName(const testing::TestParamInfo<MatrixParam> &info)
{
    std::string s = consistencyModelName(info.param.model);
    s += "_";
    s += spec::specModeName(info.param.mode);
    s += "_";
    s += std::to_string(info.param.cores) + "c";
    for (auto &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

class WorkloadMatrix : public testing::TestWithParam<MatrixParam>
{
  protected:
    harness::SystemConfig
    config() const
    {
        harness::SystemConfig cfg =
            testConfig(GetParam().cores, GetParam().model);
        cfg.spec.mode = GetParam().mode;
        return cfg;
    }
};

} // namespace

TEST_P(WorkloadMatrix, WholeSuitePostconditionsHold)
{
    for (auto &wl : workload::standardSuite(1)) {
        if (GetParam().cores < wl->minThreads())
            continue;
        SCOPED_TRACE(wl->name());
        runWorkload(*wl, config());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Models, WorkloadMatrix,
    testing::Values(
        MatrixParam{cpu::ConsistencyModel::SC, spec::SpecMode::Off, 4},
        MatrixParam{cpu::ConsistencyModel::TSO, spec::SpecMode::Off, 4},
        MatrixParam{cpu::ConsistencyModel::RMO, spec::SpecMode::Off, 4},
        MatrixParam{cpu::ConsistencyModel::SC, spec::SpecMode::OnDemand,
                    4},
        MatrixParam{cpu::ConsistencyModel::TSO,
                    spec::SpecMode::OnDemand, 4},
        MatrixParam{cpu::ConsistencyModel::RMO,
                    spec::SpecMode::OnDemand, 4},
        MatrixParam{cpu::ConsistencyModel::SC,
                    spec::SpecMode::Continuous, 4},
        MatrixParam{cpu::ConsistencyModel::TSO,
                    spec::SpecMode::Continuous, 4},
        MatrixParam{cpu::ConsistencyModel::SC, spec::SpecMode::OnDemand,
                    2},
        MatrixParam{cpu::ConsistencyModel::TSO,
                    spec::SpecMode::OnDemand, 8},
        MatrixParam{cpu::ConsistencyModel::RMO, spec::SpecMode::Off, 1},
        MatrixParam{cpu::ConsistencyModel::SC, spec::SpecMode::OnDemand,
                    1}),
    paramName);
