/**
 * @file
 * Unit tests for the guest ISA: ALU/branch/AMO semantics, the
 * assembler (labels, data layout), the disassembler, and the
 * functional interpreter / reference executor.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/interp.hh"

using namespace fenceless;
using namespace fenceless::isa;

TEST(Alu, Arithmetic)
{
    EXPECT_EQ(aluOp(Op::Add, 2, 3), 5u);
    EXPECT_EQ(aluOp(Op::Sub, 2, 3), static_cast<std::uint64_t>(-1));
    EXPECT_EQ(aluOp(Op::Mul, 7, 6), 42u);
    EXPECT_EQ(aluOp(Op::Divu, 42, 6), 7u);
    EXPECT_EQ(aluOp(Op::Divu, 1, 0), ~std::uint64_t{0});
    EXPECT_EQ(aluOp(Op::Remu, 43, 6), 1u);
    EXPECT_EQ(aluOp(Op::Remu, 43, 0), 43u);
}

TEST(Alu, Logic)
{
    EXPECT_EQ(aluOp(Op::And, 0xf0, 0x3c), 0x30u);
    EXPECT_EQ(aluOp(Op::Or, 0xf0, 0x0f), 0xffu);
    EXPECT_EQ(aluOp(Op::Xor, 0xff, 0x0f), 0xf0u);
}

TEST(Alu, Shifts)
{
    EXPECT_EQ(aluOp(Op::Sll, 1, 8), 256u);
    EXPECT_EQ(aluOp(Op::Srl, 256, 8), 1u);
    EXPECT_EQ(aluOp(Op::Sra, static_cast<std::uint64_t>(-256), 8),
              static_cast<std::uint64_t>(-1));
    // shift amounts are mod 64
    EXPECT_EQ(aluOp(Op::Sll, 1, 65), 2u);
}

TEST(Alu, Compare)
{
    EXPECT_EQ(aluOp(Op::Slt, static_cast<std::uint64_t>(-1), 0), 1u);
    EXPECT_EQ(aluOp(Op::Sltu, static_cast<std::uint64_t>(-1), 0), 0u);
    EXPECT_EQ(aluOp(Op::Slt, 3, 3), 0u);
}

TEST(Branch, Conditions)
{
    EXPECT_TRUE(branchTaken(Op::Beq, 5, 5));
    EXPECT_FALSE(branchTaken(Op::Beq, 5, 6));
    EXPECT_TRUE(branchTaken(Op::Bne, 5, 6));
    EXPECT_TRUE(branchTaken(Op::Blt, static_cast<std::uint64_t>(-1), 0));
    EXPECT_FALSE(branchTaken(Op::Bltu, static_cast<std::uint64_t>(-1),
                             0));
    EXPECT_TRUE(branchTaken(Op::Bge, 0, 0));
    EXPECT_TRUE(branchTaken(Op::Bgeu, static_cast<std::uint64_t>(-1),
                            1));
}

TEST(Amo, Semantics)
{
    Inst swap;
    swap.op = Op::AmoSwap;
    EXPECT_EQ(amoApply(swap, 10, 99, 0), 99u);

    Inst add;
    add.op = Op::AmoAdd;
    EXPECT_EQ(amoApply(add, 10, 5, 0), 15u);

    Inst cas;
    cas.op = Op::AmoCas;
    EXPECT_EQ(amoApply(cas, 10, 10, 77), 77u); // expected matches
    EXPECT_EQ(amoApply(cas, 10, 11, 77), 10u); // expected differs
}

TEST(Assembler, DataLayout)
{
    Assembler as;
    const Addr w = as.word("w", 42);
    const Addr arr = as.array("arr", 4, 7);
    const Addr padded = as.paddedWord("p", 9);
    as.halt();
    Program prog = as.finish();

    EXPECT_EQ(prog.symbol("w"), w);
    EXPECT_EQ(prog.symbol("arr"), arr);
    EXPECT_EQ(padded % 64, 0u);
    EXPECT_GE(w, 0x1000u); // low page unused

    FlatMemory mem;
    loadImage(prog, mem);
    EXPECT_EQ(mem.read64(w), 42u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(mem.read64(arr + i * 8), 7u);
    EXPECT_EQ(mem.read64(padded), 9u);
}

TEST(Assembler, ForwardAndBackwardLabels)
{
    Assembler as;
    as.li(t0, 3);
    as.label("loop");
    as.addi(t0, t0, -1);
    as.bne(t0, x0, "loop");   // backward
    as.jump("end");           // forward
    as.li(t1, 99);            // skipped
    as.label("end");
    as.halt();
    Program prog = as.finish();

    ReferenceExecutor exec(prog, 1);
    EXPECT_TRUE(exec.run());
    EXPECT_EQ(exec.thread(0).reg(t0), 0u);
    EXPECT_EQ(exec.thread(0).reg(t1), 0u);
}

TEST(Assembler, Disassembly)
{
    Inst i;
    i.op = Op::Add;
    i.rd = 5;
    i.rs1 = 6;
    i.rs2 = 7;
    EXPECT_EQ(disassemble(i), "add x5, x6, x7");

    Inst ld;
    ld.op = Op::Load;
    ld.rd = 3;
    ld.rs1 = 4;
    ld.imm = 16;
    ld.size = 8;
    EXPECT_EQ(disassemble(ld), "ld8 x3, 16(x4)");

    Inst f;
    f.op = Op::Fence;
    f.fence = FenceKind::Acquire;
    EXPECT_EQ(disassemble(f), "fence.acq");
}

TEST(Interp, LoadsAndStores)
{
    Assembler as;
    const Addr v = as.word("v", 0x1122334455667788ULL);
    const Addr w = as.word("out", 0);
    as.li(a0, v);
    as.ld(t0, a0);
    as.ld(t1, a0, 0, 4);
    as.ld(t2, a0, 0, 1);
    as.li(a1, w);
    as.st(t0, a1);
    as.halt();
    Program prog = as.finish();

    ReferenceExecutor exec(prog, 1);
    EXPECT_TRUE(exec.run());
    EXPECT_EQ(exec.thread(0).reg(t0), 0x1122334455667788ULL);
    EXPECT_EQ(exec.thread(0).reg(t1), 0x55667788ULL);
    EXPECT_EQ(exec.thread(0).reg(t2), 0x88ULL);
    EXPECT_EQ(exec.memory().read64(w), 0x1122334455667788ULL);
}

TEST(Interp, CsrAndCall)
{
    Assembler as;
    as.csrr(t0, Csr::Tid);
    as.csrr(t1, Csr::NumCores);
    as.call("fn");
    as.halt();
    as.label("fn");
    as.li(t2, 5);
    as.ret();
    Program prog = as.finish();

    ReferenceExecutor exec(prog, 3);
    EXPECT_TRUE(exec.run());
    for (std::uint32_t t = 0; t < 3; ++t) {
        EXPECT_EQ(exec.thread(t).reg(t0), t);
        EXPECT_EQ(exec.thread(t).reg(t1), 3u);
        EXPECT_EQ(exec.thread(t).reg(t2), 5u);
    }
}

TEST(Interp, TpPreloadedWithTid)
{
    Assembler as;
    const Addr slots = as.array("slots", 4, 0);
    as.li(t0, slots);
    as.slli(t1, tp, 3);
    as.add(t0, t0, t1);
    as.addi(t2, tp, 100);
    as.st(t2, t0);
    as.halt();
    Program prog = as.finish();

    ReferenceExecutor exec(prog, 4);
    EXPECT_TRUE(exec.run());
    for (std::uint32_t t = 0; t < 4; ++t)
        EXPECT_EQ(exec.memory().read64(slots + t * 8), 100u + t);
}

TEST(Interp, AmoAtomicInReference)
{
    Assembler as;
    const Addr counter = as.word("c", 0);
    as.li(a0, counter);
    as.li(s0, 1000);
    as.label("loop");
    as.li(t1, 1);
    as.amoadd(t0, t1, a0);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.halt();
    Program prog = as.finish();

    ReferenceExecutor exec(prog, 4, 3);
    exec.randomize(99);
    EXPECT_TRUE(exec.run());
    EXPECT_EQ(exec.memory().read64(counter), 4000u);
}

TEST(Interp, X0AlwaysZero)
{
    Assembler as;
    as.li(x0, 42);
    as.addi(t0, x0, 1);
    as.halt();
    Program prog = as.finish();

    ReferenceExecutor exec(prog, 1);
    EXPECT_TRUE(exec.run());
    EXPECT_EQ(exec.thread(0).reg(x0), 0u);
    EXPECT_EQ(exec.thread(0).reg(t0), 1u);
}

TEST(Interp, StepBudgetReportsNonTermination)
{
    Assembler as;
    as.label("forever");
    as.jump("forever");
    Program prog = as.finish();

    ReferenceExecutor exec(prog, 1);
    EXPECT_FALSE(exec.run(1000));
}
