/**
 * @file
 * Parameter sweeps over workloads and machine configuration: every
 * combination must terminate with correct postconditions and pass the
 * coherence audit.  These are property-style correctness sweeps driven
 * through TEST_P; the shapes themselves are measured by the bench
 * binaries.
 */

#include <gtest/gtest.h>

#include "tests/sim_test_util.hh"
#include "workload/kernels.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::test;

// ---------------------------------------------------------------------
// Cache geometry sweep: the whole suite on varied cache shapes.
// ---------------------------------------------------------------------

namespace
{

struct GeomParam
{
    std::uint64_t l1_size;
    unsigned l1_assoc;
    std::uint64_t l2_size;
    unsigned sb_size;
};

std::string
geomName(const testing::TestParamInfo<GeomParam> &info)
{
    return "l1_" + std::to_string(info.param.l1_size) + "x"
           + std::to_string(info.param.l1_assoc) + "_l2_"
           + std::to_string(info.param.l2_size / 1024) + "k_sb"
           + std::to_string(info.param.sb_size);
}

class CacheGeometry : public testing::TestWithParam<GeomParam>
{
};

} // namespace

TEST_P(CacheGeometry, SuiteCorrectAcrossGeometries)
{
    harness::SystemConfig cfg = testConfig(4,
                                           cpu::ConsistencyModel::SC);
    cfg.l1.size = GetParam().l1_size;
    cfg.l1.assoc = GetParam().l1_assoc;
    cfg.l2.size = GetParam().l2_size;
    cfg.sb_size = GetParam().sb_size;
    cfg.spec.mode = spec::SpecMode::OnDemand;
    for (auto &wl : workload::standardSuite(1)) {
        if (cfg.num_cores < wl->minThreads())
            continue;
        SCOPED_TRACE(wl->name());
        runWorkload(*wl, cfg);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    testing::Values(GeomParam{512, 1, 16 * 1024, 4},
                    GeomParam{1024, 2, 32 * 1024, 2},
                    GeomParam{2048, 4, 64 * 1024, 8},
                    GeomParam{8192, 8, 256 * 1024, 16},
                    GeomParam{4096, 4, 8 * 1024, 16}),
    geomName);

// ---------------------------------------------------------------------
// Workload-parameter sweeps.
// ---------------------------------------------------------------------

namespace
{

class SpinlockParams
    : public testing::TestWithParam<std::tuple<int, int, int>>
{
};

} // namespace

TEST_P(SpinlockParams, CounterExactUnderAllSettings)
{
    workload::SpinlockCrit::Params p;
    p.iters = static_cast<std::uint64_t>(std::get<0>(GetParam()));
    p.crit_work = static_cast<std::uint64_t>(std::get<1>(GetParam()));
    p.counters = static_cast<unsigned>(std::get<2>(GetParam()));
    workload::SpinlockCrit wl(p);
    harness::SystemConfig cfg = testConfig(4);
    cfg.spec.mode = spec::SpecMode::OnDemand;
    runWorkload(wl, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpinlockParams,
    testing::Combine(testing::Values(10, 80),     // iters
                     testing::Values(0, 16),      // crit work
                     testing::Values(1, 3)));     // counters in CS

namespace
{

class ProdConsParams
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

} // namespace

TEST_P(ProdConsParams, EveryItemDeliveredOnce)
{
    workload::ProdCons::Params p;
    p.items = static_cast<std::uint64_t>(std::get<0>(GetParam()));
    p.capacity = static_cast<std::uint64_t>(std::get<1>(GetParam()));
    workload::ProdCons wl(p);
    for (auto model : {cpu::ConsistencyModel::TSO,
                       cpu::ConsistencyModel::RMO}) {
        SCOPED_TRACE(consistencyModelName(model));
        harness::SystemConfig cfg = testConfig(4, model);
        cfg.spec.mode = spec::SpecMode::OnDemand;
        runWorkload(wl, cfg);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProdConsParams,
                         testing::Combine(testing::Values(32, 200),
                                          testing::Values(2, 8, 64)));

namespace
{

class StencilParams
    : public testing::TestWithParam<std::tuple<int, int, int>>
{
};

} // namespace

TEST_P(StencilParams, MatchesHostModel)
{
    workload::Stencil2D::Params p;
    p.n = static_cast<std::uint64_t>(std::get<0>(GetParam()));
    p.iters = static_cast<std::uint64_t>(std::get<1>(GetParam()));
    workload::Stencil2D wl(p);
    const auto cores =
        static_cast<std::uint32_t>(std::get<2>(GetParam()));
    harness::SystemConfig cfg = testConfig(cores,
                                           cpu::ConsistencyModel::RMO);
    cfg.spec.mode = spec::SpecMode::OnDemand;
    runWorkload(wl, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StencilParams,
    testing::Combine(testing::Values(4, 9, 16), // grid (incl. odd)
                     testing::Values(1, 5),     // sweeps
                     testing::Values(1, 3, 8)));// cores (incl. odd)

namespace
{

class RadixParams : public testing::TestWithParam<std::tuple<int, int>>
{
};

} // namespace

TEST_P(RadixParams, PartitionCorrect)
{
    workload::RadixPartition::Params p;
    p.items_per_thread =
        static_cast<std::uint64_t>(std::get<0>(GetParam()));
    p.buckets = static_cast<unsigned>(std::get<1>(GetParam()));
    workload::RadixPartition wl(p);
    harness::SystemConfig cfg = testConfig(4,
                                           cpu::ConsistencyModel::SC);
    cfg.spec.mode = spec::SpecMode::Continuous;
    runWorkload(wl, cfg);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RadixParams,
                         testing::Combine(testing::Values(16, 100),
                                          testing::Values(2, 8, 64)));

// ---------------------------------------------------------------------
// Speculation-parameter sweep on one conflict-prone workload.
// ---------------------------------------------------------------------

namespace
{

struct SpecParam
{
    spec::SpecMode mode;
    spec::Granularity granularity;
    spec::OverflowPolicy overflow;
    unsigned ps_queue;
    Cycles commit_arb;
};

std::string
specName(const testing::TestParamInfo<SpecParam> &info)
{
    std::string s = spec::specModeName(info.param.mode);
    s += "_";
    s += spec::granularityName(info.param.granularity);
    s += "_";
    s += spec::overflowPolicyName(info.param.overflow);
    s += "_q" + std::to_string(info.param.ps_queue);
    s += "_arb" + std::to_string(info.param.commit_arb);
    for (auto &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

class SpecKnobs : public testing::TestWithParam<SpecParam>
{
};

} // namespace

TEST_P(SpecKnobs, IrregularUpdateStaysCorrect)
{
    workload::IrregularUpdate::Params p;
    p.updates = 200;
    p.bins = 8; // contended
    workload::IrregularUpdate wl(p);

    harness::SystemConfig cfg = testConfig(4,
                                           cpu::ConsistencyModel::SC);
    cfg.l1.size = 2048; // small: overflow pressure
    cfg.l1.assoc = 2;
    cfg.spec.mode = GetParam().mode;
    cfg.spec.granularity = GetParam().granularity;
    cfg.spec.overflow = GetParam().overflow;
    cfg.spec.ps_store_queue = GetParam().ps_queue;
    cfg.spec.ps_load_cam = GetParam().ps_queue * 2;
    cfg.spec.commit_arb_latency = GetParam().commit_arb;
    runWorkload(wl, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpecKnobs,
    testing::Values(
        SpecParam{spec::SpecMode::OnDemand, spec::Granularity::Block,
                  spec::OverflowPolicy::Stall, 16, 0},
        SpecParam{spec::SpecMode::OnDemand, spec::Granularity::Block,
                  spec::OverflowPolicy::Rollback, 16, 0},
        SpecParam{spec::SpecMode::OnDemand,
                  spec::Granularity::PerStore,
                  spec::OverflowPolicy::Stall, 2, 0},
        SpecParam{spec::SpecMode::OnDemand,
                  spec::Granularity::PerStore,
                  spec::OverflowPolicy::Rollback, 4, 0},
        SpecParam{spec::SpecMode::Continuous, spec::Granularity::Block,
                  spec::OverflowPolicy::Stall, 16, 0},
        SpecParam{spec::SpecMode::Continuous, spec::Granularity::Block,
                  spec::OverflowPolicy::Rollback, 16, 25},
        SpecParam{spec::SpecMode::Continuous,
                  spec::Granularity::PerStore,
                  spec::OverflowPolicy::Stall, 2, 10},
        SpecParam{spec::SpecMode::OnDemand, spec::Granularity::Block,
                  spec::OverflowPolicy::Stall, 16, 100}),
    specName);
