/**
 * @file
 * Observability tests: the structured TraceSink (recording, capping,
 * aux-name tables, Chrome trace-event export) and the System-level
 * plumbing (per-system sinks, request-lifetime events, periodic stat
 * snapshots, the --stats-json document).
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "sim/trace_sink.hh"
#include "tests/sim_test_util.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::test;

namespace
{

/** Count non-overlapping occurrences of @p needle in @p s. */
std::size_t
countOccurrences(const std::string &s, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = s.find(needle); pos != std::string::npos;
         pos = s.find(needle, pos + needle.size()))
        ++n;
    return n;
}

/** Minimal structural JSON check: balanced braces and brackets. */
void
expectBalancedJson(const std::string &json)
{
    long braces = 0, brackets = 0;
    bool in_string = false, escaped = false;
    for (char c : json) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
            continue;
        }
        if (c == '"') {
            in_string = !in_string;
            continue;
        }
        if (in_string)
            continue;
        if (c == '{')
            ++braces;
        if (c == '}')
            --braces;
        if (c == '[')
            ++brackets;
        if (c == ']')
            --brackets;
        ASSERT_GE(braces, 0);
        ASSERT_GE(brackets, 0);
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

/** Run the quickstart workload with the given observability config. */
std::unique_ptr<harness::System>
runTracedSystem(std::uint32_t trace_mask, Tick stats_interval = 0)
{
    harness::SystemConfig cfg = testConfig(2);
    cfg.withSpeculation();
    cfg.trace_mask = trace_mask;
    cfg.stats_interval = stats_interval;
    workload::LocalLockStream::Params params;
    params.iters = 16;
    workload::LocalLockStream wl(params);
    isa::Program prog = wl.build(cfg.num_cores);
    auto sys = std::make_unique<harness::System>(cfg, prog);
    EXPECT_TRUE(sys->run());
    return sys;
}

} // namespace

TEST(TraceSink, DisabledByDefaultAndMaskGates)
{
    trace::TraceSink sink;
    EXPECT_FALSE(sink.enabled());
    EXPECT_FALSE(sink.wants(trace::Flag::Spec));

    sink.setMask(static_cast<std::uint32_t>(trace::Flag::Spec));
    EXPECT_TRUE(sink.enabled());
    EXPECT_TRUE(sink.wants(trace::Flag::Spec));
    EXPECT_FALSE(sink.wants(trace::Flag::Req));
}

TEST(TraceSink, RecordsInOrderAcrossChunks)
{
    trace::TraceSink sink;
    const std::uint16_t comp = sink.registerComponent("c0");
    // Cross at least one chunk boundary.
    const std::size_t n = trace::TraceSink::chunk_records + 100;
    for (std::size_t i = 0; i < n; ++i)
        sink.record(comp, trace::EventKind::CoreCommit, i, i);
    EXPECT_EQ(sink.size(), n);
    EXPECT_EQ(sink.dropped(), 0u);

    std::size_t next = 0;
    sink.forEach([&](const trace::TraceRecord &r) {
        EXPECT_EQ(r.tick, next);
        EXPECT_EQ(r.a0, next);
        EXPECT_EQ(r.comp, comp);
        ++next;
    });
    EXPECT_EQ(next, n);

    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    // Identity registrations survive a clear.
    EXPECT_EQ(sink.components().size(), 1u);
}

TEST(TraceSink, CapsAndCountsDrops)
{
    trace::TraceSink sink(8);
    const std::uint16_t comp = sink.registerComponent("c0");
    for (Tick t = 0; t < 20; ++t)
        sink.record(comp, trace::EventKind::CoreCommit, t);
    EXPECT_EQ(sink.size(), 8u);
    EXPECT_EQ(sink.dropped(), 12u);
}

TEST(TraceSink, RequestIdsAreFreshAndNonZero)
{
    trace::TraceSink sink;
    EXPECT_EQ(sink.nextRequestId(), 1u);
    EXPECT_EQ(sink.nextRequestId(), 2u);
    EXPECT_EQ(sink.nextRequestId(), 3u);
}

TEST(TraceSink, AuxNamesResolvePerKind)
{
    trace::TraceSink sink;
    sink.setAuxNames(trace::EventKind::SpecRollback,
                     {"conflict", "overflow"});
    EXPECT_EQ(sink.auxName(trace::EventKind::SpecRollback, 0),
              "conflict");
    EXPECT_EQ(sink.auxName(trace::EventKind::SpecRollback, 1),
              "overflow");
    // Out of range or unregistered kinds degrade to "".
    EXPECT_EQ(sink.auxName(trace::EventKind::SpecRollback, 7), "");
    EXPECT_EQ(sink.auxName(trace::EventKind::CoreStall, 0), "");
}

TEST(TraceSink, ExportsWellFormedChromeJson)
{
    trace::TraceSink sink;
    const std::uint16_t core = sink.registerComponent("core_0");
    const std::uint16_t l1 = sink.registerComponent("l1_0");
    sink.setAuxNames(trace::EventKind::SpecRollback, {"conflict"});

    // One of each phase: counter, duration, instant, request flow.
    sink.record(core, trace::EventKind::CoreCommit, 10, 5);
    sink.record(core, trace::EventKind::SpecEpoch, 50, 20, 12, 1);
    sink.record(core, trace::EventKind::SpecRollback, 60, 0, 4, 0);
    sink.record(l1, trace::EventKind::ReqIssue, 30, 1, 0x1000);
    sink.record(l1, trace::EventKind::ReqFill, 90, 1, 0x1000);

    std::ostringstream os;
    sink.exportChromeJson(os);
    const std::string json = os.str();

    expectBalancedJson(json);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Track metadata for both components.
    EXPECT_NE(json.find("core_0"), std::string::npos);
    EXPECT_NE(json.find("l1_0"), std::string::npos);
    // The epoch is a complete ("X") event with begin tick and duration.
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    // The rollback is an instant with its decoded cause.
    EXPECT_NE(json.find("conflict"), std::string::npos);
    // The request produced a flow arrow (start + finish).
    EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
}

TEST(SystemObservability, DisabledTracingRecordsNothing)
{
    auto sys = runTracedSystem(0);
    EXPECT_EQ(sys->tracer().size(), 0u);
    EXPECT_EQ(sys->tracer().dropped(), 0u);
}

TEST(SystemObservability, EndToEndTraceHasAllEventFamilies)
{
    auto sys = runTracedSystem(
        static_cast<std::uint32_t>(trace::Flag::All));
    ASSERT_GT(sys->tracer().size(), 0u);

    bool saw_commit = false, saw_epoch = false, saw_issue = false,
         saw_dir = false, saw_fill = false, saw_sb = false;
    sys->tracer().forEach([&](const trace::TraceRecord &r) {
        switch (static_cast<trace::EventKind>(r.kind)) {
          case trace::EventKind::CoreCommit: saw_commit = true; break;
          case trace::EventKind::SpecEpoch: saw_epoch = true; break;
          case trace::EventKind::ReqIssue: saw_issue = true; break;
          case trace::EventKind::ReqDirIngress: saw_dir = true; break;
          case trace::EventKind::ReqFill: saw_fill = true; break;
          case trace::EventKind::SbOccupancy: saw_sb = true; break;
          default: break;
        }
    });
    EXPECT_TRUE(saw_commit);
    EXPECT_TRUE(saw_epoch);
    EXPECT_TRUE(saw_issue);
    EXPECT_TRUE(saw_dir);
    EXPECT_TRUE(saw_fill);
    EXPECT_TRUE(saw_sb);

    std::ostringstream os;
    sys->exportTrace(os);
    const std::string json = os.str();
    expectBalancedJson(json);
    // Request-lifetime flows cross components (≥1 start/finish pair).
    EXPECT_GE(countOccurrences(json, "\"ph\": \"s\""), 1u);
    EXPECT_GE(countOccurrences(json, "\"ph\": \"f\""), 1u);
}

TEST(SystemObservability, MaskRestrictsFamilies)
{
    auto sys = runTracedSystem(
        static_cast<std::uint32_t>(trace::Flag::Spec));
    ASSERT_GT(sys->tracer().size(), 0u);
    sys->tracer().forEach([&](const trace::TraceRecord &r) {
        const auto kind = static_cast<trace::EventKind>(r.kind);
        EXPECT_TRUE(kind == trace::EventKind::SpecEpoch ||
                    kind == trace::EventKind::SpecRollback)
            << "unexpected kind " << r.kind;
    });
}

TEST(SystemObservability, RequestLatencyDistributionsPopulated)
{
    auto sys = runTracedSystem(0);
    // Attribution stats fill in regardless of the trace mask: they are
    // ordinary Distributions, not trace events.
    const auto *l1 = sys->stats().findGroup("l1_0");
    ASSERT_NE(l1, nullptr);
    const auto *miss = l1->findDistribution("miss_latency");
    ASSERT_NE(miss, nullptr);
    EXPECT_GT(miss->samples(), 0u);
    EXPECT_GT(miss->mean(), 0.0);

    const auto *dir = sys->stats().findGroup("l2dir");
    ASSERT_NE(dir, nullptr);
    const auto *svc = dir->findDistribution("txn_service");
    ASSERT_NE(svc, nullptr);
    EXPECT_GT(svc->samples(), 0u);

    const auto *net = sys->stats().findGroup("network");
    ASSERT_NE(net, nullptr);
    const auto *lat = net->findDistribution("msg_latency");
    ASSERT_NE(lat, nullptr);
    EXPECT_GT(lat->samples(), 0u);
    // Every message takes at least the configured hop latency.
    EXPECT_GE(lat->minValue(), 4.0);
}

TEST(SystemObservability, PeriodicSnapshotsFormTimeSeries)
{
    auto sys = runTracedSystem(0, 200);
    ASSERT_GE(sys->snapshots().size(), 2u);
    Tick prev = 0;
    for (const auto &snap : sys->snapshots()) {
        EXPECT_GT(snap.tick, prev);
        prev = snap.tick;
        EXPECT_NE(snap.groups_json.find("\"l1_0\""),
                  std::string::npos);
    }
}

TEST(SystemObservability, StatsJsonDocumentComposes)
{
    auto sys = runTracedSystem(0, 200);
    std::ostringstream os;
    sys->writeStatsJson(os);
    const std::string json = os.str();
    expectBalancedJson(json);
    EXPECT_NE(json.find("\"groups\""), std::string::npos);
    EXPECT_NE(json.find("\"snapshots\""), std::string::npos);
    EXPECT_NE(json.find("\"tick\""), std::string::npos);
    EXPECT_NE(json.find("miss_latency"), std::string::npos);
}

TEST(SystemObservability, TracedSystemsAreSweepSafe)
{
    // Per-system sinks share nothing, so traced systems running
    // concurrently under the SweepRunner must record identical,
    // deterministic traces (the CI TSan job runs this test).
    harness::SweepRunner runner(4);
    std::vector<std::function<std::size_t()>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back([]() -> std::size_t {
            auto sys = runTracedSystem(
                static_cast<std::uint32_t>(trace::Flag::All));
            return sys->tracer().size();
        });
    }
    const std::vector<std::size_t> sizes = runner.map(std::move(tasks));
    ASSERT_EQ(sizes.size(), 8u);
    EXPECT_GT(sizes[0], 0u);
    for (std::size_t s : sizes)
        EXPECT_EQ(s, sizes[0]);
}
