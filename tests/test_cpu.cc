/**
 * @file
 * Core and store-buffer tests: forwarding, drain ordering, consistency-
 * model baseline behaviour (which stalls occur under SC/TSO/RMO).
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "tests/sim_test_util.hh"

using namespace fenceless;
using namespace fenceless::isa;
using namespace fenceless::test;

namespace
{

/** Store then immediately load the same address: must forward. */
isa::Program
forwardingProgram(Addr *out)
{
    Assembler as;
    const Addr var = as.word("var", 0);
    const Addr res = as.word("res", 0);
    as.li(a0, var);
    as.li(t0, 77);
    as.st(t0, a0);
    as.ld(t1, a0); // should forward from the SB
    as.li(a1, res);
    as.st(t1, a1);
    as.halt();
    *out = res;
    return as.finish();
}

std::uint64_t
coreStat(harness::System &sys, std::uint32_t i, const std::string &name)
{
    return sys.core(i).statGroup().scalarCount(name);
}

} // namespace

TEST(StoreBuffer, ForwardsFullContainment)
{
    Addr res = 0;
    isa::Program prog = forwardingProgram(&res);
    harness::System sys(testConfig(1), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.debugRead(res, 8), 77u);
    EXPECT_GE(coreStat(sys, 0, "sb_fwd_hits"), 1u);
}

TEST(StoreBuffer, SubwordForwarding)
{
    Assembler as;
    const Addr var = as.word("var", 0);
    const Addr res = as.word("res", 0);
    as.li(a0, var);
    as.li(t0, 0x1122334455667788ULL);
    as.st(t0, a0);
    as.ld(t1, a0, 4, 4); // upper 4 bytes, contained in the 8B store
    as.li(a1, res);
    as.st(t1, a1);
    as.halt();
    isa::Program prog = as.finish();

    harness::System sys(testConfig(1), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.debugRead(res, 8), 0x11223344u);
}

TEST(StoreBuffer, PartialOverlapStalls)
{
    Assembler as;
    const Addr var = as.word("var", 0);
    const Addr res = as.word("res", 0);
    as.li(a0, var);
    as.li(t0, 0xAB);
    as.st(t0, a0, 0, 1); // 1-byte store
    as.ld(t1, a0);       // 8-byte load overlapping it: conflict
    as.li(a1, res);
    as.st(t1, a1);
    as.halt();
    isa::Program prog = as.finish();

    harness::System sys(testConfig(1), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.debugRead(res, 8), 0xABu);
    EXPECT_GE(coreStat(sys, 0, "sb_fwd_conflicts"), 1u);
    EXPECT_GT(coreStat(sys, 0, "stall_fwd_conflict"), 0u);
}

TEST(Consistency, ScLoadsStallOnBufferedStores)
{
    Addr res = 0;
    isa::Program prog = forwardingProgram(&res);
    harness::System sys(testConfig(1, cpu::ConsistencyModel::SC), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.debugRead(res, 8), 77u);
    // Under SC the load waited for the buffered store to drain.
    EXPECT_GT(coreStat(sys, 0, "stall_sc_load_order"), 0u);
    EXPECT_EQ(coreStat(sys, 0, "sb_fwd_hits"), 0u);
}

TEST(Consistency, TsoLoadsBypassBufferedStores)
{
    Addr res = 0;
    isa::Program prog = forwardingProgram(&res);
    harness::System sys(testConfig(1, cpu::ConsistencyModel::TSO),
                        prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.debugRead(res, 8), 77u);
    EXPECT_EQ(coreStat(sys, 0, "stall_sc_load_order"), 0u);
}

namespace
{

/** Store to a (miss) address, then a full fence, then an ALU op. */
isa::Program
fenceProgram()
{
    Assembler as;
    const Addr var = as.word("var", 0);
    as.li(a0, var);
    as.li(t0, 1);
    as.st(t0, a0);
    as.fence();
    as.li(t1, 2);
    as.halt();
    return as.finish();
}

} // namespace

TEST(Consistency, FullFenceDrainsUnderTso)
{
    isa::Program prog = fenceProgram();
    harness::System sys(testConfig(1, cpu::ConsistencyModel::TSO),
                        prog);
    ASSERT_TRUE(sys.run());
    EXPECT_GT(coreStat(sys, 0, "stall_fence_drain"), 0u);
}

TEST(Consistency, FullFenceFreeUnderSc)
{
    // Under SC the ordering already holds; the fence must not stall.
    isa::Program prog = fenceProgram();
    harness::System sys(testConfig(1, cpu::ConsistencyModel::SC), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(coreStat(sys, 0, "stall_fence_drain"), 0u);
}

TEST(Consistency, AmoDrainsUnderTsoNotRmo)
{
    Assembler as;
    const Addr var = as.word("var", 0);
    const Addr other = as.word("other", 0);
    as.li(a0, var);
    as.li(a1, other);
    as.li(t0, 1);
    as.st(t0, a1); // buffered store to a different address
    as.li(t1, 5);
    as.amoadd(t2, t1, a0);
    as.halt();
    isa::Program prog = as.finish();

    {
        harness::System sys(testConfig(1, cpu::ConsistencyModel::TSO),
                            prog);
        ASSERT_TRUE(sys.run());
        EXPECT_GT(coreStat(sys, 0, "stall_amo_order"), 0u);
    }
    {
        harness::System sys(testConfig(1, cpu::ConsistencyModel::RMO),
                            prog);
        ASSERT_TRUE(sys.run());
        EXPECT_EQ(coreStat(sys, 0, "stall_amo_order"), 0u);
    }
}

TEST(Consistency, AmoWaitsForOverlappingStoreEverywhere)
{
    // Value dependency: the AMO must see the buffered store's value.
    Assembler as;
    const Addr var = as.word("var", 0);
    const Addr res = as.word("res", 0);
    as.li(a0, var);
    as.li(t0, 100);
    as.st(t0, a0);
    as.li(t1, 5);
    as.amoadd(t2, t1, a0); // must observe 100
    as.li(a1, res);
    as.st(t2, a1);
    as.halt();
    isa::Program prog = as.finish();

    for (auto model : {cpu::ConsistencyModel::SC,
                       cpu::ConsistencyModel::TSO,
                       cpu::ConsistencyModel::RMO}) {
        harness::System sys(testConfig(1, model), prog);
        ASSERT_TRUE(sys.run());
        EXPECT_EQ(sys.debugRead(res, 8), 100u)
            << consistencyModelName(model);
        EXPECT_EQ(sys.debugRead(var, 8), 105u)
            << consistencyModelName(model);
    }
}

TEST(Consistency, SbFullStalls)
{
    harness::SystemConfig cfg = testConfig(1);
    cfg.sb_size = 2;

    Assembler as;
    const Addr arr = as.alloc("arr", 64 * 64, 64);
    as.li(a0, arr);
    as.li(s0, 32);
    as.label("loop");
    as.st(s0, a0); // each store misses: the SB backs up
    as.addi(a0, a0, 64);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.halt();
    isa::Program prog = as.finish();

    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    EXPECT_GT(coreStat(sys, 0, "stall_sb_full"), 0u);
}

TEST(Consistency, RmoDrainsOutOfOrder)
{
    // A store that misses followed by stores that hit: under RMO the
    // hits may drain first, under TSO they wait behind the miss.
    Assembler as;
    const Addr hot = as.word("hot", 0);
    const Addr cold = as.alloc("cold", 64, 4096); // far away: miss
    as.li(a0, hot);
    as.ld(t0, a0); // warm the hot block (exclusive)
    as.li(a1, cold);
    as.li(t1, 1);
    as.st(t1, a1); // miss
    as.st(t1, a0); // hit
    as.st(t1, a0, 0, 4);
    as.halt();
    isa::Program prog = as.finish();

    auto run_runtime = [&](cpu::ConsistencyModel m) {
        harness::System sys(testConfig(1, m), prog);
        EXPECT_TRUE(sys.run());
        return sys.runtimeCycles();
    };
    // Out-of-order drain cannot be slower.
    EXPECT_LE(run_runtime(cpu::ConsistencyModel::RMO),
              run_runtime(cpu::ConsistencyModel::TSO));
}

TEST(Core, InstructionCountsExact)
{
    Assembler as;
    as.li(t0, 3);     // 1
    as.addi(t0, t0, 1); // 2
    as.nop();         // 3
    as.halt();        // 4
    isa::Program prog = as.finish();

    harness::System sys(testConfig(1), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.core(0).instret(), 4u);
}

TEST(Core, BranchAndJumpFlow)
{
    Assembler as;
    const Addr res = as.word("res", 0);
    as.li(t0, 0);
    as.li(s0, 10);
    as.label("loop");
    as.addi(t0, t0, 2);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.call("store_it");
    as.halt();
    as.label("store_it");
    as.li(a1, res);
    as.st(t0, a1);
    as.ret();
    isa::Program prog = as.finish();

    harness::System sys(testConfig(1), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.debugRead(res, 8), 20u);
}

TEST(Core, CsrCycleMonotonic)
{
    Assembler as;
    const Addr res = as.alloc("res", 16, 8);
    as.csrr(t0, Csr::Cycle);
    as.li(a0, res);
    as.st(t0, a0);
    as.csrr(t1, Csr::Cycle);
    as.st(t1, a0, 8);
    as.halt();
    isa::Program prog = as.finish();

    harness::System sys(testConfig(1), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_LT(sys.debugRead(res, 8), sys.debugRead(res + 8, 8));
}
