/**
 * @file
 * Tail-latency observability: per-request span tracing.
 *
 * The guarantees under test, in the order the ISSUE states them:
 *
 *  - sampling is a pure function of the shard-invariant request id, so
 *    the traced set -- and every derived artifact (stage-attribution
 *    table, top-K dossiers, "tailtrace" stat group) -- is
 *    byte-identical across --shards and --jobs values;
 *  - spans record stage-boundary events only, so the per-stage cycle
 *    sums tile the end-to-end latency EXACTLY, span by span and in the
 *    aggregate reconciliation line of --tail-report;
 *  - the top-K dossier selection is deterministic: (latency desc,
 *    request sequence asc), K respected;
 *  - with tracing off (tail_sample == 0) the subsystem contributes
 *    zero output bytes: no "tailtrace" stat group, no req_stage trace
 *    records, stats JSON byte-identical to a config that never heard
 *    of span tracing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "harness/system.hh"
#include "sim/reqtrace.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::reqtrace;

// ---------------------------------------------------------------------
// sampling: pure function of the request id
// ---------------------------------------------------------------------

TEST(ReqTraceSampling, RequestZeroNeverSampled)
{
    // req_id 0 marks control traffic (recalls) that has no issuing
    // request; it must never enter the sampled set, even at period 1.
    ReqTraceSink sink;
    sink.configure(1);
    EXPECT_FALSE(sink.sampled(0));
    EXPECT_TRUE(sink.sampled(1));
}

TEST(ReqTraceSampling, PeriodOneSamplesEverything)
{
    ReqTraceSink sink;
    sink.configure(1);
    for (std::uint64_t id = 1; id < 1000; ++id)
        EXPECT_TRUE(sink.sampled(id)) << id;
}

TEST(ReqTraceSampling, SampledSetIsADeterministicSubset)
{
    // The period-N set must be a subset of the period-1 set selected
    // by the id mix alone -- no state, no order dependence.
    ReqTraceSink s64;
    s64.configure(64);
    std::set<std::uint64_t> first, second;
    for (std::uint64_t id = 1; id < 100000; ++id) {
        if (s64.sampled(id))
            first.insert(id);
    }
    for (std::uint64_t id = 99999; id >= 1; --id) {
        if (s64.sampled(id))
            second.insert(id);
    }
    EXPECT_EQ(first, second);
    // splitmix64 mixes well enough that the rate lands near 1/64.
    EXPECT_GT(first.size(), 99999 / 64 / 2);
    EXPECT_LT(first.size(), 99999 / 64 * 2);
    // The selection is the hash-threshold slice (a compare, not a
    // modulo, so the hot-path predicate never divides).
    for (std::uint64_t id : first)
        EXPECT_LE(mixReqId(id), ~0ULL / 64);
}

TEST(ReqTraceSampling, DisabledSinkRecordsNothing)
{
    ReqTraceSink sink;
    EXPECT_FALSE(sink.enabled());
    EXPECT_EQ(sink.ifEnabled(), nullptr);
    EXPECT_FALSE(sink.sampled(1));
}

// ---------------------------------------------------------------------
// span assembly from boundary events
// ---------------------------------------------------------------------

namespace
{

SpanEvent
ev(std::uint64_t req, Tick tick, Stage stage, std::uint32_t aux = 0,
   std::uint8_t flags = 0)
{
    SpanEvent e;
    e.req_id = req;
    e.tick = tick;
    e.stage = static_cast<std::uint8_t>(stage);
    e.aux = aux;
    e.flags = flags;
    return e;
}

} // namespace

TEST(ReqTraceAssembly, BoundaryEventsTileTheLatency)
{
    // A request that goes miss -> directory -> DRAM -> reply -> fill:
    // each stage owns [its tick, next tick), so the stage cycles sum
    // to done - issue with nothing counted twice and nothing dropped.
    std::vector<SpanEvent> events = {
        ev(7, 100, Stage::ReqNet),
        ev(7, 108, Stage::DirQueue),
        ev(7, 110, Stage::DirAccess),
        ev(7, 116, Stage::Dram),
        ev(7, 196, Stage::ReplyNet),
        ev(7, 204, Stage::FillWait),
        ev(7, 205, Stage::Done),
    };
    SpanSet set = assembleSpans(std::move(events), 1);
    ASSERT_EQ(set.spans.size(), 1u);
    EXPECT_EQ(set.incomplete, 0u);
    const Span &s = set.spans[0];
    EXPECT_EQ(s.issue, 100u);
    EXPECT_EQ(s.done, 205u);
    EXPECT_EQ(s.latency(), 105u);
    ASSERT_EQ(s.stages.size(), 6u);
    Tick sum = 0;
    for (const SpanStage &st : s.stages)
        sum += st.cycles;
    EXPECT_EQ(sum, s.latency());
    EXPECT_EQ(s.stages.front().stage, Stage::ReqNet);
    EXPECT_EQ(s.stages.front().cycles, 8u);
    EXPECT_EQ(s.stages.back().stage, Stage::FillWait);
    EXPECT_EQ(s.stages.back().cycles, 1u);
}

TEST(ReqTraceAssembly, RetryLoopsStayReconciled)
{
    // An invalidation racing the fill forces a re-request: the span
    // grows extra ReqNet.. segments but keeps tiling [issue, done].
    std::vector<SpanEvent> events = {
        ev(9, 50, Stage::ReqNet),
        ev(9, 60, Stage::DirAccess),
        ev(9, 70, Stage::ReplyNet),
        ev(9, 80, Stage::FillWait),
        ev(9, 81, Stage::ReqNet, 0, span_flag_retry),
        ev(9, 95, Stage::DirAccess),
        ev(9, 105, Stage::ReplyNet),
        ev(9, 115, Stage::FillWait),
        ev(9, 116, Stage::Done),
    };
    SpanSet set = assembleSpans(std::move(events), 1);
    ASSERT_EQ(set.spans.size(), 1u);
    const Span &s = set.spans[0];
    EXPECT_EQ(s.retries, 1u);
    Tick sum = 0;
    for (const SpanStage &st : s.stages)
        sum += st.cycles;
    EXPECT_EQ(sum, s.latency());
    EXPECT_EQ(s.latency(), 66u);
}

TEST(ReqTraceAssembly, WaiterEventsBecomeSeparateSpans)
{
    // Two coalesced waiters queue behind a traced primary: each gets
    // its own single-stage L1Queue span ending at the primary's fill.
    std::vector<SpanEvent> events = {
        ev(3, 10, Stage::ReqNet),
        ev(3, 12, Stage::L1Queue, 111, span_flag_waiter),
        ev(3, 20, Stage::DirAccess),
        ev(3, 25, Stage::L1Queue, 222, span_flag_waiter),
        ev(3, 40, Stage::ReplyNet),
        ev(3, 48, Stage::FillWait),
        ev(3, 50, Stage::Done, 2),
    };
    SpanSet set = assembleSpans(std::move(events), 1);
    ASSERT_EQ(set.spans.size(), 3u);
    const Span &primary = set.spans[0];
    EXPECT_FALSE(primary.waiter);
    EXPECT_EQ(primary.waiters, 2u);
    std::size_t waiters = 0;
    for (const Span &s : set.spans) {
        if (!s.waiter)
            continue;
        ++waiters;
        ASSERT_EQ(s.stages.size(), 1u);
        EXPECT_EQ(s.stages[0].stage, Stage::L1Queue);
        EXPECT_EQ(s.done, primary.done);
        EXPECT_EQ(s.stages[0].cycles, s.latency());
    }
    EXPECT_EQ(waiters, 2u);
}

TEST(ReqTraceAssembly, UnfinishedRequestsAreCountedNotInvented)
{
    // A request still in flight at the end of the run has no Done
    // event: it must not fabricate a span.
    std::vector<SpanEvent> events = {
        ev(5, 10, Stage::ReqNet),
        ev(5, 20, Stage::DirAccess),
    };
    SpanSet set = assembleSpans(std::move(events), 1);
    EXPECT_TRUE(set.spans.empty());
    EXPECT_EQ(set.incomplete, 1u);
}

TEST(ReqTraceTopK, OrderedByLatencyThenSequence)
{
    SpanSet set;
    auto mk = [](std::uint64_t req, Tick issue, Tick done, bool waiter) {
        Span s;
        s.req_id = req;
        s.issue = issue;
        s.done = done;
        s.waiter = waiter;
        return s;
    };
    const std::uint64_t c0 = 1ULL << 40; // core 0, seq starts at 1
    set.spans.push_back(mk(c0 + 1, 0, 50, false));
    set.spans.push_back(mk(c0 + 2, 0, 90, false));
    set.spans.push_back(mk(c0 + 3, 10, 100, false)); // ties req 2
    set.spans.push_back(mk(c0 + 4, 0, 500, true));   // waiter: excluded
    set.spans.push_back(mk(c0 + 5, 0, 200, false));

    const auto top = topK(set, 3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0]->req_id, c0 + 5); // 200 cycles
    EXPECT_EQ(top[1]->req_id, c0 + 2); // 90, earlier seq wins the tie
    EXPECT_EQ(top[2]->req_id, c0 + 3); // 90
    // K larger than the population returns every primary.
    EXPECT_EQ(topK(set, 100).size(), 4u);
}

// ---------------------------------------------------------------------
// whole-system runs
// ---------------------------------------------------------------------

namespace
{

/** Every tail-observability artifact of one run. */
struct TailRun
{
    bool completed = false;
    std::string stats;    //!< writeStatsJson (sim_mode stripped)
    std::string report;   //!< writeTailReport
    std::string outliers; //!< writeOutliers
    std::string trace;    //!< exportTrace
};

/** Erase the self-describing "sim_mode" stanza (varies with shards). */
std::string
stripSimMode(std::string s)
{
    const std::string key = ", \"sim_mode\": {";
    for (auto pos = s.find(key); pos != std::string::npos;
         pos = s.find(key)) {
        const auto end = s.find('}', pos);
        EXPECT_NE(end, std::string::npos);
        if (end == std::string::npos)
            break;
        s.erase(pos, end - pos + 1);
    }
    return s;
}

harness::SystemConfig
tailConfig(std::uint32_t shards, std::uint64_t period)
{
    harness::SystemConfig cfg;
    cfg.num_cores = 8;
    cfg.model = cpu::ConsistencyModel::TSO;
    cfg.withSpeculation().withShards(shards);
    if (period)
        cfg.withTailTrace(period, 5);
    return cfg;
}

TailRun
runTail(std::uint32_t shards, std::uint64_t period)
{
    const harness::SystemConfig cfg = tailConfig(shards, period);
    workload::SpinlockCrit wl;
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    TailRun r;
    r.completed = sys.run();
    {
        std::ostringstream os;
        sys.writeStatsJson(os);
        r.stats = stripSimMode(os.str());
    }
    {
        std::ostringstream os;
        sys.writeTailReport(os);
        r.report = os.str();
    }
    {
        std::ostringstream os;
        sys.writeOutliers(os);
        r.outliers = stripSimMode(os.str());
    }
    {
        std::ostringstream os;
        sys.exportTrace(os);
        r.trace = stripSimMode(os.str());
    }
    return r;
}

} // namespace

TEST(TailTrace, EveryMissReconcilesExactly)
{
    // period 1: every miss traced; each span's stage cycles must sum
    // to its end-to-end latency, and the aggregate attribution must
    // reconcile to the cycle.
    const harness::SystemConfig cfg = tailConfig(1, 1);
    workload::SpinlockCrit wl;
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());

    const SpanSet &set = sys.tailSpans();
    ASSERT_GT(set.spans.size(), 0u);
    std::uint64_t e2e = 0;
    for (const Span &s : set.spans) {
        Tick sum = 0;
        for (const SpanStage &st : s.stages)
            sum += st.cycles;
        EXPECT_EQ(sum, s.latency()) << "req " << s.req_id;
        e2e += s.latency();
    }
    const TailAttribution &at = sys.tailAttribution();
    std::uint64_t stage_cycles = 0;
    for (const StageRow &row : at.rows)
        stage_cycles += row.cycles;
    EXPECT_EQ(stage_cycles, at.e2e_cycles);
    EXPECT_EQ(at.e2e_cycles, e2e);
    EXPECT_EQ(at.spans, set.spans.size());

    std::ostringstream os;
    sys.writeTailReport(os);
    EXPECT_NE(os.str().find("(reconciled exactly)"), std::string::npos)
        << os.str();
    EXPECT_EQ(os.str().find("MISMATCH"), std::string::npos) << os.str();
}

TEST(TailTrace, ArtifactsByteIdenticalAcrossShardCounts)
{
    const TailRun ref = runTail(1, 1);
    ASSERT_TRUE(ref.completed);
    EXPECT_NE(ref.stats.find("\"tailtrace\""), std::string::npos);
    EXPECT_NE(ref.report.find("=== tail report"), std::string::npos);
    EXPECT_NE(ref.outliers.find("\"outliers\""), std::string::npos);
    for (std::uint32_t shards : {2u, 4u}) {
        const TailRun got = runTail(shards, 1);
        ASSERT_TRUE(got.completed) << shards << " shards";
        EXPECT_EQ(got.stats, ref.stats) << shards << " shards";
        EXPECT_EQ(got.report, ref.report) << shards << " shards";
        EXPECT_EQ(got.outliers, ref.outliers) << shards << " shards";
        EXPECT_EQ(got.trace, ref.trace) << shards << " shards";
    }
}

TEST(TailTrace, SampledSubsetByteIdenticalAcrossShardCounts)
{
    // The interesting period: a proper subset of misses is traced, so
    // identity requires the SAME requests to be picked on every shard
    // layout -- ids must be shard-invariant, not just counts.
    const TailRun ref = runTail(1, 4);
    ASSERT_TRUE(ref.completed);
    for (std::uint32_t shards : {2u, 4u}) {
        const TailRun got = runTail(shards, 4);
        EXPECT_EQ(got.report, ref.report) << shards << " shards";
        EXPECT_EQ(got.outliers, ref.outliers) << shards << " shards";
        EXPECT_EQ(got.stats, ref.stats) << shards << " shards";
    }
}

TEST(TailTrace, ByteIdenticalInsideParallelSweep)
{
    // Span tracing composes with sweep-level host parallelism: the
    // same tasks under --jobs=1 and --jobs=4 produce the same bytes.
    auto make_tasks = [] {
        std::vector<std::function<std::string()>> tasks;
        for (std::uint32_t shards : {1u, 2u, 4u}) {
            tasks.push_back([shards]() -> std::string {
                const TailRun r = runTail(shards, 1);
                return r.report + r.outliers;
            });
        }
        return tasks;
    };
    harness::SweepRunner serial(1);
    harness::SweepRunner parallel(4);
    const auto seq = serial.map(make_tasks());
    const auto par = parallel.map(make_tasks());
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i], par[i]) << "task " << i;
        EXPECT_EQ(seq[i], seq[0]) << "shard count leaked";
    }
}

TEST(TailTrace, TopKDossiersDeterministicAndOrdered)
{
    const TailRun a = runTail(2, 1);
    const TailRun b = runTail(2, 1);
    ASSERT_TRUE(a.completed);
    EXPECT_EQ(a.outliers, b.outliers);

    // The dossier list respects K and is sorted by latency desc.
    std::vector<std::uint64_t> latencies;
    std::istringstream is(a.outliers);
    std::string line;
    while (std::getline(is, line)) {
        const auto pos = line.find("\"latency\": ");
        if (pos != std::string::npos)
            latencies.push_back(std::stoull(line.substr(pos + 11)));
    }
    ASSERT_FALSE(latencies.empty());
    EXPECT_LE(latencies.size(), 5u); // tailConfig passes outliers=5
    EXPECT_TRUE(std::is_sorted(latencies.rbegin(), latencies.rend()))
        << a.outliers;
    // Dossiers carry a symbolized PC and the owning directory bank.
    EXPECT_NE(a.outliers.find("\"pc_sym\""), std::string::npos);
    EXPECT_NE(a.outliers.find("\"dir_bank\""), std::string::npos);
}

TEST(TailTrace, PerfettoExportCarriesSpanStages)
{
    const TailRun r = runTail(1, 1);
    ASSERT_TRUE(r.completed);
    // Stage slices render under the recording component's track with
    // the stage name, chained by "span"-category flow arrows.
    EXPECT_NE(r.trace.find("\"req_net\""), std::string::npos);
    EXPECT_NE(r.trace.find("\"cat\": \"span\""), std::string::npos);
}

// ---------------------------------------------------------------------
// off mode: zero output bytes
// ---------------------------------------------------------------------

TEST(TailTrace, OffModeContributesZeroOutputBytes)
{
    const TailRun off = runTail(1, 0);
    ASSERT_TRUE(off.completed);
    EXPECT_EQ(off.stats.find("tailtrace"), std::string::npos);
    EXPECT_EQ(off.trace.find("req_stage"), std::string::npos);
    EXPECT_EQ(off.trace.find("\"cat\": \"span\""), std::string::npos);
    EXPECT_NE(off.report.find("span tracing was off"),
              std::string::npos);
    // An off-mode dossier request yields an empty outlier list, not an
    // error -- and nothing else.
    EXPECT_NE(off.outliers.find("\"outliers\": [\n  ]"),
              std::string::npos)
        << off.outliers;
}

TEST(TailTrace, StatGroupMatchesAssembledSpans)
{
    const harness::SystemConfig cfg = tailConfig(4, 1);
    workload::SpinlockCrit wl;
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());

    const auto *group = sys.stats().findGroup("tailtrace");
    ASSERT_NE(group, nullptr);
    std::uint64_t primaries = 0, waiters = 0;
    for (const Span &s : sys.tailSpans().spans)
        ++(s.waiter ? waiters : primaries);
    EXPECT_EQ(group->scalarCount("sampled_spans"), primaries);
    EXPECT_EQ(group->scalarCount("waiter_spans"), waiters);
    EXPECT_GT(primaries, 0u);
    const auto *e2e = group->findDistribution("e2e_latency");
    ASSERT_NE(e2e, nullptr);
    EXPECT_EQ(e2e->samples(), sys.tailSpans().spans.size());
}
