/**
 * @file
 * Memory-system tests: the cache array, then whole-protocol behaviour
 * driven through small guest programs (hits, misses, evictions,
 * ownership migration, invalidations), with coherence audits after
 * every run.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "mem/cache_array.hh"
#include "tests/sim_test_util.hh"

using namespace fenceless;
using namespace fenceless::isa;
using namespace fenceless::test;

// ---------------------------------------------------------------------
// CacheArray
// ---------------------------------------------------------------------

namespace
{

struct TestBlock : mem::CacheBlockBase
{
    int tag_state = 0;
};

} // namespace

TEST(CacheArray, Geometry)
{
    mem::CacheArray<TestBlock> arr(4096, 4, 64);
    EXPECT_EQ(arr.numSets(), 16u);
    EXPECT_EQ(arr.numBlocks(), 64u);
    EXPECT_EQ(arr.blockSize(), 64u);
    EXPECT_EQ(arr.blockAlign(0x12345), 0x12340u);
    // Same set every numSets * blockSize bytes.
    EXPECT_EQ(arr.setIndex(0x0), arr.setIndex(16 * 64));
    EXPECT_NE(arr.setIndex(0x0), arr.setIndex(64));
}

TEST(CacheArray, FindAndTouch)
{
    mem::CacheArray<TestBlock> arr(4096, 4, 64);
    EXPECT_EQ(arr.find(0x100), nullptr);
    TestBlock *b = arr.findFreeWay(0x100);
    ASSERT_NE(b, nullptr);
    b->valid = true;
    b->block_addr = 0x100;
    arr.touch(*b);
    EXPECT_EQ(arr.find(0x100), b);
    EXPECT_EQ(arr.find(0x120), b); // same block
    EXPECT_EQ(arr.find(0x140), nullptr);
}

TEST(CacheArray, LruVictim)
{
    mem::CacheArray<TestBlock> arr(4 * 64, 4, 64); // one set, 4 ways
    for (Addr a = 0; a < 4 * 64; a += 64) {
        TestBlock *b = arr.findFreeWay(a);
        ASSERT_NE(b, nullptr);
        b->valid = true;
        b->block_addr = a;
        arr.touch(*b);
    }
    EXPECT_EQ(arr.findFreeWay(0x400), nullptr);
    // Touch block 0 so block 64 becomes LRU.
    arr.touch(*arr.find(0));
    TestBlock *victim =
        arr.findVictim(0x400, [](const TestBlock &) { return true; });
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->block_addr, 64u);
}

TEST(CacheArray, VictimPredicateFilters)
{
    mem::CacheArray<TestBlock> arr(4 * 64, 4, 64);
    for (Addr a = 0; a < 4 * 64; a += 64) {
        TestBlock *b = arr.findFreeWay(a);
        b->valid = true;
        b->block_addr = a;
        b->tag_state = (a == 64) ? 1 : 0;
        arr.touch(*b);
    }
    TestBlock *victim = arr.findVictim(
        0x400, [](const TestBlock &b) { return b.tag_state == 1; });
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->block_addr, 64u);
    victim = arr.findVictim(
        0x400, [](const TestBlock &b) { return b.tag_state == 2; });
    EXPECT_EQ(victim, nullptr);
}

// ---------------------------------------------------------------------
// Whole-protocol behaviour
// ---------------------------------------------------------------------

namespace
{

/** Single core stores a value, then loads it back elsewhere. */
isa::Program
storeLoadProgram(Addr *var_out, Addr *out_out)
{
    Assembler as;
    const Addr var = as.word("var", 5);
    const Addr out = as.word("out", 0);
    as.li(a0, var);
    as.ld(t0, a0);
    as.addi(t0, t0, 37);
    as.st(t0, a0);
    as.ld(t1, a0);
    as.li(a1, out);
    as.st(t1, a1);
    as.halt();
    *var_out = var;
    *out_out = out;
    return as.finish();
}

} // namespace

TEST(Protocol, SingleCoreStoreLoad)
{
    Addr var = 0, out = 0;
    isa::Program prog = storeLoadProgram(&var, &out);
    harness::System sys(testConfig(1), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.debugRead(var, 8), 42u);
    EXPECT_EQ(sys.debugRead(out, 8), 42u);
    sys.auditCoherence();
}

TEST(Protocol, FirstReadGrantsExclusive)
{
    Addr var = 0, out = 0;
    isa::Program prog = storeLoadProgram(&var, &out);
    harness::System sys(testConfig(1), prog);
    ASSERT_TRUE(sys.run());
    // The only core wrote the block: it must hold it in M.
    const mem::L1Block *blk = sys.l1(0).findBlock(var);
    ASSERT_NE(blk, nullptr);
    EXPECT_EQ(blk->state, mem::L1State::M);
    EXPECT_TRUE(blk->dirty);
}

TEST(Protocol, EvictionsWriteBack)
{
    // Touch far more blocks than a tiny L1 holds; values must survive.
    Assembler as;
    const std::uint64_t blocks = 512; // >> 4KB L1
    const Addr arr = as.alloc("arr", blocks * 64, 64);
    as.li(a0, arr);
    as.li(s0, blocks);
    as.li(t1, 0);
    as.label("loop");
    as.addi(t1, t1, 3);
    as.st(t1, a0);
    as.addi(a0, a0, 64);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.halt();
    isa::Program prog = as.finish();

    harness::System sys(testConfig(1), prog);
    ASSERT_TRUE(sys.run());
    for (std::uint64_t i = 0; i < blocks; ++i)
        EXPECT_EQ(sys.debugRead(arr + i * 64, 8), (i + 1) * 3);
    EXPECT_GT(sys.l1(0).statGroup().scalarCount("evictions"), 0u);
    sys.auditCoherence();
}

TEST(Protocol, OwnershipMigration)
{
    // Core 0 writes, then sets a flag; core 1 waits and reads.
    Assembler as;
    const Addr var = as.paddedWord("var", 0);
    const Addr flag = as.paddedWord("flag", 0);
    const Addr out = as.paddedWord("out", 0);
    as.li(a0, var);
    as.li(a1, flag);
    as.li(a2, out);
    as.bne(tp, x0, "reader");
    as.li(t0, 123);
    as.st(t0, a0);
    as.fenceRelease();
    as.li(t0, 1);
    as.st(t0, a1);
    as.halt();
    as.label("reader");
    as.ld(t0, a1);
    as.beq(t0, x0, "reader");
    as.fenceAcquire();
    as.ld(t1, a0);
    as.st(t1, a2);
    as.halt();
    isa::Program prog = as.finish();

    harness::System sys(testConfig(2), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.debugRead(out, 8), 123u);
    // Probes flowed: the directory forwarded at least one request.
    EXPECT_GT(sys.directory().statGroup().scalarCount("fwds_sent") +
              sys.directory().statGroup().scalarCount("invs_sent"), 0u);
    sys.auditCoherence();
}

TEST(Protocol, ContendedAtomicsAreAtomic)
{
    Assembler as;
    const Addr counter = as.paddedWord("counter", 0);
    as.li(a0, counter);
    as.li(s0, 500);
    as.label("loop");
    as.li(t1, 1);
    as.amoadd(t0, t1, a0);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.halt();
    isa::Program prog = as.finish();

    harness::System sys(testConfig(4), prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.debugRead(counter, 8), 2000u);
    sys.auditCoherence();
}

TEST(Protocol, FalseSharingStillCoherent)
{
    // All threads write adjacent words of the same block, repeatedly.
    Assembler as;
    const Addr block = as.alloc("block", 64, 64);
    as.li(a0, block);
    as.slli(t0, tp, 3);
    as.add(a0, a0, t0); // my word
    as.li(s0, 200);
    as.label("loop");
    as.ld(t1, a0);
    as.addi(t1, t1, 1);
    as.st(t1, a0);
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "loop");
    as.halt();
    isa::Program prog = as.finish();

    harness::System sys(testConfig(4), prog);
    ASSERT_TRUE(sys.run());
    for (std::uint32_t t = 0; t < 4; ++t)
        EXPECT_EQ(sys.debugRead(block + t * 8, 8), 200u);
    // The block ping-ponged: invalidation-based ownership transfers.
    EXPECT_GT(sys.directory().statGroup().scalarCount("fwds_sent"), 0u);
    sys.auditCoherence();
}

TEST(Protocol, SmallL2ForcesRecalls)
{
    harness::SystemConfig cfg = testConfig(2);
    // An L1 big enough to keep the whole working set resident over an
    // L2 smaller than it: inclusivity forces the directory to recall
    // L1 copies to make room.
    cfg.l2.size = 8 * 1024;
    cfg.l1.size = 32 * 1024;

    Assembler as;
    const std::uint64_t blocks = 256;
    const Addr arr = as.alloc("arr", blocks * 64, 64);
    const Addr sums = as.alloc("sums", 2 * 64, 64);
    // Both threads sweep the array twice, summing and bumping.
    as.li(s0, 2);
    as.label("sweep");
    as.li(a0, arr);
    as.li(s1, blocks);
    as.li(s2, 0);
    as.label("loop");
    as.ld(t0, a0);
    as.add(s2, s2, t0);
    as.addi(a0, a0, 64);
    as.addi(s1, s1, -1);
    as.bne(s1, x0, "loop");
    as.addi(s0, s0, -1);
    as.bne(s0, x0, "sweep");
    as.li(a1, sums);
    as.slli(t0, tp, 6);
    as.add(a1, a1, t0);
    as.st(s2, a1);
    as.halt();
    isa::Program prog = as.finish();

    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    EXPECT_GT(sys.directory().statGroup().scalarCount("recalls"), 0u);
    sys.auditCoherence();
}

TEST(Protocol, NetworkCountsTraffic)
{
    Addr var = 0, out = 0;
    isa::Program prog = storeLoadProgram(&var, &out);
    harness::System sys(testConfig(1), prog);
    ASSERT_TRUE(sys.run());
    const auto *net = sys.stats().findGroup("network");
    ASSERT_NE(net, nullptr);
    EXPECT_GT(net->scalarCount("msgs"), 0u);
    EXPECT_GT(net->scalarCount("bytes"), net->scalarCount("msgs") * 8);
}
