/**
 * @file
 * Topology-layer unit tests: ring/mesh geometry and hop counts, the
 * deterministic direction tie-break, the exact link sequences XY and
 * ring routing produce, and end-to-end arrival timing through a real
 * Network instance.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/network.hh"
#include "sim/sim_object.hh"

using namespace fenceless;
using namespace fenceless::mem;

namespace
{

std::vector<std::uint32_t>
routeLinks(Topology t, std::uint32_t n, NodeId s, NodeId d)
{
    std::vector<std::uint32_t> links;
    forEachRouteLink(t, n, s, d,
                     [&](std::uint32_t link) { links.push_back(link); });
    return links;
}

} // namespace

TEST(Topology, Names)
{
    EXPECT_STREQ(topologyName(Topology::Crossbar), "crossbar");
    EXPECT_STREQ(topologyName(Topology::Ring), "ring");
    EXPECT_STREQ(topologyName(Topology::Mesh), "mesh");

    Topology t = Topology::Crossbar;
    EXPECT_TRUE(parseTopology("mesh", t));
    EXPECT_EQ(t, Topology::Mesh);
    EXPECT_TRUE(parseTopology("ring", t));
    EXPECT_EQ(t, Topology::Ring);
    EXPECT_TRUE(parseTopology("crossbar", t));
    EXPECT_EQ(t, Topology::Crossbar);
    EXPECT_FALSE(parseTopology("torus", t));
}

TEST(Topology, MeshDimsCoverAllNodes)
{
    for (std::uint32_t n = 2; n <= 130; ++n) {
        const MeshDims d = meshDims(n);
        EXPECT_GE(d.w * d.h, n) << "n=" << n;
        // Minimal width: one column less would not fit n nodes.
        EXPECT_LT(static_cast<std::uint64_t>(d.w - 1) * (d.w - 1), n)
            << "n=" << n;
        // Minimal height for that width.
        EXPECT_LT(static_cast<std::uint64_t>(d.w) * (d.h - 1), n)
            << "n=" << n;
    }
    EXPECT_EQ(meshDims(4).w, 2u);
    EXPECT_EQ(meshDims(4).h, 2u);
    EXPECT_EQ(meshDims(9).w, 3u);
    EXPECT_EQ(meshDims(9).h, 3u);
    // 64 cores + 8 directory banks: a 9x8 grid.
    EXPECT_EQ(meshDims(72).w, 9u);
    EXPECT_EQ(meshDims(72).h, 8u);
}

TEST(Topology, RingHops)
{
    EXPECT_EQ(ringHops(8, 0, 0), 0u);
    EXPECT_EQ(ringHops(8, 0, 1), 1u);
    EXPECT_EQ(ringHops(8, 0, 4), 4u); // antipode
    EXPECT_EQ(ringHops(8, 0, 5), 3u); // shorter counter-clockwise
    EXPECT_EQ(ringHops(8, 7, 0), 1u); // wraps
    EXPECT_EQ(ringHops(3, 2, 0), 1u);
}

TEST(Topology, RingTieBreakIsClockwise)
{
    // The antipode is equidistant both ways; the route must be the
    // same on every host and in every shard placement, so ties fix on
    // clockwise.
    EXPECT_TRUE(ringClockwise(8, 0, 4));
    EXPECT_TRUE(ringClockwise(8, 1, 5));
    EXPECT_TRUE(ringClockwise(4, 3, 1));
    // Strictly shorter directions are taken regardless.
    EXPECT_TRUE(ringClockwise(8, 0, 3));
    EXPECT_FALSE(ringClockwise(8, 0, 5));
}

TEST(Topology, MeshHopsIsManhattanDistance)
{
    // 3x3 mesh: node = y * 3 + x.
    EXPECT_EQ(meshHops(9, 0, 0), 0u);
    EXPECT_EQ(meshHops(9, 0, 8), 4u); // corner to corner
    EXPECT_EQ(meshHops(9, 0, 4), 2u); // corner to center
    EXPECT_EQ(meshHops(9, 6, 2), 4u);
    // Distance is symmetric even though routes differ.
    for (NodeId s = 0; s < 9; ++s) {
        for (NodeId d = 0; d < 9; ++d)
            EXPECT_EQ(meshHops(9, s, d), meshHops(9, d, s));
    }
}

TEST(Topology, CrossbarAlwaysOneHop)
{
    EXPECT_EQ(topologyHops(Topology::Crossbar, 9, 0, 8), 1u);
    EXPECT_EQ(topologyHops(Topology::Crossbar, 2, 1, 0), 1u);
    EXPECT_TRUE(routeLinks(Topology::Crossbar, 9, 0, 8).empty());
}

TEST(Topology, RingRouteLinkSequence)
{
    // 4-ring antipode 0 -> 2: tie, so clockwise through node 1.
    // Link id = node * 4 + direction (0 = clockwise).
    const std::vector<std::uint32_t> cw{0 * 4 + 0, 1 * 4 + 0};
    EXPECT_EQ(routeLinks(Topology::Ring, 4, 0, 2), cw);

    // 0 -> 3 is one counter-clockwise hop (direction 1).
    const std::vector<std::uint32_t> ccw{0 * 4 + 1};
    EXPECT_EQ(routeLinks(Topology::Ring, 4, 0, 3), ccw);

    EXPECT_TRUE(routeLinks(Topology::Ring, 4, 2, 2).empty());
}

TEST(Topology, MeshRouteIsXThenY)
{
    // 2x2 mesh, 0 (0,0) -> 3 (1,1): east out of node 0, then +y out
    // of node 1.  XY routing never takes the y-first alternative.
    const std::vector<std::uint32_t> expected{0 * 4 + 0, 1 * 4 + 2};
    EXPECT_EQ(routeLinks(Topology::Mesh, 4, 0, 3), expected);

    // 3 -> 0 reverses: west out of node 3, then -y out of node 2.
    const std::vector<std::uint32_t> back{3 * 4 + 1, 2 * 4 + 3};
    EXPECT_EQ(routeLinks(Topology::Mesh, 4, 3, 0), back);

    // Route length always equals the hop count.
    for (NodeId s = 0; s < 9; ++s) {
        for (NodeId d = 0; d < 9; ++d) {
            EXPECT_EQ(routeLinks(Topology::Mesh, 9, s, d).size(),
                      meshHops(9, s, d));
        }
    }
}

namespace
{

/** Records each delivered message and its arrival tick. */
class RecordingEndpoint : public MsgReceiver
{
  public:
    explicit RecordingEndpoint(sim::SimContext &ctx) : ctx_(ctx) {}

    void
    receiveMsg(const Msg &msg) override
    {
        arrivals.push_back({ctx_.curTick(), msg.hops});
    }

    struct Arrival
    {
        Tick tick;
        std::uint8_t hops;
    };
    std::vector<Arrival> arrivals;

  private:
    sim::SimContext &ctx_;
};

} // namespace

TEST(Topology, RingArrivalTiming)
{
    sim::SimContext ctx;
    Network::Params params;
    params.topology = Topology::Ring;
    params.num_nodes = 4;
    params.hop_latency = 3;
    params.link_bytes_per_cycle = 16;
    Network net(ctx, "network", params);

    RecordingEndpoint ep(ctx);
    net.registerEndpoint(2, &ep);

    // Header-only message (8 bytes): 2 hops * 3 cycles + 1 cycle of
    // serialization = arrival at tick 7.
    Msg msg;
    msg.type = MsgType::GetS;
    msg.src = 0;
    msg.dst = 2;
    msg.block_addr = 0x40;
    net.send(std::move(msg));
    ctx.eventq.run();

    ASSERT_EQ(ep.arrivals.size(), 1u);
    EXPECT_EQ(ep.arrivals[0].tick, 7u);
    EXPECT_EQ(ep.arrivals[0].hops, 2);

    // A second message on the same channel is FIFO-clamped behind the
    // first arrival plus its serialization cycle.
    Msg msg2;
    msg2.type = MsgType::GetS;
    msg2.src = 0;
    msg2.dst = 2;
    msg2.block_addr = 0x80;
    net.send(std::move(msg2));
    ctx.eventq.run();

    ASSERT_EQ(ep.arrivals.size(), 2u);
    EXPECT_EQ(ep.arrivals[1].tick, 14u);
}

TEST(Topology, MeshPartialLastRowRoutesThroughEmptySlots)
{
    // 24 nodes on a 5x5 grid leave slot 24 (4,4) empty.  XY routes may
    // still cross it as a router -- e.g. (0,4) -> (4,3) walks row 4 out
    // to x=4 and then turns -y out of the empty corner.  routerSlots()
    // must cover the full grid or that turn indexes past the link
    // arrays.
    EXPECT_EQ(routerSlots(Topology::Mesh, 24), 25u);
    EXPECT_EQ(routerSlots(Topology::Ring, 24), 24u);
    EXPECT_EQ(routerSlots(Topology::Crossbar, 24), 24u);

    const std::vector<std::uint32_t> links =
        routeLinks(Topology::Mesh, 24, 20, 19);
    ASSERT_EQ(links.size(), meshHops(24, 20, 19));
    EXPECT_EQ(links.back(), 24u * 4 + 3); // -y out of the empty corner
    for (std::uint32_t link : links)
        EXPECT_LT(link, routerSlots(Topology::Mesh, 24) * 4);

    // End-to-end through a real Network: the send must not corrupt the
    // link counters and the fold must see the empty-slot link.
    sim::SimContext ctx;
    Network::Params params;
    params.topology = Topology::Mesh;
    params.num_nodes = 24;
    params.hop_latency = 2;
    Network net(ctx, "network", params);
    RecordingEndpoint ep(ctx);
    net.registerEndpoint(19, &ep);

    Msg msg;
    msg.type = MsgType::GetS;
    msg.src = 20;
    msg.dst = 19;
    msg.block_addr = 0x40;
    net.send(std::move(msg));
    ctx.eventq.run();

    ASSERT_EQ(ep.arrivals.size(), 1u);
    EXPECT_EQ(ep.arrivals[0].hops, 5);
    net.finalizeStats();
    EXPECT_EQ(net.statGroup().scalarCount("hops"), 5u);
    EXPECT_EQ(net.statGroup().scalarCount("links_used"), 5u);
}

TEST(Topology, MeshHopAndLinkStatsFold)
{
    sim::SimContext ctx;
    Network::Params params;
    params.topology = Topology::Mesh;
    params.num_nodes = 4;
    params.hop_latency = 2;
    Network net(ctx, "network", params);

    RecordingEndpoint ep(ctx);
    net.registerEndpoint(3, &ep);

    Msg msg;
    msg.type = MsgType::GetS;
    msg.src = 0;
    msg.dst = 3;
    msg.block_addr = 0x40;
    net.send(std::move(msg));
    ctx.eventq.run();

    ASSERT_EQ(ep.arrivals.size(), 1u);
    EXPECT_EQ(ep.arrivals[0].hops, 2);

    net.finalizeStats();
    EXPECT_EQ(net.statGroup().scalarCount("hops"), 2u);
    EXPECT_EQ(net.statGroup().scalarCount("links_used"), 2u);
    EXPECT_EQ(net.statGroup().scalarCount("hot_link_msgs"), 1u);
}
