/**
 * @file
 * Shared helpers for system-level tests.
 */

#pragma once

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "workload/workload.hh"

namespace fenceless::test
{

/** A small, fast system configuration for tests. */
inline harness::SystemConfig
testConfig(std::uint32_t cores = 4,
           cpu::ConsistencyModel model = cpu::ConsistencyModel::TSO)
{
    harness::SystemConfig cfg;
    cfg.num_cores = cores;
    cfg.model = model;
    cfg.l1.size = 4 * 1024;
    cfg.l1.assoc = 4;
    cfg.l2.size = 256 * 1024;
    cfg.l2.assoc = 8;
    cfg.net.latency = 4;
    cfg.l2.dram_latency = 30;
    cfg.max_cycles = 50'000'000;
    return cfg;
}

/** Run @p wl under @p cfg; assert termination, postconditions, audit. */
inline void
runWorkload(workload::Workload &wl, harness::SystemConfig cfg)
{
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run()) << wl.name() << " did not terminate";
    std::string error;
    EXPECT_TRUE(wl.check(sys.memReader(), cfg.num_cores, error))
        << error;
    sys.auditCoherence();
}

} // namespace fenceless::test
