/**
 * @file
 * Harness tests: option parsing, table rendering, System-level
 * functional reads and aggregate queries.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/options.hh"
#include "harness/table.hh"
#include "isa/assembler.hh"
#include "tests/sim_test_util.hh"

using namespace fenceless;
using namespace fenceless::harness;
using namespace fenceless::test;

namespace
{

Options
parse(std::vector<std::string> args)
{
    std::vector<char *> argv;
    static std::vector<std::string> storage;
    storage = std::move(args);
    storage.insert(storage.begin(), "prog");
    for (auto &s : storage)
        argv.push_back(s.data());
    return Options(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(Options, DefaultsWhenEmpty)
{
    Options opts = parse({});
    EXPECT_FALSE(opts.csv());
    EXPECT_EQ(opts.scale(), 1u);
    SystemConfig base;
    SystemConfig cfg = opts.applyTo(base);
    EXPECT_EQ(cfg.num_cores, base.num_cores);
    EXPECT_EQ(cfg.model, base.model);
}

TEST(Options, AppliesMachineSettings)
{
    Options opts = parse({"--cores=12", "--model=rmo",
                          "--spec=continuous", "--sb-size=8",
                          "--l1-kb=16", "--l2-kb=512",
                          "--dram-latency=200", "--net-latency=3"});
    SystemConfig cfg = opts.applyTo(SystemConfig{});
    EXPECT_EQ(cfg.num_cores, 12u);
    EXPECT_EQ(cfg.model, cpu::ConsistencyModel::RMO);
    EXPECT_EQ(cfg.spec.mode, spec::SpecMode::Continuous);
    EXPECT_EQ(cfg.sb_size, 8u);
    EXPECT_EQ(cfg.l1.size, 16u * 1024);
    EXPECT_EQ(cfg.l2.size, 512u * 1024);
    EXPECT_EQ(cfg.l2.dram_latency, 200u);
    EXPECT_EQ(cfg.net.latency, 3u);
}

TEST(Options, GranularityAndOverflow)
{
    Options opts = parse({"--granularity=per-store",
                          "--overflow=rollback", "--spec=on-demand"});
    SystemConfig cfg = opts.applyTo(SystemConfig{});
    EXPECT_EQ(cfg.spec.granularity, spec::Granularity::PerStore);
    EXPECT_EQ(cfg.spec.overflow, spec::OverflowPolicy::Rollback);
    EXPECT_EQ(cfg.spec.mode, spec::SpecMode::OnDemand);
}

TEST(Options, CsvScaleSeed)
{
    Options opts = parse({"--csv", "--scale=5", "--seed=99"});
    EXPECT_TRUE(opts.csv());
    EXPECT_EQ(opts.scale(), 5u);
    EXPECT_EQ(opts.seed(), 99u);
}

TEST(Options, UnknownOptionIsFatal)
{
    EXPECT_EXIT(parse({"--bogus"}), testing::ExitedWithCode(1),
                "unknown option");
}

TEST(Options, ParallelSimAndShards)
{
    // Explicit shard count.
    SystemConfig cfg =
        parse({"--cores=8", "--shards=4"}).applyTo(SystemConfig{});
    EXPECT_EQ(cfg.shards, 4u);

    // --parallel-sim=0 wins over --shards: the reference mode.
    cfg = parse({"--cores=8", "--parallel-sim=0", "--shards=4"})
              .applyTo(SystemConfig{});
    EXPECT_EQ(cfg.shards, 1u);

    // --parallel-sim alone picks a host-sized default within the
    // finest partition (cores + 1).
    cfg = parse({"--cores=4", "--parallel-sim=1"})
              .applyTo(SystemConfig{});
    EXPECT_GE(cfg.shards, 1u);
    EXPECT_LE(cfg.shards, 5u);

    // Validation is non-fatal: garbage warns and falls back.
    cfg = parse({"--cores=4", "--shards=lots"})
              .applyTo(SystemConfig{});
    EXPECT_GE(cfg.shards, 1u);
    EXPECT_LE(cfg.shards, 5u);

    // Over-sharding clamps to the finest partition.
    cfg = parse({"--cores=2", "--shards=64"}).applyTo(SystemConfig{});
    EXPECT_EQ(cfg.shards, 3u);
}

TEST(Options, TopologyAndBankingFlags)
{
    SystemConfig cfg = parse({"--topology=mesh", "--hop-latency=5",
                              "--dir-banks=8"})
                           .applyTo(SystemConfig{});
    EXPECT_EQ(cfg.net.topology, mem::Topology::Mesh);
    EXPECT_EQ(cfg.net.hop_latency, 5u);
    EXPECT_EQ(cfg.dir_banks, 8u);

    cfg = parse({"--topology=ring"}).applyTo(SystemConfig{});
    EXPECT_EQ(cfg.net.topology, mem::Topology::Ring);

    // Bad bank counts warn and round down rather than aborting.
    cfg = parse({"--dir-banks=6"}).applyTo(SystemConfig{});
    EXPECT_EQ(cfg.dir_banks, 4u);
    cfg = parse({"--dir-banks=0"}).applyTo(SystemConfig{});
    EXPECT_EQ(cfg.dir_banks, 1u);
    cfg = parse({"--dir-banks=128"}).applyTo(SystemConfig{});
    EXPECT_EQ(cfg.dir_banks, 64u);
}

TEST(Options, UnknownTopologyIsFatal)
{
    EXPECT_EXIT(parse({"--topology=torus"}).applyTo(SystemConfig{}),
                testing::ExitedWithCode(1), "unknown topology");
}

TEST(Options, SimModeEchoedIntoProvenance)
{
    // How the run was invoked must be recoverable from any output
    // document: stats, trace, and blackbox all embed the provenance
    // object, which carries the sim_mode stanza.
    isa::Assembler as;
    as.nop();
    as.halt();
    isa::Program prog = as.finish();

    harness::SystemConfig cfg = testConfig(2);
    cfg.shards = 2;
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    EXPECT_NE(sys.provenanceJson().find(
                  "\"sim_mode\": {\"parallel_sim\": 1, \"shards\": 2, "
                  "\"dir_banks\": 1, \"topology\": \"crossbar\"}"),
              std::string::npos);

    for (auto write : {&harness::System::writeStatsJson,
                       &harness::System::exportTrace,
                       &harness::System::writeBlackbox}) {
        std::ostringstream os;
        (sys.*write)(os);
        EXPECT_NE(os.str().find("\"sim_mode\""), std::string::npos);
    }

    harness::System ref(testConfig(2), prog);
    ASSERT_TRUE(ref.run());
    EXPECT_NE(ref.provenanceJson().find(
                  "\"sim_mode\": {\"parallel_sim\": 0, \"shards\": 1, "
                  "\"dir_banks\": 1, \"topology\": \"crossbar\"}"),
              std::string::npos);
}

TEST(Options, BadNumberIsFatal)
{
    EXPECT_EXIT(parse({"--cores=banana"}).applyTo(SystemConfig{}),
                testing::ExitedWithCode(1), "expects a number");
}

TEST(Table, AlignedRendering)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "12345"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("12345"), std::string::npos);
    // All lines equal width (aligned columns).
    std::istringstream is(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width) << "line: " << line;
    }
}

TEST(Table, CsvRendering)
{
    Table t({"a", "b"});
    t.addRow({"x", "1"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,1\n");
}

TEST(Table, Fmt)
{
    EXPECT_EQ(fmt(1.2345), "1.23");
    EXPECT_EQ(fmt(1.2345, 3), "1.234");
    EXPECT_EQ(fmt(10.0, 0), "10");
}

TEST(SystemQueries, DebugReadSeesFreshestCopy)
{
    // Core 0 writes and keeps the block in M; debugRead must return the
    // L1 copy, not the stale L2/DRAM one.
    isa::Assembler as;
    const Addr var = as.word("var", 1);
    as.bne(isa::tp, isa::x0, "done");
    as.li(isa::a0, var);
    as.li(isa::t0, 99);
    as.st(isa::t0, isa::a0);
    as.label("done");
    as.halt();
    isa::Program prog = as.finish();

    harness::System sys(testConfig(2), prog);
    ASSERT_TRUE(sys.run());
    const mem::L1Block *blk = sys.l1(0).findBlock(var);
    ASSERT_NE(blk, nullptr);
    EXPECT_EQ(blk->state, mem::L1State::M);
    EXPECT_EQ(sys.debugRead(var, 8), 99u);
}

TEST(SystemQueries, AggregatesAndQuiescence)
{
    isa::Assembler as;
    as.nop();
    as.halt();
    isa::Program prog = as.finish();

    harness::SystemConfig cfg = testConfig(3);
    cfg.spec.mode = spec::SpecMode::OnDemand;
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.totalInstructions(), 6u); // (nop + halt) x 3
    EXPECT_EQ(sys.totalCommits(), 0u);
    EXPECT_EQ(sys.totalRollbacks(), 0u);
    EXPECT_TRUE(sys.quiesced());
    EXPECT_NE(sys.specController(0), nullptr);
}

TEST(SystemQueries, TimeoutReported)
{
    isa::Assembler as;
    as.label("spin");
    as.jump("spin");
    isa::Program prog = as.finish();

    harness::SystemConfig cfg = testConfig(1);
    cfg.max_cycles = 5000;
    harness::System sys(cfg, prog);
    EXPECT_FALSE(sys.run());
}

TEST(Options, ShardReportAndHostTelemetry)
{
    // Off by default: the telemetry probes must stay out of runs that
    // never asked for them.
    SystemConfig cfg = parse({}).applyTo(SystemConfig{});
    EXPECT_FALSE(cfg.host_telemetry);

    // --shard-report implies the telemetry that feeds it.
    cfg = parse({"--cores=8", "--shards=4", "--shard-report"})
              .applyTo(SystemConfig{});
    EXPECT_TRUE(cfg.host_telemetry);
    EXPECT_TRUE(parse({"--shard-report"}).shardReport());

    // --host-telemetry without a report: stats-json / trace only.
    cfg = parse({"--host-telemetry"}).applyTo(SystemConfig{});
    EXPECT_TRUE(cfg.host_telemetry);
    EXPECT_FALSE(parse({"--host-telemetry"}).shardReport());

    // Explicitly disabled.
    cfg = parse({"--host-telemetry=0"}).applyTo(SystemConfig{});
    EXPECT_FALSE(cfg.host_telemetry);
}

TEST(SystemQueries, ShardReportRendersInlineDriver)
{
    // shards=1 runs the quantum driver inline (no threads, no
    // barriers); the report must still render real quantum counts so
    // single-shard baselines are comparable against sharded runs.
    isa::Assembler as;
    as.nop();
    as.halt();
    isa::Program prog = as.finish();

    harness::SystemConfig cfg = testConfig(2);
    cfg.withHostTelemetry();
    harness::System sys(cfg, prog);
    ASSERT_TRUE(sys.run());
    ASSERT_TRUE(sys.telemetry().enabled());
    EXPECT_EQ(sys.telemetry().shards(), 1u);
    EXPECT_GT(sys.telemetry().slot(0).events, 0u);

    std::ostringstream os;
    sys.writeShardReport(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("shard report"), std::string::npos);
    EXPECT_NE(out.find("utilization"), std::string::npos);
    EXPECT_NE(out.find("boundary causes"), std::string::npos);
    // One row for the only shard, with a non-zero event count.
    EXPECT_NE(out.find("shard0"), std::string::npos) << out;
    EXPECT_NE(
        out.find(std::to_string(sys.telemetry().slot(0).events)),
        std::string::npos)
        << out;
}

TEST(SystemQueries, ShardReportWithoutTelemetryPrintsNotice)
{
    isa::Assembler as;
    as.halt();
    isa::Program prog = as.finish();

    harness::System sys(testConfig(1), prog);
    ASSERT_TRUE(sys.run());
    std::ostringstream os;
    sys.writeShardReport(os);
    EXPECT_NE(os.str().find("telemetry"), std::string::npos);
}
