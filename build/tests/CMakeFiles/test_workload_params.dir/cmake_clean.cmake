file(REMOVE_RECURSE
  "CMakeFiles/test_workload_params.dir/test_workload_params.cc.o"
  "CMakeFiles/test_workload_params.dir/test_workload_params.cc.o.d"
  "test_workload_params"
  "test_workload_params.pdb"
  "test_workload_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
