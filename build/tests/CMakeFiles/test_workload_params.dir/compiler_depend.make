# Empty compiler generated dependencies file for test_workload_params.
# This may be replaced when dependencies are built.
