# Empty dependencies file for test_harness.
# This may be replaced when dependencies are built.
