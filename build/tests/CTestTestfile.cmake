# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_spec[1]_include.cmake")
include("/root/repo/build/tests/test_litmus[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_workload_params[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
