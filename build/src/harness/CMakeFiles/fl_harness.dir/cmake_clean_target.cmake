file(REMOVE_RECURSE
  "libfl_harness.a"
)
