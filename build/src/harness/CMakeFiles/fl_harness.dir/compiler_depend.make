# Empty compiler generated dependencies file for fl_harness.
# This may be replaced when dependencies are built.
