file(REMOVE_RECURSE
  "CMakeFiles/fl_harness.dir/__/workload/litmus.cc.o"
  "CMakeFiles/fl_harness.dir/__/workload/litmus.cc.o.d"
  "CMakeFiles/fl_harness.dir/options.cc.o"
  "CMakeFiles/fl_harness.dir/options.cc.o.d"
  "CMakeFiles/fl_harness.dir/system.cc.o"
  "CMakeFiles/fl_harness.dir/system.cc.o.d"
  "CMakeFiles/fl_harness.dir/table.cc.o"
  "CMakeFiles/fl_harness.dir/table.cc.o.d"
  "libfl_harness.a"
  "libfl_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
