file(REMOVE_RECURSE
  "CMakeFiles/fl_base.dir/logging.cc.o"
  "CMakeFiles/fl_base.dir/logging.cc.o.d"
  "CMakeFiles/fl_base.dir/stats.cc.o"
  "CMakeFiles/fl_base.dir/stats.cc.o.d"
  "CMakeFiles/fl_base.dir/trace.cc.o"
  "CMakeFiles/fl_base.dir/trace.cc.o.d"
  "libfl_base.a"
  "libfl_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
