# Empty compiler generated dependencies file for fl_base.
# This may be replaced when dependencies are built.
