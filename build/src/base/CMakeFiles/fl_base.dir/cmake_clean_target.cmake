file(REMOVE_RECURSE
  "libfl_base.a"
)
