file(REMOVE_RECURSE
  "CMakeFiles/fl_isa.dir/assembler.cc.o"
  "CMakeFiles/fl_isa.dir/assembler.cc.o.d"
  "CMakeFiles/fl_isa.dir/inst.cc.o"
  "CMakeFiles/fl_isa.dir/inst.cc.o.d"
  "CMakeFiles/fl_isa.dir/interp.cc.o"
  "CMakeFiles/fl_isa.dir/interp.cc.o.d"
  "libfl_isa.a"
  "libfl_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
