file(REMOVE_RECURSE
  "libfl_isa.a"
)
