# Empty compiler generated dependencies file for fl_isa.
# This may be replaced when dependencies are built.
