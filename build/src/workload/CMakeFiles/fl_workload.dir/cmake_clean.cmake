file(REMOVE_RECURSE
  "CMakeFiles/fl_workload.dir/kernels.cc.o"
  "CMakeFiles/fl_workload.dir/kernels.cc.o.d"
  "CMakeFiles/fl_workload.dir/microbench.cc.o"
  "CMakeFiles/fl_workload.dir/microbench.cc.o.d"
  "CMakeFiles/fl_workload.dir/runtime.cc.o"
  "CMakeFiles/fl_workload.dir/runtime.cc.o.d"
  "CMakeFiles/fl_workload.dir/suite.cc.o"
  "CMakeFiles/fl_workload.dir/suite.cc.o.d"
  "libfl_workload.a"
  "libfl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
