# Empty compiler generated dependencies file for fl_workload.
# This may be replaced when dependencies are built.
