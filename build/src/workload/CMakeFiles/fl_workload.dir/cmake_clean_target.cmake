file(REMOVE_RECURSE
  "libfl_workload.a"
)
