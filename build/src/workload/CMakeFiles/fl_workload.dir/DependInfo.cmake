
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/kernels.cc" "src/workload/CMakeFiles/fl_workload.dir/kernels.cc.o" "gcc" "src/workload/CMakeFiles/fl_workload.dir/kernels.cc.o.d"
  "/root/repo/src/workload/microbench.cc" "src/workload/CMakeFiles/fl_workload.dir/microbench.cc.o" "gcc" "src/workload/CMakeFiles/fl_workload.dir/microbench.cc.o.d"
  "/root/repo/src/workload/runtime.cc" "src/workload/CMakeFiles/fl_workload.dir/runtime.cc.o" "gcc" "src/workload/CMakeFiles/fl_workload.dir/runtime.cc.o.d"
  "/root/repo/src/workload/suite.cc" "src/workload/CMakeFiles/fl_workload.dir/suite.cc.o" "gcc" "src/workload/CMakeFiles/fl_workload.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/fl_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/fl_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
