file(REMOVE_RECURSE
  "libfl_spec.a"
)
