file(REMOVE_RECURSE
  "CMakeFiles/fl_spec.dir/spec_controller.cc.o"
  "CMakeFiles/fl_spec.dir/spec_controller.cc.o.d"
  "libfl_spec.a"
  "libfl_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
