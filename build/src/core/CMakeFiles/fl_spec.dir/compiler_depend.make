# Empty compiler generated dependencies file for fl_spec.
# This may be replaced when dependencies are built.
