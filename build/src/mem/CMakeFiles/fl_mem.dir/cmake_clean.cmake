file(REMOVE_RECURSE
  "CMakeFiles/fl_mem.dir/directory.cc.o"
  "CMakeFiles/fl_mem.dir/directory.cc.o.d"
  "CMakeFiles/fl_mem.dir/l1_cache.cc.o"
  "CMakeFiles/fl_mem.dir/l1_cache.cc.o.d"
  "CMakeFiles/fl_mem.dir/network.cc.o"
  "CMakeFiles/fl_mem.dir/network.cc.o.d"
  "libfl_mem.a"
  "libfl_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
