# Empty compiler generated dependencies file for fl_mem.
# This may be replaced when dependencies are built.
