
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/directory.cc" "src/mem/CMakeFiles/fl_mem.dir/directory.cc.o" "gcc" "src/mem/CMakeFiles/fl_mem.dir/directory.cc.o.d"
  "/root/repo/src/mem/l1_cache.cc" "src/mem/CMakeFiles/fl_mem.dir/l1_cache.cc.o" "gcc" "src/mem/CMakeFiles/fl_mem.dir/l1_cache.cc.o.d"
  "/root/repo/src/mem/network.cc" "src/mem/CMakeFiles/fl_mem.dir/network.cc.o" "gcc" "src/mem/CMakeFiles/fl_mem.dir/network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/fl_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
