file(REMOVE_RECURSE
  "libfl_mem.a"
)
