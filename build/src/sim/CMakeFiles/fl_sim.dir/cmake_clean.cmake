file(REMOVE_RECURSE
  "CMakeFiles/fl_sim.dir/eventq.cc.o"
  "CMakeFiles/fl_sim.dir/eventq.cc.o.d"
  "libfl_sim.a"
  "libfl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
