# Empty dependencies file for fl_sim.
# This may be replaced when dependencies are built.
