file(REMOVE_RECURSE
  "libfl_sim.a"
)
