file(REMOVE_RECURSE
  "libfl_cpu.a"
)
