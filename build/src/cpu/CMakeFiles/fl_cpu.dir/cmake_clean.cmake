file(REMOVE_RECURSE
  "CMakeFiles/fl_cpu.dir/core.cc.o"
  "CMakeFiles/fl_cpu.dir/core.cc.o.d"
  "CMakeFiles/fl_cpu.dir/store_buffer.cc.o"
  "CMakeFiles/fl_cpu.dir/store_buffer.cc.o.d"
  "libfl_cpu.a"
  "libfl_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
