# Empty compiler generated dependencies file for fl_cpu.
# This may be replaced when dependencies are built.
