file(REMOVE_RECURSE
  "CMakeFiles/litmus_explorer.dir/litmus_explorer.cpp.o"
  "CMakeFiles/litmus_explorer.dir/litmus_explorer.cpp.o.d"
  "litmus_explorer"
  "litmus_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
