# Empty compiler generated dependencies file for litmus_explorer.
# This may be replaced when dependencies are built.
