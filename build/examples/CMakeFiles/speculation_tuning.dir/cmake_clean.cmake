file(REMOVE_RECURSE
  "CMakeFiles/speculation_tuning.dir/speculation_tuning.cpp.o"
  "CMakeFiles/speculation_tuning.dir/speculation_tuning.cpp.o.d"
  "speculation_tuning"
  "speculation_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculation_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
