# Empty compiler generated dependencies file for speculation_tuning.
# This may be replaced when dependencies are built.
