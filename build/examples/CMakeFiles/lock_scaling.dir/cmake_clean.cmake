file(REMOVE_RECURSE
  "CMakeFiles/lock_scaling.dir/lock_scaling.cpp.o"
  "CMakeFiles/lock_scaling.dir/lock_scaling.cpp.o.d"
  "lock_scaling"
  "lock_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
