# Empty compiler generated dependencies file for lock_scaling.
# This may be replaced when dependencies are built.
