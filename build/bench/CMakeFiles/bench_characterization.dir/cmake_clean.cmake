file(REMOVE_RECURSE
  "CMakeFiles/bench_characterization.dir/bench_characterization.cc.o"
  "CMakeFiles/bench_characterization.dir/bench_characterization.cc.o.d"
  "bench_characterization"
  "bench_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
