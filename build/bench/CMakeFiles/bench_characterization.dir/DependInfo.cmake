
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_characterization.cc" "bench/CMakeFiles/bench_characterization.dir/bench_characterization.cc.o" "gcc" "bench/CMakeFiles/bench_characterization.dir/bench_characterization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/fl_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fl_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/fl_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/fl_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/fl_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/fl_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
