# Empty compiler generated dependencies file for bench_rollback.
# This may be replaced when dependencies are built.
