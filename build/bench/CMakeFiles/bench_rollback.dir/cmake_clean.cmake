file(REMOVE_RECURSE
  "CMakeFiles/bench_rollback.dir/bench_rollback.cc.o"
  "CMakeFiles/bench_rollback.dir/bench_rollback.cc.o.d"
  "bench_rollback"
  "bench_rollback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rollback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
