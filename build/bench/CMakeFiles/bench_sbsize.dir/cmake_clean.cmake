file(REMOVE_RECURSE
  "CMakeFiles/bench_sbsize.dir/bench_sbsize.cc.o"
  "CMakeFiles/bench_sbsize.dir/bench_sbsize.cc.o.d"
  "bench_sbsize"
  "bench_sbsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sbsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
