# Empty dependencies file for bench_sbsize.
# This may be replaced when dependencies are built.
