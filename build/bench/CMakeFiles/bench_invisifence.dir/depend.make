# Empty dependencies file for bench_invisifence.
# This may be replaced when dependencies are built.
