file(REMOVE_RECURSE
  "CMakeFiles/bench_invisifence.dir/bench_invisifence.cc.o"
  "CMakeFiles/bench_invisifence.dir/bench_invisifence.cc.o.d"
  "bench_invisifence"
  "bench_invisifence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_invisifence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
