# Empty compiler generated dependencies file for bench_modes.
# This may be replaced when dependencies are built.
