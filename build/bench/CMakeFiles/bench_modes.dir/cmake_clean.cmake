file(REMOVE_RECURSE
  "CMakeFiles/bench_modes.dir/bench_modes.cc.o"
  "CMakeFiles/bench_modes.dir/bench_modes.cc.o.d"
  "bench_modes"
  "bench_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
