# Empty compiler generated dependencies file for bench_simperf.
# This may be replaced when dependencies are built.
