file(REMOVE_RECURSE
  "CMakeFiles/bench_simperf.dir/bench_simperf.cc.o"
  "CMakeFiles/bench_simperf.dir/bench_simperf.cc.o.d"
  "bench_simperf"
  "bench_simperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
