# Empty compiler generated dependencies file for bench_config.
# This may be replaced when dependencies are built.
