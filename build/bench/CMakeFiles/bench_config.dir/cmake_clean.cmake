file(REMOVE_RECURSE
  "CMakeFiles/bench_config.dir/bench_config.cc.o"
  "CMakeFiles/bench_config.dir/bench_config.cc.o.d"
  "bench_config"
  "bench_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
