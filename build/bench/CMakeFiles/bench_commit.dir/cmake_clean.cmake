file(REMOVE_RECURSE
  "CMakeFiles/bench_commit.dir/bench_commit.cc.o"
  "CMakeFiles/bench_commit.dir/bench_commit.cc.o.d"
  "bench_commit"
  "bench_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
