# Empty compiler generated dependencies file for bench_commit.
# This may be replaced when dependencies are built.
