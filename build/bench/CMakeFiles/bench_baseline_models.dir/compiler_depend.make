# Empty compiler generated dependencies file for bench_baseline_models.
# This may be replaced when dependencies are built.
