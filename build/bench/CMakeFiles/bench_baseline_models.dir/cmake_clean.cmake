file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_models.dir/bench_baseline_models.cc.o"
  "CMakeFiles/bench_baseline_models.dir/bench_baseline_models.cc.o.d"
  "bench_baseline_models"
  "bench_baseline_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
