/**
 * @file
 * fl_report: cross-run comparison and regression triage for
 * fenceless artifacts.
 *
 * Ingests N `--stats-json` documents (optionally paired with their
 * `--profile-out` documents) plus optional bench_scaling
 * `--sweep-json` rows, and renders:
 *
 *  - differential waste attribution (per-bucket and per-PC cycle
 *    deltas, exact integer counts) between the baseline and the
 *    candidate (the last run given);
 *  - scaling analysis along a swept axis (cores, shards, dir_banks,
 *    topology) with throughput, parallel efficiency, imbalance
 *    factors, coordinator-cause and NoC hot-link trends;
 *  - a deterministic markdown and/or self-contained HTML report
 *    (embedded flamegraph diff, per-link heatmap), a difffolded
 *    flamegraph file, and a terse triage block for CI.
 *
 * Output is byte-identical for identical inputs; documents with a
 * mismatched schema_version are refused rather than misread.
 *
 * Usage:
 *   fl_report --baseline=LABEL=stats.json[,profile.json]
 *             [--run=LABEL=stats.json[,profile.json]]...
 *             [--sweep-json=FILE] [--axis=cores|shards|dir_banks|topology]
 *             [--md=FILE] [--html=FILE] [--folded-diff=FILE]
 *             [--triage] [--top=N]
 *
 * With no output option the markdown report goes to stdout.  A FILE
 * of "-" also means stdout.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/loader.hh"
#include "analysis/report.hh"

namespace
{

using namespace fenceless::analysis;

struct RunSpec
{
    std::string label;
    std::string stats_path;
    std::string profile_path; //!< optional
};

struct Cli
{
    std::vector<RunSpec> runs; //!< baseline first
    std::string sweep_path;
    std::string axis;
    std::string md_path;
    std::string html_path;
    std::string folded_path;
    bool triage = false;
    bool md_requested = false;
    std::size_t top_n = 10;
};

void
printUsage(std::ostream &os)
{
    os << "usage: fl_report --baseline=LABEL=stats.json[,profile.json]\n"
       << "                 [--run=LABEL=stats.json[,profile.json]]...\n"
       << "                 [--sweep-json=FILE]\n"
       << "                 [--axis=cores|shards|dir_banks|topology]\n"
       << "                 [--md=FILE] [--html=FILE]\n"
       << "                 [--folded-diff=FILE] [--triage]\n"
       << "                 [--top=N]\n";
}

[[noreturn]] void
usageError(const std::string &msg)
{
    std::cerr << "fl_report: " << msg << "\n";
    printUsage(std::cerr);
    std::exit(2);
}

RunSpec
parseRunSpec(const std::string &spec, const char *option)
{
    // LABEL=stats.json[,profile.json]
    const auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0)
        usageError(std::string(option) +
                   " wants LABEL=stats.json[,profile.json], got '" +
                   spec + "'");
    RunSpec out;
    out.label = spec.substr(0, eq);
    const std::string paths = spec.substr(eq + 1);
    const auto comma = paths.find(',');
    if (comma == std::string::npos) {
        out.stats_path = paths;
    } else {
        out.stats_path = paths.substr(0, comma);
        out.profile_path = paths.substr(comma + 1);
    }
    if (out.stats_path.empty())
        usageError(std::string(option) + " has an empty stats path");
    return out;
}

Cli
parseArgs(int argc, char **argv)
{
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        const std::string name =
            eq == std::string::npos ? arg : arg.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (name == "--baseline") {
            if (!cli.runs.empty() && !cli.runs.front().label.empty() &&
                cli.runs.front().stats_path.empty())
                usageError("--baseline given twice");
            cli.runs.insert(cli.runs.begin(),
                            parseRunSpec(value, "--baseline"));
        } else if (name == "--run") {
            cli.runs.push_back(parseRunSpec(value, "--run"));
        } else if (name == "--sweep-json") {
            cli.sweep_path = value;
        } else if (name == "--axis") {
            if (value != "cores" && value != "shards" &&
                value != "dir_banks" && value != "topology")
                usageError("--axis must be one of cores, shards, "
                           "dir_banks, topology");
            cli.axis = value;
        } else if (name == "--md") {
            cli.md_path = value;
            cli.md_requested = true;
        } else if (name == "--html") {
            cli.html_path = value;
        } else if (name == "--folded-diff") {
            cli.folded_path = value;
        } else if (name == "--triage") {
            cli.triage = true;
        } else if (name == "--top") {
            const long n = std::strtol(value.c_str(), nullptr, 10);
            if (n <= 0)
                usageError("--top wants a positive integer");
            cli.top_n = static_cast<std::size_t>(n);
        } else if (name == "--help" || name == "-h") {
            printUsage(std::cout);
            std::exit(0);
        } else {
            usageError("unknown option '" + arg + "'");
        }
    }
    if (cli.runs.empty() && cli.sweep_path.empty())
        usageError("need at least --baseline or --sweep-json");
    return cli;
}

bool
loadRun(const RunSpec &spec, RunInput &out, std::string &error)
{
    std::string text;
    if (!readFile(spec.stats_path, text, error))
        return false;
    if (!loadStatsRun(text, spec.label, out.stats, error)) {
        error = spec.stats_path + ": " + error;
        return false;
    }
    out.label = spec.label;
    if (spec.profile_path.empty())
        return true;
    if (!readFile(spec.profile_path, text, error))
        return false;
    if (!loadProfileRun(text, out.profile, error)) {
        error = spec.profile_path + ": " + error;
        return false;
    }
    out.has_profile = true;
    return true;
}

/** Write via @p writer to @p path, or stdout for "" / "-". */
template <typename Writer>
bool
emit(const std::string &path, Writer writer)
{
    if (path.empty() || path == "-") {
        writer(std::cout);
        return true;
    }
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        std::cerr << "fl_report: cannot open '" << path
                  << "' for writing\n";
        return false;
    }
    writer(os);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli = parseArgs(argc, argv);

    std::vector<RunInput> runs;
    for (const RunSpec &spec : cli.runs) {
        RunInput run;
        std::string error;
        if (!loadRun(spec, run, error)) {
            std::cerr << "fl_report: " << error << "\n";
            return 1;
        }
        runs.push_back(std::move(run));
    }

    std::vector<Json> sweep_rows;
    if (!cli.sweep_path.empty()) {
        std::string text, error;
        if (!readFile(cli.sweep_path, text, error) ||
            !loadSweepRows(text, sweep_rows, error)) {
            std::cerr << "fl_report: " << cli.sweep_path << ": "
                      << error << "\n";
            return 1;
        }
    }

    if (runs.empty() && sweep_rows.empty()) {
        std::cerr << "fl_report: nothing to report on\n";
        return 1;
    }

    ReportModel model =
        buildReport(std::move(runs), std::move(sweep_rows), cli.axis,
                    cli.top_n);

    const bool default_md = !cli.md_requested &&
                            cli.html_path.empty() &&
                            cli.folded_path.empty() && !cli.triage;
    bool ok = true;
    if (cli.md_requested || default_md) {
        ok = emit(cli.md_path, [&](std::ostream &os) {
                 writeMarkdown(os, model);
             }) && ok;
    }
    if (!cli.html_path.empty()) {
        ok = emit(cli.html_path, [&](std::ostream &os) {
                 writeHtml(os, model);
             }) && ok;
    }
    if (!cli.folded_path.empty()) {
        if (!model.has_profile_diff) {
            std::cerr << "fl_report: --folded-diff needs profiles on "
                         "both the baseline and the candidate\n";
            ok = false;
        } else {
            ok = emit(cli.folded_path, [&](std::ostream &os) {
                     writeFoldedDiff(os, model);
                 }) && ok;
        }
    }
    if (cli.triage)
        writeTriage(std::cout, model);
    return ok ? 0 : 1;
}
