/**
 * @file
 * Simulator self-benchmark (google-benchmark): host-side throughput of
 * the event kernel, of whole-system simulation, and of the host-
 * parallel sweep runner, in simulated cycles and instructions per wall
 * second.  Not part of the paper reconstruction; used to track
 * simulator performance regressions.
 *
 * Besides the usual console output, the binary writes
 * BENCH_simperf.json (benchmark name -> items/sec) so successive PRs
 * have a machine-readable trajectory to compare against.
 *
 * Accepts --jobs=N (worker threads for BM_ParallelSweep; default
 * hardware concurrency) ahead of the standard --benchmark_* flags.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/sweep.hh"
#include "harness/system.hh"
#include "sim/eventq.hh"
#include "sim/trace_sink.hh"
#include "workload/microbench.hh"

using namespace fenceless;

namespace
{

unsigned sweep_jobs = 0; // 0 = hardware concurrency

void
BM_EventQueue(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t fired = 0;
    // A handful of recurring events that get rescheduled every burst:
    // each reschedule leaves a lazily-deleted entry behind, so the
    // stale_pops counter below exercises the calendar queue's skip
    // path, not just the happy path.
    std::deque<sim::EventFunctionWrapper> movers;
    for (int i = 0; i < 8; ++i)
        movers.emplace_back([&fired] { ++fired; }, "bench.mover");
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i) {
            sim::scheduleOneShot(eq, eq.curTick() + 1 + (i % 7),
                                 [&fired] { ++fired; });
        }
        for (std::size_t i = 0; i < movers.size(); ++i) {
            eq.schedule(&movers[i], eq.curTick() + 2 + i);
            eq.reschedule(&movers[i], eq.curTick() + 9 + i);
        }
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
    // Pooling means the node count stops growing after the first
    // burst: this counter catching fire is an allocation regression.
    state.counters["oneshot_nodes"] = static_cast<double>(
        eq.oneShotNodesAllocated());
    // Lazily-deleted entries the pop path skipped (from the
    // reschedules above), as a fraction of all pops: a rate stays
    // comparable across runs of different lengths, where the raw
    // counter only ever grew with iteration count.
    const double total_pops = static_cast<double>(
        eq.stalePops() + eq.nearPops() + eq.farPops());
    state.counters["stale_pop_rate"] =
        total_pops > 0
            ? static_cast<double>(eq.stalePops()) / total_pops
            : 0.0;
    state.counters["near_pops"] = static_cast<double>(eq.nearPops());
    state.counters["far_pops"] = static_cast<double>(eq.farPops());
}
BENCHMARK(BM_EventQueue);

void
BM_FullSystem(benchmark::State &state)
{
    const bool speculative = state.range(0) != 0;
    std::uint64_t sim_insts = 0;
    std::uint64_t sim_cycles = 0;
    double oneshot_nodes = 0;
    double stale_pops = 0;
    for (auto _ : state) {
        harness::SystemConfig cfg;
        cfg.num_cores = 4;
        cfg.model = cpu::ConsistencyModel::TSO;
        if (speculative)
            cfg.withSpeculation();
        // Measure the bare simulation: the always-on recorder and
        // watchdog have their own benchmark (BM_FullSystemBlackbox).
        cfg.blackbox_records = 0;
        cfg.watchdog_interval = 0;
        workload::SpinlockCrit wl;
        isa::Program prog = wl.build(cfg.num_cores);
        harness::System sys(cfg, prog);
        const bool done = sys.run();
        benchmark::DoNotOptimize(done);
        sim_insts += sys.totalInstructions();
        sim_cycles += sys.runtimeCycles();
        // Queue health of the last run: the one-shot pool's high-water
        // mark bounds steady-state event allocation, and stale_pops
        // tracks how much lazily-deleted work the pop path skips.
        const sim::EventQueue &eq = sys.context().eventq;
        oneshot_nodes = static_cast<double>(eq.oneShotNodesAllocated());
        stale_pops = static_cast<double>(eq.stalePops());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sim_insts));
    state.counters["sim_cycles"] =
        benchmark::Counter(static_cast<double>(sim_cycles),
                           benchmark::Counter::kIsRate);
    state.counters["oneshot_nodes"] = oneshot_nodes;
    state.counters["stale_pops"] = stale_pops;
}
BENCHMARK(BM_FullSystem)->Arg(0)->Arg(1);

/**
 * Cost of the structured-trace hot path, disabled (Arg(0): the mask
 * test every instrumentation site pays even with tracing off) and
 * enabled (Arg(1): the full record append).  The sink is cleared every
 * batch so the run measures recording, not allocation growth.
 */
void
BM_TraceSink(benchmark::State &state)
{
    const bool enabled = state.range(0) != 0;
    trace::TraceSink sink;
    if (enabled)
        sink.setMask(static_cast<std::uint32_t>(trace::Flag::All));
    const std::uint16_t comp = sink.registerComponent("bench");
    std::uint64_t events = 0;
    for (auto _ : state) {
        for (Tick t = 0; t < 4096; ++t) {
            if (sink.wants(trace::Flag::Core))
                sink.record(comp, trace::EventKind::CoreCommit, t, t);
            ++events;
        }
        benchmark::DoNotOptimize(sink.size());
        if (sink.size() > trace::TraceSink::chunk_records)
            sink.clear();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TraceSink)->Arg(0)->Arg(1);

/**
 * Whole-system overhead of full tracing: the BM_FullSystem workload
 * with every event family recorded.  Compare against
 * BM_FullSystem/1 for the flags-on cost; BM_FullSystem itself keeps
 * measuring the flags-off path (trace_mask == 0).
 */
void
BM_FullSystemTraced(benchmark::State &state)
{
    std::uint64_t sim_insts = 0;
    for (auto _ : state) {
        harness::SystemConfig cfg;
        cfg.num_cores = 4;
        cfg.model = cpu::ConsistencyModel::TSO;
        cfg.withSpeculation();
        cfg.withTracing();
        cfg.blackbox_records = 0; // isolate the tracing cost
        cfg.watchdog_interval = 0;
        workload::SpinlockCrit wl;
        isa::Program prog = wl.build(cfg.num_cores);
        harness::System sys(cfg, prog);
        const bool done = sys.run();
        benchmark::DoNotOptimize(done);
        sim_insts += sys.totalInstructions();
        state.counters["trace_events"] =
            static_cast<double>(sys.tracer().size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sim_insts));
}
BENCHMARK(BM_FullSystemTraced);

/**
 * Whole-system overhead of the waste-attribution profiler: the
 * BM_FullSystem/1 workload with per-PC, per-line and rollback
 * accounting on.  The regression guard holds this within 10% of
 * BM_FullSystem/1; BM_FullSystem itself keeps measuring the
 * profiler-off path (one null test per site).
 */
void
BM_FullSystemProfiled(benchmark::State &state)
{
    std::uint64_t sim_insts = 0;
    for (auto _ : state) {
        harness::SystemConfig cfg;
        cfg.num_cores = 4;
        cfg.model = cpu::ConsistencyModel::TSO;
        cfg.withSpeculation();
        cfg.withProfiling();
        cfg.blackbox_records = 0; // isolate the profiler cost
        cfg.watchdog_interval = 0;
        workload::SpinlockCrit wl;
        isa::Program prog = wl.build(cfg.num_cores);
        harness::System sys(cfg, prog);
        const bool done = sys.run();
        benchmark::DoNotOptimize(done);
        sim_insts += sys.totalInstructions();
        state.counters["profiled_pcs"] =
            static_cast<double>(sys.profile().pcs.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sim_insts));
}
BENCHMARK(BM_FullSystemProfiled);

/**
 * Whole-system overhead of per-request span tracing: the
 * BM_FullSystem/1 workload with 1-in-Arg misses traced end to end.
 * Arg(64) is the shipped default (what --tail-report enables); the
 * regression guard holds it within 5% of BM_FullSystem/1.  Arg(1)
 * traces every miss -- there the bound is the post-run span assembly,
 * which is O(traced misses) (sort + one heap span per miss), not the
 * recording hot path, so it scales with the sampling rate rather than
 * amortizing away; it gets its own looser guard as a
 * quadratic-blowup/regression tripwire.  BM_FullSystem itself keeps
 * measuring the tracing-off path (one null test per site).
 */
void
BM_FullSystemReqTrace(benchmark::State &state)
{
    const auto period = static_cast<std::uint64_t>(state.range(0));
    std::uint64_t sim_insts = 0;
    for (auto _ : state) {
        harness::SystemConfig cfg;
        cfg.num_cores = 4;
        cfg.model = cpu::ConsistencyModel::TSO;
        cfg.withSpeculation();
        cfg.withTailTrace(period);
        cfg.blackbox_records = 0; // isolate the span-tracing cost
        cfg.watchdog_interval = 0;
        workload::SpinlockCrit wl;
        isa::Program prog = wl.build(cfg.num_cores);
        harness::System sys(cfg, prog);
        const bool done = sys.run();
        benchmark::DoNotOptimize(done);
        sim_insts += sys.totalInstructions();
        state.counters["traced_spans"] =
            static_cast<double>(sys.tailSpans().spans.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sim_insts));
}
BENCHMARK(BM_FullSystemReqTrace)->Arg(64)->Arg(1);

/**
 * Whole-system cost of the default-on incident-observability layer:
 * the BM_FullSystem/1 workload with the flight recorder and hang
 * watchdog at their defaults.  The regression guard holds this within
 * 5% of BM_FullSystem/1 -- the budget that lets the recorder stay on
 * in every run.
 */
void
BM_FullSystemBlackbox(benchmark::State &state)
{
    std::uint64_t sim_insts = 0;
    for (auto _ : state) {
        harness::SystemConfig cfg;
        cfg.num_cores = 4;
        cfg.model = cpu::ConsistencyModel::TSO;
        cfg.withSpeculation();
        // blackbox_records / watchdog_interval stay at their defaults.
        workload::SpinlockCrit wl;
        isa::Program prog = wl.build(cfg.num_cores);
        harness::System sys(cfg, prog);
        const bool done = sys.run();
        benchmark::DoNotOptimize(done);
        sim_insts += sys.totalInstructions();
        state.counters["ring_pushes"] =
            static_cast<double>(sys.tracer().ringPushes());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sim_insts));
}
BENCHMARK(BM_FullSystemBlackbox);

/**
 * Sharded parallel simulation: ONE 16-core simulation partitioned
 * across N host threads (SystemConfig::shards), versus the N=1
 * single-threaded reference.  Results are byte-identical for every
 * shard count (see harness/system.hh), so this curve is pure host-side
 * scaling.  The host_cpus counter records how many hardware threads
 * the measuring machine actually had -- the regression guard only
 * enforces the speedup floor when the host can physically provide it.
 */
void
BM_FullSystemParallel(benchmark::State &state)
{
    const auto shards = static_cast<std::uint32_t>(state.range(0));
    std::uint64_t sim_insts = 0;
    std::uint64_t sim_cycles = 0;
    for (auto _ : state) {
        harness::SystemConfig cfg;
        cfg.num_cores = 16;
        cfg.model = cpu::ConsistencyModel::TSO;
        cfg.withShards(shards);
        cfg.blackbox_records = 0; // measure the bare simulation
        cfg.watchdog_interval = 0;
        workload::SpinlockCrit wl;
        isa::Program prog = wl.build(cfg.num_cores);
        harness::System sys(cfg, prog);
        const bool done = sys.run();
        benchmark::DoNotOptimize(done);
        sim_insts += sys.totalInstructions();
        sim_cycles += sys.runtimeCycles();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sim_insts));
    state.counters["sim_cycles"] =
        benchmark::Counter(static_cast<double>(sim_cycles),
                           benchmark::Counter::kIsRate);
    state.counters["shards"] = static_cast<double>(shards);
    state.counters["host_cpus"] =
        static_cast<double>(std::thread::hardware_concurrency());
}
// Wall-clock rates: the shard threads do the simulating, so the main
// thread's CPU time (mostly barrier waits) would be meaningless.
BENCHMARK(BM_FullSystemParallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Sharded parallel simulation with host-waste telemetry on: the
 * BM_FullSystemParallel workload plus per-shard busy/barrier/drain
 * accounting, the message grid and boundary-cause classification.
 * The regression guard holds this within 5% of BM_FullSystemParallel
 * at the same shard count -- the budget that makes --shard-report
 * cheap enough to leave on in sharded runs.
 */
void
BM_FullSystemParallelTelemetry(benchmark::State &state)
{
    const auto shards = static_cast<std::uint32_t>(state.range(0));
    std::uint64_t sim_insts = 0;
    double quanta = 0;
    for (auto _ : state) {
        harness::SystemConfig cfg;
        cfg.num_cores = 16;
        cfg.model = cpu::ConsistencyModel::TSO;
        cfg.withShards(shards);
        cfg.withHostTelemetry();
        cfg.blackbox_records = 0; // measure the telemetry cost alone
        cfg.watchdog_interval = 0;
        workload::SpinlockCrit wl;
        isa::Program prog = wl.build(cfg.num_cores);
        harness::System sys(cfg, prog);
        const bool done = sys.run();
        benchmark::DoNotOptimize(done);
        sim_insts += sys.totalInstructions();
        quanta = static_cast<double>(sys.telemetry().coord().steps);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sim_insts));
    state.counters["quanta"] = quanta;
    state.counters["shards"] = static_cast<double>(shards);
    state.counters["host_cpus"] =
        static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_FullSystemParallelTelemetry)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * The largest configuration the simulator supports: 64 cores on a 2D
 * mesh with an 8-bank directory (a 9x8 grid of network nodes).  Tracks
 * the host-side cost of per-hop routing and bank fan-out at full
 * scale; the regression guard keeps this from silently decaying as the
 * topology layer grows.
 */
void
BM_FullSystemMesh64(benchmark::State &state)
{
    std::uint64_t sim_insts = 0;
    std::uint64_t net_hops = 0;
    for (auto _ : state) {
        harness::SystemConfig cfg;
        cfg.num_cores = 64;
        cfg.model = cpu::ConsistencyModel::TSO;
        cfg.withDirBanks(8).withTopology(mem::Topology::Mesh);
        cfg.blackbox_records = 0; // measure the bare simulation
        cfg.watchdog_interval = 0;
        workload::LocalLockStream::Params wp;
        wp.iters = 8;
        workload::LocalLockStream wl(wp);
        isa::Program prog = wl.build(cfg.num_cores);
        harness::System sys(cfg, prog);
        const bool done = sys.run();
        benchmark::DoNotOptimize(done);
        sim_insts += sys.totalInstructions();
        for (const auto &group : sys.stats().groups()) {
            if (group->name() == "network")
                net_hops = group->scalarCount("hops");
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sim_insts));
    state.counters["net_hops"] = static_cast<double>(net_hops);
}
BENCHMARK(BM_FullSystemMesh64)->Unit(benchmark::kMillisecond);

void
BM_ParallelSweep(benchmark::State &state)
{
    const unsigned batch = 8;
    std::uint64_t sim_insts = 0;
    harness::SweepRunner runner(sweep_jobs);
    for (auto _ : state) {
        std::vector<std::function<std::uint64_t()>> tasks;
        for (unsigned i = 0; i < batch; ++i) {
            tasks.push_back([]() -> std::uint64_t {
                harness::SystemConfig cfg;
                cfg.num_cores = 4;
                cfg.model = cpu::ConsistencyModel::TSO;
                cfg.blackbox_records = 0;
                cfg.watchdog_interval = 0;
                workload::SpinlockCrit wl;
                isa::Program prog = wl.build(cfg.num_cores);
                harness::System sys(cfg, prog);
                sys.run();
                return sys.totalInstructions();
            });
        }
        for (std::uint64_t insts : runner.map(std::move(tasks)))
            sim_insts += insts;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sim_insts));
    state.counters["jobs"] = static_cast<double>(runner.jobs());
}
BENCHMARK(BM_ParallelSweep)->Unit(benchmark::kMillisecond);

/**
 * Console output as usual, plus a capture of every run's items/sec for
 * the JSON trajectory file.
 */
struct CapturedRun
{
    std::string name;
    double items_per_second = 0;
    //!< every user counter (oneshot_nodes, stale_pops, ...), sorted
    std::vector<std::pair<std::string, double>> counters;
};

class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const Run &run : reports) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred) {
                continue;
            }
            CapturedRun cap;
            cap.name = run.benchmark_name();
            for (const auto &[cname, counter] : run.counters) {
                if (cname == "items_per_second")
                    cap.items_per_second = counter;
                else
                    cap.counters.emplace_back(cname, counter.value);
            }
            std::sort(cap.counters.begin(), cap.counters.end());
            captured.push_back(std::move(cap));
        }
        ConsoleReporter::ReportRuns(reports);
    }

    std::vector<CapturedRun> captured;
};

void
writeJson(const std::vector<CapturedRun> &captured,
          const std::string &path)
{
    std::ofstream os(path);
    os << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < captured.size(); ++i) {
        const CapturedRun &cap = captured[i];
        os << "    {\"name\": \"" << cap.name
           << "\", \"items_per_second\": " << cap.items_per_second;
        if (!cap.counters.empty()) {
            os << ", \"counters\": {";
            for (std::size_t c = 0; c < cap.counters.size(); ++c) {
                os << "\"" << cap.counters[c].first << "\": "
                   << cap.counters[c].second
                   << (c + 1 < cap.counters.size() ? ", " : "");
            }
            os << "}";
        }
        os << "}" << (i + 1 < captured.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off our --jobs flag before google-benchmark sees argv.
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            try {
                sweep_jobs = static_cast<unsigned>(
                    std::stoul(argv[i] + 7));
            } catch (const std::exception &) {
                std::cerr << "error: option --jobs expects a number, "
                             "got '" << (argv[i] + 7) << "'\n";
                return 1;
            }
        } else {
            args.push_back(argv[i]);
        }
    }
    int filtered_argc = static_cast<int>(args.size());
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                               args.data())) {
        return 1;
    }

    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    writeJson(reporter.captured, "BENCH_simperf.json");
    benchmark::Shutdown();
    return 0;
}
