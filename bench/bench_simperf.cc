/**
 * @file
 * Simulator self-benchmark (google-benchmark): host-side throughput of
 * the event kernel and of whole-system simulation, in simulated
 * cycles and instructions per wall second.  Not part of the paper
 * reconstruction; used to track simulator performance regressions.
 */

#include <benchmark/benchmark.h>

#include "harness/system.hh"
#include "sim/eventq.hh"
#include "workload/microbench.hh"

using namespace fenceless;

namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i) {
            sim::scheduleOneShot(eq, eq.curTick() + 1 + (i % 7),
                                 [&fired] { ++fired; });
        }
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_EventQueue);

void
BM_FullSystem(benchmark::State &state)
{
    const bool speculative = state.range(0) != 0;
    std::uint64_t sim_insts = 0;
    std::uint64_t sim_cycles = 0;
    for (auto _ : state) {
        harness::SystemConfig cfg;
        cfg.num_cores = 4;
        cfg.model = cpu::ConsistencyModel::TSO;
        if (speculative)
            cfg.withSpeculation();
        workload::SpinlockCrit wl;
        isa::Program prog = wl.build(cfg.num_cores);
        harness::System sys(cfg, prog);
        const bool done = sys.run();
        benchmark::DoNotOptimize(done);
        sim_insts += sys.totalInstructions();
        sim_cycles += sys.runtimeCycles();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sim_insts));
    state.counters["sim_cycles"] =
        benchmark::Counter(static_cast<double>(sim_cycles),
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullSystem)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
