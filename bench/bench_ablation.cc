/**
 * @file
 * A1 (ablation): the modelling choices DESIGN.md calls out, measured.
 *
 *  (a) store-buffer ownership prefetching -- without it the baseline
 *      serializes store misses and speculation would get credit for an
 *      artifact of the model;
 *  (b) relaxed-drain overlap (RMO max_inflight) -- the source of RMO's
 *      drain-bandwidth advantage;
 *  (c) rollback backoff cap -- what contains conflict thrashing.
 *
 * All three sections' sweep points run as one parallel batch; the
 * tables are rendered from the ordered results afterwards.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

namespace
{

/** One ablation point: cycles plus a per-section auxiliary counter. */
struct Meas
{
    double cycles = 0;
    std::uint64_t aux = 0; //!< prefetches (a) / rollbacks (c)
    std::string error;
    bool hung = false;
};

workload::LocalLockStream::Params
deepStreamParams()
{
    workload::LocalLockStream::Params p;
    p.iters = 96;
    p.stream_stores = 8;
    return p;
}

workload::Dekker::Params
dekkerParams()
{
    workload::Dekker::Params p;
    p.iters = 400;
    return p;
}

Meas
runPrefetchPoint(unsigned depth)
{
    Meas out;
    harness::SystemConfig cfg = defaultConfig();
    cfg.sb_prefetch_depth = depth;
    workload::LocalLockStream wl(deepStreamParams());
    MeasuredSystem m = measureSystem(wl, cfg);
    if (!m.ok()) {
        out.error = m.error;
        out.hung = m.hung;
        return out;
    }
    out.cycles = static_cast<double>(m.sys->runtimeCycles());
    for (std::uint32_t c = 0; c < cfg.num_cores; ++c)
        out.aux += m.sys->l1(c).statGroup().scalarCount("prefetches");
    return out;
}

Meas
runInflightPoint(unsigned inflight)
{
    Meas out;
    harness::SystemConfig cfg = defaultConfig();
    cfg.model = cpu::ConsistencyModel::RMO;
    cfg.sb_max_inflight = inflight;
    cfg.sb_prefetch_depth = 0; // isolate the overlap effect
    workload::LocalLockStream wl(deepStreamParams());
    RunOutcome r = measure(wl, cfg);
    if (!r) {
        out.error = r.error;
        out.hung = r.hung;
        return out;
    }
    out.cycles = static_cast<double>(r.result.cycles);
    return out;
}

Meas
runBackoffPoint(unsigned cap)
{
    Meas out;
    harness::SystemConfig cfg = defaultConfig();
    cfg.model = cpu::ConsistencyModel::SC;
    if (cap != 0) {
        cfg.withSpeculation();
        cfg.spec.max_cooldown = cap;
    }
    workload::Dekker wl(dekkerParams());
    RunOutcome r = measure(wl, cfg);
    if (!r) {
        out.error = r.error;
        out.hung = r.hung;
        return out;
    }
    out.cycles = static_cast<double>(r.result.cycles);
    out.aux = r.result.rollbacks;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("A1", "ablations of the model's design choices");

    const unsigned depths[] = {0, 1, 2, 4, 8};
    const unsigned inflights[] = {1, 2, 4, 8};
    const unsigned caps[] = {1, 4, 16, 64, 256};

    // One batch: section (a) points, then (b), then (c)'s baseline
    // (cap == 0 encodes "speculation off") and capped points.
    std::vector<std::function<Meas()>> tasks;
    for (unsigned depth : depths)
        tasks.push_back([depth] { return runPrefetchPoint(depth); });
    for (unsigned inflight : inflights)
        tasks.push_back(
            [inflight] { return runInflightPoint(inflight); });
    tasks.push_back([] { return runBackoffPoint(0); });
    for (unsigned cap : caps)
        tasks.push_back([cap] { return runBackoffPoint(cap); });

    auto results = runSweep(opts, std::move(tasks));
    if (!sweepOk(results, [](const Meas &m) { return m.error; }))
        return sweepExitCode(
            results, [](const Meas &m) { return m.error; },
            [](const Meas &m) { return m.hung; });
    std::size_t idx = 0;

    // (a) ownership prefetch depth, TSO baseline, store-heavy workload
    {
        std::cout << "-- (a) store ownership prefetch depth "
                     "(local-locks, TSO baseline, cycles) --\n";
        harness::Table table({"prefetch depth", "cycles",
                              "prefetches"});
        for (unsigned depth : depths) {
            const Meas &m = results[idx++];
            table.addRow({std::to_string(depth),
                          harness::fmt(m.cycles, 0),
                          std::to_string(m.aux)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // (b) relaxed drain overlap, RMO baseline
    {
        std::cout << "-- (b) RMO drain overlap (local-locks, RMO "
                     "baseline, cycles) --\n";
        harness::Table table({"max inflight drains", "cycles"});
        for (unsigned inflight : inflights) {
            const Meas &m = results[idx++];
            table.addRow({std::to_string(inflight),
                          harness::fmt(m.cycles, 0)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // (c) rollback backoff cap under heavy conflicts (dekker)
    {
        std::cout << "-- (c) rollback backoff cap (dekker, IF-SC; "
                     "baseline SC = 1.00) --\n";
        harness::Table table({"max cooldown", "runtime vs base",
                              "rollbacks"});
        const double base = results[idx++].cycles;
        for (unsigned cap : caps) {
            const Meas &m = results[idx++];
            table.addRow({std::to_string(cap),
                          harness::fmt(m.cycles / base),
                          std::to_string(m.aux)});
        }
        table.print(std::cout);
    }

    std::cout << "\nShapes: (a) deeper prefetch removes serialized "
                 "store misses from the\nbaseline; (b) more overlap "
                 "speeds RMO's drain until bandwidth saturates;\n(c) "
                 "a larger backoff cap contains Dekker's conflict "
                 "storm.\n";
    return 0;
}
