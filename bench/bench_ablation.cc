/**
 * @file
 * A1 (ablation): the modelling choices DESIGN.md calls out, measured.
 *
 *  (a) store-buffer ownership prefetching -- without it the baseline
 *      serializes store misses and speculation would get credit for an
 *      artifact of the model;
 *  (b) relaxed-drain overlap (RMO max_inflight) -- the source of RMO's
 *      drain-bandwidth advantage;
 *  (c) rollback backoff cap -- what contains conflict thrashing.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

int
main()
{
    banner("A1", "ablations of the model's design choices");

    // (a) ownership prefetch depth, TSO baseline, store-heavy workload
    {
        std::cout << "-- (a) store ownership prefetch depth "
                     "(local-locks, TSO baseline, cycles) --\n";
        harness::Table table({"prefetch depth", "cycles",
                              "prefetches"});
        workload::LocalLockStream::Params p;
        p.iters = 96;
        p.stream_stores = 8;
        for (unsigned depth : {0, 1, 2, 4, 8}) {
            harness::SystemConfig cfg = defaultConfig();
            cfg.sb_prefetch_depth = depth;
            workload::LocalLockStream wl(p);
            isa::Program prog = wl.build(cfg.num_cores);
            harness::System sys(cfg, prog);
            if (!sys.run())
                fatal("did not terminate");
            std::string error;
            if (!wl.check(sys.memReader(), cfg.num_cores, error))
                fatal(error);
            std::uint64_t prefetches = 0;
            for (std::uint32_t c = 0; c < cfg.num_cores; ++c)
                prefetches += sys.l1(c).statGroup().scalarCount(
                    "prefetches");
            table.addRow({std::to_string(depth),
                          harness::fmt(static_cast<double>(
                              sys.runtimeCycles()), 0),
                          std::to_string(prefetches)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // (b) relaxed drain overlap, RMO baseline
    {
        std::cout << "-- (b) RMO drain overlap (local-locks, RMO "
                     "baseline, cycles) --\n";
        harness::Table table({"max inflight drains", "cycles"});
        workload::LocalLockStream::Params p;
        p.iters = 96;
        p.stream_stores = 8;
        for (unsigned inflight : {1, 2, 4, 8}) {
            harness::SystemConfig cfg = defaultConfig();
            cfg.model = cpu::ConsistencyModel::RMO;
            cfg.sb_max_inflight = inflight;
            cfg.sb_prefetch_depth = 0; // isolate the overlap effect
            workload::LocalLockStream wl(p);
            isa::Program prog = wl.build(cfg.num_cores);
            harness::System sys(cfg, prog);
            if (!sys.run())
                fatal("did not terminate");
            std::string error;
            if (!wl.check(sys.memReader(), cfg.num_cores, error))
                fatal(error);
            table.addRow({std::to_string(inflight),
                          harness::fmt(static_cast<double>(
                              sys.runtimeCycles()), 0)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // (c) rollback backoff cap under heavy conflicts (dekker)
    {
        std::cout << "-- (c) rollback backoff cap (dekker, IF-SC; "
                     "baseline SC = 1.00) --\n";
        harness::Table table({"max cooldown", "runtime vs base",
                              "rollbacks"});
        workload::Dekker::Params p;
        p.iters = 400;
        double base = 0;
        {
            harness::SystemConfig cfg = defaultConfig();
            cfg.model = cpu::ConsistencyModel::SC;
            workload::Dekker wl(p);
            base = static_cast<double>(measure(wl, cfg).cycles);
        }
        for (unsigned cap : {1, 4, 16, 64, 256}) {
            harness::SystemConfig cfg = defaultConfig();
            cfg.model = cpu::ConsistencyModel::SC;
            cfg.withSpeculation();
            cfg.spec.max_cooldown = cap;
            workload::Dekker wl(p);
            isa::Program prog = wl.build(cfg.num_cores);
            harness::System sys(cfg, prog);
            if (!sys.run())
                fatal("did not terminate");
            std::string error;
            if (!wl.check(sys.memReader(), cfg.num_cores, error))
                fatal(error);
            table.addRow({std::to_string(cap),
                          harness::fmt(static_cast<double>(
                              sys.runtimeCycles()) / base),
                          std::to_string(sys.totalRollbacks())});
        }
        table.print(std::cout);
    }

    std::cout << "\nShapes: (a) deeper prefetch removes serialized "
                 "store misses from the\nbaseline; (b) more overlap "
                 "speeds RMO's drain until bandwidth saturates;\n(c) "
                 "a larger backoff cap contains Dekker's conflict "
                 "storm.\n";
    return 0;
}
