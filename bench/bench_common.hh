/**
 * @file
 * Shared helpers for the experiment binaries (T1..T3, F1..F9).
 *
 * Each bench binary regenerates one table or figure of the
 * reconstructed evaluation (see DESIGN.md section 5 and
 * EXPERIMENTS.md): it sweeps configurations, runs the workloads,
 * verifies their postconditions, and prints the rows/series.
 *
 * Sweeps are host-parallel: every (workload x configuration) point is
 * an independent deterministic simulation, so the binaries package
 * each point as a task, hand the batch to harness::SweepRunner
 * (--jobs=N, default hardware concurrency), and render the ordered
 * results on the main thread.  Output is byte-identical to --jobs=1.
 */

#pragma once

#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "harness/exit_codes.hh"
#include "harness/options.hh"
#include "harness/sweep.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "workload/workload.hh"

namespace fenceless::bench
{

/** The default evaluated machine (Table T1). */
inline harness::SystemConfig
defaultConfig(std::uint32_t cores = 8)
{
    harness::SystemConfig cfg;
    cfg.num_cores = cores;
    cfg.model = cpu::ConsistencyModel::TSO;
    cfg.sb_size = 16;
    cfg.l1.size = 32 * 1024;
    cfg.l1.assoc = 8;
    cfg.l1.hit_latency = 2;
    cfg.l2.size = 4 * 1024 * 1024;
    cfg.l2.assoc = 16;
    cfg.l2.latency = 6;
    cfg.l2.dram_latency = 80;
    cfg.net.latency = 8;
    cfg.max_cycles = 2'000'000'000ULL;
    return cfg;
}

/** Counters of one measured run. */
struct RunResult
{
    Tick cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t commits = 0;
    std::uint64_t rollbacks = 0;
};

/**
 * Outcome of one measured run.  Termination and postconditions are
 * hard requirements -- an experiment on a broken run would be
 * meaningless -- but a failure must not kill the whole sweep from a
 * worker thread, so it is reported as a value and surfaced by the
 * main thread once the sweep has drained.
 */
struct RunOutcome
{
    RunResult result;
    prof::Profile profile; //!< empty unless cfg.profile was set
    std::string error;
    bool hung = false; //!< watchdog abort or cycle-budget exhaustion

    bool ok() const { return error.empty(); }
    explicit operator bool() const { return ok(); }
};

/**
 * Like RunOutcome, but keeps the simulated System alive so the caller
 * can read component statistics after the run.
 */
struct MeasuredSystem
{
    std::unique_ptr<harness::System> sys;
    std::string error;
    bool hung = false; //!< watchdog abort or cycle-budget exhaustion

    bool ok() const { return error.empty(); }
    explicit operator bool() const { return ok(); }
};

/**
 * Build, run and verify one workload under one configuration,
 * returning the System for stat inspection.
 */
inline MeasuredSystem
measureSystem(workload::Workload &wl, const harness::SystemConfig &cfg)
{
    MeasuredSystem m;
    isa::Program prog = wl.build(cfg.num_cores);
    m.sys = std::make_unique<harness::System>(cfg, prog);
    if (!m.sys->run()) {
        m.hung = true;
        m.error = "workload '" + wl.name() +
                  (m.sys->hung()
                       ? "' hung (watchdog abort, stall dossier above)"
                       : "' did not terminate within the cycle budget");
        return m;
    }
    std::string check_error;
    if (!wl.check(m.sys->memReader(), cfg.num_cores, check_error)) {
        m.error = "workload '" + wl.name() +
                  "' failed verification: " + check_error;
    }
    return m;
}

/**
 * Build, run and verify one workload; counters only.  When profiling
 * is enabled in @p cfg the outcome also carries the run's waste
 * profile, with every key prefixed by @p profile_scope so profiles
 * from different sweep points merge without colliding.
 */
inline RunOutcome
measure(workload::Workload &wl, const harness::SystemConfig &cfg,
        const std::string &profile_scope = "")
{
    RunOutcome out;
    MeasuredSystem m = measureSystem(wl, cfg);
    if (!m.ok()) {
        out.error = std::move(m.error);
        out.hung = m.hung;
        return out;
    }
    out.result.cycles = m.sys->runtimeCycles();
    out.result.instructions = m.sys->totalInstructions();
    out.result.commits = m.sys->totalCommits();
    out.result.rollbacks = m.sys->totalRollbacks();
    if (cfg.profile)
        out.profile = m.sys->profile(profile_scope);
    return out;
}

/**
 * One rendered table row produced by a sweep task -- the common case.
 * A non-empty error marks the task (and the experiment) as failed.
 */
struct Row
{
    std::vector<std::string> cells;
    std::string error;
    bool hung = false; //!< the task's run hung (watchdog / budget)
};

/**
 * Run every task on a SweepRunner sized by --jobs and return the
 * results in submission order.  Tasks execute in any order across the
 * workers, but all rendering happens on the calling thread from the
 * ordered results, which keeps parallel output byte-identical to the
 * sequential run.
 */
template <typename R>
std::vector<R>
runSweep(const harness::Options &opts,
         std::vector<std::function<R()>> tasks)
{
    harness::SweepRunner runner(opts.jobs());
    return runner.map(std::move(tasks));
}

/**
 * Surface task failures once the sweep has drained: print every error
 * (projected out of a result by @p error_of) to stderr.
 * @return true if no task failed
 */
template <typename R, typename ErrorOf>
bool
sweepOk(const std::vector<R> &results, ErrorOf &&error_of)
{
    bool ok = true;
    for (const auto &r : results) {
        const std::string err = error_of(r);
        if (!err.empty()) {
            std::cerr << "error: " << err << "\n";
            ok = false;
        }
    }
    return ok;
}

/** sweepOk for the Row-producing sweeps. */
inline bool
sweepOk(const std::vector<Row> &rows)
{
    return sweepOk(rows, [](const Row &r) { return r.error; });
}

/**
 * Process exit code for a drained sweep (see harness/exit_codes.hh):
 * exit_hang if any task hung, exit_postcondition if any task failed
 * for another reason (a workload postcondition), exit_ok otherwise.
 * @p error_of / @p hung_of project the fields out of a result.
 */
template <typename R, typename ErrorOf, typename HungOf>
int
sweepExitCode(const std::vector<R> &results, ErrorOf &&error_of,
              HungOf &&hung_of)
{
    int code = harness::exit_ok;
    for (const auto &r : results) {
        if (hung_of(r))
            return harness::exit_hang;
        if (!error_of(r).empty())
            code = harness::exit_postcondition;
    }
    return code;
}

/** sweepExitCode for the Row-producing sweeps. */
inline int
sweepExitCode(const std::vector<Row> &rows)
{
    return sweepExitCode(
        rows, [](const Row &r) { return r.error; },
        [](const Row &r) { return r.hung; });
}

/**
 * The standard suite as shared_ptrs, so each sweep task can co-own
 * exactly one workload (std::function closures must be copyable).
 * Tasks never share a workload instance: one task per workload.
 */
inline std::vector<std::shared_ptr<workload::Workload>>
sharedSuite(unsigned scale)
{
    std::vector<std::shared_ptr<workload::Workload>> suite;
    for (auto &wl : workload::standardSuite(scale))
        suite.push_back(std::move(wl));
    return suite;
}

/** Standard experiment header. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::cout << "\n=== " << id << ": " << title << " ===\n\n";
}

/**
 * Write the waste-profile artefacts requested on the command line:
 * `--profile-out=FILE` (JSON, plus FILE.folded with flamegraph folded
 * stacks) and `--waste-report` (top-N table on stdout).  No-op when
 * neither option was passed.  Callers that sweep many configurations
 * merge the per-run profiles (in submission order, for byte-identical
 * output at any --jobs) and pass the merged profile here once.
 * @return false if a requested file could not be opened
 */
inline bool
writeProfileArtifacts(const prof::Profile &profile,
                      const harness::Options &opts)
{
    if (const std::string path = opts.profileOut(); !path.empty()) {
        std::ofstream os(path);
        if (!os) {
            std::cerr << "error: cannot open --profile-out file '"
                      << path << "'\n";
            return false;
        }
        profile.writeJson(os);
        const std::string folded_path = path + ".folded";
        std::ofstream folded(folded_path);
        if (!folded) {
            std::cerr << "error: cannot open --profile-out file '"
                      << folded_path << "'\n";
            return false;
        }
        profile.writeFolded(folded);
        std::cerr << "profile written to " << path << " and "
                  << folded_path << "\n";
    }
    if (opts.wasteReport())
        profile.writeReport(std::cout);
    return true;
}

/**
 * Write the observability artefacts requested on the command line:
 * `--trace-out=FILE` (Chrome trace-event JSON, load in
 * ui.perfetto.dev), `--stats-json=FILE` (full stat registry plus the
 * snapshot time series), `--blackbox-out=FILE` (flight-recorder dump,
 * same format as --trace-out), `--profile-out=FILE` and
 * `--waste-report` (waste-attribution profile).  No-op when no option
 * was passed.
 * @return false if a requested file could not be opened
 */
inline bool
writeObservability(const harness::System &sys,
                   const harness::Options &opts)
{
    if (const std::string path = opts.traceOut(); !path.empty()) {
        std::ofstream os(path);
        if (!os) {
            std::cerr << "error: cannot open --trace-out file '"
                      << path << "'\n";
            return false;
        }
        sys.exportTrace(os);
        std::cerr << "trace written to " << path
                  << " (open in ui.perfetto.dev)\n";
    }
    if (const std::string path = opts.statsJson(); !path.empty()) {
        std::ofstream os(path);
        if (!os) {
            std::cerr << "error: cannot open --stats-json file '"
                      << path << "'\n";
            return false;
        }
        sys.writeStatsJson(os);
        std::cerr << "stats written to " << path << "\n";
    }
    if (const std::string path = opts.blackboxOut(); !path.empty()) {
        std::ofstream os(path);
        if (!os) {
            std::cerr << "error: cannot open --blackbox-out file '"
                      << path << "'\n";
            return false;
        }
        sys.writeBlackbox(os);
        std::cerr << "flight recorder written to " << path
                  << " (open in ui.perfetto.dev)\n";
    }
    if (const std::string path = opts.outliersOut(); !path.empty()) {
        std::ofstream os(path);
        if (!os) {
            std::cerr << "error: cannot open --outliers-out file '"
                      << path << "'\n";
            return false;
        }
        sys.writeOutliers(os);
        std::cerr << "outlier dossiers written to " << path << "\n";
    }
    if (opts.profiling() && !writeProfileArtifacts(sys.profile(), opts))
        return false;
    if (opts.shardReport())
        sys.writeShardReport(std::cout);
    if (opts.tailReport())
        sys.writeTailReport(std::cout);
    return true;
}

/**
 * Mean of the named latency distribution averaged over every component
 * group whose name starts with @p group_prefix (e.g. all "l1_*"
 * caches), weighted by sample count.  Returns 0 with no samples.
 * This is the request-lifetime attribution view: each phase of a miss
 * (L1 miss to fill, directory queueing, directory service, network
 * transit) owns one distribution, and the phase means decompose the
 * end-to-end miss latency.
 */
inline double
meanPhaseLatency(const harness::System &sys,
                 const std::string &group_prefix,
                 const std::string &dist_name)
{
    double weighted = 0;
    std::uint64_t samples = 0;
    for (const auto &group : sys.stats().groups()) {
        if (group->name().rfind(group_prefix, 0) != 0)
            continue;
        const statistics::Distribution *d =
            group->findDistribution(dist_name);
        if (!d || d->samples() == 0)
            continue;
        weighted += d->mean() * static_cast<double>(d->samples());
        samples += d->samples();
    }
    return samples ? weighted / static_cast<double>(samples) : 0.0;
}

} // namespace fenceless::bench
