/**
 * @file
 * Shared helpers for the experiment binaries (T1..T3, F1..F9).
 *
 * Each bench binary regenerates one table or figure of the
 * reconstructed evaluation (see DESIGN.md section 5 and
 * EXPERIMENTS.md): it sweeps configurations, runs the workloads,
 * verifies their postconditions, and prints the rows/series.
 */

#pragma once

#include <iostream>
#include <string>

#include "base/logging.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "workload/workload.hh"

namespace fenceless::bench
{

/** The default evaluated machine (Table T1). */
inline harness::SystemConfig
defaultConfig(std::uint32_t cores = 8)
{
    harness::SystemConfig cfg;
    cfg.num_cores = cores;
    cfg.model = cpu::ConsistencyModel::TSO;
    cfg.sb_size = 16;
    cfg.l1.size = 32 * 1024;
    cfg.l1.assoc = 8;
    cfg.l1.hit_latency = 2;
    cfg.l2.size = 4 * 1024 * 1024;
    cfg.l2.assoc = 16;
    cfg.l2.latency = 6;
    cfg.l2.dram_latency = 80;
    cfg.net.latency = 8;
    cfg.max_cycles = 2'000'000'000ULL;
    return cfg;
}

/** Result of one measured run. */
struct RunResult
{
    Tick cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t commits = 0;
    std::uint64_t rollbacks = 0;
};

/**
 * Build, run and verify one workload under one configuration.
 * Terminination and postconditions are hard requirements: an
 * experiment on a broken run would be meaningless.
 */
inline RunResult
measure(workload::Workload &wl, const harness::SystemConfig &cfg)
{
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    if (!sys.run())
        fatal("workload '", wl.name(), "' did not terminate");
    std::string error;
    if (!wl.check(sys.memReader(), cfg.num_cores, error))
        fatal("workload '", wl.name(), "' failed verification: ",
              error);
    RunResult r;
    r.cycles = sys.runtimeCycles();
    r.instructions = sys.totalInstructions();
    r.commits = sys.totalCommits();
    r.rollbacks = sys.totalRollbacks();
    return r;
}

/** Standard experiment header. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::cout << "\n=== " << id << ": " << title << " ===\n\n";
}

} // namespace fenceless::bench
