/**
 * @file
 * F7: sensitivity to store-buffer size.  Baseline models expose the
 * drain at ordering points, so a bigger buffer mostly shifts *where*
 * the stall happens; speculation converts those stalls into overlap,
 * flattening the curve.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

namespace
{

using Make = std::function<workload::WorkloadPtr()>;

/** Raw cycles for one config row across the swept buffer sizes. */
struct Series
{
    std::vector<double> cycles;
    std::string error;
    bool hung = false;
};

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("F7", "runtime vs store-buffer size (store-intensive "
                 "workloads, normalized to 16-entry TSO baseline)");

    const unsigned sizes[] = {2, 4, 8, 16, 32};
    const unsigned ref_size_index = 3; // sb=16

    workload::LocalLockStream::Params deep;
    deep.iters = 96;
    deep.stream_stores = 8;
    const Make entries[] = {
        [deep] {
            return std::make_unique<workload::LocalLockStream>(deep);
        },
        [] { return std::make_unique<workload::ProdCons>(); },
    };

    struct ConfigRow
    {
        cpu::ConsistencyModel model;
        bool speculative;
    };
    const ConfigRow config_rows[] = {
        {cpu::ConsistencyModel::SC, false},
        {cpu::ConsistencyModel::SC, true},
        {cpu::ConsistencyModel::TSO, false},
        {cpu::ConsistencyModel::TSO, true},
    };

    // One task per (workload, model, speculation) row, sweeping the
    // buffer sizes inside; the TSO baseline row at sb=16 doubles as
    // the normalization reference, so no extra reference run needed.
    std::vector<std::function<Series()>> tasks;
    for (const Make &make : entries) {
        for (const ConfigRow &cr : config_rows) {
            tasks.push_back([make, cr]() -> Series {
                Series s;
                for (unsigned size : {2u, 4u, 8u, 16u, 32u}) {
                    harness::SystemConfig cfg = defaultConfig();
                    cfg.model = cr.model;
                    cfg.sb_size = size;
                    if (cr.speculative)
                        cfg.withSpeculation();
                    auto wl = make();
                    RunOutcome r = measure(*wl, cfg);
                    if (!r) {
                        s.error = r.error;
                        s.hung = r.hung;
                        return s;
                    }
                    s.cycles.push_back(
                        static_cast<double>(r.result.cycles));
                }
                return s;
            });
        }
    }

    auto results = runSweep(opts, std::move(tasks));
    if (!sweepOk(results, [](const Series &s) { return s.error; }))
        return sweepExitCode(
            results, [](const Series &s) { return s.error; },
            [](const Series &s) { return s.hung; });

    std::size_t idx = 0;
    for (const Make &make : entries) {
        std::cout << "-- " << make()->name() << " --\n";
        std::vector<std::string> headers{"config"};
        for (unsigned s : sizes)
            headers.push_back("sb=" + std::to_string(s));
        harness::Table table(std::move(headers));

        // Reference: this workload's TSO baseline at 16 entries.
        const double ref =
            results[idx + 2].cycles[ref_size_index];
        for (const ConfigRow &cr : config_rows) {
            const Series &s = results[idx++];
            std::vector<std::string> row{
                std::string(cr.speculative ? "IF-" : "")
                + consistencyModelName(cr.model)};
            for (double cycles : s.cycles)
                row.push_back(harness::fmt(cycles / ref));
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Shape: baselines remain sensitive to buffer size "
                 "(stores back up at the\nordering points); the "
                 "speculative configurations are flat and lowest.\n";
    return 0;
}
