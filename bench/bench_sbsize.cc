/**
 * @file
 * F7: sensitivity to store-buffer size.  Baseline models expose the
 * drain at ordering points, so a bigger buffer mostly shifts *where*
 * the stall happens; speculation converts those stalls into overlap,
 * flattening the curve.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

int
main()
{
    banner("F7", "runtime vs store-buffer size (store-intensive "
                 "workloads, normalized to 16-entry TSO baseline)");

    const unsigned sizes[] = {2, 4, 8, 16, 32};

    workload::LocalLockStream::Params deep;
    deep.iters = 96;
    deep.stream_stores = 8;
    workload::WorkloadPtr wls[] = {
        std::make_unique<workload::LocalLockStream>(deep),
        std::make_unique<workload::ProdCons>(),
    };

    for (auto &wl : wls) {
        std::cout << "-- " << wl->name() << " --\n";
        std::vector<std::string> headers{"config"};
        for (unsigned s : sizes)
            headers.push_back("sb=" + std::to_string(s));
        harness::Table table(std::move(headers));

        // Reference: TSO baseline with 16 entries.
        double ref = 0;
        {
            harness::SystemConfig cfg = defaultConfig();
            cfg.model = cpu::ConsistencyModel::TSO;
            cfg.sb_size = 16;
            ref = static_cast<double>(measure(*wl, cfg).cycles);
        }

        for (auto model : {cpu::ConsistencyModel::SC,
                           cpu::ConsistencyModel::TSO}) {
            for (bool speculative : {false, true}) {
                std::vector<std::string> row{
                    std::string(speculative ? "IF-" : "")
                    + consistencyModelName(model)};
                for (unsigned s : sizes) {
                    harness::SystemConfig cfg = defaultConfig();
                    cfg.model = model;
                    cfg.sb_size = s;
                    if (speculative)
                        cfg.withSpeculation();
                    const double cycles = static_cast<double>(
                        measure(*wl, cfg).cycles);
                    row.push_back(harness::fmt(cycles / ref));
                }
                table.addRow(std::move(row));
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Shape: baselines remain sensitive to buffer size "
                 "(stores back up at the\nordering points); the "
                 "speculative configurations are flat and lowest.\n";
    return 0;
}
