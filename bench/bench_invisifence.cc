/**
 * @file
 * F2 (headline): fence speculation makes memory ordering performance-
 * transparent.  Normalized runtime of every workload under each
 * consistency model, baseline vs. speculative (on-demand,
 * block-granularity), all normalized to baseline RMO.
 *
 * Shape to reproduce: IF-SC closes most of the SC <-> RMO gap; IF-TSO
 * removes the fence/atomic drain cost; IF-RMO ~= RMO (little left to
 * win).
 */

#include <cmath>
#include <iostream>

#include "bench/bench_common.hh"

using namespace fenceless;
using namespace fenceless::bench;

namespace
{

/** One workload's six normalized runtimes, for the geomean row. */
struct WorkloadNorms
{
    std::string name;
    double norm[6] = {};
    prof::Profile profile; //!< merged across the six runs (if enabled)
    std::string error;
    bool hung = false;
};

/** Scope prefix for one run's profile, e.g. "spinlock/IF-TSO". */
std::string
profileScope(const workload::Workload &wl, cpu::ConsistencyModel model,
             bool speculative)
{
    return wl.name() + "/" + (speculative ? "IF-" : "") +
           cpu::consistencyModelName(model);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("F2", "fence speculation vs baseline (normalized runtime, "
                 "baseline RMO = 1.00)");

    harness::Table table({"workload", "SC", "IF-SC", "TSO", "IF-TSO",
                          "RMO", "IF-RMO"});

    const bool profiling = opts.profiling();
    std::vector<std::function<WorkloadNorms()>> tasks;
    for (auto &wl : sharedSuite(2)) {
        tasks.push_back([wl, profiling]() -> WorkloadNorms {
            WorkloadNorms out;
            out.name = wl->name();
            double cycles[6] = {};
            double rmo_base = 0;
            int i = 0;
            for (auto model : {cpu::ConsistencyModel::SC,
                               cpu::ConsistencyModel::TSO,
                               cpu::ConsistencyModel::RMO}) {
                for (bool speculative : {false, true}) {
                    harness::SystemConfig cfg = defaultConfig();
                    cfg.model = model;
                    if (speculative)
                        cfg.withSpeculation();
                    cfg.profile = profiling;
                    RunOutcome r = measure(
                        *wl, cfg,
                        profileScope(*wl, model, speculative));
                    if (!r) {
                        out.error = r.error;
                        out.hung = r.hung;
                        return out;
                    }
                    out.profile.merge(r.profile);
                    cycles[i] = static_cast<double>(r.result.cycles);
                    if (model == cpu::ConsistencyModel::RMO &&
                        !speculative) {
                        rmo_base = cycles[i];
                    }
                    ++i;
                }
            }
            for (int c = 0; c < 6; ++c)
                out.norm[c] = cycles[c] / rmo_base;
            return out;
        });
    }

    auto results = runSweep(opts, std::move(tasks));
    if (!sweepOk(results,
                 [](const WorkloadNorms &w) { return w.error; }))
        return sweepExitCode(
            results, [](const WorkloadNorms &w) { return w.error; },
            [](const WorkloadNorms &w) { return w.hung; });

    double geo[6] = {1, 1, 1, 1, 1, 1};
    for (const auto &w : results) {
        std::vector<std::string> row{w.name};
        // column order: SC, IF-SC, TSO, IF-TSO, RMO, IF-RMO
        for (int c = 0; c < 6; ++c) {
            row.push_back(harness::fmt(w.norm[c]));
            geo[c] *= w.norm[c];
        }
        table.addRow(std::move(row));
    }

    std::vector<std::string> gmean{"geomean"};
    for (int c = 0; c < 6; ++c)
        gmean.push_back(harness::fmt(
            std::pow(geo[c], 1.0 / results.size())));
    table.addRow(std::move(gmean));

    table.print(std::cout);
    std::cout << "\nShape to reproduce: IF-SC << SC (most of the "
                 "SC->RMO gap closes);\nIF-TSO <= TSO (fence/atomic "
                 "drains vanish); IF-RMO ~= RMO.\n";

    if (profiling) {
        // Merge in submission order on the main thread: the combined
        // profile is byte-identical for every --jobs value.
        prof::Profile merged;
        for (const auto &w : results)
            merged.merge(w.profile);
        if (!writeProfileArtifacts(merged, opts))
            return 1;
    }
    return 0;
}
