/**
 * @file
 * F2 (headline): fence speculation makes memory ordering performance-
 * transparent.  Normalized runtime of every workload under each
 * consistency model, baseline vs. speculative (on-demand,
 * block-granularity), all normalized to baseline RMO.
 *
 * Shape to reproduce: IF-SC closes most of the SC <-> RMO gap; IF-TSO
 * removes the fence/atomic drain cost; IF-RMO ~= RMO (little left to
 * win).
 */

#include <cmath>
#include <iostream>

#include "bench/bench_common.hh"

using namespace fenceless;
using namespace fenceless::bench;

int
main()
{
    banner("F2", "fence speculation vs baseline (normalized runtime, "
                 "baseline RMO = 1.00)");

    harness::Table table({"workload", "SC", "IF-SC", "TSO", "IF-TSO",
                          "RMO", "IF-RMO"});

    double geo[6] = {1, 1, 1, 1, 1, 1};
    unsigned rows = 0;

    for (auto &wl : workload::standardSuite(2)) {
        double cycles[6] = {};
        double rmo_base = 0;
        int i = 0;
        for (auto model : {cpu::ConsistencyModel::SC,
                           cpu::ConsistencyModel::TSO,
                           cpu::ConsistencyModel::RMO}) {
            for (bool speculative : {false, true}) {
                harness::SystemConfig cfg = defaultConfig();
                cfg.model = model;
                if (speculative)
                    cfg.withSpeculation();
                RunResult r = measure(*wl, cfg);
                cycles[i] = static_cast<double>(r.cycles);
                if (model == cpu::ConsistencyModel::RMO &&
                    !speculative) {
                    rmo_base = cycles[i];
                }
                ++i;
            }
        }
        std::vector<std::string> row{wl->name()};
        // column order: SC, IF-SC, TSO, IF-TSO, RMO, IF-RMO
        for (int c = 0; c < 6; ++c) {
            const double norm = cycles[c] / rmo_base;
            row.push_back(harness::fmt(norm));
            geo[c] *= norm;
        }
        table.addRow(std::move(row));
        ++rows;
    }

    std::vector<std::string> gmean{"geomean"};
    for (int c = 0; c < 6; ++c)
        gmean.push_back(harness::fmt(
            std::pow(geo[c], 1.0 / rows)));
    table.addRow(std::move(gmean));

    table.print(std::cout);
    std::cout << "\nShape to reproduce: IF-SC << SC (most of the "
                 "SC->RMO gap closes);\nIF-TSO <= TSO (fence/atomic "
                 "drains vanish); IF-RMO ~= RMO.\n";
    return 0;
}
