/**
 * @file
 * F4: the bounded per-store comparator stalls once its speculative
 * store queue fills; block granularity does not.  Runtime (normalized
 * to block granularity) vs per-store queue capacity K, plus the stall
 * counts, for the deep-speculation workloads.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/kernels.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

int
main()
{
    banner("F4", "per-store queue capacity vs block granularity "
                 "(on-demand SC, 160-cycle DRAM, runtime normalized "
                 "to block granularity)");

    const unsigned capacities[] = {2, 4, 8, 16, 32};

    std::vector<std::string> headers{"workload", "block"};
    for (unsigned k : capacities)
        headers.push_back("K=" + std::to_string(k));
    headers.push_back("stalls@K=2");
    harness::Table table(std::move(headers));

    workload::LocalLockStream::Params deep;
    deep.iters = 96;
    deep.stream_stores = 8;
    workload::WorkloadPtr wls[] = {
        std::make_unique<workload::LocalLockStream>(deep),
        std::make_unique<workload::BarrierPhase>(),
        std::make_unique<workload::Stencil2D>(),
    };

    for (auto &wl : wls) {
        auto run = [&](spec::Granularity g, unsigned k) {
            harness::SystemConfig cfg = defaultConfig();
            cfg.model = cpu::ConsistencyModel::SC;
            cfg.l2.dram_latency = 160; // deepen natural epochs
            cfg.spec.mode = spec::SpecMode::OnDemand;
            cfg.spec.granularity = g;
            cfg.spec.ps_store_queue = k;
            cfg.spec.ps_load_cam = 2 * k;
            isa::Program prog = wl->build(cfg.num_cores);
            harness::System sys(cfg, prog);
            if (!sys.run())
                fatal("'", wl->name(), "' did not terminate");
            std::string error;
            if (!wl->check(sys.memReader(), cfg.num_cores, error))
                fatal(error);
            std::uint64_t stalls = 0;
            for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
                stalls += sys.specController(c)->statGroup()
                              .scalarCount("spec_limit_stalls");
            }
            return std::pair<double, std::uint64_t>(
                static_cast<double>(sys.runtimeCycles()), stalls);
        };

        const auto [block_cycles, block_stalls] =
            run(spec::Granularity::Block, 16);
        (void)block_stalls;
        std::vector<std::string> row{wl->name(), "1.00"};
        std::uint64_t stalls_at_2 = 0;
        for (unsigned k : capacities) {
            const auto [cycles, stalls] =
                run(spec::Granularity::PerStore, k);
            row.push_back(harness::fmt(cycles / block_cycles));
            if (k == 2)
                stalls_at_2 = stalls;
        }
        row.push_back(std::to_string(stalls_at_2));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nShape: small K stalls (runtime > 1); large K "
                 "converges to block\ngranularity -- but its storage "
                 "grows linearly (Table T3) while the\nblock design "
                 "stays at ~1 KB.\n";
    return 0;
}
