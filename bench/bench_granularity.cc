/**
 * @file
 * F4: the bounded per-store comparator stalls once its speculative
 * store queue fills; block granularity does not.  Runtime (normalized
 * to block granularity) vs per-store queue capacity K, plus the stall
 * counts, for the deep-speculation workloads.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/kernels.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

namespace
{

/** Factory, so every sweep task builds its own workload instance. */
using Make = std::function<workload::WorkloadPtr()>;

/** One (workload, granularity-variant) run. */
struct Meas
{
    double cycles = 0;
    std::uint64_t stalls = 0;
    std::string error;
    bool hung = false;
};

Meas
runOne(const Make &make, spec::Granularity g, unsigned k)
{
    Meas out;
    harness::SystemConfig cfg = defaultConfig();
    cfg.model = cpu::ConsistencyModel::SC;
    cfg.l2.dram_latency = 160; // deepen natural epochs
    cfg.spec.mode = spec::SpecMode::OnDemand;
    cfg.spec.granularity = g;
    cfg.spec.ps_store_queue = k;
    cfg.spec.ps_load_cam = 2 * k;
    auto wl = make();
    MeasuredSystem m = measureSystem(*wl, cfg);
    if (!m.ok()) {
        out.error = m.error;
        out.hung = m.hung;
        return out;
    }
    out.cycles = static_cast<double>(m.sys->runtimeCycles());
    for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
        out.stalls += m.sys->specController(c)->statGroup()
                          .scalarCount("spec_limit_stalls");
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("F4", "per-store queue capacity vs block granularity "
                 "(on-demand SC, 160-cycle DRAM, runtime normalized "
                 "to block granularity)");

    const unsigned capacities[] = {2, 4, 8, 16, 32};
    const unsigned num_caps = 5;

    std::vector<std::string> headers{"workload", "block"};
    for (unsigned k : capacities)
        headers.push_back("K=" + std::to_string(k));
    headers.push_back("stalls@K=2");
    harness::Table table(std::move(headers));

    workload::LocalLockStream::Params deep;
    deep.iters = 96;
    deep.stream_stores = 8;
    const Make entries[] = {
        [deep] {
            return std::make_unique<workload::LocalLockStream>(deep);
        },
        [] { return std::make_unique<workload::BarrierPhase>(); },
        [] { return std::make_unique<workload::Stencil2D>(); },
    };

    // One task per (workload, variant): variant 0 is the block-
    // granularity reference, 1..num_caps the per-store capacities.
    std::vector<std::function<Meas()>> tasks;
    for (const Make &make : entries) {
        tasks.push_back(
            [make] { return runOne(make, spec::Granularity::Block,
                                   16); });
        for (unsigned k : capacities) {
            tasks.push_back([make, k] {
                return runOne(make, spec::Granularity::PerStore, k);
            });
        }
    }

    auto results = runSweep(opts, std::move(tasks));
    if (!sweepOk(results, [](const Meas &m) { return m.error; }))
        return sweepExitCode(
            results, [](const Meas &m) { return m.error; },
            [](const Meas &m) { return m.hung; });

    std::size_t idx = 0;
    for (const Make &make : entries) {
        const Meas &block = results[idx++];
        std::vector<std::string> row{make()->name(), "1.00"};
        std::uint64_t stalls_at_2 = 0;
        for (unsigned i = 0; i < num_caps; ++i) {
            const Meas &ps = results[idx++];
            row.push_back(harness::fmt(ps.cycles / block.cycles));
            if (capacities[i] == 2)
                stalls_at_2 = ps.stalls;
        }
        row.push_back(std::to_string(stalls_at_2));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nShape: small K stalls (runtime > 1); large K "
                 "converges to block\ngranularity -- but its storage "
                 "grows linearly (Table T3) while the\nblock design "
                 "stays at ~1 KB.\n";
    return 0;
}
