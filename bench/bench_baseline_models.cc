/**
 * @file
 * F1: the cost of baseline memory-ordering enforcement.  Runtime of
 * each workload under SC / TSO / RMO, normalized to RMO (the most
 * relaxed model).  Also breaks out the ordering-stall cycles.
 */

#include <iostream>

#include "bench/bench_common.hh"

using namespace fenceless;
using namespace fenceless::bench;

namespace
{

std::uint64_t
orderingStalls(harness::System &sys)
{
    std::uint64_t total = 0;
    for (std::uint32_t c = 0; c < sys.numCores(); ++c) {
        const auto &g = sys.core(c).statGroup();
        total += g.scalarCount("stall_sc_load_order") +
                 g.scalarCount("stall_fence_drain") +
                 g.scalarCount("stall_amo_order");
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("F1", "baseline consistency-model cost (normalized runtime, "
                 "RMO = 1.00)");

    harness::Table table({"workload", "SC", "TSO", "RMO",
                          "SC ord-stall%", "TSO ord-stall%"});

    std::vector<std::function<Row()>> tasks;
    for (auto &wl : sharedSuite(2)) {
        tasks.push_back([wl]() -> Row {
            double cycles[3] = {};
            double stall_frac[3] = {};
            int i = 0;
            for (auto model : {cpu::ConsistencyModel::SC,
                               cpu::ConsistencyModel::TSO,
                               cpu::ConsistencyModel::RMO}) {
                harness::SystemConfig cfg = defaultConfig();
                cfg.model = model;
                MeasuredSystem m = measureSystem(*wl, cfg);
                if (!m.ok())
                    return {{}, m.error, m.hung};
                cycles[i] =
                    static_cast<double>(m.sys->runtimeCycles());
                stall_frac[i] = 100.0 * orderingStalls(*m.sys)
                                / (cycles[i] * cfg.num_cores);
                ++i;
            }
            return {{wl->name(),
                     harness::fmt(cycles[0] / cycles[2]),
                     harness::fmt(cycles[1] / cycles[2]), "1.00",
                     harness::fmt(stall_frac[0], 1),
                     harness::fmt(stall_frac[1], 1)},
                    ""};
        });
    }

    auto rows = runSweep(opts, std::move(tasks));
    if (!sweepOk(rows))
        return sweepExitCode(rows);
    for (auto &row : rows)
        table.addRow(std::move(row.cells));
    table.print(std::cout);
    std::cout << "\nShape to observe: SC >= TSO >= RMO; the gap is "
                 "ordering-stall time\n(SC pays at every load above a "
                 "non-empty store buffer, TSO at fences\nand atomics, "
                 "RMO almost never).\n";
    return 0;
}
