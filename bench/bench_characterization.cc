/**
 * @file
 * T2: workload characterization -- how hard each benchmark leans on the
 * ordering points the mechanism targets (fences, atomics per 1k
 * instructions), plus store-buffer pressure and L1 miss rates.
 */

#include <iostream>

#include "bench/bench_common.hh"

using namespace fenceless;
using namespace fenceless::bench;

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("T2", "workload characterization (8 cores, baseline TSO)");

    harness::Table table({"workload", "kinsts", "fences/1k",
                          "atomics/1k", "sb-occ", "L1 miss%",
                          "cycles/inst"});

    std::vector<std::function<Row()>> tasks;
    for (auto &wl : sharedSuite(2)) {
        tasks.push_back([wl]() -> Row {
            harness::SystemConfig cfg = defaultConfig();
            MeasuredSystem m = measureSystem(*wl, cfg);
            if (!m.ok())
                return {{}, m.error, m.hung};
            harness::System &sys = *m.sys;

            std::uint64_t insts = 0, fences = 0, atomics = 0;
            std::uint64_t l1_hits = 0, l1_misses = 0;
            double occ_sum = 0;
            for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
                const auto &cg = sys.core(c).statGroup();
                insts += cg.scalarCount("instructions");
                fences += cg.scalarCount("fences_full") +
                          cg.scalarCount("fences_acquire") +
                          cg.scalarCount("fences_release");
                atomics += cg.scalarCount("amos");
                const auto *occ = dynamic_cast<const
                    statistics::Distribution *>(
                    cg.find("sb_occupancy"));
                occ_sum += occ ? occ->mean() : 0.0;
                const auto &lg = sys.l1(c).statGroup();
                l1_hits += lg.scalarCount("hits");
                l1_misses += lg.scalarCount("misses");
            }
            const double accesses =
                static_cast<double>(l1_hits + l1_misses);
            return {{wl->name(), harness::fmt(insts / 1000.0, 1),
                     harness::fmt(1000.0 * fences / insts, 2),
                     harness::fmt(1000.0 * atomics / insts, 2),
                     harness::fmt(occ_sum / cfg.num_cores, 2),
                     harness::fmt(
                         accesses ? 100.0 * l1_misses / accesses : 0,
                         2),
                     harness::fmt(static_cast<double>(
                                      sys.runtimeCycles())
                                  * cfg.num_cores / insts, 2)},
                    ""};
        });
    }

    auto rows = runSweep(opts, std::move(tasks));
    if (!sweepOk(rows))
        return sweepExitCode(rows);
    for (auto &row : rows)
        table.addRow(std::move(row.cells));
    table.print(std::cout);
    std::cout << "\nEvery workload exercises fences and/or atomics: "
                 "these are the ordering\npoints fence speculation "
                 "targets.\n";
    return 0;
}
