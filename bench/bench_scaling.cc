/**
 * @file
 * F9: scalability.  Speedup of fence speculation over the baseline as
 * the core count grows: conflicts become more likely, but so does the
 * ordering-stall time the mechanism removes.  The conventional
 * directory protocol needs no changes at any scale.
 *
 * F9b extends the sweep past the crossbar: 16/32/64 cores on each NoC
 * topology with an 8-bank directory.  The speculation win must survive
 * per-hop latency -- a mechanism that only pays off on a flat network
 * would not be worth building.
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench/bench_common.hh"
#include "workload/kernels.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

namespace
{

using Make = std::function<workload::WorkloadPtr()>;

/** One (workload, core-count) point: base + speculative runs. */
struct Meas
{
    bool skipped = false; //!< below the workload's minThreads
    double speedup = 0;
    std::uint64_t rollbacks = 0;
    std::string error;
    bool hung = false;
};

/** One (topology, core-count) point of the F9b NoC sweep. */
struct NocMeas
{
    double speedup = 0;
    double hops_per_msg = 0;
    std::uint64_t base_cycles = 0;
    std::uint64_t spec_cycles = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t msgs = 0;
    std::uint64_t hops = 0;
    std::uint64_t links_used = 0;
    std::uint64_t hot_link_msgs = 0;
    std::uint64_t hot_link_busy = 0;
    std::string error;
    bool hung = false;
};

/** A JSON double: %.6g is plenty for speedups and never locale-y. */
std::string
jsonNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("F9", "IF-SC speedup over SC vs core count");

    const std::uint32_t core_counts[] = {1, 2, 4, 8, 16};
    const unsigned num_counts = 5;

    std::vector<std::string> headers{"workload"};
    for (auto c : core_counts)
        headers.push_back(std::to_string(c) + "c");
    headers.push_back("rollbacks@16c");
    harness::Table table(std::move(headers));

    const Make entries[] = {
        [] { return std::make_unique<workload::LocalLockStream>(); },
        [] { return std::make_unique<workload::Stencil2D>(); },
        [] { return std::make_unique<workload::SpinlockCrit>(); },
    };

    // One task per (workload, core count) point.
    std::vector<std::function<Meas()>> tasks;
    for (const Make &make : entries) {
        for (std::uint32_t cores : core_counts) {
            tasks.push_back([make, cores]() -> Meas {
                Meas out;
                auto base_wl = make();
                if (cores < base_wl->minThreads()) {
                    out.skipped = true;
                    return out;
                }
                harness::SystemConfig cfg = defaultConfig(cores);
                cfg.model = cpu::ConsistencyModel::SC;
                RunOutcome base = measure(*base_wl, cfg);
                if (!base) {
                    out.error = base.error;
                    out.hung = base.hung;
                    return out;
                }

                cfg.withSpeculation();
                auto wl = make();
                MeasuredSystem m = measureSystem(*wl, cfg);
                if (!m.ok()) {
                    out.error = m.error;
                    out.hung = m.hung;
                    return out;
                }
                out.speedup =
                    static_cast<double>(base.result.cycles)
                    / static_cast<double>(m.sys->runtimeCycles());
                out.rollbacks = m.sys->totalRollbacks();
                return out;
            });
        }
    }

    auto results = runSweep(opts, std::move(tasks));
    if (!sweepOk(results, [](const Meas &m) { return m.error; }))
        return sweepExitCode(
            results, [](const Meas &m) { return m.error; },
            [](const Meas &m) { return m.hung; });

    std::size_t idx = 0;
    for (const Make &make : entries) {
        std::vector<std::string> row{make()->name()};
        std::uint64_t rollbacks_at_16 = 0;
        for (unsigned i = 0; i < num_counts; ++i) {
            const Meas &m = results[idx++];
            if (m.skipped) {
                row.push_back("-");
                continue;
            }
            row.push_back(harness::fmt(m.speedup));
            if (core_counts[i] == 16)
                rollbacks_at_16 = m.rollbacks;
        }
        row.push_back(std::to_string(rollbacks_at_16));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nShape: the speedup holds (or grows) with core "
                 "count; rollbacks rise\nwith sharing but stay far "
                 "cheaper than the stalls removed.\n";

    // ---- F9b: core count x NoC topology, banked directory ----------
    banner("F9b", "IF-SC speedup vs NoC topology (8-bank directory)");

    const mem::Topology topos[] = {mem::Topology::Crossbar,
                                   mem::Topology::Ring,
                                   mem::Topology::Mesh};
    const std::uint32_t noc_cores[] = {16, 32, 64};

    harness::Table noc_table(
        {"topology", "16c", "32c", "64c", "hops/msg@64c"});

    std::vector<std::function<NocMeas()>> noc_tasks;
    for (mem::Topology topo : topos) {
        for (std::uint32_t cores : noc_cores) {
            noc_tasks.push_back([topo, cores]() -> NocMeas {
                NocMeas out;
                // Lock-local streaming keeps the 64-core points
                // tractable while still crossing every bank.
                workload::LocalLockStream::Params wp;
                wp.iters = 16;
                harness::SystemConfig cfg = defaultConfig(cores);
                cfg.model = cpu::ConsistencyModel::SC;
                cfg.withDirBanks(8).withTopology(topo);
                workload::LocalLockStream base_wl(wp);
                RunOutcome base = measure(base_wl, cfg);
                if (!base) {
                    out.error = base.error;
                    out.hung = base.hung;
                    return out;
                }

                cfg.withSpeculation();
                workload::LocalLockStream wl(wp);
                MeasuredSystem m = measureSystem(wl, cfg);
                if (!m.ok()) {
                    out.error = m.error;
                    out.hung = m.hung;
                    return out;
                }
                out.base_cycles = base.result.cycles;
                out.spec_cycles = m.sys->runtimeCycles();
                out.speedup =
                    static_cast<double>(out.base_cycles)
                    / static_cast<double>(out.spec_cycles);
                out.rollbacks = m.sys->totalRollbacks();
                for (const auto &group : m.sys->stats().groups()) {
                    if (group->name() != "network")
                        continue;
                    out.msgs = group->scalarCount("msgs");
                    out.hops = group->scalarCount("hops");
                    out.links_used = group->scalarCount("links_used");
                    out.hot_link_msgs =
                        group->scalarCount("hot_link_msgs");
                    out.hot_link_busy =
                        group->scalarCount("hot_link_busy");
                    if (out.msgs > 0) {
                        out.hops_per_msg =
                            static_cast<double>(out.hops)
                            / static_cast<double>(out.msgs);
                    }
                }
                return out;
            });
        }
    }

    auto noc_results = runSweep(opts, std::move(noc_tasks));
    if (!sweepOk(noc_results,
                 [](const NocMeas &m) { return m.error; })) {
        return sweepExitCode(
            noc_results, [](const NocMeas &m) { return m.error; },
            [](const NocMeas &m) { return m.hung; });
    }

    idx = 0;
    for (mem::Topology topo : topos) {
        std::vector<std::string> row{mem::topologyName(topo)};
        double hops_at_64 = 0;
        for (std::uint32_t cores : noc_cores) {
            const NocMeas &m = noc_results[idx++];
            row.push_back(harness::fmt(m.speedup));
            if (cores == 64)
                hops_at_64 = m.hops_per_msg;
        }
        row.push_back(harness::fmt(hops_at_64));
        noc_table.addRow(std::move(row));
    }
    noc_table.print(std::cout);
    std::cout << "\nShape: speculation keeps paying on multi-hop "
                 "NoCs; the mesh needs fewer\nhops per message than "
                 "the ring at 64 cores.\n";

    // One JSON object per F9b sweep point for fl_report --sweep-json:
    // the deterministic simulated counters only, never host timings.
    if (const std::string path = opts.sweepJson(); !path.empty()) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        if (!os) {
            std::cerr << "cannot write --sweep-json file " << path
                      << "\n";
            return 1;
        }
        idx = 0;
        for (mem::Topology topo : topos) {
            for (std::uint32_t cores : noc_cores) {
                const NocMeas &m = noc_results[idx++];
                os << "{\"figure\": \"F9b\""
                   << ", \"workload\": \"local-lock-stream\""
                   << ", \"topology\": \"" << mem::topologyName(topo)
                   << "\", \"cores\": " << cores
                   << ", \"dir_banks\": 8"
                   << ", \"base_cycles\": " << m.base_cycles
                   << ", \"spec_cycles\": " << m.spec_cycles
                   << ", \"speedup\": " << jsonNum(m.speedup)
                   << ", \"rollbacks\": " << m.rollbacks
                   << ", \"msgs\": " << m.msgs
                   << ", \"hops\": " << m.hops
                   << ", \"hops_per_msg\": " << jsonNum(m.hops_per_msg)
                   << ", \"links_used\": " << m.links_used
                   << ", \"hot_link_msgs\": " << m.hot_link_msgs
                   << ", \"hot_link_busy\": " << m.hot_link_busy
                   << "}\n";
            }
        }
    }
    return 0;
}
