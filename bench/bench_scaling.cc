/**
 * @file
 * F9: scalability.  Speedup of fence speculation over the baseline as
 * the core count grows: conflicts become more likely, but so does the
 * ordering-stall time the mechanism removes.  The conventional
 * directory protocol needs no changes at any scale.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/kernels.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

namespace
{

using Make = std::function<workload::WorkloadPtr()>;

/** One (workload, core-count) point: base + speculative runs. */
struct Meas
{
    bool skipped = false; //!< below the workload's minThreads
    double speedup = 0;
    std::uint64_t rollbacks = 0;
    std::string error;
    bool hung = false;
};

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("F9", "IF-SC speedup over SC vs core count");

    const std::uint32_t core_counts[] = {1, 2, 4, 8, 16};
    const unsigned num_counts = 5;

    std::vector<std::string> headers{"workload"};
    for (auto c : core_counts)
        headers.push_back(std::to_string(c) + "c");
    headers.push_back("rollbacks@16c");
    harness::Table table(std::move(headers));

    const Make entries[] = {
        [] { return std::make_unique<workload::LocalLockStream>(); },
        [] { return std::make_unique<workload::Stencil2D>(); },
        [] { return std::make_unique<workload::SpinlockCrit>(); },
    };

    // One task per (workload, core count) point.
    std::vector<std::function<Meas()>> tasks;
    for (const Make &make : entries) {
        for (std::uint32_t cores : core_counts) {
            tasks.push_back([make, cores]() -> Meas {
                Meas out;
                auto base_wl = make();
                if (cores < base_wl->minThreads()) {
                    out.skipped = true;
                    return out;
                }
                harness::SystemConfig cfg = defaultConfig(cores);
                cfg.model = cpu::ConsistencyModel::SC;
                RunOutcome base = measure(*base_wl, cfg);
                if (!base) {
                    out.error = base.error;
                    out.hung = base.hung;
                    return out;
                }

                cfg.withSpeculation();
                auto wl = make();
                MeasuredSystem m = measureSystem(*wl, cfg);
                if (!m.ok()) {
                    out.error = m.error;
                    out.hung = m.hung;
                    return out;
                }
                out.speedup =
                    static_cast<double>(base.result.cycles)
                    / static_cast<double>(m.sys->runtimeCycles());
                out.rollbacks = m.sys->totalRollbacks();
                return out;
            });
        }
    }

    auto results = runSweep(opts, std::move(tasks));
    if (!sweepOk(results, [](const Meas &m) { return m.error; }))
        return sweepExitCode(
            results, [](const Meas &m) { return m.error; },
            [](const Meas &m) { return m.hung; });

    std::size_t idx = 0;
    for (const Make &make : entries) {
        std::vector<std::string> row{make()->name()};
        std::uint64_t rollbacks_at_16 = 0;
        for (unsigned i = 0; i < num_counts; ++i) {
            const Meas &m = results[idx++];
            if (m.skipped) {
                row.push_back("-");
                continue;
            }
            row.push_back(harness::fmt(m.speedup));
            if (core_counts[i] == 16)
                rollbacks_at_16 = m.rollbacks;
        }
        row.push_back(std::to_string(rollbacks_at_16));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nShape: the speedup holds (or grows) with core "
                 "count; rollbacks rise\nwith sharing but stay far "
                 "cheaper than the stalls removed.\n";
    return 0;
}
