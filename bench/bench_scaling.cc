/**
 * @file
 * F9: scalability.  Speedup of fence speculation over the baseline as
 * the core count grows: conflicts become more likely, but so does the
 * ordering-stall time the mechanism removes.  The conventional
 * directory protocol needs no changes at any scale.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/kernels.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

int
main()
{
    banner("F9", "IF-SC speedup over SC vs core count");

    const std::uint32_t core_counts[] = {1, 2, 4, 8, 16};

    std::vector<std::string> headers{"workload"};
    for (auto c : core_counts)
        headers.push_back(std::to_string(c) + "c");
    headers.push_back("rollbacks@16c");
    harness::Table table(std::move(headers));

    workload::WorkloadPtr wls[] = {
        std::make_unique<workload::LocalLockStream>(),
        std::make_unique<workload::Stencil2D>(),
        std::make_unique<workload::SpinlockCrit>(),
    };

    for (auto &wl : wls) {
        std::vector<std::string> row{wl->name()};
        std::uint64_t rollbacks_at_16 = 0;
        for (std::uint32_t cores : core_counts) {
            if (cores < wl->minThreads()) {
                row.push_back("-");
                continue;
            }
            harness::SystemConfig cfg = defaultConfig(cores);
            cfg.model = cpu::ConsistencyModel::SC;
            const double base = static_cast<double>(
                measure(*wl, cfg).cycles);

            cfg.withSpeculation();
            isa::Program prog = wl->build(cfg.num_cores);
            harness::System sys(cfg, prog);
            if (!sys.run())
                fatal("'", wl->name(), "' did not terminate");
            std::string error;
            if (!wl->check(sys.memReader(), cfg.num_cores, error))
                fatal(error);
            row.push_back(harness::fmt(
                base / static_cast<double>(sys.runtimeCycles())));
            if (cores == 16)
                rollbacks_at_16 = sys.totalRollbacks();
        }
        row.push_back(std::to_string(rollbacks_at_16));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nShape: the speedup holds (or grows) with core "
                 "count; rollbacks rise\nwith sharing but stay far "
                 "cheaper than the stalls removed.\n";
    return 0;
}
