/**
 * @file
 * T3: dedicated speculative-state storage vs speculation depth.
 *
 * Block granularity needs two tag bits per L1 block plus one register
 * checkpoint -- independent of how deep the speculation runs.  Per-store
 * designs need a store-queue entry per speculative store (and a CAM
 * entry per tracked load): storage grows linearly with depth.  The
 * second table reports the depths the workloads actually reach
 * (measured maxima per epoch), showing why a fixed per-store budget
 * must either be large or stall.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/spec_controller.hh"

using namespace fenceless;
using namespace fenceless::bench;

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("T3", "speculative storage vs speculation depth");

    {
        harness::Table table({"supported depth (stores)",
                              "per-store bytes", "block-granularity "
                              "bytes"});
        const harness::SystemConfig cfg = defaultConfig();
        const std::uint64_t l1_blocks =
            cfg.l1.size / cfg.l1.block_size;
        for (std::uint64_t depth : {4, 8, 16, 32, 64, 128, 256, 512}) {
            table.addRow(
                {std::to_string(depth),
                 std::to_string(spec::StorageModel::perStoreBytes(
                     depth, depth * 2)),
                 std::to_string(
                     spec::StorageModel::blockGranularityBytes(
                         l1_blocks))});
        }
        table.print(std::cout);
        std::cout << "\nBlock granularity: "
                  << spec::StorageModel::blockGranularityBytes(
                         l1_blocks)
                  << " bytes per core ('approximately one kilobyte'), "
                     "constant in depth.\n\n";
    }

    std::cout << "--- measured speculation depth per epoch (on-demand, "
                 "SC, 8 cores) ---\n\n";
    harness::Table table({"workload", "max stores/epoch",
                          "max SW blocks", "max SR blocks",
                          "mean epoch insts"});

    std::vector<std::function<Row()>> tasks;
    for (auto &wl : sharedSuite(2)) {
        tasks.push_back([wl]() -> Row {
            harness::SystemConfig cfg = defaultConfig();
            cfg.model = cpu::ConsistencyModel::SC;
            cfg.withSpeculation();
            MeasuredSystem m = measureSystem(*wl, cfg);
            if (!m.ok())
                return {{}, m.error, m.hung};

            std::uint64_t max_stores = 0, max_sw = 0, max_sr = 0;
            double insts_sum = 0;
            for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
                auto *ctrl = m.sys->specController(c);
                max_stores = std::max(max_stores,
                                      ctrl->maxStoresPerEpoch());
                max_sw = std::max(max_sw, ctrl->maxSwBlocks());
                max_sr = std::max(max_sr, ctrl->maxSrBlocks());
                const auto *d = dynamic_cast<const
                    statistics::Distribution *>(
                    ctrl->statGroup().find("epoch_insts"));
                insts_sum += d ? d->mean() : 0.0;
            }
            return {{wl->name(), std::to_string(max_stores),
                     std::to_string(max_sw), std::to_string(max_sr),
                     harness::fmt(insts_sum / cfg.num_cores, 1)},
                    ""};
        });
    }

    auto rows = runSweep(opts, std::move(tasks));
    if (!sweepOk(rows))
        return sweepExitCode(rows);
    for (auto &row : rows)
        table.addRow(std::move(row.cells));
    table.print(std::cout);
    return 0;
}
