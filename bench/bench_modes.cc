/**
 * @file
 * F3: speculate-on-demand vs continuous speculation under SC.
 * Continuous mode decouples ordering enforcement entirely (fewer, larger
 * epochs) at the cost of a bigger rollback window.
 */

#include <iostream>

#include "bench/bench_common.hh"

using namespace fenceless;
using namespace fenceless::bench;

int
main()
{
    banner("F3", "on-demand vs continuous speculation (SC, runtime "
                 "normalized to baseline SC)");

    harness::Table table({"workload", "base", "on-demand", "continuous",
                          "od epochs", "cont epochs", "od rlbk",
                          "cont rlbk"});

    for (auto &wl : workload::standardSuite(2)) {
        double base_cycles = 0;
        double cycles[2] = {};
        std::uint64_t epochs[2] = {};
        std::uint64_t rollbacks[2] = {};

        {
            harness::SystemConfig cfg = defaultConfig();
            cfg.model = cpu::ConsistencyModel::SC;
            base_cycles =
                static_cast<double>(measure(*wl, cfg).cycles);
        }
        int i = 0;
        for (auto mode : {spec::SpecMode::OnDemand,
                          spec::SpecMode::Continuous}) {
            harness::SystemConfig cfg = defaultConfig();
            cfg.model = cpu::ConsistencyModel::SC;
            cfg.spec.mode = mode;
            isa::Program prog = wl->build(cfg.num_cores);
            harness::System sys(cfg, prog);
            if (!sys.run())
                fatal("'", wl->name(), "' did not terminate");
            std::string error;
            if (!wl->check(sys.memReader(), cfg.num_cores, error))
                fatal(error);
            cycles[i] = static_cast<double>(sys.runtimeCycles());
            for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
                epochs[i] += sys.specController(c)->epochsStarted();
                rollbacks[i] += sys.specController(c)->rollbacks();
            }
            ++i;
        }
        table.addRow({wl->name(), "1.00",
                      harness::fmt(cycles[0] / base_cycles),
                      harness::fmt(cycles[1] / base_cycles),
                      std::to_string(epochs[0]),
                      std::to_string(epochs[1]),
                      std::to_string(rollbacks[0]),
                      std::to_string(rollbacks[1])});
    }
    table.print(std::cout);
    std::cout << "\nShape: both modes beat the baseline; continuous "
                 "uses far fewer (longer)\nepochs and risks more "
                 "rollback work per conflict.\n";
    return 0;
}
