/**
 * @file
 * F3: speculate-on-demand vs continuous speculation under SC.
 * Continuous mode decouples ordering enforcement entirely (fewer, larger
 * epochs) at the cost of a bigger rollback window.
 */

#include <iostream>

#include "bench/bench_common.hh"

using namespace fenceless;
using namespace fenceless::bench;

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("F3", "on-demand vs continuous speculation (SC, runtime "
                 "normalized to baseline SC)");

    harness::Table table({"workload", "base", "on-demand", "continuous",
                          "od epochs", "cont epochs", "od rlbk",
                          "cont rlbk"});

    std::vector<std::function<Row()>> tasks;
    for (auto &wl : sharedSuite(2)) {
        tasks.push_back([wl]() -> Row {
            double base_cycles = 0;
            double cycles[2] = {};
            std::uint64_t epochs[2] = {};
            std::uint64_t rollbacks[2] = {};

            {
                harness::SystemConfig cfg = defaultConfig();
                cfg.model = cpu::ConsistencyModel::SC;
                RunOutcome r = measure(*wl, cfg);
                if (!r)
                    return {{}, r.error, r.hung};
                base_cycles = static_cast<double>(r.result.cycles);
            }
            int i = 0;
            for (auto mode : {spec::SpecMode::OnDemand,
                              spec::SpecMode::Continuous}) {
                harness::SystemConfig cfg = defaultConfig();
                cfg.model = cpu::ConsistencyModel::SC;
                cfg.spec.mode = mode;
                MeasuredSystem m = measureSystem(*wl, cfg);
                if (!m.ok())
                    return {{}, m.error, m.hung};
                cycles[i] =
                    static_cast<double>(m.sys->runtimeCycles());
                for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
                    epochs[i] +=
                        m.sys->specController(c)->epochsStarted();
                    rollbacks[i] +=
                        m.sys->specController(c)->rollbacks();
                }
                ++i;
            }
            return {{wl->name(), "1.00",
                     harness::fmt(cycles[0] / base_cycles),
                     harness::fmt(cycles[1] / base_cycles),
                     std::to_string(epochs[0]),
                     std::to_string(epochs[1]),
                     std::to_string(rollbacks[0]),
                     std::to_string(rollbacks[1])},
                    ""};
        });
    }

    auto rows = runSweep(opts, std::move(tasks));
    if (!sweepOk(rows))
        return sweepExitCode(rows);
    for (auto &row : rows)
        table.addRow(std::move(row.cells));
    table.print(std::cout);
    std::cout << "\nShape: both modes beat the baseline; continuous "
                 "uses far fewer (longer)\nepochs and risks more "
                 "rollback work per conflict.\n";
    return 0;
}
