/**
 * @file
 * F5: rollback behaviour vs sharing contention.  Sweeping the number
 * of bins in the contended workloads changes the probability that a
 * remote write conflicts with a live speculation tag; the table reports
 * rollback rate (per 1k instructions), discarded work, and the runtime
 * effect.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/kernels.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

namespace
{

struct Point
{
    std::string label;
    workload::WorkloadPtr wl;
};

} // namespace

int
main()
{
    banner("F5", "rollbacks vs contention (on-demand SC, 8 cores)");

    std::vector<Point> points;
    // Sweeping the bin count sweeps the probability that another
    // core's write lands on a block this core speculatively touched.
    for (unsigned bins : {2, 4, 8, 16, 64, 256}) {
        workload::IrregularUpdate::Params p;
        p.updates = 512;
        p.bins = bins;
        points.push_back({"irregular/" + std::to_string(bins) + "bins",
                          std::make_unique<workload::IrregularUpdate>(
                              p)});
    }
    for (std::uint64_t iters : {200, 400}) {
        workload::Dekker::Params p;
        p.iters = iters;
        points.push_back({"dekker/" + std::to_string(iters),
                          std::make_unique<workload::Dekker>(p)});
    }

    harness::Table table({"workload", "rollbacks/1k-inst",
                          "discarded-inst%", "epochs", "speedup vs "
                          "base"});

    for (auto &pt : points) {
        harness::SystemConfig base_cfg = defaultConfig();
        base_cfg.model = cpu::ConsistencyModel::SC;
        const double base_cycles = static_cast<double>(
            measure(*pt.wl, base_cfg).cycles);

        harness::SystemConfig cfg = base_cfg;
        cfg.withSpeculation();
        isa::Program prog = pt.wl->build(cfg.num_cores);
        harness::System sys(cfg, prog);
        if (!sys.run())
            fatal("'", pt.label, "' did not terminate");
        std::string error;
        if (!pt.wl->check(sys.memReader(), cfg.num_cores, error))
            fatal(error);

        std::uint64_t rollbacks = 0, epochs = 0, discarded = 0;
        std::uint64_t insts = sys.totalInstructions();
        for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
            auto *ctrl = sys.specController(c);
            rollbacks += ctrl->rollbacks();
            epochs += ctrl->epochsStarted();
            discarded += ctrl->statGroup().scalarCount(
                "discarded_insts");
        }
        table.addRow(
            {pt.label,
             harness::fmt(1000.0 * rollbacks / insts, 3),
             harness::fmt(100.0 * discarded / (insts + discarded), 2),
             std::to_string(epochs),
             harness::fmt(base_cycles
                          / static_cast<double>(sys.runtimeCycles()))});
    }
    table.print(std::cout);
    std::cout << "\nShape: speedup grows as contention falls (more "
                 "bins).  At extreme\ncontention the rollback backoff "
                 "disables speculation (few epochs,\nspeedup ~1); the "
                 "rollback *rate* peaks at moderate contention where\n"
                 "speculation keeps trying.\n";
    return 0;
}
