/**
 * @file
 * F5: rollback behaviour vs sharing contention.  Sweeping the number
 * of bins in the contended workloads changes the probability that a
 * remote write conflicts with a live speculation tag; the table reports
 * rollback rate (per 1k instructions), discarded work, and the runtime
 * effect.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/kernels.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

namespace
{

struct Point
{
    std::string label;
    std::function<workload::WorkloadPtr()> make;
};

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("F5", "rollbacks vs contention (on-demand SC, 8 cores)");

    std::vector<Point> points;
    // Sweeping the bin count sweeps the probability that another
    // core's write lands on a block this core speculatively touched.
    for (unsigned bins : {2, 4, 8, 16, 64, 256}) {
        workload::IrregularUpdate::Params p;
        p.updates = 512;
        p.bins = bins;
        points.push_back(
            {"irregular/" + std::to_string(bins) + "bins", [p] {
                 return std::make_unique<workload::IrregularUpdate>(p);
             }});
    }
    for (std::uint64_t iters : {200, 400}) {
        workload::Dekker::Params p;
        p.iters = iters;
        points.push_back({"dekker/" + std::to_string(iters), [p] {
                              return std::make_unique<
                                  workload::Dekker>(p);
                          }});
    }

    harness::Table table({"workload", "rollbacks/1k-inst",
                          "discarded-inst%", "epochs", "speedup vs "
                          "base"});

    std::vector<std::function<Row()>> tasks;
    for (const auto &pt : points) {
        tasks.push_back([pt]() -> Row {
            harness::SystemConfig base_cfg = defaultConfig();
            base_cfg.model = cpu::ConsistencyModel::SC;
            auto base_wl = pt.make();
            RunOutcome base = measure(*base_wl, base_cfg);
            if (!base)
                return {{}, base.error, base.hung};
            const double base_cycles =
                static_cast<double>(base.result.cycles);

            harness::SystemConfig cfg = base_cfg;
            cfg.withSpeculation();
            auto wl = pt.make();
            MeasuredSystem m = measureSystem(*wl, cfg);
            if (!m.ok())
                return {{}, m.error, m.hung};

            std::uint64_t rollbacks = 0, epochs = 0, discarded = 0;
            std::uint64_t insts = m.sys->totalInstructions();
            for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
                auto *ctrl = m.sys->specController(c);
                rollbacks += ctrl->rollbacks();
                epochs += ctrl->epochsStarted();
                discarded += ctrl->statGroup().scalarCount(
                    "discarded_insts");
            }
            return {{pt.label,
                     harness::fmt(1000.0 * rollbacks / insts, 3),
                     harness::fmt(
                         100.0 * discarded / (insts + discarded), 2),
                     std::to_string(epochs),
                     harness::fmt(base_cycles
                                  / static_cast<double>(
                                      m.sys->runtimeCycles()))},
                    ""};
        });
    }

    auto rows = runSweep(opts, std::move(tasks));
    if (!sweepOk(rows))
        return sweepExitCode(rows);
    for (auto &row : rows)
        table.addRow(std::move(row.cells));
    table.print(std::cout);
    std::cout << "\nShape: speedup grows as contention falls (more "
                 "bins).  At extreme\ncontention the rollback backoff "
                 "disables speculation (few epochs,\nspeedup ~1); the "
                 "rollback *rate* peaks at moderate contention where\n"
                 "speculation keeps trying.\n";
    return 0;
}
