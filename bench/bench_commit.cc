/**
 * @file
 * F8: commit cost.  The block-granularity design commits locally (flash
 * clear, zero extra latency).  Arbitration-based designs pay a global
 * round per commit; we model that as an added per-commit latency and
 * sweep it.  The barrier- and queue-structured workloads commit often,
 * so arbitration cost shows up directly in runtime.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

int
main()
{
    banner("F8", "runtime vs per-commit arbitration latency "
                 "(on-demand SC, normalized to local flash commit)");

    const Cycles arb[] = {0, 10, 25, 50, 100, 200};

    std::vector<std::string> headers{"workload"};
    for (Cycles a : arb)
        headers.push_back(a == 0 ? std::string("local")
                                 : "+" + std::to_string(a) + "cy");
    headers.push_back("commits");
    harness::Table table(std::move(headers));

    workload::WorkloadPtr wls[] = {
        std::make_unique<workload::LocalLockStream>(),
        std::make_unique<workload::BarrierPhase>(),
        std::make_unique<workload::TicketLockCrit>(),
    };

    for (auto &wl : wls) {
        std::vector<std::string> row{wl->name()};
        double local = 0;
        std::uint64_t commits = 0;
        for (Cycles a : arb) {
            harness::SystemConfig cfg = defaultConfig();
            cfg.model = cpu::ConsistencyModel::SC;
            cfg.withSpeculation();
            cfg.spec.commit_arb_latency = a;
            isa::Program prog = wl->build(cfg.num_cores);
            harness::System sys(cfg, prog);
            if (!sys.run())
                fatal("'", wl->name(), "' did not terminate");
            std::string error;
            if (!wl->check(sys.memReader(), cfg.num_cores, error))
                fatal(error);
            const double cycles =
                static_cast<double>(sys.runtimeCycles());
            if (a == 0) {
                local = cycles;
                commits = sys.totalCommits();
            }
            row.push_back(harness::fmt(cycles / local));
        }
        row.push_back(std::to_string(commits));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nShape: runtime grows with arbitration latency "
                 "(and with commit\nfrequency); the local flash commit "
                 "avoids the whole axis.\n";
    return 0;
}
