/**
 * @file
 * F8: commit cost.  The block-granularity design commits locally (flash
 * clear, zero extra latency).  Arbitration-based designs pay a global
 * round per commit; we model that as an added per-commit latency and
 * sweep it.  The barrier- and queue-structured workloads commit often,
 * so arbitration cost shows up directly in runtime.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

namespace
{

using Make = std::function<workload::WorkloadPtr()>;

/** One (workload, arbitration-latency) point. */
struct Meas
{
    double cycles = 0;
    std::uint64_t commits = 0;
    std::string error;
    bool hung = false;
};

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("F8", "runtime vs per-commit arbitration latency "
                 "(on-demand SC, normalized to local flash commit)");

    const Cycles arb[] = {0, 10, 25, 50, 100, 200};
    const unsigned num_arbs = 6;

    std::vector<std::string> headers{"workload"};
    for (Cycles a : arb)
        headers.push_back(a == 0 ? std::string("local")
                                 : "+" + std::to_string(a) + "cy");
    headers.push_back("commits");
    harness::Table table(std::move(headers));

    const Make entries[] = {
        [] { return std::make_unique<workload::LocalLockStream>(); },
        [] { return std::make_unique<workload::BarrierPhase>(); },
        [] { return std::make_unique<workload::TicketLockCrit>(); },
    };

    // One task per (workload, arbitration latency) point.
    std::vector<std::function<Meas()>> tasks;
    for (const Make &make : entries) {
        for (Cycles a : arb) {
            tasks.push_back([make, a]() -> Meas {
                Meas out;
                harness::SystemConfig cfg = defaultConfig();
                cfg.model = cpu::ConsistencyModel::SC;
                cfg.withSpeculation();
                cfg.spec.commit_arb_latency = a;
                auto wl = make();
                RunOutcome r = measure(*wl, cfg);
                if (!r) {
                    out.error = r.error;
                    out.hung = r.hung;
                    return out;
                }
                out.cycles = static_cast<double>(r.result.cycles);
                out.commits = r.result.commits;
                return out;
            });
        }
    }

    auto results = runSweep(opts, std::move(tasks));
    if (!sweepOk(results, [](const Meas &m) { return m.error; }))
        return sweepExitCode(
            results, [](const Meas &m) { return m.error; },
            [](const Meas &m) { return m.hung; });

    std::size_t idx = 0;
    for (const Make &make : entries) {
        std::vector<std::string> row{make()->name()};
        const double local = results[idx].cycles;
        const std::uint64_t commits = results[idx].commits;
        for (unsigned i = 0; i < num_arbs; ++i)
            row.push_back(harness::fmt(results[idx++].cycles / local));
        row.push_back(std::to_string(commits));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nShape: runtime grows with arbitration latency "
                 "(and with commit\nfrequency); the local flash commit "
                 "avoids the whole axis.\n";
    return 0;
}
