/**
 * @file
 * T1: the evaluated system configuration (methodology table).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/spec_controller.hh"

using namespace fenceless;
using namespace fenceless::bench;

int
main(int argc, char **argv)
{
    // No sweep here, but parse anyway so every bench binary accepts
    // the common flags (--jobs, --help, ...).
    harness::Options opts(argc, argv);
    (void)opts;
    banner("T1", "simulated system configuration");

    const harness::SystemConfig cfg = defaultConfig();
    harness::Table table({"parameter", "value"});
    table.addRow({"cores", std::to_string(cfg.num_cores)
                  + " in-order, 1 IPC peak"});
    table.addRow({"store buffer", std::to_string(cfg.sb_size)
                  + " entries, forwarding"});
    table.addRow({"consistency models", "SC / TSO / RMO (pluggable)"});
    table.addRow({"L1D (private)",
                  std::to_string(cfg.l1.size / 1024) + " KiB, "
                  + std::to_string(cfg.l1.assoc) + "-way, "
                  + std::to_string(cfg.l1.block_size) + "B blocks, "
                  + std::to_string(cfg.l1.hit_latency)
                  + "-cycle hits"});
    table.addRow({"L2 (shared, inclusive)",
                  std::to_string(cfg.l2.size / (1024 * 1024))
                  + " MiB, " + std::to_string(cfg.l2.assoc)
                  + "-way, directory MESI, "
                  + std::to_string(cfg.l2.latency)
                  + "-cycle access"});
    table.addRow({"interconnect",
                  "star, " + std::to_string(cfg.net.latency)
                  + "-cycle hops, "
                  + std::to_string(cfg.net.link_bytes_per_cycle)
                  + " B/cycle links, per-channel FIFO"});
    table.addRow({"DRAM", std::to_string(cfg.l2.dram_latency)
                  + "-cycle latency"});

    const std::uint64_t l1_blocks = cfg.l1.size / cfg.l1.block_size;
    table.addRow({"speculation tags",
                  "2 bits/L1 block + 1 register checkpoint = "
                  + std::to_string(
                      spec::StorageModel::blockGranularityBytes(
                          l1_blocks)) + " B/core"});
    table.print(std::cout);

    std::cout << "\nworkloads:\n";
    for (auto &wl : workload::standardSuite(1))
        std::cout << "  - " << wl->name() << "\n";
    return 0;
}
