/**
 * @file
 * F6: sensitivity to memory latency.  Longer miss latencies deepen the
 * required speculation (stores sit in the buffer longer); block
 * granularity keeps absorbing it, so the speedup of speculation over
 * the baseline *grows* with latency.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/kernels.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

int
main()
{
    banner("F6", "speedup of IF-SC over SC vs DRAM latency "
                 "(8 cores)");

    const Cycles latencies[] = {40, 80, 160, 320};

    std::vector<std::string> headers{"workload"};
    for (Cycles l : latencies)
        headers.push_back(std::to_string(l) + "cy");
    headers.push_back("max stores/epoch@320");
    harness::Table table(std::move(headers));

    workload::LocalLockStream::Params deep;
    deep.iters = 96;
    deep.stream_stores = 8;
    workload::WorkloadPtr wls[] = {
        std::make_unique<workload::LocalLockStream>(),
        std::make_unique<workload::LocalLockStream>(deep),
        std::make_unique<workload::Stencil2D>(),
    };

    for (auto &wl : wls) {
        std::vector<std::string> row{wl->name()};
        std::uint64_t depth_at_max = 0;
        for (Cycles lat : latencies) {
            harness::SystemConfig cfg = defaultConfig();
            cfg.model = cpu::ConsistencyModel::SC;
            cfg.l2.dram_latency = lat;
            const double base = static_cast<double>(
                measure(*wl, cfg).cycles);

            cfg.withSpeculation();
            isa::Program prog = wl->build(cfg.num_cores);
            harness::System sys(cfg, prog);
            if (!sys.run())
                fatal("'", wl->name(), "' did not terminate");
            std::string error;
            if (!wl->check(sys.memReader(), cfg.num_cores, error))
                fatal(error);
            row.push_back(harness::fmt(
                base / static_cast<double>(sys.runtimeCycles())));
            if (lat == latencies[3]) {
                for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
                    depth_at_max = std::max(
                        depth_at_max, sys.specController(c)
                                          ->maxStoresPerEpoch());
                }
            }
        }
        row.push_back(std::to_string(depth_at_max));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nShape: the speedup grows with latency (more stall "
                 "time to hide), and the\nrequired speculation depth "
                 "grows with it -- the case for depth-independent\n"
                 "storage.\n";
    return 0;
}
