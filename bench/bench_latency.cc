/**
 * @file
 * F6: sensitivity to memory latency.  Longer miss latencies deepen the
 * required speculation (stores sit in the buffer longer); block
 * granularity keeps absorbing it, so the speedup of speculation over
 * the baseline *grows* with latency.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "workload/kernels.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

namespace
{

using Make = std::function<workload::WorkloadPtr()>;

/** One (workload, latency) point: base + speculative runs. */
struct Meas
{
    double speedup = 0;
    std::uint64_t max_stores_per_epoch = 0;
    std::string error;
};

Meas
runPoint(const Make &make, Cycles dram_latency)
{
    Meas out;
    harness::SystemConfig cfg = defaultConfig();
    cfg.model = cpu::ConsistencyModel::SC;
    cfg.l2.dram_latency = dram_latency;
    auto base_wl = make();
    RunOutcome base = measure(*base_wl, cfg);
    if (!base) {
        out.error = base.error;
        return out;
    }

    cfg.withSpeculation();
    auto wl = make();
    MeasuredSystem m = measureSystem(*wl, cfg);
    if (!m.ok()) {
        out.error = m.error;
        return out;
    }
    out.speedup = static_cast<double>(base.result.cycles)
                  / static_cast<double>(m.sys->runtimeCycles());
    for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
        out.max_stores_per_epoch =
            std::max(out.max_stores_per_epoch,
                     m.sys->specController(c)->maxStoresPerEpoch());
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("F6", "speedup of IF-SC over SC vs DRAM latency "
                 "(8 cores)");

    const Cycles latencies[] = {40, 80, 160, 320};
    const unsigned num_lats = 4;

    std::vector<std::string> headers{"workload"};
    for (Cycles l : latencies)
        headers.push_back(std::to_string(l) + "cy");
    headers.push_back("max stores/epoch@320");
    harness::Table table(std::move(headers));

    workload::LocalLockStream::Params deep;
    deep.iters = 96;
    deep.stream_stores = 8;
    const Make entries[] = {
        [] { return std::make_unique<workload::LocalLockStream>(); },
        [deep] {
            return std::make_unique<workload::LocalLockStream>(deep);
        },
        [] { return std::make_unique<workload::Stencil2D>(); },
    };

    // One task per (workload, latency) point.
    std::vector<std::function<Meas()>> tasks;
    for (const Make &make : entries) {
        for (Cycles lat : latencies)
            tasks.push_back([make, lat] { return runPoint(make, lat); });
    }

    auto results = runSweep(opts, std::move(tasks));
    if (!sweepOk(results, [](const Meas &m) { return m.error; }))
        return 1;

    std::size_t idx = 0;
    for (const Make &make : entries) {
        std::vector<std::string> row{make()->name()};
        std::uint64_t depth_at_max = 0;
        for (unsigned i = 0; i < num_lats; ++i) {
            const Meas &m = results[idx++];
            row.push_back(harness::fmt(m.speedup));
            if (i == num_lats - 1)
                depth_at_max = m.max_stores_per_epoch;
        }
        row.push_back(std::to_string(depth_at_max));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nShape: the speedup grows with latency (more stall "
                 "time to hide), and the\nrequired speculation depth "
                 "grows with it -- the case for depth-independent\n"
                 "storage.\n";
    return 0;
}
