/**
 * @file
 * F6: sensitivity to memory latency.  Longer miss latencies deepen the
 * required speculation (stores sit in the buffer longer); block
 * granularity keeps absorbing it, so the speedup of speculation over
 * the baseline *grows* with latency.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "sim/reqtrace.hh"
#include "workload/kernels.hh"
#include "workload/microbench.hh"

using namespace fenceless;
using namespace fenceless::bench;

namespace
{

using Make = std::function<workload::WorkloadPtr()>;

/** One (workload, latency) point: base + speculative runs. */
struct Meas
{
    double speedup = 0;
    std::uint64_t max_stores_per_epoch = 0;
    // Request-lifetime attribution of the speculative run's misses:
    // mean cycles spent in each phase (L1 miss issue to fill install,
    // directory queueing behind same-block transactions, directory
    // service, and per-message network transit).
    double miss_latency = 0;
    double dir_queue = 0;
    double dir_service = 0;
    double net_transit = 0;
    // Span-based critical-path breakdown (tail_sample=1 traces every
    // miss): percentage of all traced-miss cycles each stage owns,
    // plus the number of tail outliers (spans slower than e2e p99).
    double share_req_net = 0;
    double share_dir = 0;  //!< dir_queue + dir_access
    double share_dram = 0;
    double share_reply = 0;
    Tick span_p999 = 0;
    std::uint64_t outliers = 0;
    std::string error;
    bool hung = false;
};

/** Percent of traced-miss cycles owned by @p stage. */
double
stageShare(const reqtrace::TailAttribution &at, reqtrace::Stage stage)
{
    if (at.e2e_cycles == 0)
        return 0.0;
    // rows holds only the stages that appeared, in stage order -- find
    // ours rather than indexing by enum value.
    for (const reqtrace::StageRow &row : at.rows) {
        if (row.stage == stage)
            return 100.0 * static_cast<double>(row.cycles)
                   / static_cast<double>(at.e2e_cycles);
    }
    return 0.0;
}

Meas
runPoint(const Make &make, Cycles dram_latency)
{
    Meas out;
    harness::SystemConfig cfg = defaultConfig();
    cfg.model = cpu::ConsistencyModel::SC;
    cfg.l2.dram_latency = dram_latency;
    auto base_wl = make();
    RunOutcome base = measure(*base_wl, cfg);
    if (!base) {
        out.error = base.error;
        out.hung = base.hung;
        return out;
    }

    cfg.withSpeculation();
    cfg.withTailTrace(1); // span-trace every miss of the measured run
    auto wl = make();
    MeasuredSystem m = measureSystem(*wl, cfg);
    if (!m.ok()) {
        out.error = m.error;
        out.hung = m.hung;
        return out;
    }
    out.speedup = static_cast<double>(base.result.cycles)
                  / static_cast<double>(m.sys->runtimeCycles());
    for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
        out.max_stores_per_epoch =
            std::max(out.max_stores_per_epoch,
                     m.sys->specController(c)->maxStoresPerEpoch());
    }
    out.miss_latency = meanPhaseLatency(*m.sys, "l1_", "miss_latency");
    out.dir_queue = meanPhaseLatency(*m.sys, "l2dir",
                                     "txn_queue_wait");
    out.dir_service = meanPhaseLatency(*m.sys, "l2dir", "txn_service");
    out.net_transit = meanPhaseLatency(*m.sys, "network",
                                       "msg_latency");
    const reqtrace::TailAttribution &at = m.sys->tailAttribution();
    out.share_req_net = stageShare(at, reqtrace::Stage::ReqNet);
    out.share_dir = stageShare(at, reqtrace::Stage::DirQueue) +
                    stageShare(at, reqtrace::Stage::DirAccess);
    out.share_dram = stageShare(at, reqtrace::Stage::Dram);
    out.share_reply = stageShare(at, reqtrace::Stage::ReplyNet);
    out.span_p999 = at.e2e_p999;
    out.outliers = at.tail_spans;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    banner("F6", "speedup of IF-SC over SC vs DRAM latency "
                 "(8 cores)");

    const Cycles latencies[] = {40, 80, 160, 320};
    const unsigned num_lats = 4;

    std::vector<std::string> headers{"workload"};
    for (Cycles l : latencies)
        headers.push_back(std::to_string(l) + "cy");
    headers.push_back("max stores/epoch@320");
    headers.push_back("miss@320");
    headers.push_back("dirQ@320");
    headers.push_back("dirSvc@320");
    headers.push_back("net@320");
    headers.push_back("rqnet%@320");
    headers.push_back("dir%@320");
    headers.push_back("dram%@320");
    headers.push_back("reply%@320");
    headers.push_back("p99.9@320");
    headers.push_back("outliers@320");
    harness::Table table(std::move(headers));

    workload::LocalLockStream::Params deep;
    deep.iters = 96;
    deep.stream_stores = 8;
    const Make entries[] = {
        [] { return std::make_unique<workload::LocalLockStream>(); },
        [deep] {
            return std::make_unique<workload::LocalLockStream>(deep);
        },
        [] { return std::make_unique<workload::Stencil2D>(); },
    };

    // One task per (workload, latency) point.
    std::vector<std::function<Meas()>> tasks;
    for (const Make &make : entries) {
        for (Cycles lat : latencies)
            tasks.push_back([make, lat] { return runPoint(make, lat); });
    }

    auto results = runSweep(opts, std::move(tasks));
    if (!sweepOk(results, [](const Meas &m) { return m.error; }))
        return sweepExitCode(
            results, [](const Meas &m) { return m.error; },
            [](const Meas &m) { return m.hung; });

    std::size_t idx = 0;
    for (const Make &make : entries) {
        std::vector<std::string> row{make()->name()};
        const Meas *at_max = nullptr;
        for (unsigned i = 0; i < num_lats; ++i) {
            const Meas &m = results[idx++];
            row.push_back(harness::fmt(m.speedup));
            if (i == num_lats - 1)
                at_max = &m;
        }
        row.push_back(std::to_string(at_max->max_stores_per_epoch));
        row.push_back(harness::fmt(at_max->miss_latency, 1));
        row.push_back(harness::fmt(at_max->dir_queue, 1));
        row.push_back(harness::fmt(at_max->dir_service, 1));
        row.push_back(harness::fmt(at_max->net_transit, 1));
        row.push_back(harness::fmt(at_max->share_req_net, 1));
        row.push_back(harness::fmt(at_max->share_dir, 1));
        row.push_back(harness::fmt(at_max->share_dram, 1));
        row.push_back(harness::fmt(at_max->share_reply, 1));
        row.push_back(std::to_string(at_max->span_p999));
        row.push_back(std::to_string(at_max->outliers));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nShape: the speedup grows with latency (more stall "
                 "time to hide), and the\nrequired speculation depth "
                 "grows with it -- the case for depth-independent\n"
                 "storage.  The miss columns attribute the mean miss "
                 "at 320cy to its phases:\nend-to-end L1 miss latency, "
                 "directory queueing, directory service, and\nper-"
                 "message network transit.  The %-columns are the "
                 "span-traced critical-path\nbreakdown (every miss "
                 "traced end to end): the share of traced cycles each\n"
                 "stage owns, the p99.9 end-to-end span latency, and "
                 "how many spans sat\nabove the p99 (the tail "
                 "outliers).\n";
    return 0;
}
