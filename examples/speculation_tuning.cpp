/**
 * @file
 * Speculation tuning: sweep the controller's knobs -- mode, overflow
 * policy, commit arbitration latency, backoff cap -- on one workload
 * and print runtime plus the full speculation statistics.  The place
 * to start when adapting the mechanism to a new workload.
 *
 * Each variant is an independent simulation, so the sweep runs
 * host-parallel through harness::SweepRunner (--jobs=N; output is
 * identical for any value).
 *
 *   $ ./speculation_tuning [--jobs=N]
 */

#include <iostream>

#include "harness/exit_codes.hh"
#include "harness/options.hh"
#include "harness/sweep.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "workload/kernels.hh"

using namespace fenceless;

namespace
{

struct Variant
{
    std::string label;
    spec::SpecController::Params params;
};

/** One rendered table row, or the error that prevented it. */
struct Row
{
    std::vector<std::string> cells;
    std::string error;
    bool hung = false;
};

Row
runVariant(const Variant &variant,
           const workload::IrregularUpdate::Params &wp)
{
    Row row;
    harness::SystemConfig cfg;
    cfg.num_cores = 8;
    cfg.model = cpu::ConsistencyModel::SC;
    cfg.spec = variant.params;

    workload::IrregularUpdate wl(wp);
    isa::Program prog = wl.build(cfg.num_cores);
    harness::System sys(cfg, prog);
    if (!sys.run()) {
        row.hung = true;
        row.error = variant.label +
                    (sys.hung() ? ": hung (watchdog abort)"
                                : ": did not terminate");
        return row;
    }
    std::string error;
    if (!wl.check(sys.memReader(), cfg.num_cores, error)) {
        row.error = variant.label + ": postcondition failed: " + error;
        return row;
    }

    std::uint64_t epochs = 0, commits = 0, rollbacks = 0,
                  discarded = 0;
    double epoch_insts = 0;
    unsigned with_ctrl = 0;
    for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
        auto *ctrl = sys.specController(c);
        if (!ctrl)
            continue;
        ++with_ctrl;
        epochs += ctrl->epochsStarted();
        commits += ctrl->commits();
        rollbacks += ctrl->rollbacks();
        discarded += ctrl->statGroup().scalarCount("discarded_insts");
        const auto *d = dynamic_cast<const
            statistics::Distribution *>(
            ctrl->statGroup().find("epoch_insts"));
        epoch_insts += d ? d->mean() : 0;
    }
    row.cells = {variant.label,
                 harness::fmt(
                     static_cast<double>(sys.runtimeCycles()), 0),
                 std::to_string(epochs), std::to_string(commits),
                 std::to_string(rollbacks),
                 std::to_string(discarded),
                 with_ctrl ? harness::fmt(epoch_insts / with_ctrl, 1)
                           : "-"};
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);

    workload::IrregularUpdate::Params wp;
    wp.updates = 512;
    wp.bins = 16; // moderately contended

    std::vector<Variant> variants;
    {
        Variant v{"baseline (no speculation)", {}};
        variants.push_back(v);
    }
    {
        Variant v{"on-demand", {}};
        v.params.mode = spec::SpecMode::OnDemand;
        variants.push_back(v);
    }
    {
        Variant v{"on-demand, overflow=rollback", {}};
        v.params.mode = spec::SpecMode::OnDemand;
        v.params.overflow = spec::OverflowPolicy::Rollback;
        variants.push_back(v);
    }
    {
        Variant v{"on-demand, commit-arb=50cy", {}};
        v.params.mode = spec::SpecMode::OnDemand;
        v.params.commit_arb_latency = 50;
        variants.push_back(v);
    }
    {
        Variant v{"on-demand, no backoff cap growth", {}};
        v.params.mode = spec::SpecMode::OnDemand;
        v.params.max_cooldown = 1;
        variants.push_back(v);
    }
    {
        Variant v{"continuous (>=128 insts/epoch)", {}};
        v.params.mode = spec::SpecMode::Continuous;
        v.params.min_epoch_insts = 128;
        variants.push_back(v);
    }
    {
        Variant v{"continuous (>=1024 insts/epoch)", {}};
        v.params.mode = spec::SpecMode::Continuous;
        v.params.min_epoch_insts = 1024;
        variants.push_back(v);
    }

    std::cout << "irregular-update (8 cores, SC): speculation knob "
                 "sweep\n\n";
    harness::Table table({"variant", "cycles", "epochs", "commits",
                          "rollbacks", "discarded", "mean epoch"});

    std::vector<std::function<Row()>> tasks;
    for (const auto &variant : variants)
        tasks.push_back([variant, wp] { return runVariant(variant, wp); });

    harness::SweepRunner runner(opts.jobs());
    auto rows = runner.map(std::move(tasks));
    for (auto &row : rows) {
        if (!row.error.empty()) {
            std::cerr << "error: " << row.error << "\n";
            return row.hung ? harness::exit_hang
                            : harness::exit_postcondition;
        }
        table.addRow(std::move(row.cells));
    }
    table.print(std::cout);

    std::cout << "\nReading the table: epochs == commits + rollbacks; "
                 "'discarded' counts\nwrong-path instructions thrown "
                 "away; longer epochs mean fewer commits\nbut bigger "
                 "rollback windows.\n";
    return 0;
}
