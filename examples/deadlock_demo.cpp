/**
 * @file
 * Deadlock demo: seed a true cross-ownership deadlock with the
 * network's Fwd*Ack fault injection and let the hang watchdog catch
 * it.  Demonstrates the full incident pipeline from DESIGN.md section
 * 7.5: the watchdog detects that no core retires for a whole window,
 * builds the wait-for graph, names the deadlock cycle, prints the
 * stall dossier (with the flight-recorder tail), and the process
 * exits with code 4.
 *
 *   $ ./deadlock_demo [--watchdog-interval=N --blackbox-out=FILE]
 *   ... stall dossier on stdout ...
 *   $ echo $?
 *   4
 *
 * With `--healthy` the fault injection is skipped: the same program
 * runs to completion, verifies, and exits 0 -- showing the workload
 * itself is correct and the deadlock really is the injected fault.
 * The dossier goes to stdout (stderr carries the abort diagnostics),
 * so two runs can be compared byte-for-byte for determinism.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "harness/exit_codes.hh"
#include "harness/options.hh"
#include "harness/system.hh"
#include "workload/microbench.hh"

using namespace fenceless;

int
main(int argc, char **argv)
{
    // --healthy is demo-specific, so strip it before Options (which
    // rejects unknown flags).
    bool healthy = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--healthy")
            healthy = true;
        else
            args.push_back(argv[i]);
    }
    harness::Options opts(static_cast<int>(args.size()), args.data());

    harness::SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.model = cpu::ConsistencyModel::TSO;
    // A short window keeps the demo snappy; the default (100k cycles)
    // is sized for full-length runs.
    cfg.watchdog_interval = 5000;
    cfg = opts.applyTo(cfg);

    workload::SeededDeadlock wl;
    isa::Program prog = wl.build(cfg.num_cores);
    if (!healthy) {
        // Drop the owner's Fwd*Ack for both cross-loaded blocks: the
        // two directory transactions wedge in their forward phase and
        // the cores deadlock waiting on each other's blocks.
        cfg.net.drop_fwd_acks_for = {wl.blockX(), wl.blockY()};
    }

    harness::System sys(cfg, prog);
    const bool done = sys.run();

    if (!bench::writeObservability(sys, opts))
        return harness::exit_fatal;

    if (!done) {
        // The watchdog already printed the dossier to stderr; repeat
        // it on stdout so scripts can capture it separately.
        if (sys.hung())
            std::cout << sys.dossier();
        else
            std::cerr << "cycle budget exhausted without a watchdog "
                         "abort\n";
        return harness::exit_hang;
    }

    std::string error;
    if (!wl.check(sys.memReader(), cfg.num_cores, error)) {
        std::cerr << "postcondition failed: " << error << "\n";
        sys.writeBlackboxTail(std::cerr);
        return harness::exit_postcondition;
    }
    std::cout << "healthy run completed in " << sys.runtimeCycles()
              << " cycles and verified (no deadlock without the "
                 "fault injection)\n";
    return harness::exit_ok;
}
