/**
 * @file
 * Litmus explorer: run the classic memory-model litmus shapes (store
 * buffering, message passing, IRIW) under every consistency model,
 * baseline and with fence speculation, and print the observed outcome
 * sets.  A compact demonstration that speculation changes performance,
 * never the allowed outcomes.
 *
 *   $ ./litmus_explorer          # all shapes, all models
 */

#include <iostream>

#include "harness/system.hh"
#include "workload/litmus.hh"

using namespace fenceless;
using namespace fenceless::workload;

namespace
{

void
show(const LitmusTest &test, cpu::ConsistencyModel model,
     bool speculative)
{
    harness::SystemConfig cfg;
    cfg.num_cores = 4;
    cfg.model = model;
    if (speculative)
        cfg.withSpeculation();
    cfg.l1.size = 4 * 1024;
    cfg.net.latency = 4;
    cfg.l2.dram_latency = 30;

    auto outcomes = runLitmus(test, cfg, 30, 3);

    std::cout << "  " << consistencyModelName(model)
              << (speculative ? "+spec" : "     ") << " : ";
    for (const auto &o : outcomes) {
        std::cout << "(";
        for (std::size_t i = 0; i < o.size(); ++i)
            std::cout << (i ? "," : "") << o[i];
        std::cout << ") ";
    }
    std::cout << "\n";
}

void
explore(const LitmusTest &test, const std::string &description)
{
    std::cout << "\n" << test.name() << " -- " << description << "\n";
    for (auto model : {cpu::ConsistencyModel::SC,
                       cpu::ConsistencyModel::TSO,
                       cpu::ConsistencyModel::RMO}) {
        show(test, model, false);
        show(test, model, true);
    }
}

} // namespace

int
main()
{
    std::cout << "Observed litmus outcome sets (over a startup-skew "
                 "sweep).\nEach configuration lists every (r0,r1,...) "
                 "combination seen.\n";

    LitmusSB sb(false);
    explore(sb, "store buffering: T0{X=1;r0=Y} T1{Y=1;r1=X}; "
                "(0,0) forbidden under SC");

    LitmusSB sbf(true);
    explore(sbf, "store buffering with full fences; (0,0) forbidden "
                 "everywhere");

    LitmusMP mp(false);
    explore(mp, "message passing: T0{data=1;flag=1} "
                "T1{r0=flag;r1=data}; (1,0) forbidden under SC/TSO");

    LitmusMP mpr(true);
    explore(mpr, "message passing with a release fence; (1,0) "
                 "forbidden everywhere");

    LitmusIRIW iriw(true);
    explore(iriw, "IRIW with fences: readers must agree on the write "
                  "order ((1,0,1,0) forbidden)");

    LitmusCoRR corr;
    explore(corr, "coherence read-read: T1{r0=X;r1=X}; (1,0) forbidden "
                  "under every model");

    Litmus22W w22(false);
    explore(w22, "2+2W: T0{X=1;Y=2} T1{Y=1;X=2}; final (1,1) forbidden "
                 "under SC/TSO, reachable under RMO");

    std::cout << "\nNote how the speculative rows show the same "
                 "outcome sets as their\nbaselines: fence speculation "
                 "is performance-transparent.\n";
    return 0;
}
