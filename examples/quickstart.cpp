/**
 * @file
 * Quickstart: build a 4-core system, run a lock + streaming-store
 * workload under a baseline model and under the same model with fence
 * speculation, and compare.
 *
 *   $ ./quickstart [--cores=N --model=sc|tso|rmo --scale=K --csv]
 *
 * Observability quick-look (see DESIGN.md section 7.2): add
 * `--trace-out=run.json` for a Chrome trace-event timeline of the
 * speculative run (open in ui.perfetto.dev) and/or
 * `--stats-json=stats.json [--stats-interval=N]` for the machine-
 * readable stat registry.  Waste attribution (DESIGN.md section 7.4):
 * `--waste-report` prints the top-N table of wasted cycles by
 * instruction, contended cache lines and rollback causes for the
 * speculative run; `--profile-out=profile.json` writes the full
 * profile (plus profile.json.folded flamegraph stacks).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "harness/options.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "workload/microbench.hh"

using namespace fenceless;

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);

    // 1. Describe the machine (tweak with --cores, --model, ...).
    harness::SystemConfig cfg;
    cfg.num_cores = 4;
    cfg.model = cpu::ConsistencyModel::TSO;
    cfg = opts.applyTo(cfg);

    // 2. Pick a workload: per-thread locks around private counters,
    // with streaming stores keeping the store buffer busy -- the
    // mostly-uncontended pattern where ordering stalls dominate.
    workload::LocalLockStream::Params params;
    params.iters = 128ULL * opts.scale();
    workload::LocalLockStream wl(params);

    harness::Table table({"configuration", "cycles", "instructions",
                          "IPC", "commits", "rollbacks"});

    for (bool speculative : {false, true}) {
        harness::SystemConfig run_cfg = cfg;
        if (speculative)
            run_cfg.withSpeculation();

        // 3. Build and run the system.  A hang exits with code 4
        // (the watchdog has already printed its stall dossier).
        isa::Program prog = wl.build(run_cfg.num_cores);
        harness::System sys(run_cfg, prog);
        if (!sys.run()) {
            std::cerr << (sys.hung()
                              ? "simulation hung (see dossier above)\n"
                              : "simulation did not terminate\n");
            return harness::exit_hang;
        }

        // 4. Verify the parallel program actually worked.  A failed
        // postcondition exits with code 3 and prints the flight-
        // recorder tail: the last events before the bad outcome.
        std::string error;
        if (!wl.check(sys.memReader(), run_cfg.num_cores, error)) {
            std::cerr << "postcondition failed: " << error << "\n";
            sys.writeBlackboxTail(std::cerr);
            return harness::exit_postcondition;
        }

        // 5. The speculative run is the interesting timeline: write
        // any requested --trace-out / --stats-json artefacts from it.
        if (speculative && !bench::writeObservability(sys, opts))
            return 1;

        const double cycles =
            static_cast<double>(sys.runtimeCycles());
        const double insts =
            static_cast<double>(sys.totalInstructions());
        const std::string label =
            std::string(cpu::consistencyModelName(run_cfg.model))
            + (speculative ? " + fence speculation" : " baseline");
        table.addRow({label,
                      harness::fmt(cycles, 0), harness::fmt(insts, 0),
                      harness::fmt(insts / cycles, 3),
                      std::to_string(sys.totalCommits()),
                      std::to_string(sys.totalRollbacks())});
    }

    std::cout << "\nlocal-locks, " << cfg.num_cores << " cores, "
              << params.iters << " lock sections/core\n\n";
    if (opts.csv())
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\nFence speculation removes the ordering stalls at "
                 "the lock atomics\n(which must otherwise wait for the "
                 "streaming stores to drain); run the\nbench_* "
                 "binaries for the full evaluation.\n";
    return 0;
}
