/**
 * @file
 * Lock scaling study: how spin locks, ticket locks and uncontended
 * (per-thread) locks scale with core count, with and without fence
 * speculation.  Shows where the mechanism helps (ordering stalls on
 * the critical path) and where it cannot (pure lock-handoff
 * serialization).
 *
 *   $ ./lock_scaling
 */

#include <iostream>

#include "harness/system.hh"
#include "harness/table.hh"
#include "workload/microbench.hh"

using namespace fenceless;

namespace
{

double
run(workload::Workload &wl, std::uint32_t cores, bool speculative)
{
    harness::SystemConfig cfg;
    cfg.num_cores = cores;
    cfg.model = cpu::ConsistencyModel::TSO;
    if (speculative)
        cfg.withSpeculation();

    isa::Program prog = wl.build(cores);
    harness::System sys(cfg, prog);
    if (!sys.run()) {
        std::cerr << wl.name() << " did not terminate\n";
        std::exit(1);
    }
    std::string error;
    if (!wl.check(sys.memReader(), cores, error)) {
        std::cerr << "postcondition failed: " << error << "\n";
        std::exit(1);
    }
    // Normalize to acquisitions per kilocycle across the machine.
    return static_cast<double>(sys.runtimeCycles());
}

} // namespace

int
main()
{
    const std::uint32_t counts[] = {1, 2, 4, 8};

    std::cout << "Lock-section throughput vs core count (TSO; cycles "
                 "per run,\nlower is better; IF = fence speculation "
                 "enabled)\n\n";

    struct Entry
    {
        const char *label;
        std::function<workload::WorkloadPtr()> make;
    };

    const Entry entries[] = {
        {"spin lock (contended)",
         [] { return std::make_unique<workload::SpinlockCrit>(); }},
        {"ticket lock (contended)",
         [] { return std::make_unique<workload::TicketLockCrit>(); }},
        {"per-thread locks + streaming stores",
         [] { return std::make_unique<workload::LocalLockStream>(); }},
    };

    for (const auto &entry : entries) {
        std::cout << "-- " << entry.label << " --\n";
        harness::Table table({"cores", "baseline", "IF", "speedup"});
        for (std::uint32_t c : counts) {
            auto wl_base = entry.make();
            const double base = run(*wl_base, c, false);
            auto wl_spec = entry.make();
            const double specd = run(*wl_spec, c, true);
            table.addRow({std::to_string(c), harness::fmt(base, 0),
                          harness::fmt(specd, 0),
                          harness::fmt(base / specd)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Contended locks are bound by coherence handoff "
                 "(speculation can't speed\nup the lock transfer "
                 "itself); uncontended locks with buffered stores "
                 "show\nthe ordering-stall win directly.\n";
    return 0;
}
