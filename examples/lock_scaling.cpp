/**
 * @file
 * Lock scaling study: how spin locks, ticket locks and uncontended
 * (per-thread) locks scale with core count, with and without fence
 * speculation.  Shows where the mechanism helps (ordering stalls on
 * the critical path) and where it cannot (pure lock-handoff
 * serialization).
 *
 * The (lock, core-count) points are independent simulations, so they
 * run host-parallel through harness::SweepRunner (--jobs=N; output is
 * identical for any value).
 *
 *   $ ./lock_scaling [--jobs=N]
 */

#include <iostream>

#include "harness/exit_codes.hh"
#include "harness/options.hh"
#include "harness/sweep.hh"
#include "harness/system.hh"
#include "harness/table.hh"
#include "workload/microbench.hh"

using namespace fenceless;

namespace
{

/** Baseline and speculative cycles of one (lock, cores) point. */
struct Point
{
    double base = 0;
    double spec = 0;
    std::string error;
    bool hung = false;
};

double
run(workload::Workload &wl, std::uint32_t cores, bool speculative,
    std::string &error, bool &hung)
{
    harness::SystemConfig cfg;
    cfg.num_cores = cores;
    cfg.model = cpu::ConsistencyModel::TSO;
    if (speculative)
        cfg.withSpeculation();

    isa::Program prog = wl.build(cores);
    harness::System sys(cfg, prog);
    if (!sys.run()) {
        hung = true;
        error = wl.name() + (sys.hung() ? " hung (watchdog abort)"
                                        : " did not terminate");
        return 0;
    }
    if (!wl.check(sys.memReader(), cores, error)) {
        error = "postcondition failed: " + error;
        return 0;
    }
    return static_cast<double>(sys.runtimeCycles());
}

} // namespace

int
main(int argc, char **argv)
{
    harness::Options opts(argc, argv);
    const std::uint32_t counts[] = {1, 2, 4, 8};
    const unsigned num_counts = 4;

    std::cout << "Lock-section throughput vs core count (TSO; cycles "
                 "per run,\nlower is better; IF = fence speculation "
                 "enabled)\n\n";

    struct Entry
    {
        const char *label;
        std::function<workload::WorkloadPtr()> make;
    };

    const Entry entries[] = {
        {"spin lock (contended)",
         [] { return std::make_unique<workload::SpinlockCrit>(); }},
        {"ticket lock (contended)",
         [] { return std::make_unique<workload::TicketLockCrit>(); }},
        {"per-thread locks + streaming stores",
         [] { return std::make_unique<workload::LocalLockStream>(); }},
    };

    std::vector<std::function<Point()>> tasks;
    for (const auto &entry : entries) {
        for (std::uint32_t c : counts) {
            auto make = entry.make;
            tasks.push_back([make, c]() -> Point {
                Point pt;
                auto wl_base = make();
                pt.base = run(*wl_base, c, false, pt.error,
                              pt.hung);
                if (!pt.error.empty())
                    return pt;
                auto wl_spec = make();
                pt.spec = run(*wl_spec, c, true, pt.error, pt.hung);
                return pt;
            });
        }
    }

    harness::SweepRunner runner(opts.jobs());
    auto points = runner.map(std::move(tasks));
    for (const auto &pt : points) {
        if (!pt.error.empty()) {
            std::cerr << "error: " << pt.error << "\n";
            return pt.hung ? harness::exit_hang
                           : harness::exit_postcondition;
        }
    }

    std::size_t idx = 0;
    for (const auto &entry : entries) {
        std::cout << "-- " << entry.label << " --\n";
        harness::Table table({"cores", "baseline", "IF", "speedup"});
        for (unsigned i = 0; i < num_counts; ++i) {
            const Point &pt = points[idx++];
            table.addRow({std::to_string(counts[i]),
                          harness::fmt(pt.base, 0),
                          harness::fmt(pt.spec, 0),
                          harness::fmt(pt.base / pt.spec)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Contended locks are bound by coherence handoff "
                 "(speculation can't speed\nup the lock transfer "
                 "itself); uncontended locks with buffered stores "
                 "show\nthe ordering-stall win directly.\n";
    return 0;
}
