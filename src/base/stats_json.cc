#include "base/stats_json.hh"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace fenceless::statistics
{

namespace
{

/** JSON has no NaN/Inf literals; clamp them to null. */
void
printJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
        os << static_cast<std::int64_t>(v);
    } else {
        std::ostringstream tmp;
        tmp.precision(12);
        tmp << v;
        os << tmp.str();
    }
}

/** First-match unit rules over the registry's naming conventions. */
struct UnitRule
{
    const char *needle; //!< substring of the short stat name
    const char *unit;
};

constexpr UnitRule unit_rules[] = {
    // Tick-valued timings and stall accounting.
    {"latency", "cycles"},
    {"_wait", "cycles"},
    {"_service", "cycles"},
    {"stall_", "cycles"},
    {"halt_tick", "cycles"},
    // Rates and sizes.
    {"ipc", "insts/cycle"},
    {"bytes", "bytes"},
    {"msgs", "messages"},
    {"instructions", "instructions"},
    {"insts", "instructions"},
    {"occupancy", "entries"},
    {"hops", "hops"},
};

} // namespace

const char *
statUnit(const Stat &stat)
{
    // Match on the short (group-unqualified) name so a group named
    // e.g. "net.rx3" cannot accidentally satisfy a rule.
    const std::string &name = stat.name();
    const auto dot = name.rfind('.');
    const std::string short_name =
        dot == std::string::npos ? name : name.substr(dot + 1);
    for (const UnitRule &rule : unit_rules) {
        if (short_name.find(rule.needle) != std::string::npos)
            return rule.unit;
    }
    return "count";
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += "\"";
    return out;
}

void
printJson(std::ostream &os, const Stat &stat)
{
    if (const auto *d = dynamic_cast<const Distribution *>(&stat)) {
        os << "{\"kind\": \"distribution\", \"n\": " << d->samples()
           << ", \"mean\": ";
        printJsonNumber(os, d->mean());
        os << ", \"min\": ";
        printJsonNumber(os, d->minValue());
        os << ", \"max\": ";
        printJsonNumber(os, d->maxValue());
        os << ", \"stdev\": ";
        printJsonNumber(os, d->stdev());
        os << ", \"p50\": ";
        printJsonNumber(os, d->percentile(0.50));
        os << ", \"p95\": ";
        printJsonNumber(os, d->percentile(0.95));
        os << ", \"p99\": ";
        printJsonNumber(os, d->percentile(0.99));
        os << ", \"p999\": ";
        printJsonNumber(os, d->percentile(0.999));
        os << ", \"total\": ";
        printJsonNumber(os, d->total());
        os << "}";
        return;
    }
    if (const auto *h = dynamic_cast<const Histogram *>(&stat)) {
        os << "{\"kind\": \"histogram\", \"n\": " << h->samples()
           << ", \"underflow\": " << h->underflow()
           << ", \"overflow\": " << h->overflow() << ", \"buckets\": [";
        for (unsigned i = 0; i < h->numBuckets(); ++i)
            os << (i ? ", " : "") << h->bucketCount(i);
        os << "]}";
        return;
    }
    const char *kind =
        dynamic_cast<const Formula *>(&stat) ? "formula" : "scalar";
    os << "{\"kind\": \"" << kind << "\", \"value\": ";
    printJsonNumber(os, stat.value());
    os << "}";
}

void
printJson(std::ostream &os, const StatGroup &group)
{
    os << "{";
    bool first = true;
    for (const auto &s : group.stats()) {
        os << (first ? "" : ", ") << "\n      "
           << jsonQuote(s->name()) << ": ";
        printJson(os, *s);
        first = false;
    }
    os << "\n    }";
}

void
printGroupsJson(std::ostream &os, const StatRegistry &registry)
{
    os << "{";
    bool first = true;
    for (const auto &g : registry.groups()) {
        os << (first ? "" : ",") << "\n    " << jsonQuote(g->name())
           << ": ";
        printJson(os, *g);
        first = false;
    }
    os << "\n  }";
}

void
printSchemaJson(std::ostream &os, const StatRegistry &registry)
{
    os << "{";
    bool first = true;
    for (const auto &g : registry.groups()) {
        for (const auto &s : g->stats()) {
            const char *kind =
                dynamic_cast<const Distribution *>(s.get()) ? "distribution"
                : dynamic_cast<const Histogram *>(s.get())  ? "histogram"
                : dynamic_cast<const Formula *>(s.get())    ? "formula"
                                                            : "scalar";
            os << (first ? "" : ",") << "\n    " << jsonQuote(s->name())
               << ": {\"kind\": \"" << kind << "\", \"unit\": \""
               << statUnit(*s) << "\", \"desc\": "
               << jsonQuote(s->desc()) << "}";
            first = false;
        }
    }
    os << "\n  }";
}

void
printJson(std::ostream &os, const StatRegistry &registry)
{
    os << "{\n  \"schema_version\": " << stats_schema_version
       << ",\n  \"groups\": ";
    printGroupsJson(os, registry);
    os << ",\n  \"schema\": ";
    printSchemaJson(os, registry);
    os << "\n}\n";
}

} // namespace fenceless::statistics
