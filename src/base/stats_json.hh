/**
 * @file
 * Machine-readable JSON rendering of the statistics registry.
 *
 * `--stats-json=<file>` dumps the full StatRegistry -- every group,
 * every stat kind with its complete state (distributions with
 * n/mean/min/max/stdev, histograms with bucket counts and edges) -- so
 * the bench harness and CI can diff runs without scraping text tables.
 *
 * Shape:
 *
 *     {
 *       "schema_version": 1,
 *       "groups": {
 *         "l1_0": {
 *           "l1_0.misses": {"kind": "scalar", "value": 42},
 *           "l1_0.miss_latency": {"kind": "distribution", "n": 42,
 *             "mean": 103.5, "min": 88, "max": 240, "stdev": 12.1},
 *           ...
 *         },
 *         ...
 *       },
 *       "schema": {
 *         "l1_0.misses": {"kind": "scalar", "unit": "count",
 *           "desc": "accesses taking the miss path"},
 *         ...
 *       }
 *     }
 *
 * The document is self-describing: `schema_version` names the layout
 * (cross-run consumers such as tools/fl_report refuse versions they do
 * not understand), and the `schema` object maps every stat to its
 * kind, unit and one-line description so a saved JSON file remains
 * interpretable without the binary that produced it.
 */

#pragma once

#include <iosfwd>
#include <string>

#include "base/stats.hh"

namespace fenceless::statistics
{

/**
 * Version of the stats-JSON document layout.  Bumped whenever a field
 * changes meaning or moves; purely-additive fields do not require a
 * bump.  History:
 *   1  first self-describing layout (schema_version + per-stat
 *      unit/desc schema section, PR 9).
 *   2  distributions gain "p999" (tail-latency observability, PR 10).
 *      Additive, but bumped anyway so consumers that *require* p999
 *      can tell old artifacts apart; loaders accept [1, 2].
 */
constexpr int stats_schema_version = 2;

/**
 * Unit of a stat, derived from the registry's naming conventions --
 * the single source of truth for what the numbers mean, kept here so
 * every JSON consumer shares one table instead of each hardcoding its
 * own guesses.  Returns e.g. "cycles", "messages", "bytes"; "count"
 * when no convention matches.
 */
const char *statUnit(const Stat &stat);

/** Escape a string for embedding in a JSON document (adds quotes). */
std::string jsonQuote(const std::string &s);

/** Render one stat (any kind) as a JSON object. */
void printJson(std::ostream &os, const Stat &stat);

/** Render a whole group as a JSON object keyed by stat name. */
void printJson(std::ostream &os, const StatGroup &group);

/**
 * Render the registry as the `"groups"` object described above.
 * Emits only the object, so callers can compose it into a larger
 * document (e.g. append snapshot time series).
 */
void printGroupsJson(std::ostream &os, const StatRegistry &registry);

/**
 * Render the self-describing `"schema"` object: every stat name
 * mapped to {kind, unit, desc}.  Emitted once per document (never in
 * snapshots -- the schema cannot change mid-run).
 */
void printSchemaJson(std::ostream &os, const StatRegistry &registry);

/**
 * Render the registry as a complete self-describing document:
 * `{"schema_version": ..., "groups": ..., "schema": ...}`.
 */
void printJson(std::ostream &os, const StatRegistry &registry);

} // namespace fenceless::statistics
