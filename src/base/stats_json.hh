/**
 * @file
 * Machine-readable JSON rendering of the statistics registry.
 *
 * `--stats-json=<file>` dumps the full StatRegistry -- every group,
 * every stat kind with its complete state (distributions with
 * n/mean/min/max/stdev, histograms with bucket counts and edges) -- so
 * the bench harness and CI can diff runs without scraping text tables.
 *
 * Shape:
 *
 *     {
 *       "groups": {
 *         "l1_0": {
 *           "l1_0.misses": {"kind": "scalar", "value": 42},
 *           "l1_0.miss_latency": {"kind": "distribution", "n": 42,
 *             "mean": 103.5, "min": 88, "max": 240, "stdev": 12.1},
 *           ...
 *         },
 *         ...
 *       }
 *     }
 */

#pragma once

#include <iosfwd>
#include <string>

#include "base/stats.hh"

namespace fenceless::statistics
{

/** Escape a string for embedding in a JSON document (adds quotes). */
std::string jsonQuote(const std::string &s);

/** Render one stat (any kind) as a JSON object. */
void printJson(std::ostream &os, const Stat &stat);

/** Render a whole group as a JSON object keyed by stat name. */
void printJson(std::ostream &os, const StatGroup &group);

/**
 * Render the registry as the `"groups"` object described above.
 * Emits only the object, so callers can compose it into a larger
 * document (e.g. append snapshot time series).
 */
void printGroupsJson(std::ostream &os, const StatRegistry &registry);

/** Render the registry as a complete `{"groups": ...}` document. */
void printJson(std::ostream &os, const StatRegistry &registry);

} // namespace fenceless::statistics
