/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of randomness in the simulator (workload data, random
 * replacement, stress testers) draws from an explicitly seeded Random
 * instance so that whole-system runs are reproducible bit for bit.
 * The generator is splitmix64-seeded xoshiro256**.
 */

#pragma once

#include <cstdint>

#include "base/logging.hh"

namespace fenceless
{

/** A small, fast, seedable PRNG (xoshiro256**). */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        this->seed(seed);
    }

    /** Re-seed the generator (splitmix64 expansion of @p s). */
    void
    seed(std::uint64_t s)
    {
        for (auto &word : state_) {
            s += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = s;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return a uniform integer in [lo, hi] (inclusive). */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        flAssert(lo <= hi, "Random::range with lo > hi");
        const std::uint64_t span = hi - lo + 1;
        if (span == 0)
            return next(); // full 64-bit range
        return lo + next() % span;
    }

    /** @return a uniform double in [0, 1). */
    double
    real()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace fenceless
