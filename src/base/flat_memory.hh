/**
 * @file
 * A sparse, paged, flat byte-addressable memory.
 *
 * Used both as the DRAM backing store of the simulated memory hierarchy
 * and as the memory of the functional reference executor.  Unwritten
 * bytes read as zero.
 */

#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "base/logging.hh"
#include "base/types.hh"

namespace fenceless
{

class FlatMemory
{
  public:
    static constexpr std::uint64_t page_size = 4096;

    /** Read @p len bytes at @p addr into @p dst. */
    void
    read(Addr addr, void *dst, std::size_t len) const
    {
        auto *out = static_cast<std::uint8_t *>(dst);
        for (std::size_t i = 0; i < len;) {
            const Addr a = addr + i;
            const Addr off = a % page_size;
            const std::size_t chunk =
                std::min<std::size_t>(len - i, page_size - off);
            auto it = pages_.find(a / page_size);
            if (it == pages_.end()) {
                std::memset(out + i, 0, chunk);
            } else {
                std::memcpy(out + i, it->second->data() + off, chunk);
            }
            i += chunk;
        }
    }

    /** Write @p len bytes from @p src at @p addr. */
    void
    write(Addr addr, const void *src, std::size_t len)
    {
        const auto *in = static_cast<const std::uint8_t *>(src);
        for (std::size_t i = 0; i < len;) {
            const Addr a = addr + i;
            const Addr off = a % page_size;
            const std::size_t chunk =
                std::min<std::size_t>(len - i, page_size - off);
            std::memcpy(page(a / page_size).data() + off, in + i, chunk);
            i += chunk;
        }
    }

    /** Read an integer of @p size bytes (1/2/4/8), zero-extended. */
    std::uint64_t
    readInt(Addr addr, unsigned size) const
    {
        flAssert(size == 1 || size == 2 || size == 4 || size == 8,
                 "bad access size ", size);
        std::uint64_t v = 0;
        read(addr, &v, size); // little-endian host assumed
        return v;
    }

    /** Write the low @p size bytes of @p value. */
    void
    writeInt(Addr addr, unsigned size, std::uint64_t value)
    {
        flAssert(size == 1 || size == 2 || size == 4 || size == 8,
                 "bad access size ", size);
        write(addr, &value, size);
    }

    std::uint64_t read64(Addr addr) const { return readInt(addr, 8); }
    void write64(Addr addr, std::uint64_t v) { writeInt(addr, 8, v); }

    /** Number of resident pages (for tests). */
    std::size_t numPages() const { return pages_.size(); }

  private:
    using Page = std::array<std::uint8_t, page_size>;

    Page &
    page(Addr page_num)
    {
        auto &p = pages_[page_num];
        if (!p) {
            p = std::make_unique<Page>();
            p->fill(0);
        }
        return *p;
    }

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

} // namespace fenceless
