/**
 * @file
 * Small bit-manipulation helpers used by cache indexing and the ISA.
 */

#pragma once

#include <cstdint>

#include "base/logging.hh"
#include "base/types.hh"

namespace fenceless
{

/** @return true if @p v is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); @p v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** @return a mask with the low @p n bits set (n may be 0..64). */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract bits [hi:lo] (inclusive) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & mask(hi - lo + 1);
}

/** Align @p a down to a multiple of @p align (a power of two). */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Align @p a up to a multiple of @p align (a power of two). */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Sign-extend the low @p bits_wide bits of @p v to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t v, unsigned bits_wide)
{
    if (bits_wide >= 64)
        return static_cast<std::int64_t>(v);
    std::uint64_t m = std::uint64_t{1} << (bits_wide - 1);
    v &= mask(bits_wide);
    return static_cast<std::int64_t>((v ^ m) - m);
}

} // namespace fenceless
