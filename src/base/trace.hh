/**
 * @file
 * Lightweight debug tracing (DPRINTF-style).
 *
 * Components emit trace points tagged with a flag; nothing is formatted
 * unless the flag is enabled, so tracing is free when off.  Enable
 * programmatically or via the FENCELESS_TRACE environment variable
 * (comma-separated flag names, e.g. `FENCELESS_TRACE=l1,spec`).
 *
 *     FL_TRACE(trace::Flag::L1, *this, "fill 0x", std::hex, addr);
 *
 * prints `  12345: l1_0: fill 0x1040` to the trace stream.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>

#include "base/types.hh"

namespace fenceless::trace
{

enum class Flag : std::uint32_t
{
    Core  = 1u << 0,
    SB    = 1u << 1,
    L1    = 1u << 2,
    Dir   = 1u << 3,
    Net   = 1u << 4,
    Spec  = 1u << 5,
    Req   = 1u << 6, //!< request-lifetime flow events (miss attribution)
    Stall = 1u << 7, //!< core stall-interval duration events
    Host  = 1u << 8, //!< host-side shard telemetry (quantum phases)
    All   = ~0u,
};

/** @return the canonical lower-case name of a single flag. */
const char *flagName(Flag f);

/** Comma-separated list of every valid flag name (for error messages). */
std::string validFlagNames();

/**
 * Parse "core,l1,spec" / "all" into @p mask.
 * @return true on success; on failure @p error describes the unknown
 *         name and lists the valid flags, and @p mask is untouched.
 */
bool parseFlags(const std::string &spec, std::uint32_t &mask,
                std::string &error);

/** Enable the given flags (bitwise or of Flag values). */
void setEnabled(std::uint32_t mask);

/** Currently enabled mask. */
std::uint32_t enabled();

/** @return true if @p f is enabled. */
inline bool
isEnabled(Flag f)
{
    return (enabled() & static_cast<std::uint32_t>(f)) != 0;
}

/** Redirect trace output (default std::cout); nullptr restores it. */
void setStream(std::ostream *os);

/**
 * Initialise from the FENCELESS_TRACE environment variable.  A typo in
 * the variable must not kill a whole sweep, so unknown names only warn
 * (listing the valid flags) and leave the mask unchanged.
 */
void initFromEnv();

namespace detail
{

void emit(Flag f, Tick tick, const std::string &who,
          const std::string &msg);

/** Stream every argument (fold), so FL_TRACE's commas compose. */
template <typename... Args>
void
streamAll(std::ostream &os, Args &&...args)
{
    (os << ... << std::forward<Args>(args));
}

} // namespace detail

} // namespace fenceless::trace

/**
 * Emit a trace point.  @p obj must provide name() and curTick()
 * (every SimObject does).  Arguments are streamed; nothing is
 * evaluated when the flag is disabled.
 */
#define FL_TRACE(flag, obj, ...)                                       \
    do {                                                               \
        if (fenceless::trace::isEnabled(flag)) {                       \
            std::ostringstream fl_trace_os_;                           \
            fenceless::trace::detail::streamAll(fl_trace_os_,          \
                                                __VA_ARGS__);          \
            fenceless::trace::detail::emit(flag, (obj).curTick(),      \
                                           (obj).name(),               \
                                           fl_trace_os_.str());        \
        }                                                              \
    } while (0)
