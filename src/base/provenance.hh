/**
 * @file
 * Build provenance stamped into every exported artefact.
 *
 * Stats JSON, waste profiles and blackbox dumps from different builds
 * are otherwise indistinguishable on disk; a week later nobody knows
 * which commit, build type or feature set produced a given file.  The
 * build system passes the git hash and build type as compile-time
 * definitions (see src/base/CMakeLists.txt); feature flags that change
 * simulator behaviour or cost (e.g. FENCELESS_NO_PROFILER) are folded
 * in here so adding one is a one-line change.
 */

#pragma once

#include <iosfwd>
#include <string>

namespace fenceless::provenance
{

/** Abbreviated git commit hash of the build ("unknown" outside git). */
const char *gitHash();

/** CMake build type the binary was compiled as ("unknown" if unset). */
const char *buildType();

/** Comma-separated compile-time feature flags ("" when none are set). */
const char *features();

/**
 * The provenance block as one JSON object, e.g.
 * `{"git": "1a2b3c", "build_type": "Release", "features": []}`.
 * Embedded under a "provenance" key by every artefact writer.
 */
std::string jsonObject();

/** Stream form of jsonObject() for exporters that build JSON inline. */
void writeJsonObject(std::ostream &os);

/** One-line human-readable form for dossier / report headers. */
std::string oneLine();

} // namespace fenceless::provenance
