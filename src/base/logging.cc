#include "base/logging.hh"

#include <cstdlib>

namespace fenceless
{
namespace detail
{

void
panicImpl(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace fenceless
