#include "base/logging.hh"

#include <cstdlib>
#include <mutex>

namespace fenceless
{
namespace detail
{

namespace
{

// Serialise report lines: simulation runs may execute on several host
// threads (harness::SweepRunner) and a warn() from one run must not
// interleave mid-line with another's.
std::mutex report_mutex;

} // namespace

void
panicImpl(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(report_mutex);
        std::cerr << "panic: " << msg << std::endl;
    }
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(report_mutex);
        std::cerr << "fatal: " << msg << std::endl;
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(report_mutex);
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(report_mutex);
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace fenceless
