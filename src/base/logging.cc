#include "base/logging.hh"

#include <cstdlib>
#include <mutex>

namespace fenceless
{
namespace detail
{

// Serialise report lines: simulation runs may execute on several host
// threads (harness::SweepRunner) and a warn() from one run must not
// interleave mid-line with another's.
std::mutex &
reportMutex()
{
    static std::mutex report_mutex;
    return report_mutex;
}

// One hook per host thread: each sweep worker runs its own system, so
// the system's evidence dump must not fire for a panic in a sibling.
std::function<void()> &
panicHookSlot()
{
    thread_local std::function<void()> panic_hook;
    return panic_hook;
}

void
panicImpl(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(reportMutex());
        std::cerr << "panic: " << msg << std::endl;
    }
    // Clear before invoking: an invariant tripping inside the evidence
    // dump must abort, not recurse into the dump again.
    if (panicHookSlot()) {
        std::function<void()> hook = std::move(panicHookSlot());
        panicHookSlot() = nullptr;
        hook();
    }
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(reportMutex());
        std::cerr << "fatal: " << msg << std::endl;
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(reportMutex());
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(reportMutex());
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail

std::function<void()>
setPanicHook(std::function<void()> hook)
{
    std::function<void()> prev = std::move(detail::panicHookSlot());
    detail::panicHookSlot() = std::move(hook);
    return prev;
}

void
reportBlock(const std::string &text)
{
    std::lock_guard<std::mutex> lock(detail::reportMutex());
    std::cerr << text << std::flush;
}

} // namespace fenceless
