#include "base/stats.hh"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "base/logging.hh"

namespace fenceless::statistics
{

namespace
{

/** Print a double without trailing-zero noise for integral values. */
void
printNumber(std::ostream &os, double v)
{
    if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
        os << static_cast<std::int64_t>(v);
    } else {
        os << std::fixed << std::setprecision(4) << v
           << std::defaultfloat;
    }
}

} // namespace

namespace
{

// 8 sub-buckets per power of two above the exact range [0, 8).
constexpr unsigned sub_bits = 3;
constexpr unsigned sub_buckets = 1u << sub_bits;

} // namespace

std::size_t
PercentileSketch::bucketOf(double v)
{
    if (!(v > 0.0))
        return 0; // negatives, zero and NaN all land in bucket 0
    // Clamp instead of overflowing: anything at or beyond 2^63 shares
    // the top bucket, which only flattens the extreme tail.
    const double ceiling = 9.2e18;
    const auto u = static_cast<std::uint64_t>(v < ceiling ? v : ceiling);
    if (u < sub_buckets)
        return static_cast<std::size_t>(u);
    const unsigned order = 63u - static_cast<unsigned>(
        __builtin_clzll(u));
    const auto sub = static_cast<std::size_t>(
        (u >> (order - sub_bits)) & (sub_buckets - 1));
    return static_cast<std::size_t>(order - sub_bits + 1) * sub_buckets
           + sub;
}

double
PercentileSketch::bucketValue(std::size_t idx)
{
    if (idx < sub_buckets)
        return static_cast<double>(idx);
    const unsigned order =
        static_cast<unsigned>(idx / sub_buckets) + sub_bits - 1;
    const auto sub = static_cast<std::uint64_t>(idx % sub_buckets);
    const std::uint64_t lo = (sub_buckets + sub) << (order - sub_bits);
    const std::uint64_t width = 1ull << (order - sub_bits);
    // Midpoint of the bucket's value range: halves the worst-case
    // error versus reporting the lower edge.
    return static_cast<double>(lo)
           + static_cast<double>(width - 1) / 2.0;
}

void
PercentileSketch::add(double v, std::uint64_t times)
{
    if (times == 0)
        return;
    const std::size_t idx = bucketOf(v);
    if (idx >= counts_.size())
        counts_.resize(idx + 1, 0);
    counts_[idx] += times;
    total_ += times;
}

void
PercentileSketch::merge(const PercentileSketch &other)
{
    if (other.counts_.size() > counts_.size())
        counts_.resize(other.counts_.size(), 0);
    for (std::size_t i = 0; i < other.counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

double
PercentileSketch::quantile(double q) const
{
    if (total_ == 0)
        return 0.0;
    // Nearest-rank: the k-th smallest sample with k = ceil(q * n),
    // clamped into [1, n].
    double rank_d = std::ceil(q * static_cast<double>(total_));
    if (rank_d < 1.0)
        rank_d = 1.0;
    auto rank = static_cast<std::uint64_t>(rank_d);
    if (rank > total_)
        rank = total_;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cumulative += counts_[i];
        if (cumulative >= rank)
            return bucketValue(i);
    }
    return bucketValue(counts_.empty() ? 0 : counts_.size() - 1);
}

void
PercentileSketch::reset()
{
    counts_.clear();
    total_ = 0;
}

void
Stat::print(std::ostream &os, int name_width) const
{
    os << std::left << std::setw(name_width) << name_ << " ";
    printNumber(os, value());
    os << "  # " << desc_ << "\n";
}

void
Stat::printCsv(std::ostream &os) const
{
    os << name_ << "," << value() << "\n";
}

void
Distribution::sample(double v, std::uint64_t times)
{
    if (times == 0)
        return;
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    count_ += times;
    sum_ += v * times;
    // Weighted Welford update: numerically stable where the naive
    // sqsum/n - mean^2 form loses all significant digits.
    const double delta = v - mean_;
    mean_ += delta * static_cast<double>(times)
             / static_cast<double>(count_);
    m2_ += static_cast<double>(times) * delta * (v - mean_);
    sketch_.add(v, times);
}

void
Distribution::merge(std::uint64_t count, double sum, double mean,
                    double m2, double min, double max,
                    const PercentileSketch *sketch)
{
    if (count == 0)
        return;
    if (sketch)
        sketch_.merge(*sketch);
    if (count_ == 0) {
        count_ = count;
        sum_ = sum;
        mean_ = mean;
        m2_ = m2;
        min_ = min;
        max_ = max;
        return;
    }
    // Chan et al. pairwise combine: exact for the counts and stable
    // for the second moment, so folding per-producer accumulators in a
    // fixed order gives one deterministic result.
    const std::uint64_t total = count_ + count;
    const double delta = mean - mean_;
    m2_ += m2 + delta * delta * static_cast<double>(count_)
                     * static_cast<double>(count)
                     / static_cast<double>(total);
    mean_ += delta * static_cast<double>(count)
             / static_cast<double>(total);
    count_ = total;
    sum_ += sum;
    if (min < min_)
        min_ = min;
    if (max > max_)
        max_ = max;
}

double
Distribution::stdev() const
{
    if (count_ < 2)
        return 0.0;
    const double var = m2_ / static_cast<double>(count_);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::print(std::ostream &os, int name_width) const
{
    os << std::left << std::setw(name_width) << name() << " ";
    os << "mean=";
    printNumber(os, mean());
    os << " min=";
    printNumber(os, minValue());
    os << " max=";
    printNumber(os, maxValue());
    os << " stdev=";
    printNumber(os, stdev());
    os << " n=" << count_;
    os << "  # " << desc() << "\n";
}

void
Distribution::printCsv(std::ostream &os) const
{
    os << name() << ".mean," << mean() << "\n";
    os << name() << ".min," << minValue() << "\n";
    os << name() << ".max," << maxValue() << "\n";
    os << name() << ".stdev," << stdev() << "\n";
    os << name() << ".n," << count_ << "\n";
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    sketch_.reset();
}

Histogram::Histogram(std::string name, std::string desc, double lo,
                     double hi, unsigned num_buckets)
    : Stat(std::move(name), std::move(desc)), lo_(lo), hi_(hi),
      buckets_(num_buckets, 0)
{
    flAssert(hi > lo && num_buckets > 0,
             "Histogram requires hi > lo and at least one bucket");
    bucket_width_ = (hi - lo) / num_buckets;
}

void
Histogram::sample(double v, std::uint64_t times)
{
    samples_ += times;
    if (v < lo_) {
        underflow_ += times;
    } else if (v >= hi_) {
        overflow_ += times;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / bucket_width_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1; // floating-point edge
        buckets_[idx] += times;
    }
}

void
Histogram::print(std::ostream &os, int name_width) const
{
    os << std::left << std::setw(name_width) << name() << " n=" << samples_
       << "  # " << desc() << "\n";
    if (underflow_)
        os << "    (<" << lo_ << ") " << underflow_ << "\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        os << "    [";
        printNumber(os, lo_ + i * bucket_width_);
        os << ",";
        printNumber(os, lo_ + (i + 1) * bucket_width_);
        os << ") " << buckets_[i] << "\n";
    }
    if (overflow_)
        os << "    (>=" << hi_ << ") " << overflow_ << "\n";
}

void
Histogram::printCsv(std::ostream &os) const
{
    os << name() << ".n," << samples_ << "\n";
    os << name() << ".underflow," << underflow_ << "\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        os << name() << ".bucket" << i << "," << buckets_[i] << "\n";
    }
    os << name() << ".overflow," << overflow_ << "\n";
}

void
Histogram::reset()
{
    samples_ = 0;
    underflow_ = 0;
    overflow_ = 0;
    for (auto &b : buckets_)
        b = 0;
}

std::string
StatGroup::qualify(const std::string &name) const
{
    return name_.empty() ? name : name_ + "." + name;
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Scalar>(qualify(name), desc);
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Distribution &
StatGroup::addDistribution(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Distribution>(qualify(name), desc);
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Histogram &
StatGroup::addHistogram(const std::string &name, const std::string &desc,
                        double lo, double hi, unsigned num_buckets)
{
    auto stat = std::make_unique<Histogram>(qualify(name), desc, lo, hi,
                                            num_buckets);
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Formula &
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      std::function<double()> fn)
{
    auto stat = std::make_unique<Formula>(qualify(name), desc,
                                          std::move(fn));
    auto &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

const Stat *
StatGroup::find(const std::string &short_name) const
{
    const std::string full = qualify(short_name);
    for (const auto &s : stats_) {
        if (s->name() == full)
            return s.get();
    }
    return nullptr;
}

std::uint64_t
StatGroup::scalarCount(const std::string &short_name) const
{
    const auto *s = dynamic_cast<const Scalar *>(find(short_name));
    return s ? s->count() : 0;
}

const Distribution *
StatGroup::findDistribution(const std::string &short_name) const
{
    return dynamic_cast<const Distribution *>(find(short_name));
}

void
StatGroup::print(std::ostream &os) const
{
    std::size_t width = 0;
    for (const auto &s : stats_)
        width = std::max(width, s->name().size());
    for (const auto &s : stats_)
        s->print(os, static_cast<int>(width) + 2);
}

void
StatGroup::printCsv(std::ostream &os) const
{
    for (const auto &s : stats_)
        s->printCsv(os);
}

void
StatGroup::reset()
{
    for (auto &s : stats_)
        s->reset();
}

StatGroup &
StatRegistry::createGroup(const std::string &name)
{
    flAssert(!findGroup(name), "duplicate stat group '", name, "'");
    groups_.push_back(std::make_unique<StatGroup>(name));
    return *groups_.back();
}

StatGroup *
StatRegistry::findGroup(const std::string &name)
{
    for (auto &g : groups_) {
        if (g->name() == name)
            return g.get();
    }
    return nullptr;
}

const StatGroup *
StatRegistry::findGroup(const std::string &name) const
{
    for (const auto &g : groups_) {
        if (g->name() == name)
            return g.get();
    }
    return nullptr;
}

void
StatRegistry::print(std::ostream &os) const
{
    for (const auto &g : groups_) {
        g->print(os);
    }
}

void
StatRegistry::printCsv(std::ostream &os) const
{
    for (const auto &g : groups_)
        g->printCsv(os);
}

void
StatRegistry::reset()
{
    for (auto &g : groups_)
        g->reset();
}

} // namespace fenceless::statistics
