#include "base/trace.hh"

#include <atomic>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>

#include "base/logging.hh"

namespace fenceless::trace
{

namespace
{

// The mask and stream are process-wide but read from every simulation
// thread of a parallel sweep, so they are atomics; emit() serialises
// under a mutex so concurrent runs never interleave half-lines.
std::atomic<std::uint32_t> enabled_mask{0};
std::atomic<std::ostream *> stream{nullptr};
std::mutex emit_mutex;

std::ostream &
out()
{
    std::ostream *os = stream.load(std::memory_order_acquire);
    return os ? *os : std::cout;
}

} // namespace

namespace
{

constexpr Flag all_flags[] = {
    Flag::Core, Flag::SB, Flag::L1, Flag::Dir, Flag::Net, Flag::Spec,
    Flag::Req, Flag::Stall, Flag::Host, Flag::All,
};

} // namespace

const char *
flagName(Flag f)
{
    switch (f) {
      case Flag::Core: return "core";
      case Flag::SB: return "sb";
      case Flag::L1: return "l1";
      case Flag::Dir: return "dir";
      case Flag::Net: return "net";
      case Flag::Spec: return "spec";
      case Flag::Req: return "req";
      case Flag::Stall: return "stall";
      case Flag::Host: return "host";
      case Flag::All: return "all";
    }
    return "?";
}

std::string
validFlagNames()
{
    std::string names;
    for (Flag f : all_flags) {
        if (!names.empty())
            names += ",";
        names += flagName(f);
    }
    return names;
}

bool
parseFlags(const std::string &spec, std::uint32_t &mask,
           std::string &error)
{
    std::uint32_t parsed = 0;
    std::string token;
    std::string unknown;
    std::istringstream is(spec);
    while (std::getline(is, token, ',')) {
        if (token.empty())
            continue;
        bool found = false;
        for (Flag f : all_flags) {
            if (token == flagName(f)) {
                parsed |= static_cast<std::uint32_t>(f);
                found = true;
                break;
            }
        }
        if (!found) {
            // Collect every bad token so one retry fixes them all.
            if (!unknown.empty())
                unknown += "', '";
            unknown += token;
        }
    }
    if (!unknown.empty()) {
        error = "unknown trace flag(s) '" + unknown + "' (valid: " +
                validFlagNames() + ")";
        return false;
    }
    mask = parsed;
    return true;
}

void
setEnabled(std::uint32_t mask)
{
    enabled_mask.store(mask, std::memory_order_release);
}

std::uint32_t
enabled()
{
    return enabled_mask.load(std::memory_order_relaxed);
}

void
setStream(std::ostream *os)
{
    stream.store(os, std::memory_order_release);
}

void
initFromEnv()
{
    if (const char *env = std::getenv("FENCELESS_TRACE")) {
        std::uint32_t mask = 0;
        std::string error;
        if (parseFlags(env, mask, error))
            setEnabled(mask);
        else
            warn("FENCELESS_TRACE ignored: ", error);
    }
}

namespace detail
{

void
emit(Flag, Tick tick, const std::string &who, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(emit_mutex);
    out() << std::setw(10) << tick << ": " << who << ": " << msg
          << "\n";
}

} // namespace detail

} // namespace fenceless::trace
