#include "base/trace.hh"

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "base/logging.hh"

namespace fenceless::trace
{

namespace
{

std::uint32_t enabled_mask = 0;
std::ostream *stream = nullptr;

std::ostream &
out()
{
    return stream ? *stream : std::cout;
}

} // namespace

const char *
flagName(Flag f)
{
    switch (f) {
      case Flag::Core: return "core";
      case Flag::SB: return "sb";
      case Flag::L1: return "l1";
      case Flag::Dir: return "dir";
      case Flag::Net: return "net";
      case Flag::Spec: return "spec";
      case Flag::All: return "all";
    }
    return "?";
}

std::uint32_t
parseFlags(const std::string &spec)
{
    std::uint32_t mask = 0;
    std::string token;
    std::istringstream is(spec);
    while (std::getline(is, token, ',')) {
        if (token.empty())
            continue;
        bool found = false;
        for (Flag f : {Flag::Core, Flag::SB, Flag::L1, Flag::Dir,
                       Flag::Net, Flag::Spec, Flag::All}) {
            if (token == flagName(f)) {
                mask |= static_cast<std::uint32_t>(f);
                found = true;
                break;
            }
        }
        if (!found)
            fatal("unknown trace flag '", token, "'");
    }
    return mask;
}

void
setEnabled(std::uint32_t mask)
{
    enabled_mask = mask;
}

std::uint32_t
enabled()
{
    return enabled_mask;
}

void
setStream(std::ostream *os)
{
    stream = os;
}

void
initFromEnv()
{
    if (const char *env = std::getenv("FENCELESS_TRACE"))
        setEnabled(parseFlags(env));
}

namespace detail
{

void
emit(Flag, Tick tick, const std::string &who, const std::string &msg)
{
    out() << std::setw(10) << tick << ": " << who << ": " << msg
          << "\n";
}

} // namespace detail

} // namespace fenceless::trace
