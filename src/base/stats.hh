/**
 * @file
 * Statistics package.
 *
 * Every simulated component owns a StatGroup, creates named statistics in
 * it at construction time, and bumps them during simulation.  At the end
 * of a run the registry can render all statistics as an aligned text
 * table or as CSV for the benchmark harness.
 *
 * Supported kinds:
 *  - Scalar:        a counter or gauge (operator++, +=, =).
 *  - Distribution:  online mean/min/max/stddev of sampled values.
 *  - Histogram:     linear-bucketed counts of sampled values.
 *  - Formula:       a derived value computed on demand from other stats.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace fenceless::statistics
{

/** Abstract base for all statistics. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Primary value (what a formula referencing this stat sees). */
    virtual double value() const = 0;

    /** Render "name value [extra]" lines into @p os. */
    virtual void print(std::ostream &os, int name_width) const;

    /** Render one or more "name,value" CSV lines into @p os. */
    virtual void printCsv(std::ostream &os) const;

    /** Reset to the state at construction. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A simple counter / gauge. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t d) { value_ += d; return *this; }
    Scalar &operator=(std::uint64_t v) { value_ = v; return *this; }

    /** Record a new maximum. */
    void
    maxOf(std::uint64_t v)
    {
        if (v > value_)
            value_ = v;
    }

    std::uint64_t count() const { return value_; }
    double value() const override { return static_cast<double>(value_); }
    void reset() override { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Order-independent percentile estimator over non-negative samples.
 *
 * Log-linear buckets (HDR style): values below 8 get one bucket each
 * (exact for the small integer latencies that dominate), larger values
 * share 8 sub-buckets per power of two (<= ~6% relative error).  The
 * error bound is a property of the bucket geometry, not of the
 * quantile: p99.9 reads from a (sparser-populated) bucket the same way
 * p50 does, so exposing p999 for tail-latency work needed no extra
 * sub-bucketing -- 8/octave already holds every estimate, however deep
 * in the tail, to one bucket (~6%) of the true sample.  All
 * state is integer counts, so merging two sketches is an elementwise
 * add -- commutative and associative -- which makes the estimates
 * merge-stable: a sharded run folding per-producer sketches in any
 * grouping lands on the same counts as one single-threaded
 * accumulation, bucket for bucket.
 */
class PercentileSketch
{
  public:
    void add(double v, std::uint64_t times = 1);

    /** Elementwise-add @p other's bucket counts into this sketch. */
    void merge(const PercentileSketch &other);

    /**
     * Nearest-rank quantile estimate for @p q in (0, 1]: the
     * representative value of the bucket holding the ceil(q * n)-th
     * smallest sample.  0 with no samples.
     */
    double quantile(double q) const;

    std::uint64_t samples() const { return total_; }

    void reset();

  private:
    static std::size_t bucketOf(double v);
    static double bucketValue(std::size_t idx);

    std::vector<std::uint64_t> counts_; //!< grown lazily to the max bucket
    std::uint64_t total_ = 0;
};

/**
 * Online mean / min / max / stddev over sampled values, plus
 * p50/p95/p99/p99.9 percentile estimates from an embedded
 * PercentileSketch.
 *
 * The variance uses Welford's online algorithm (weighted for repeated
 * samples): the naive sqsum/n - mean^2 form cancels catastrophically
 * for large-mean/small-variance data (e.g. tick-stamped latencies late
 * in a long run) and can even go negative.
 */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v, std::uint64_t times = 1);

    /**
     * Fold an independently accumulated Welford state into this
     * distribution (Chan's parallel-combine formula).  Sharded
     * simulation keeps one accumulator per producer and folds them in
     * a fixed order at the end of the run, so the result is identical
     * no matter which host thread produced which samples.  A producer
     * that also kept a PercentileSketch passes it as @p sketch so the
     * percentile estimates stay shard-count-invariant too.
     */
    void merge(std::uint64_t count, double sum, double mean, double m2,
               double min, double max,
               const PercentileSketch *sketch = nullptr);

    std::uint64_t samples() const { return count_; }
    double total() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }
    double stdev() const;

    /** Percentile estimate (see PercentileSketch::quantile). */
    double percentile(double q) const { return sketch_.quantile(q); }

    /** A distribution's headline value is its mean. */
    double value() const override { return mean(); }

    void print(std::ostream &os, int name_width) const override;
    void printCsv(std::ostream &os) const override;
    void reset() override;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0; //!< Welford running mean
    double m2_ = 0.0;   //!< Welford sum of squared deviations
    double min_ = 0.0;
    double max_ = 0.0;
    PercentileSketch sketch_;
};

/** Linear-bucketed histogram over [lo, hi) plus under/overflow buckets. */
class Histogram : public Stat
{
  public:
    Histogram(std::string name, std::string desc, double lo, double hi,
              unsigned num_buckets);

    void sample(double v, std::uint64_t times = 1);

    std::uint64_t bucketCount(unsigned i) const { return buckets_.at(i); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t samples() const { return samples_; }
    unsigned numBuckets() const { return buckets_.size(); }

    double value() const override { return static_cast<double>(samples_); }

    void print(std::ostream &os, int name_width) const override;
    void printCsv(std::ostream &os) const override;
    void reset() override;

  private:
    double lo_;
    double hi_;
    double bucket_width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
};

/** A value derived from other statistics, evaluated lazily. */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(std::move(name), std::move(desc)), fn_(std::move(fn))
    {}

    double value() const override { return fn_ ? fn_() : 0.0; }
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics belonging to one component.
 *
 * The group owns its stats; components keep references to the concrete
 * objects.  Names are automatically prefixed with the group name.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    Scalar &addScalar(const std::string &name, const std::string &desc);
    Distribution &addDistribution(const std::string &name,
                                  const std::string &desc);
    Histogram &addHistogram(const std::string &name, const std::string &desc,
                            double lo, double hi, unsigned num_buckets);
    Formula &addFormula(const std::string &name, const std::string &desc,
                        std::function<double()> fn);

    /** Look up a stat by its short (unprefixed) name; nullptr if absent. */
    const Stat *find(const std::string &short_name) const;

    /** Look up a scalar's count by short name; 0 if absent. */
    std::uint64_t scalarCount(const std::string &short_name) const;

    /** Look up a distribution by short name; nullptr if absent. */
    const Distribution *
    findDistribution(const std::string &short_name) const;

    const std::vector<std::unique_ptr<Stat>> &stats() const { return stats_; }

    void print(std::ostream &os) const;
    void printCsv(std::ostream &os) const;
    void reset();

  private:
    std::string qualify(const std::string &name) const;

    std::string name_;
    std::vector<std::unique_ptr<Stat>> stats_;
};

/** Registry of all stat groups in a simulated system. */
class StatRegistry
{
  public:
    /** Create (and own) a new group with the given name. */
    StatGroup &createGroup(const std::string &name);

    /** Find a group by exact name; nullptr if absent. */
    StatGroup *findGroup(const std::string &name);
    const StatGroup *findGroup(const std::string &name) const;

    const std::vector<std::unique_ptr<StatGroup>> &groups() const
    {
        return groups_;
    }

    /** Dump every group as an aligned text table. */
    void print(std::ostream &os) const;

    /** Dump every group as CSV ("name,value" per line). */
    void printCsv(std::ostream &os) const;

    void reset();

  private:
    std::vector<std::unique_ptr<StatGroup>> groups_;
};

} // namespace fenceless::statistics
