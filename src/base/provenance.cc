#include "base/provenance.hh"

#include <ostream>
#include <sstream>

#ifndef FENCELESS_GIT_HASH
#define FENCELESS_GIT_HASH "unknown"
#endif

#ifndef FENCELESS_BUILD_TYPE
#define FENCELESS_BUILD_TYPE "unknown"
#endif

namespace fenceless::provenance
{

namespace
{

/**
 * Feature flags that change what the binary measures or records.  Each
 * entry is compiled in or out with its flag, so the list is always the
 * truth about *this* binary rather than about the source tree.
 */
const char *
featureList()
{
    return ""
#ifdef FENCELESS_NO_PROFILER
           "no-profiler,"
#endif
#ifdef FENCELESS_NO_TRACE
           "no-trace,"
#endif
        ;
}

} // namespace

const char *
gitHash()
{
    return FENCELESS_GIT_HASH;
}

const char *
buildType()
{
    return FENCELESS_BUILD_TYPE;
}

const char *
features()
{
    // Strip the trailing comma the x-macro style list leaves behind.
    static const std::string joined = [] {
        std::string s = featureList();
        if (!s.empty() && s.back() == ',')
            s.pop_back();
        return s;
    }();
    return joined.c_str();
}

void
writeJsonObject(std::ostream &os)
{
    os << "{\"git\": \"" << gitHash() << "\", \"build_type\": \""
       << buildType() << "\", \"features\": [";
    const std::string feats = features();
    std::size_t begin = 0;
    bool first = true;
    while (begin < feats.size()) {
        std::size_t end = feats.find(',', begin);
        if (end == std::string::npos)
            end = feats.size();
        os << (first ? "" : ", ") << "\""
           << feats.substr(begin, end - begin) << "\"";
        first = false;
        begin = end + 1;
    }
    os << "]}";
}

std::string
jsonObject()
{
    std::ostringstream os;
    writeJsonObject(os);
    return os.str();
}

std::string
oneLine()
{
    std::ostringstream os;
    os << "git=" << gitHash() << " build=" << buildType();
    if (*features())
        os << " features=" << features();
    return os.str();
}

} // namespace fenceless::provenance
