/**
 * @file
 * Error and status reporting, following the gem5 convention.
 *
 * panic()  - an internal simulator invariant was broken (a bug in the
 *            simulator itself).  Aborts so the failure can be debugged.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, impossible parameter combination).
 * warn()   - something is suspicious but simulation continues.
 * inform() - purely informational status output.
 *
 * All functions build the message by streaming their arguments, so any
 * type with an operator<< can be passed:
 *
 *     panic("bad state ", static_cast<int>(state), " for block ", addr);
 */

#pragma once

#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace fenceless
{

/**
 * Install a callback that panic() runs once, after printing its message
 * and before aborting -- the harness uses it to dump flight-recorder
 * evidence when a simulator invariant trips mid-run.  Thread-local, so
 * host-parallel sweep workers (harness::SweepRunner) each hook their
 * own system and never race.  The hook is cleared before it is invoked:
 * a panic raised *inside* the hook aborts immediately instead of
 * recursing.  @return the previously installed hook (restore it when
 * the guarded scope ends).
 */
std::function<void()> setPanicHook(std::function<void()> hook);

/**
 * Write a pre-formatted multi-line block to stderr under the same lock
 * that serialises panic/warn lines, so a dossier printed from one sweep
 * worker does not interleave with another worker's output.
 */
void reportBlock(const std::string &text);

namespace detail
{

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Report a simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report an unrecoverable user error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious condition; simulation continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report simulation status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace fenceless

/**
 * Check a simulator invariant; panic with a message when it does not hold.
 * Unlike assert() this is always compiled in: protocol invariants are cheap
 * relative to event processing and catching them beats silent corruption.
 *
 * A macro (not a function) so the message arguments are only evaluated
 * when the condition fails: assertions on hot paths routinely pass
 * expensive-to-build messages (msg.toString(), event names), and a
 * function would construct them millions of times for nothing.
 */
#define flAssert(condition, ...)                                        \
    do {                                                                \
        if (!(condition))                                               \
            ::fenceless::panic(__VA_ARGS__);                            \
    } while (0)
