/**
 * @file
 * Fundamental scalar types used throughout the simulator.
 *
 * The whole code base is written against these aliases rather than raw
 * integer types so that the intent of a value (an address, a point in
 * simulated time, a core number) is visible at every use site.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace fenceless
{

/** A physical address in the simulated guest address space. */
using Addr = std::uint64_t;

/** A point in simulated time.  One tick == one core clock cycle. */
using Tick = std::uint64_t;

/** A duration measured in clock cycles. */
using Cycles = std::uint64_t;

/** Identifier of a core / hardware thread (0-based, dense). */
using CoreId = std::uint32_t;

/** Sentinel "end of time" tick. */
inline constexpr Tick max_tick = std::numeric_limits<Tick>::max();

/** Sentinel invalid address. */
inline constexpr Addr invalid_addr = std::numeric_limits<Addr>::max();

/** Sentinel invalid core id (used e.g. for "no owner" in the directory). */
inline constexpr CoreId invalid_core = std::numeric_limits<CoreId>::max();

} // namespace fenceless
