#include "core/spec_controller.hh"

#include <algorithm>

#include <sstream>

#include "base/logging.hh"
#include "base/trace.hh"

namespace fenceless::spec
{

const char *
specModeName(SpecMode m)
{
    switch (m) {
      case SpecMode::Off: return "off";
      case SpecMode::OnDemand: return "on-demand";
      case SpecMode::Continuous: return "continuous";
    }
    return "?";
}

const char *
granularityName(Granularity g)
{
    switch (g) {
      case Granularity::Block: return "block";
      case Granularity::PerStore: return "per-store";
    }
    return "?";
}

const char *
overflowPolicyName(OverflowPolicy p)
{
    switch (p) {
      case OverflowPolicy::Stall: return "stall";
      case OverflowPolicy::Rollback: return "rollback";
    }
    return "?";
}

const char *
rollbackCauseName(RollbackCause c)
{
    switch (c) {
      case RollbackCause::RemoteWrite: return "remote_write";
      case RollbackCause::RemoteRead: return "remote_read";
      case RollbackCause::Overflow: return "overflow";
      case RollbackCause::NumCauses: break;
    }
    return "?";
}

SpecController::SpecController(sim::SimContext &ctx,
                               const std::string &name,
                               const Params &params, cpu::Core &core,
                               mem::L1Cache &l1)
    : SimObject(ctx, name), params_(params), core_(core), l1_(l1),
      prof_(ctx.profiler.ifEnabled()),
      stat_epochs_(statGroup().addScalar("epochs",
                                         "speculative epochs begun")),
      stat_epochs_sc_load_(statGroup().addScalar("epochs_sc_load",
          "epochs triggered by an SC load ordering stall")),
      stat_epochs_fence_(statGroup().addScalar("epochs_fence",
          "epochs triggered by a draining fence")),
      stat_epochs_amo_(statGroup().addScalar("epochs_amo",
          "epochs triggered by an atomic's drain")),
      stat_commits_(statGroup().addScalar("commits",
                                          "epochs committed")),
      stat_rollbacks_(statGroup().addScalar("rollbacks",
                                            "epochs rolled back")),
      stat_discarded_insts_(statGroup().addScalar("discarded_insts",
          "speculative instructions discarded by rollbacks")),
      stat_crossings_(statGroup().addScalar("crossings",
          "ordering points crossed inside an epoch")),
      stat_spec_limit_stalls_(statGroup().addScalar("spec_limit_stalls",
          "accesses stalled on per-store speculative-storage limits")),
      stat_overflow_commits_(statGroup().addScalar("overflow_commits",
          "commits forced early by tag-eviction pressure")),
      stat_epoch_insts_(statGroup().addDistribution("epoch_insts",
          "instructions per committed epoch")),
      stat_epoch_stores_(statGroup().addDistribution("epoch_stores",
          "speculative stores per epoch")),
      stat_epoch_sw_blocks_(statGroup().addDistribution("epoch_sw_blocks",
          "speculatively-written blocks at epoch end")),
      stat_epoch_sr_blocks_(statGroup().addDistribution("epoch_sr_blocks",
          "speculatively-read blocks at epoch end")),
      stat_max_stores_(statGroup().addScalar("max_epoch_stores",
          "maximum speculative stores outstanding in one epoch")),
      stat_max_sw_(statGroup().addScalar("max_sw_blocks",
          "maximum speculatively-written blocks in one epoch")),
      stat_max_sr_(statGroup().addScalar("max_sr_blocks",
          "maximum speculatively-read blocks in one epoch"))
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(RollbackCause::NumCauses); ++i) {
        stat_rollback_cause_[i] = &statGroup().addScalar(
            std::string("rollback_") +
                rollbackCauseName(static_cast<RollbackCause>(i)),
            "rollbacks caused by " +
                std::string(rollbackCauseName(
                    static_cast<RollbackCause>(i))));
    }

    std::vector<std::string> cause_names;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(RollbackCause::NumCauses); ++i)
        cause_names.push_back(
            rollbackCauseName(static_cast<RollbackCause>(i)));
    tracer().setAuxNames(trace::EventKind::SpecRollback,
                         std::move(cause_names));

    core_.setSpec(this);
    l1_.setSpecHooks(this);
    core_.storeBuffer().setDrainListener([this] {
        if (in_spec_)
            tryCommit();
    });
}

std::uint64_t
SpecController::epochInsts() const
{
    return core_.instret() - ckpt_.instret;
}

// ---------------------------------------------------------------------
// cpu::SpecInterface
// ---------------------------------------------------------------------

bool
SpecController::shouldSpeculate(OrderPoint point)
{
    if (params_.mode == SpecMode::Off)
        return false;

    if (in_spec_) {
        noteCrossing();
        return true;
    }

    if (cooldown_ > 0) {
        // The previous epoch rolled back at this ordering point; execute
        // it non-speculatively once to guarantee forward progress.
        --cooldown_;
        return false;
    }

    beginEpoch();
    switch (point) {
      case OrderPoint::ScLoad: ++stat_epochs_sc_load_; break;
      case OrderPoint::FullFence: ++stat_epochs_fence_; break;
      case OrderPoint::Amo: ++stat_epochs_amo_; break;
    }
    return true;
}

void
SpecController::beginEpoch()
{
    flAssert(!in_spec_, name(), ": nested epoch");
    in_spec_ = true;
    epoch_start_tick_ = curTick();
    ckpt_ = core_.snapshot();
    ckpt_seq_ = core_.storeBuffer().lastSeq();
    watermark_ = ckpt_seq_;
    epoch_stores_ = 0;
    epoch_loads_ = 0;
    overflow_pending_ = false;
    commit_scheduled_ = false;
    ++stat_epochs_;
    FL_TRACE(trace::Flag::Spec, *this, "epoch ", epoch_, " begins @pc ",
             ckpt_.pc, " watermark ", watermark_);
}

void
SpecController::noteCrossing()
{
    // Another ordering point inside the epoch: everything currently in
    // the store buffer must drain before the epoch may commit.
    watermark_ = core_.storeBuffer().lastSeq();
    ++stat_crossings_;
}

bool
SpecController::reserveSpecSlot(bool is_store)
{
    flAssert(in_spec_, name(), ": reserveSpecSlot outside an epoch");
    if (params_.granularity == Granularity::PerStore) {
        const bool exhausted =
            is_store ? epoch_stores_ >= params_.ps_store_queue
                     : epoch_loads_ >= params_.ps_load_cam;
        if (exhausted) {
            ++stat_spec_limit_stalls_;
            // Resource pressure must force the epoch to close at the
            // earliest legal point, or a Continuous-mode epoch below
            // its instruction floor would never end and the stalled
            // core would deadlock.
            overflow_pending_ = true;
            tryCommit();
            return false;
        }
    }
    if (is_store) {
        ++epoch_stores_;
        stat_max_stores_.maxOf(epoch_stores_);
    } else {
        ++epoch_loads_;
    }
    return true;
}

void
SpecController::whenSpecExit(std::function<void()> cb)
{
    if (!in_spec_) {
        sim::scheduleOneShot(eventq(), curTick() + 1, std::move(cb));
        return;
    }
    exit_waiters_.push_back(std::move(cb));
}

void
SpecController::requestStop(std::function<void()> done)
{
    flAssert(in_spec_, name(), ": requestStop outside an epoch");
    stop_requested_ = true;
    stop_cb_ = std::move(done);
    tryCommit();
}

// ---------------------------------------------------------------------
// commit
// ---------------------------------------------------------------------

void
SpecController::tryCommit()
{
    if (!in_spec_ || commit_scheduled_)
        return;

    const bool closeable =
        params_.mode == SpecMode::OnDemand || stop_requested_ ||
        overflow_pending_ || epochInsts() >= params_.min_epoch_insts;
    if (!closeable)
        return;
    if (!core_.storeBuffer().allDrainedUpTo(watermark_))
        return;

    if (params_.commit_arb_latency == 0) {
        doCommit();
        return;
    }
    // Model an arbitration-based commit: the epoch stays speculative
    // (and vulnerable to conflicts) while "arbitration" runs.
    commit_scheduled_ = true;
    sim::scheduleOneShot(
        eventq(), curTick() + params_.commit_arb_latency,
        [this, commit_epoch = epoch_] {
            commit_scheduled_ = false;
            if (!in_spec_ || epoch_ != commit_epoch)
                return; // rolled back while arbitrating
            // Re-verify: a crossing may have extended the watermark.
            if (core_.storeBuffer().allDrainedUpTo(watermark_))
                doCommit();
        });
}

void
SpecController::doCommit()
{
    flAssert(in_spec_, name(), ": commit outside an epoch");

    if (overflow_pending_)
        ++stat_overflow_commits_;
    stat_epoch_insts_.sample(static_cast<double>(epochInsts()));
    stat_epoch_stores_.sample(static_cast<double>(epoch_stores_));
    stat_epoch_sw_blocks_.sample(
        static_cast<double>(l1_.numSpecWrittenBlocks()));
    stat_epoch_sr_blocks_.sample(
        static_cast<double>(l1_.numSpecReadBlocks()));
    stat_max_sw_.maxOf(l1_.numSpecWrittenBlocks());
    stat_max_sr_.maxOf(l1_.numSpecReadBlocks());

    // Flash commit: speculatively-written blocks become ordinarily
    // dirty; speculative requests still queued in MSHRs and stores still
    // buffered become ordinary; then the epoch id advances, which
    // invalidates every SR/SW tag at once.
    FL_TRACE(trace::Flag::Spec, *this, "epoch ", epoch_, " commits (",
             epochInsts(), " insts, ", l1_.numSpecWrittenBlocks(),
             " SW blocks)");
    FL_TEVENT(*this, trace::EventKind::SpecEpoch, epoch_start_tick_,
              epochInsts(), 1 /* outcome: commit */);
    l1_.commitQueuedSpecRequests(epoch_);
    l1_.commitSpecWrites();
    core_.storeBuffer().commitSpec();
    if (prof_)
        prof_->commitEpoch(core_.coreId());
    ++epoch_;
    in_spec_ = false;
    // Decay the rollback backoff slowly: a workload phase that keeps
    // conflicting should stay mostly non-speculative even if the odd
    // epoch commits in between.
    if (++commit_streak_ >= 4) {
        commit_streak_ = 0;
        consecutive_rollbacks_ /= 2;
    }
    ++stat_commits_;
    l1_.specCleared();

    bool stopping = stop_requested_;
    if (stop_requested_) {
        stop_requested_ = false;
        if (stop_cb_) {
            auto cb = std::move(stop_cb_);
            stop_cb_ = nullptr;
            cb();
        }
    }
    fireSpecExit();

    // Continuous mode: chain straight into the next epoch, decoupling
    // ordering enforcement from the core entirely.  Skip when the core
    // is mid-atomic (a checkpoint there could re-execute it) or when
    // recent rollbacks put us in backoff.
    if (params_.mode == SpecMode::Continuous && !stopping &&
        consecutive_rollbacks_ == 0 && !core_.amoInFlight()) {
        beginEpoch();
    }
}

// ---------------------------------------------------------------------
// rollback
// ---------------------------------------------------------------------

void
SpecController::specConflict(Addr block_addr, bool remote_write,
                             bool had_sw)
{
    flAssert(in_spec_, name(), ": conflict outside an epoch");
    flAssert(remote_write || had_sw,
             name(), ": remote read conflicting without an SW tag");
    rollback(remote_write ? RollbackCause::RemoteWrite
                          : RollbackCause::RemoteRead,
             block_addr);
}

bool
SpecController::specOverflow(Addr block_addr, bool needed_for_commit)
{
    flAssert(in_spec_, name(), ": overflow outside an epoch");
    if (params_.overflow == OverflowPolicy::Rollback ||
        needed_for_commit) {
        rollback(RollbackCause::Overflow, block_addr);
        return true;
    }
    // Park the fill; force the epoch to close as soon as it legally can
    // so the parked access is released.
    overflow_pending_ = true;
    tryCommit();
    // tryCommit may have committed synchronously (which already retried
    // the fill via specCleared); report "rolled back / cleared" so the
    // caller re-evaluates, otherwise ask it to wait.
    return !in_spec_;
}

void
SpecController::rollback(RollbackCause cause, Addr trigger_addr)
{
    flAssert(in_spec_, name(), ": rollback outside an epoch");
    FL_TRACE(trace::Flag::Spec, *this, "epoch ", epoch_,
             " rolls back (", rollbackCauseName(cause), ", ",
             epochInsts(), " insts discarded)");

    if (prof_) {
        // Attribute before restoring: core_.pc() is still the
        // wrong-path victim PC.
        prof_->rollbackEpoch(core_.coreId(), rollbackCauseName(cause),
                             trigger_addr, core_.pc(), epochInsts());
    }

    stat_discarded_insts_ += epochInsts();
    stat_epoch_stores_.sample(static_cast<double>(epoch_stores_));
    stat_max_sw_.maxOf(l1_.numSpecWrittenBlocks());
    stat_max_sr_.maxOf(l1_.numSpecReadBlocks());

    FL_TEVENT(*this, trace::EventKind::SpecEpoch, epoch_start_tick_,
              epochInsts(), 0 /* outcome: rollback */);
    FL_TEVENT(*this, trace::EventKind::SpecRollback, 0, epochInsts(),
              static_cast<std::uint32_t>(cause));

    // Discard the speculative cache state (SW blocks become MStale; the
    // inclusive L2 holds every pre-speculation value), drop speculative
    // store-buffer entries, and restore the register checkpoint.
    l1_.rollbackSpecWrites();
    core_.storeBuffer().discardAfter(ckpt_seq_);
    ++epoch_;
    in_spec_ = false;
    // Exponential backoff: repeated conflicts at the same phase of the
    // program mean speculation is currently unprofitable.
    commit_streak_ = 0;
    ++consecutive_rollbacks_;
    cooldown_ = 1;
    if (consecutive_rollbacks_ < 31) {
        cooldown_ = std::min<unsigned>(
            1u << (consecutive_rollbacks_ - 1), params_.max_cooldown);
    } else {
        cooldown_ = params_.max_cooldown;
    }
    stop_requested_ = false;
    stop_cb_ = nullptr;
    overflow_pending_ = false;

    ++stat_rollbacks_;
    ++(*stat_rollback_cause_[static_cast<std::size_t>(cause)]);

    core_.restoreAndResume(ckpt_);
    l1_.specCleared();
    fireSpecExit();
}

void
SpecController::fireSpecExit()
{
    std::vector<std::function<void()>> waiters;
    waiters.swap(exit_waiters_);
    for (auto &cb : waiters)
        cb();
}

} // namespace fenceless::spec
