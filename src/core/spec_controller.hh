/**
 * @file
 * The fence-speculation controller: post-retirement speculation on
 * memory ordering in a conventional invalidation-based multiprocessor.
 *
 * When the core would stall for *ordering* (an SC load with buffered
 * stores, a draining fence, an atomic's buffer drain), the controller
 * instead checkpoints the architectural registers and lets the core
 * proceed speculatively:
 *
 *  - speculative loads/stores tag L1 blocks SR/SW (block granularity,
 *    epoch-id encoded, so commit and rollback are flash operations);
 *  - the commit condition is purely local: all stores up to the latest
 *    ordering-point watermark have drained to the cache.  No global
 *    arbitration (an optional latency models arbitration-based designs
 *    for comparison);
 *  - a conflicting coherence probe (remote write touching an SR/SW
 *    block, remote read touching an SW block) triggers rollback to the
 *    checkpoint; the ordering point then re-executes non-speculatively
 *    (one-shot cooldown), guaranteeing forward progress;
 *  - resource overflow (a cache set full of tagged blocks) either
 *    stalls the offending fill until the epoch ends or rolls back, per
 *    policy.
 *
 * Two operating modes: OnDemand enters an epoch only at an actual
 * ordering stall and commits at the earliest legal point; Continuous
 * keeps epochs open until a minimum instruction count (decoupling
 * ordering enforcement from the core at the cost of larger rollback
 * windows).
 *
 * The controller also implements the per-store-granularity comparator:
 * with Granularity::PerStore, speculative accesses draw from a bounded
 * store-queue/load-CAM budget and stall when it is exhausted -- the
 * storage-scaling contrast the block-granularity design removes.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/core.hh"
#include "mem/l1_cache.hh"
#include "mem/mem_request.hh"
#include "sim/sim_object.hh"

namespace fenceless::spec
{

enum class SpecMode
{
    Off,       //!< baseline: every ordering point stalls
    OnDemand,  //!< speculate only when the core would stall
    Continuous,//!< always speculating: epochs chain at every commit
};

enum class Granularity
{
    Block,    //!< SR/SW bits per L1 block (the proposed design)
    PerStore, //!< bounded speculative store queue + load CAM comparator
};

enum class OverflowPolicy
{
    Stall,    //!< park the fill until the epoch ends (when safe)
    Rollback, //!< roll back immediately
};

const char *specModeName(SpecMode m);
const char *granularityName(Granularity g);
const char *overflowPolicyName(OverflowPolicy p);

/** Why an epoch was rolled back. */
enum class RollbackCause
{
    RemoteWrite,   //!< Inv/FwdGetM hit an SR or SW block
    RemoteRead,    //!< FwdGetS/Recall hit an SW block
    Overflow,      //!< speculative-tag eviction pressure
    NumCauses,
};

const char *rollbackCauseName(RollbackCause c);

class SpecController : public sim::SimObject,
                       public cpu::SpecInterface,
                       public mem::SpecHooks
{
  public:
    struct Params
    {
        SpecMode mode = SpecMode::Off;
        Granularity granularity = Granularity::Block;
        OverflowPolicy overflow = OverflowPolicy::Stall;
        /**
         * Continuous mode: the minimum epoch length before a commit is
         * attempted.  1 = commit at every drain point (and chain into
         * the next epoch immediately); larger floors trade commit
         * frequency for rollback-window size.
         */
        std::uint64_t min_epoch_insts = 1;
        Cycles commit_arb_latency = 0; //!< models arbitration-based commit
        unsigned ps_store_queue = 16;  //!< PerStore: store-queue capacity
        unsigned ps_load_cam = 32;     //!< PerStore: load-CAM capacity
        /**
         * Rollback backoff cap: after k consecutive rollbacks the next
         * min(2^k, cap) ordering points execute non-speculatively, so
         * conflict-heavy phases degrade to baseline behaviour instead
         * of thrashing ("speculating only when necessary to minimize
         * the risk of rollback-inducing violations").
         */
        unsigned max_cooldown = 64;
    };

    SpecController(sim::SimContext &ctx, const std::string &name,
                   const Params &params, cpu::Core &core,
                   mem::L1Cache &l1);

    const Params &params() const { return params_; }

    // --- cpu::SpecInterface ----------------------------------------------

    bool shouldSpeculate(OrderPoint point) override;
    bool inSpec() const override { return in_spec_; }
    std::uint32_t epoch() const override { return epoch_; }
    void requestStop(std::function<void()> done) override;
    bool reserveSpecSlot(bool is_store) override;
    void whenSpecExit(std::function<void()> cb) override;

    // --- mem::SpecHooks ---------------------------------------------------

    bool specActive() const override { return in_spec_; }
    std::uint32_t specEpoch() const override { return epoch_; }
    void specConflict(Addr block_addr, bool remote_write,
                      bool had_sw) override;
    bool specOverflow(Addr block_addr, bool needed_for_commit) override;

    // --- queries (tests / benches) ----------------------------------------

    std::uint64_t commits() const { return stat_commits_.count(); }
    std::uint64_t rollbacks() const { return stat_rollbacks_.count(); }
    std::uint64_t epochsStarted() const { return stat_epochs_.count(); }
    std::uint64_t maxStoresPerEpoch() const
    {
        return stat_max_stores_.count();
    }
    std::uint64_t maxSwBlocks() const { return stat_max_sw_.count(); }
    std::uint64_t maxSrBlocks() const { return stat_max_sr_.count(); }

    // --- stall-dossier inspection ------------------------------------------

    Tick epochStartTick() const { return epoch_start_tick_; }
    std::uint64_t watermark() const { return watermark_; }
    unsigned cooldown() const { return cooldown_; }
    unsigned consecutiveRollbacks() const
    {
        return consecutive_rollbacks_;
    }
    bool stopRequested() const { return stop_requested_; }

  private:
    void beginEpoch();
    void noteCrossing();
    void tryCommit();
    void doCommit();

    /**
     * Squash the current epoch.  @p trigger_addr is the block address
     * whose coherence probe / overflow forced the rollback (0 when no
     * single address is responsible), recorded for waste attribution.
     */
    void rollback(RollbackCause cause, Addr trigger_addr);
    void fireSpecExit();
    std::uint64_t epochInsts() const;

    Params params_;
    cpu::Core &core_;
    mem::L1Cache &l1_;
    prof::WasteProfiler *const prof_; //!< null when profiling is off

    bool in_spec_ = false;
    Tick epoch_start_tick_ = 0; //!< when the current epoch began
    std::uint32_t epoch_ = 1; //!< 0 is reserved as "never speculative"
    std::uint64_t watermark_ = 0; //!< SB seq the commit must wait for
    cpu::Core::ArchSnapshot ckpt_{};
    std::uint64_t ckpt_seq_ = 0;  //!< SB seq at checkpoint (rollback keep)
    unsigned cooldown_ = 0;       //!< ordering points to run non-spec
    unsigned consecutive_rollbacks_ = 0; //!< backoff exponent
    unsigned commit_streak_ = 0;         //!< commits since last rollback
    bool stop_requested_ = false;
    std::function<void()> stop_cb_;
    bool overflow_pending_ = false;
    bool commit_scheduled_ = false;

    // Per-epoch resource accounting (PerStore limits; Block stats).
    unsigned epoch_stores_ = 0;
    unsigned epoch_loads_ = 0;

    std::vector<std::function<void()>> exit_waiters_;

    statistics::Scalar &stat_epochs_;
    statistics::Scalar &stat_epochs_sc_load_;
    statistics::Scalar &stat_epochs_fence_;
    statistics::Scalar &stat_epochs_amo_;
    statistics::Scalar &stat_commits_;
    statistics::Scalar &stat_rollbacks_;
    std::array<statistics::Scalar *,
               static_cast<std::size_t>(RollbackCause::NumCauses)>
        stat_rollback_cause_{};
    statistics::Scalar &stat_discarded_insts_;
    statistics::Scalar &stat_crossings_;
    statistics::Scalar &stat_spec_limit_stalls_;
    statistics::Scalar &stat_overflow_commits_;
    statistics::Distribution &stat_epoch_insts_;
    statistics::Distribution &stat_epoch_stores_;
    statistics::Distribution &stat_epoch_sw_blocks_;
    statistics::Distribution &stat_epoch_sr_blocks_;
    statistics::Scalar &stat_max_stores_;
    statistics::Scalar &stat_max_sw_;
    statistics::Scalar &stat_max_sr_;
};

/**
 * Dedicated speculative-state storage (bytes) each design needs --
 * the quantity Table T3 reports.
 */
struct StorageModel
{
    /** Block granularity: 2 tag bits per L1 block + one checkpoint. */
    static std::uint64_t
    blockGranularityBytes(std::uint64_t l1_blocks)
    {
        const std::uint64_t tag_bits = 2 * l1_blocks;
        const std::uint64_t checkpoint = 32 * 8 + 8; // regs + pc
        return (tag_bits + 7) / 8 + checkpoint;
    }

    /**
     * Per-store granularity: a store-queue entry (address + data +
     * metadata) per speculative store and a CAM entry per tracked load,
     * plus the same checkpoint.  Grows linearly with speculation depth.
     */
    static std::uint64_t
    perStoreBytes(std::uint64_t store_depth, std::uint64_t load_depth)
    {
        const std::uint64_t store_entry = 8 + 8 + 2;
        const std::uint64_t cam_entry = 8;
        const std::uint64_t checkpoint = 32 * 8 + 8;
        return store_depth * store_entry + load_depth * cam_entry
               + checkpoint;
    }
};

} // namespace fenceless::spec
