#include "sim/watchdog.hh"

namespace fenceless::sim
{

const char *
Watchdog::causeName(Cause c)
{
    switch (c) {
      case Cause::None: return "none";
      case Cause::NoRetirement: return "no-retirement";
      case Cause::RollbackStorm: return "rollback-storm";
    }
    return "?";
}

void
Watchdog::prime(Tick now)
{
    const Progress p = probe_();
    last_instret_ = p.instret;
    last_rollbacks_ = p.rollbacks;
    window_begin_ = now;
    report_ = Report{};
}

bool
Watchdog::checkAt(Tick now)
{
    const Progress p = probe_();
    if (p.all_halted)
        return false; // clean completion: nothing left to supervise

    const std::uint64_t d_inst = p.instret - last_instret_;
    const std::uint64_t d_rb = p.rollbacks - last_rollbacks_;

    if (d_inst == 0) {
        // A whole window with zero retirement anywhere.  Rollbacks
        // without retirement mean the cores are live but churning
        // (livelock); none at all means they are wedged (deadlock or a
        // lost wakeup).  Either way, diagnose and stop.
        Report r;
        r.cause = (d_rb >= params_.storm_threshold)
                      ? Cause::RollbackStorm
                      : Cause::NoRetirement;
        // A sub-storm trickle of rollbacks with no retirement is still
        // a hang: classify it as NoRetirement rather than waiting for
        // the storm threshold.
        r.window_begin = window_begin_;
        r.fire_tick = now;
        r.instret = p.instret;
        r.rollbacks_in_window = d_rb;
        report_ = r;
        return true;
    }

    last_instret_ = p.instret;
    last_rollbacks_ = p.rollbacks;
    window_begin_ = now;
    return false;
}

} // namespace fenceless::sim
