#include "sim/watchdog.hh"

namespace fenceless::sim
{

const char *
Watchdog::causeName(Cause c)
{
    switch (c) {
      case Cause::None: return "none";
      case Cause::NoRetirement: return "no-retirement";
      case Cause::RollbackStorm: return "rollback-storm";
    }
    return "?";
}

void
Watchdog::start()
{
    const Progress p = probe_();
    last_instret_ = p.instret;
    last_rollbacks_ = p.rollbacks;
    window_begin_ = eventq_.curTick();
    report_ = Report{};
    eventq_.schedule(&check_event_, eventq_.curTick() + params_.interval);
}

void
Watchdog::check()
{
    const Progress p = probe_();
    if (p.all_halted)
        return; // clean completion: stop re-arming, let the queue drain

    const std::uint64_t d_inst = p.instret - last_instret_;
    const std::uint64_t d_rb = p.rollbacks - last_rollbacks_;

    if (d_inst == 0) {
        // A whole window with zero retirement anywhere.  Rollbacks
        // without retirement mean the cores are live but churning
        // (livelock); none at all means they are wedged (deadlock or a
        // lost wakeup).  Either way, diagnose and stop.
        Report r;
        r.cause = (d_rb >= params_.storm_threshold)
                      ? Cause::RollbackStorm
                      : Cause::NoRetirement;
        // A sub-storm trickle of rollbacks with no retirement is still
        // a hang: classify it as NoRetirement rather than waiting for
        // the storm threshold.
        r.window_begin = window_begin_;
        r.fire_tick = eventq_.curTick();
        r.instret = p.instret;
        r.rollbacks_in_window = d_rb;
        report_ = r;
        if (on_fire_)
            on_fire_(report_);
        return; // do not re-arm; the run is over
    }

    last_instret_ = p.instret;
    last_rollbacks_ = p.rollbacks;
    window_begin_ = eventq_.curTick();
    eventq_.schedule(&check_event_, eventq_.curTick() + params_.interval);
}

} // namespace fenceless::sim
