/**
 * @file
 * Base class for simulated components and the shared simulation context.
 */

#pragma once

#include <string>

#include "base/stats.hh"
#include "base/types.hh"
#include "sim/eventq.hh"

namespace fenceless::sim
{

/**
 * Shared state every component needs: the event queue and the stat
 * registry.  Owned by the System (harness); passed by reference to all
 * SimObjects.
 */
struct SimContext
{
    EventQueue eventq;
    statistics::StatRegistry stats;

    Tick curTick() const { return eventq.curTick(); }
};

/**
 * A named simulated component with its own stat group.
 *
 * All components run at the same clock (1 tick == 1 cycle); latencies are
 * expressed directly in cycles.
 */
class SimObject
{
  public:
    SimObject(SimContext &ctx, std::string name)
        : ctx_(ctx), name_(std::move(name)),
          stats_(ctx.stats.createGroup(name_))
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    Tick curTick() const { return ctx_.curTick(); }

    EventQueue &eventq() { return ctx_.eventq; }
    statistics::StatGroup &statGroup() { return stats_; }
    const statistics::StatGroup &statGroup() const { return stats_; }

    /** Schedule an event @p delay cycles from now. */
    void
    scheduleIn(Event *ev, Cycles delay)
    {
        ctx_.eventq.schedule(ev, curTick() + delay);
    }

    /** (Re)schedule an event @p delay cycles from now. */
    void
    rescheduleIn(Event *ev, Cycles delay)
    {
        ctx_.eventq.reschedule(ev, curTick() + delay);
    }

  protected:
    SimContext &ctx_;

  private:
    std::string name_;
    statistics::StatGroup &stats_;
};

} // namespace fenceless::sim
