/**
 * @file
 * Base class for simulated components and the shared simulation context.
 */

#pragma once

#include <memory>
#include <string>

#include "base/stats.hh"
#include "base/types.hh"
#include "sim/eventq.hh"
#include "sim/profiler.hh"
#include "sim/reqtrace.hh"
#include "sim/trace_sink.hh"

namespace fenceless::sim
{

/**
 * Shared state every component needs: the event queue, the stat
 * registry, the structured trace sink, and the waste-attribution
 * profiler.  Owned by the System (harness); passed by reference to all
 * SimObjects.  One context == one *shard* of one simulated system ==
 * one host thread, so the queue, sink and profiler need no locking
 * even when a SweepRunner drives many systems in parallel or a sharded
 * System drives many contexts of the same simulation.
 *
 * The stat registry is the exception: stat *groups* span the whole
 * simulated system regardless of how it is sharded, so a sharded
 * System creates one registry and hands it to every shard context via
 * the second constructor (each individual stat is still updated by
 * exactly one shard; the coordinator only reads between quanta).  The
 * default constructor keeps the old one-context-owns-everything shape
 * for tests and single-shard systems.
 */
struct SimContext
{
  private:
    // Backing storage for the default-constructed case; must precede
    // the `stats` reference so it is constructed first.
    std::unique_ptr<statistics::StatRegistry> owned_stats_;

  public:
    SimContext()
        : owned_stats_(std::make_unique<statistics::StatRegistry>()),
          stats(*owned_stats_)
    {}

    /** A shard context sharing the system-wide stat registry. */
    explicit SimContext(statistics::StatRegistry &shared_stats)
        : stats(shared_stats)
    {}

    EventQueue eventq;
    statistics::StatRegistry &stats;
    trace::TraceSink tracer;
    prof::WasteProfiler profiler;
    reqtrace::ReqTraceSink spans;

    Tick curTick() const { return eventq.curTick(); }
};

/**
 * A named simulated component with its own stat group.
 *
 * All components run at the same clock (1 tick == 1 cycle); latencies are
 * expressed directly in cycles.
 */
class SimObject
{
  public:
    SimObject(SimContext &ctx, std::string name)
        : ctx_(ctx), name_(std::move(name)),
          stats_(ctx.stats.createGroup(name_)),
          trace_id_(ctx.tracer.registerComponent(name_))
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    Tick curTick() const { return ctx_.curTick(); }

    EventQueue &eventq() { return ctx_.eventq; }
    statistics::StatGroup &statGroup() { return stats_; }
    const statistics::StatGroup &statGroup() const { return stats_; }

    trace::TraceSink &tracer() { return ctx_.tracer; }
    const trace::TraceSink &tracer() const { return ctx_.tracer; }

    /** Timeline track id of this component in the trace sink. */
    std::uint16_t traceId() const { return trace_id_; }

    /** Schedule an event @p delay cycles from now. */
    void
    scheduleIn(Event *ev, Cycles delay)
    {
        ctx_.eventq.schedule(ev, curTick() + delay);
    }

    /** (Re)schedule an event @p delay cycles from now. */
    void
    rescheduleIn(Event *ev, Cycles delay)
    {
        ctx_.eventq.reschedule(ev, curTick() + delay);
    }

  protected:
    SimContext &ctx_;

  private:
    std::string name_;
    statistics::StatGroup &stats_;
    std::uint16_t trace_id_;
};

} // namespace fenceless::sim
