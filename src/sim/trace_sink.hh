/**
 * @file
 * Structured binary event tracing with a Chrome trace-event exporter.
 *
 * FL_TRACE prints formatted text -- fine for eyeballing a short run,
 * useless for timelines.  The TraceSink instead records *typed* binary
 * events (tick, component id, event kind, two payload words) into
 * chunked in-memory buffers, and converts them on demand to Chrome
 * trace-event / Perfetto JSON (`--trace-out=run.json`, open in
 * `ui.perfetto.dev`): per-core duration events for speculation epochs
 * and stall intervals, instant events for rollbacks (with cause),
 * counter events for instruction commit, and cross-component flow
 * events following one memory request from L1 miss through the
 * directory back to the fill.
 *
 * Concurrency / cost model:
 *  - One sink per simulated system (it lives in sim::SimContext), and a
 *    system runs on exactly one host thread, so the hot path is a plain
 *    bounds-checked append -- no locks, no atomics, safe under
 *    `SweepRunner --jobs=N` because sinks share nothing.
 *  - Disabled tracing costs one inline mask test (the FL_TEVENT macro
 *    mirrors FL_TRACE's guard); nothing is evaluated or stored.
 *  - Recording is capped (default 4M events, ~128 MiB) so a runaway
 *    run degrades to counting drops instead of eating the host.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/trace.hh"
#include "base/types.hh"

namespace fenceless::trace
{

/**
 * Every kind of structured event the simulator records.  The exporter
 * knows each kind's Chrome phase (duration / instant / counter / flow)
 * and how to decode its payload words.
 */
enum class EventKind : std::uint16_t
{
    // Core timeline (Flag::Core / Flag::Stall)
    CoreCommit,   //!< counter: a0 = instructions retired so far
    CoreStall,    //!< duration: a0 = begin tick, aux = StallReason id
    // Speculation episodes (Flag::Spec)
    SpecEpoch,    //!< duration: a0 = begin tick, a1 = insts, aux = outcome
    SpecRollback, //!< instant: a1 = discarded insts, aux = cause id
    // Store buffer (Flag::SB)
    SbOccupancy,  //!< counter: a0 = entries buffered
    // Request lifetime (Flag::Req): a0 = request id, flows across
    // components; the exporter draws arrows between the phase slices.
    ReqIssue,     //!< L1 miss issued to the directory; a1 = block addr
    ReqDirIngress,//!< request arrived at the directory; a1 = msg type
    ReqDirDone,   //!< directory transaction completed; a1 = dram reads
    ReqFill,      //!< fill installed in the L1; a1 = block addr
    // Network (Flag::Net)
    NetHop,       //!< instant on the network track: a0 = req id,
                  //!< a1 = latency, aux = msg type
    NumKinds,
};

const char *eventKindName(EventKind k);

/** The Flag that gates recording of @p k (how FL_TEVENT filters). */
Flag eventKindFlag(EventKind k);

/** One recorded event.  32 bytes, trivially copyable. */
struct TraceRecord
{
    Tick tick;
    std::uint64_t a0;
    std::uint64_t a1;
    std::uint16_t comp;
    std::uint16_t kind;
    std::uint32_t aux;
};

static_assert(sizeof(TraceRecord) == 32, "keep trace records compact");

class TraceSink
{
  public:
    static constexpr std::size_t chunk_records = 1u << 16;
    static constexpr std::size_t default_cap = 4u << 20;

    explicit TraceSink(std::size_t max_records = default_cap)
        : max_records_(max_records)
    {}

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    // --- configuration ---------------------------------------------------

    /** Enable recording for the given Flag mask (0 = off, the default). */
    void setMask(std::uint32_t mask) { mask_ = mask; }
    std::uint32_t mask() const { return mask_; }

    /** @return true if any structured tracing is enabled. */
    bool enabled() const { return mask_ != 0; }

    /** @return true if events gated by @p f should be recorded. */
    bool
    wants(Flag f) const
    {
        return (mask_ & static_cast<std::uint32_t>(f)) != 0;
    }

    // --- component / request identity ------------------------------------

    /** Register a component; the id names its timeline track. */
    std::uint16_t registerComponent(const std::string &name);

    const std::vector<std::string> &components() const
    {
        return components_;
    }

    /** Fresh id for one memory request's lifetime (1-based; 0 = none). */
    std::uint64_t nextRequestId() { return ++last_req_id_; }

    /**
     * Map integer aux payloads of @p kind to printable names (e.g.
     * StallReason ids); the exporter uses them for event args.  The
     * owning component registers its table once at construction.
     */
    void setAuxNames(EventKind kind, std::vector<std::string> names);

    /** @return the registered name for (kind, aux), or "" if none. */
    const std::string &auxName(EventKind kind, std::uint32_t aux) const;

    // --- recording (hot path) --------------------------------------------

    /** Append one event.  Call through FL_TEVENT, not directly. */
    void
    record(std::uint16_t comp, EventKind kind, Tick tick,
           std::uint64_t a0 = 0, std::uint64_t a1 = 0,
           std::uint32_t aux = 0)
    {
        if (size_ >= max_records_) {
            ++dropped_;
            return;
        }
        if (chunks_.empty() || chunks_.back().size() == chunk_records)
            addChunk();
        chunks_.back().push_back(
            TraceRecord{tick, a0, a1, comp,
                        static_cast<std::uint16_t>(kind), aux});
        ++size_;
    }

    // --- inspection / export ---------------------------------------------

    std::size_t size() const { return size_; }
    std::uint64_t dropped() const { return dropped_; }

    /** Visit every record in recording order. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const auto &chunk : chunks_)
            for (const TraceRecord &r : chunk)
                fn(r);
    }

    /** Discard all recorded events (identity registrations survive). */
    void clear();

    /**
     * Write everything as a Chrome trace-event JSON object
     * (`{"traceEvents": [...]}`), loadable by chrome://tracing and
     * ui.perfetto.dev.  Ticks are exported as microseconds 1:1.
     */
    void exportChromeJson(std::ostream &os) const;

  private:
    void addChunk();

    std::uint32_t mask_ = 0;
    std::size_t max_records_;
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t last_req_id_ = 0;
    std::vector<std::vector<TraceRecord>> chunks_;
    std::vector<std::string> components_;
    std::vector<std::vector<std::string>> aux_names_;
};

} // namespace fenceless::trace

/**
 * Record a structured trace event.  @p obj must provide tracer(),
 * traceId() and curTick() (every SimObject does).  The payload
 * arguments are not evaluated when the gating flag is disabled.
 */
#define FL_TEVENT(obj, kind, ...)                                      \
    do {                                                               \
        if ((obj).tracer().wants(                                      \
                fenceless::trace::eventKindFlag(kind))) {              \
            (obj).tracer().record((obj).traceId(), kind,               \
                                  (obj).curTick(), ##__VA_ARGS__);     \
        }                                                              \
    } while (0)
