/**
 * @file
 * Structured binary event tracing with a Chrome trace-event exporter.
 *
 * FL_TRACE prints formatted text -- fine for eyeballing a short run,
 * useless for timelines.  The TraceSink instead records *typed* binary
 * events (tick, component id, event kind, two payload words) into
 * chunked in-memory buffers, and converts them on demand to Chrome
 * trace-event / Perfetto JSON (`--trace-out=run.json`, open in
 * `ui.perfetto.dev`): per-core duration events for speculation epochs
 * and stall intervals, instant events for rollbacks (with cause),
 * counter events for instruction commit, and cross-component flow
 * events following one memory request from L1 miss through the
 * directory back to the fill.
 *
 * Concurrency / cost model:
 *  - One sink per sim::SimContext -- i.e. per shard of a simulated
 *    system -- and a shard runs on exactly one host thread, so the hot
 *    path is a plain bounds-checked append: no locks, no atomics, safe
 *    under `SweepRunner --jobs=N` and under sharded (`--shards=N`)
 *    execution because sinks share nothing.  Sharded Systems merge the
 *    per-shard streams deterministically at dump time (sim/blackbox.hh,
 *    harness::System::exportTrace).
 *  - Disabled tracing costs one inline mask test (the FL_TEVENT macro
 *    mirrors FL_TRACE's guard); nothing is evaluated or stored.
 *  - Recording is capped (default 4M events, ~128 MiB) so a runaway
 *    run degrades to counting drops instead of eating the host.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/trace.hh"
#include "base/types.hh"

namespace fenceless::trace
{

/**
 * Every kind of structured event the simulator records.  The exporter
 * knows each kind's Chrome phase (duration / instant / counter / flow)
 * and how to decode its payload words.
 */
enum class EventKind : std::uint16_t
{
    // Core timeline (Flag::Core / Flag::Stall)
    CoreCommit,   //!< counter: a0 = instructions retired so far
    CoreStall,    //!< duration: a0 = begin tick, aux = StallReason id
    // Speculation episodes (Flag::Spec)
    SpecEpoch,    //!< duration: a0 = begin tick, a1 = insts, aux = outcome
    SpecRollback, //!< instant: a1 = discarded insts, aux = cause id
    // Store buffer (Flag::SB)
    SbOccupancy,  //!< counter: a0 = entries buffered
    // Request lifetime (Flag::Req): a0 = request id, flows across
    // components; the exporter draws arrows between the phase slices.
    ReqIssue,     //!< L1 miss issued to the directory; a1 = block addr
    ReqDirIngress,//!< request arrived at the directory; a1 = msg type
    ReqDirDone,   //!< directory transaction completed; a1 = dram reads
    ReqFill,      //!< fill installed in the L1; a1 = block addr
    // Network (Flag::Net)
    NetHop,       //!< instant on the network track: a0 = req id,
                  //!< a1 = latency, aux = msg type
    // Host shard telemetry (Flag::Host): wall-clock phases of the
    // parallel driver, drawn on per-shard host tracks alongside the
    // guest timeline (ticks are the shared x-axis).
    HostPhase,    //!< duration: tick = quantum start, a0 = quantum end,
                  //!< a1 = phase ns, aux = HostPhaseKind
    HostCoord,    //!< instant: coordinator step at a quantum boundary;
                  //!< a1 = step ns, aux = boundary cause id
    // Sampled request spans (Flag::Req).  Synthesized at export time
    // from the reqtrace span sinks, never recorded live: one slice per
    // tiled stage, chained with flow arrows under the guest tracks.
    ReqStage,     //!< duration: a0 = req id, a1 = cycles, aux = stage
    NumKinds,
};

const char *eventKindName(EventKind k);

/**
 * The Flag that gates recording of @p k (how FL_TEVENT filters).
 * constexpr so the per-site guard folds to a compile-time constant:
 * every FL_TEVENT passes a literal kind, and with tracing off the whole
 * guard reduces to one inline mask test against a constant bit.
 */
constexpr Flag
eventKindFlag(EventKind k)
{
    switch (k) {
      case EventKind::CoreCommit: return Flag::Core;
      case EventKind::CoreStall: return Flag::Stall;
      case EventKind::SpecEpoch:
      case EventKind::SpecRollback: return Flag::Spec;
      case EventKind::SbOccupancy: return Flag::SB;
      case EventKind::ReqIssue:
      case EventKind::ReqDirIngress:
      case EventKind::ReqDirDone:
      case EventKind::ReqFill: return Flag::Req;
      case EventKind::NetHop: return Flag::Net;
      case EventKind::HostPhase:
      case EventKind::HostCoord: return Flag::Host;
      case EventKind::ReqStage: return Flag::Req;
      case EventKind::NumKinds: break;
    }
    return Flag::All;
}

/** One recorded event.  32 bytes, trivially copyable. */
struct TraceRecord
{
    Tick tick;
    std::uint64_t a0;
    std::uint64_t a1;
    std::uint16_t comp;
    std::uint16_t kind;
    std::uint32_t aux;
};

static_assert(sizeof(TraceRecord) == 32, "keep trace records compact");

/**
 * One flight-recorder ring slot: the record plus a global push sequence
 * number, so the per-component rings merge into one totally ordered
 * stream at dump time without any per-event timestamp comparison.
 */
struct RingEntry
{
    TraceRecord rec;
    std::uint64_t seq = 0; //!< 0 = slot never written
};

class TraceSink
{
  public:
    static constexpr std::size_t chunk_records = 1u << 16;
    static constexpr std::size_t default_cap = 4u << 20;

    explicit TraceSink(std::size_t max_records = default_cap)
        : max_records_(max_records)
    {}

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    // --- configuration ---------------------------------------------------

    /** Enable recording for the given Flag mask (0 = off, the default). */
    void setMask(std::uint32_t mask) { mask_ = mask; }
    std::uint32_t mask() const { return mask_; }

    /** @return true if any structured tracing is enabled. */
    bool enabled() const { return mask_ != 0; }

    /**
     * Configure the flight-recorder ring: the last @p records_per_comp
     * events (flag-filtered by @p flags) of every component are kept in
     * a fixed ring and survive until dumped -- the incident evidence
     * for stall dossiers and panic dumps (see sim/blackbox.hh).  The
     * capacity is rounded up to a power of two; 0 disables the ring.
     * Safe to call before or after components register.
     */
    void configureRing(std::size_t records_per_comp, std::uint32_t flags);

    std::size_t ringCapacity() const { return ring_capacity_; }
    std::uint32_t ringFlags() const { return ring_flags_; }

    /** Total events ever pushed into the ring (across components). */
    std::uint64_t ringPushes() const { return ring_seq_; }

    /** @return true if events gated by @p f should be recorded. */
    bool
    wants(Flag f) const
    {
        return ((mask_ | ring_flags_) &
                static_cast<std::uint32_t>(f)) != 0;
    }

    // --- component / request identity ------------------------------------

    /**
     * Register a component; the id names its timeline track.
     * Idempotent: re-registering an existing name returns its id, so a
     * sharded System can pre-register one global component list into
     * every shard sink and ids stay identical across sinks.
     */
    std::uint16_t registerComponent(const std::string &name);

    /**
     * Copy @p other's aux-name tables for any kind this sink has none
     * for.  The export/meta sink of a sharded run adopts the tables
     * components registered into their own shard's sink; tables for
     * the same kind are identical across components, so first-wins is
     * exact.
     */
    void adoptAuxNames(const TraceSink &other);

    const std::vector<std::string> &components() const
    {
        return components_;
    }

    /** Fresh id for one memory request's lifetime (1-based; 0 = none). */
    std::uint64_t nextRequestId() { return ++last_req_id_; }

    /**
     * Map integer aux payloads of @p kind to printable names (e.g.
     * StallReason ids); the exporter uses them for event args.  The
     * owning component registers its table once at construction.
     */
    void setAuxNames(EventKind kind, std::vector<std::string> names);

    /** @return the registered name for (kind, aux), or "" if none. */
    const std::string &auxName(EventKind kind, std::uint32_t aux) const;

    // --- recording (hot path) --------------------------------------------

    /**
     * Append one event.  Call through FL_TEVENT, not directly.  The
     * event goes to the flight-recorder ring, the full chunked trace,
     * or both, depending on which mask wants its kind: wants() gates on
     * the union, so this re-checks each destination.
     */
    void
    record(std::uint16_t comp, EventKind kind, Tick tick,
           std::uint64_t a0 = 0, std::uint64_t a1 = 0,
           std::uint32_t aux = 0)
    {
        const auto bit =
            static_cast<std::uint32_t>(eventKindFlag(kind));
        if (ring_flags_ & bit) {
            // Ring write: one indexed store and two counter bumps.
            // This is the always-on flight-recorder hot path; keep it
            // branch-light (capacity is a power of two).
            std::uint64_t &head = ring_heads_[comp];
            ring_[comp * ring_capacity_ +
                  (head & (ring_capacity_ - 1))] =
                RingEntry{TraceRecord{tick, a0, a1, comp,
                                      static_cast<std::uint16_t>(kind),
                                      aux},
                          ++ring_seq_};
            ++head;
        }
        // The full chunked trace takes the kinds the mask asks for.
        // An entirely unconfigured sink (no mask, no ring) keeps the
        // legacy behaviour of storing every direct record() call:
        // wants() is false for everything then, so FL_TEVENT never
        // gets here and only explicit callers (tests, tools) do.
        if (!(mask_ & bit) && (mask_ | ring_flags_) != 0)
            return;
        if (size_ >= max_records_) {
            ++dropped_;
            return;
        }
        if (chunks_.empty() || chunks_.back().size() == chunk_records)
            addChunk();
        chunks_.back().push_back(
            TraceRecord{tick, a0, a1, comp,
                        static_cast<std::uint16_t>(kind), aux});
        ++size_;
    }

    // --- inspection / export ---------------------------------------------

    std::size_t size() const { return size_; }
    std::uint64_t dropped() const { return dropped_; }

    /** Visit every record in recording order. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const auto &chunk : chunks_)
            for (const TraceRecord &r : chunk)
                fn(r);
    }

    /**
     * Visit component @p comp's ring entries, oldest to newest.  Only
     * written slots are visited, so a short run yields fewer than
     * ringCapacity() entries.
     */
    template <typename Fn>
    void
    forEachRingEntry(std::uint16_t comp, Fn fn) const
    {
        if (ring_capacity_ == 0 || comp >= ring_heads_.size())
            return;
        const std::uint64_t head = ring_heads_[comp];
        const std::uint64_t count = std::min<std::uint64_t>(
            head, static_cast<std::uint64_t>(ring_capacity_));
        const std::size_t base = comp * ring_capacity_;
        for (std::uint64_t i = head - count; i < head; ++i)
            fn(ring_[base + (i & (ring_capacity_ - 1))]);
    }

    /** Discard all recorded events (identity registrations survive). */
    void clear();

    /**
     * Write everything as a Chrome trace-event JSON object
     * (`{"traceEvents": [...]}`), loadable by chrome://tracing and
     * ui.perfetto.dev.  Ticks are exported as microseconds 1:1.  A
     * non-empty @p provenance_json (see base/provenance.hh) is embedded
     * as a top-level "provenance" key.
     */
    void exportChromeJson(std::ostream &os,
                          const std::string &provenance_json = "") const;

    /**
     * Export an arbitrary record sequence -- e.g. the merged flight-
     * recorder rings -- in the same Chrome trace-event format, using
     * this sink's component and aux-name registrations for identity.
     */
    void
    exportChromeJsonFor(std::ostream &os,
                        const std::vector<TraceRecord> &records,
                        std::uint64_t dropped,
                        const std::string &provenance_json) const;

  private:
    void addChunk();

    std::uint32_t mask_ = 0;
    std::size_t max_records_;
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t last_req_id_ = 0;
    std::vector<std::vector<TraceRecord>> chunks_;
    std::vector<std::string> components_;
    std::vector<std::vector<std::string>> aux_names_;

    // Flight-recorder ring: component-major fixed storage, one write
    // head per component, one global push sequence shared by all.
    std::uint32_t ring_flags_ = 0;
    std::size_t ring_capacity_ = 0; //!< slots per component (power of 2)
    std::uint64_t ring_seq_ = 0;
    std::vector<RingEntry> ring_;
    std::vector<std::uint64_t> ring_heads_;
};

} // namespace fenceless::trace

/**
 * Record a structured trace event.  @p obj must provide tracer(),
 * traceId() and curTick() (every SimObject does).  The payload
 * arguments are not evaluated when the gating flag is disabled.
 */
#define FL_TEVENT(obj, kind, ...)                                      \
    do {                                                               \
        if ((obj).tracer().wants(                                      \
                fenceless::trace::eventKindFlag(kind))) {              \
            (obj).tracer().record((obj).traceId(), kind,               \
                                  (obj).curTick(), ##__VA_ARGS__);     \
        }                                                              \
    } while (0)
