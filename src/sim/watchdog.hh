/**
 * @file
 * Hang / livelock watchdog.
 *
 * A wedged simulation is worse than a crashed one: a deadlocked
 * directory transaction leaves cores asleep and the event queue either
 * drains (silent early exit) or spins on housekeeping events until
 * max_cycles, telling the user nothing.  The watchdog turns both into
 * a prompt, diagnosable abort.
 *
 * Mechanism: the watchdog is a *passive* monitor driven by the
 * harness's quantum coordinator (see harness::System), which calls
 * checkAt() every `interval` cycles -- at a quantum boundary, while
 * every shard's event loop is parked, so the probe may read state from
 * all shards without racing.  The probe sums retired instructions and
 * rollbacks across all cores.  If a full window passes in which no
 * core retired anything, that's a hang (NoRetirement); if nothing
 * retired but rollbacks exceeded a storm threshold, that's a livelock
 * (RollbackStorm -- cores are spinning through speculation rollbacks
 * without net progress; note SpecController's exponential cooldown
 * makes benign rollback-heavy workloads like dekker retire *some*
 * instructions every window, so they never trip this).
 *
 * Keeping a wedged-but-empty system alive until the next check is the
 * coordinator's job (it keeps stepping quantum boundaries while the
 * watchdog is armed even when every shard queue has drained), so the
 * watchdog itself needs no event-queue coupling -- which is what lets
 * one watchdog supervise a simulation sharded across host threads.
 * Cost: one probe per interval -- zero per-event overhead.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "base/types.hh"

namespace fenceless::sim
{

class Watchdog
{
  public:
    struct Params
    {
        Tick interval = 100'000;     //!< cycles between progress checks
        std::uint64_t storm_threshold = 256; //!< rollbacks/window => storm
    };

    /** What the probe reports each window. */
    struct Progress
    {
        std::uint64_t instret = 0;   //!< total retired, all cores
        std::uint64_t rollbacks = 0; //!< total rollbacks, all cores
        bool all_halted = false;     //!< every core has halted cleanly
    };

    enum class Cause : std::uint8_t
    {
        None,
        NoRetirement,  //!< no core retired an instruction all window
        RollbackStorm, //!< rollbacks without net retirement
    };

    struct Report
    {
        Cause cause = Cause::None;
        Tick window_begin = 0;
        Tick fire_tick = 0;
        std::uint64_t instret = 0;   //!< total retired at fire time
        std::uint64_t rollbacks_in_window = 0;
    };

    Watchdog(Params params, std::function<Progress()> probe)
        : params_(params), probe_(std::move(probe))
    {}

    /** Prime the progress baseline at tick @p now. */
    void prime(Tick now);

    /**
     * Run one progress check at tick @p now (a full window after the
     * last prime/check).  Returns true when the watchdog fires -- the
     * report() is then final and the caller should abort the run.
     * Returns false on a healthy window (baseline re-primed) or when
     * every core has halted cleanly (no re-arm needed).
     */
    bool checkAt(Tick now);

    bool fired() const { return report_.cause != Cause::None; }
    const Report &report() const { return report_; }
    Tick interval() const { return params_.interval; }

    static const char *causeName(Cause c);

  private:
    Params params_;
    std::function<Progress()> probe_;

    Tick window_begin_ = 0;
    std::uint64_t last_instret_ = 0;
    std::uint64_t last_rollbacks_ = 0;
    Report report_;
};

} // namespace fenceless::sim
