/**
 * @file
 * Hang / livelock watchdog.
 *
 * A wedged simulation is worse than a crashed one: a deadlocked
 * directory transaction leaves cores asleep and the event queue either
 * drains (silent early exit) or spins on housekeeping events until
 * max_cycles, telling the user nothing.  The watchdog turns both into
 * a prompt, diagnosable abort.
 *
 * Mechanism: a low-frequency recurring event (default every 100k
 * cycles, priority prio_stat so it never perturbs same-tick component
 * ordering) samples a progress probe -- the sum of retired instructions
 * and rollbacks across all cores.  If a full window passes in which no
 * core retired anything, that's a hang (NoRetirement); if nothing
 * retired but rollbacks exceeded a storm threshold, that's a livelock
 * (RollbackStorm -- cores are spinning through speculation rollbacks
 * without net progress; note SpecController's exponential cooldown
 * makes benign rollback-heavy workloads like dekker retire *some*
 * instructions every window, so they never trip this).
 *
 * The watchdog itself keeps the event queue non-empty, so a fully
 * wedged system still reaches the next check instead of exiting the
 * run loop as "quiesced".  Cost: one callback per interval -- zero
 * per-event overhead.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "base/types.hh"
#include "sim/eventq.hh"

namespace fenceless::sim
{

class Watchdog
{
  public:
    struct Params
    {
        Tick interval = 100'000;     //!< cycles between progress checks
        std::uint64_t storm_threshold = 256; //!< rollbacks/window => storm
    };

    /** What the probe reports each window. */
    struct Progress
    {
        std::uint64_t instret = 0;   //!< total retired, all cores
        std::uint64_t rollbacks = 0; //!< total rollbacks, all cores
        bool all_halted = false;     //!< every core has halted cleanly
    };

    enum class Cause : std::uint8_t
    {
        None,
        NoRetirement,  //!< no core retired an instruction all window
        RollbackStorm, //!< rollbacks without net retirement
    };

    struct Report
    {
        Cause cause = Cause::None;
        Tick window_begin = 0;
        Tick fire_tick = 0;
        std::uint64_t instret = 0;   //!< total retired at fire time
        std::uint64_t rollbacks_in_window = 0;
    };

    Watchdog(EventQueue &eventq, Params params,
             std::function<Progress()> probe,
             std::function<void(const Report &)> on_fire)
        : eventq_(eventq), params_(params), probe_(std::move(probe)),
          on_fire_(std::move(on_fire)),
          check_event_([this] { check(); }, "watchdog",
                       Event::prio_stat)
    {}

    /**
     * A run that stops on its cycle budget (or an error) leaves the
     * next check pending; pull it off the queue so destroying the
     * system does not trip the destroyed-while-scheduled assertion.
     */
    ~Watchdog()
    {
        if (check_event_.scheduled())
            eventq_.deschedule(&check_event_);
    }

    /** Prime the baseline from the probe and schedule the first check. */
    void start();

    bool fired() const { return report_.cause != Cause::None; }
    const Report &report() const { return report_; }

    static const char *causeName(Cause c);

  private:
    void check();

    EventQueue &eventq_;
    Params params_;
    std::function<Progress()> probe_;
    std::function<void(const Report &)> on_fire_;
    EventFunctionWrapper check_event_;

    Tick window_begin_ = 0;
    std::uint64_t last_instret_ = 0;
    std::uint64_t last_rollbacks_ = 0;
    Report report_;
};

} // namespace fenceless::sim
