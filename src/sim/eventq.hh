/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Determinism: events scheduled for the same tick fire in (priority,
 * insertion-sequence) order, so a run is reproducible regardless of queue
 * internals.  Descheduling is lazy: a cancelled or rescheduled entry is
 * recognised as stale when popped and skipped (counted in stalePops()).
 *
 * The queue is a two-level calendar queue.  Nearly every event a cycle-
 * accurate simulator schedules lands within a few ticks of "now" (core
 * ticks at +1, cache hits at +hit_latency, network hops at +latency), so
 * the near future -- a circular window of @ref bucket_window per-tick
 * buckets -- gets O(1) push and pop.  Each bucket keeps its entries
 * sorted by (priority, stamp); with uniform priorities (the common case)
 * an insert is a plain append.  Events beyond the window overflow into a
 * binary heap (the far queue) and migrate into the buckets as the
 * current tick approaches them, so the exact (when, priority, stamp)
 * total order of the old single-heap implementation is preserved
 * bit-for-bit.
 *
 * One-shot events -- the unbounded fire-and-forget callbacks used for
 * cache responses and message deliveries -- are the hottest allocation
 * site in the simulator, so they are pooled: the queue keeps fired
 * nodes on an intrusive free list and reuses them, and the callable is
 * stored inline in the node (no std::function, no per-fire heap
 * traffic once the pool has warmed up).
 */

#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace fenceless::sim
{

class EventQueue;

/**
 * An event that can be scheduled on an EventQueue.
 *
 * Events are owned by their creators (typically as member objects of a
 * simulated component) and may be scheduled, descheduled and rescheduled
 * freely; at most one pending occurrence exists at a time.
 */
class Event
{
  public:
    /** Standard priorities; lower fires first within a tick. */
    enum Priority : int
    {
        prio_highest = 0,
        prio_default = 50,
        prio_stat = 90,
        prio_lowest = 100,
    };

    explicit Event(int priority = prio_default) : priority_(priority) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Called when the event fires. */
    virtual void process() = 0;

    /**
     * Descriptive name for debugging.  Returns a borrowed pointer (valid
     * for the lifetime of the event) rather than a std::string by value:
     * scheduling-path assertions evaluate their arguments eagerly, so a
     * string-building name() would construct and destroy a string on
     * every schedule() even though the message is only used on failure.
     */
    virtual const char *name() const { return "event"; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    int priority() const { return priority_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    std::uint64_t stamp_ = 0; //!< queue entry identity, for lazy removal
    int priority_;
    bool scheduled_ = false;
};

/** An Event whose process() invokes a bound callable. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback, std::string name,
                         int priority = prio_default)
        : Event(priority), callback_(std::move(callback)),
          name_(std::move(name))
    {
        flAssert(static_cast<bool>(callback_),
                 "EventFunctionWrapper requires a callable");
    }

    void process() override { callback_(); }
    const char *name() const override { return name_.c_str(); }

  private:
    std::function<void()> callback_;
    std::string name_;
};

namespace detail
{

/**
 * Type-erased nullary callable with inline storage, purpose-built for
 * pooled one-shot events.  Closures up to inline_bytes (the common
 * case: `this` plus a few words) live in the node itself; larger ones
 * fall back to a heap box behind the same two-function dispatch.
 */
class OneShotFn
{
  public:
    static constexpr std::size_t inline_bytes = 48;

    OneShotFn() = default;
    ~OneShotFn() { clear(); }

    OneShotFn(const OneShotFn &) = delete;
    OneShotFn &operator=(const OneShotFn &) = delete;

    template <typename F>
    void
    emplace(F &&fn)
    {
        using D = std::decay_t<F>;
        clear();
        if constexpr (sizeof(D) <= inline_bytes &&
                      alignof(D) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(storage_)) D(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<D *>(p))(); };
            if constexpr (std::is_trivially_destructible_v<D>)
                destroy_ = nullptr;
            else
                destroy_ = [](void *p) { static_cast<D *>(p)->~D(); };
        } else {
            using Box = D *;
            ::new (static_cast<void *>(storage_))
                Box(new D(std::forward<F>(fn)));
            invoke_ = [](void *p) { (**static_cast<Box *>(p))(); };
            destroy_ = [](void *p) { delete *static_cast<Box *>(p); };
        }
    }

    bool armed() const { return invoke_ != nullptr; }

    /** Run the stored callable (must be armed). */
    void operator()() { invoke_(storage_); }

    /** Destroy the stored callable, returning to the empty state. */
    void
    clear()
    {
        if (destroy_)
            destroy_(storage_);
        invoke_ = nullptr;
        destroy_ = nullptr;
    }

  private:
    alignas(std::max_align_t) unsigned char storage_[inline_bytes];
    void (*invoke_)(void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
};

} // namespace detail

/**
 * The global event queue.  Single-threaded: one queue drives the whole
 * simulated system.  Distinct queues share nothing, so independent
 * systems may run concurrently on different host threads.
 */
class EventQueue
{
  public:
    /**
     * Width of the near-future calendar window, in ticks.  Power of two
     * (bucket index is a mask).  Core ticks (+1), cache hits
     * (+hit_latency) and network hops (+latency+serialization) all land
     * well inside it; only long-horizon events (stat snapshots, parked
     * retries under backpressure) overflow into the far heap.
     */
    static constexpr std::size_t bucket_window = 64;

    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    Tick curTick() const { return cur_tick_; }

    bool empty() const { return num_scheduled_ == 0; }
    std::size_t numPending() const { return num_scheduled_; }

    /** Schedule @p ev to fire at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /** Remove a pending event (no-op scheduling state if not pending). */
    void deschedule(Event *ev);

    /** Move a pending (or idle) event to a new absolute tick. */
    void reschedule(Event *ev, Tick when);

    /**
     * Fire-and-forget: run @p fn at absolute tick @p when.  The event
     * node comes from the queue's free-list pool and returns to it
     * after firing; the steady state allocates nothing.  For callbacks
     * whose count is unbounded (cache responses, message deliveries);
     * components with a fixed set of recurring events should own
     * EventFunctionWrapper members instead.
     */
    template <typename F>
    void
    scheduleOneShot(Tick when, F &&fn)
    {
        OneShot *ev = acquireOneShot();
        ev->fn.emplace(std::forward<F>(fn));
        schedule(ev, when);
    }

    /** Total one-shot nodes ever allocated (pool high-water mark). */
    std::size_t oneShotNodesAllocated() const
    {
        return oneshot_nodes_.size();
    }

    /** One-shot nodes currently parked on the free list. */
    std::size_t oneShotNodesFree() const { return oneshot_free_count_; }

    /**
     * Lazily-deleted entries skipped while looking for the next live
     * event (descheduled/rescheduled leftovers in the buckets or the
     * far heap).  A queue-health metric: it growing out of proportion
     * with event volume means some component churns schedules.
     */
    std::uint64_t stalePops() const { return stale_pops_; }

    /** Events popped from the near-future calendar buckets. */
    std::uint64_t nearPops() const { return near_pops_; }

    /** Events popped straight from the far (overflow) heap. */
    std::uint64_t farPops() const { return far_pops_; }

    /**
     * Run until the queue drains or @p max_tick is passed.
     * @return the final current tick.
     */
    Tick run(Tick max_tick = fenceless::max_tick);

    /**
     * Make the current run() return before firing another event.  Used
     * by the hang watchdog: its abort must unwind out of the event loop
     * (so the harness can dump a dossier and exit cleanly) rather than
     * terminate the process from inside an event handler.  The flag is
     * consumed by the run() it stops; a later run() call starts fresh.
     */
    void requestStop() { stop_requested_ = true; }

    /** @return true if requestStop() ended (or will end) a run. */
    bool stopRequested() const { return stop_requested_; }

    /** Fire exactly one event if any is pending. @return true if fired. */
    bool step();

  private:
    /** A pooled self-recycling event wrapping an inline callable. */
    class OneShot final : public Event
    {
      public:
        explicit OneShot(EventQueue &owner) : owner_(owner) {}

        void
        process() override
        {
            // Run, destroy the closure, then recycle the node.  The
            // callable may schedule further one-shots; this node is
            // not on the free list while it runs, so reentrant
            // scheduling can never hand it out twice.
            fn();
            fn.clear();
            owner_.releaseOneShot(this);
        }

        const char *name() const override { return "one-shot"; }

        detail::OneShotFn fn;
        OneShot *next_free = nullptr;

      private:
        EventQueue &owner_;
    };

    /** A far-heap entry (also the migration record). */
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t stamp;
        Event *event;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.stamp > b.stamp;
        }
    };

    /**
     * A near-window entry.  `when` is kept because a bucket can hold
     * leftovers from a lapped tick (when == t - k*bucket_window) that
     * are recognised and dropped as stale when examined.
     */
    struct NearEntry
    {
        Tick when;
        std::uint64_t stamp;
        Event *event;
        int priority;
    };

    /**
     * One calendar bucket: entries sorted ascending by (priority,
     * stamp) from `head` on; the prefix before `head` has been popped.
     * The vector is recycled (clear keeps capacity) once drained.
     */
    struct Bucket
    {
        std::vector<NearEntry> entries;
        std::size_t head = 0;
    };

    /** Where findNext() located the next live event. */
    enum class NextWhere : std::uint8_t
    {
        None, //!< queue drained (ignoring stale leftovers)
        Near, //!< head of buckets_[when & mask]
        Far,  //!< top of far_
    };

    /**
     * Prune stale entries, migrate far entries that entered the window,
     * and locate the earliest live event without popping it.
     */
    NextWhere findNext(Tick &when_out);

    /** Pop entries until a live one is found; nullptr when drained. */
    Event *popLive();

    /** Insert into the calendar (when must be inside the window). */
    void pushNear(Tick when, int priority, std::uint64_t stamp,
                  Event *ev);

    /** Take a node from the free list, growing the pool if empty. */
    OneShot *acquireOneShot();

    /** Park a fired node on the free list for reuse. */
    void releaseOneShot(OneShot *ev);

    std::array<Bucket, bucket_window> buckets_;
    std::size_t near_count_ = 0; //!< entries physically in buckets
    /**
     * No live near entry exists at any tick < next_hint_.  Lets the
     * bucket scan resume where the previous one stopped instead of
     * re-walking empty buckets from cur_tick_ on every pop.
     */
    Tick next_hint_ = 0;

    std::priority_queue<Entry, std::vector<Entry>, Later> far_;
    Tick cur_tick_ = 0;
    std::uint64_t next_stamp_ = 1;
    std::size_t num_scheduled_ = 0;

    std::uint64_t stale_pops_ = 0;
    std::uint64_t near_pops_ = 0;
    std::uint64_t far_pops_ = 0;
    bool stop_requested_ = false;

    std::vector<std::unique_ptr<OneShot>> oneshot_nodes_; //!< ownership
    OneShot *oneshot_free_ = nullptr; //!< intrusive free list head
    std::size_t oneshot_free_count_ = 0;
};

/**
 * Free-function form of EventQueue::scheduleOneShot, kept for the many
 * component call sites.
 */
template <typename F>
void
scheduleOneShot(EventQueue &eq, Tick when, F &&fn)
{
    eq.scheduleOneShot(when, std::forward<F>(fn));
}

} // namespace fenceless::sim
