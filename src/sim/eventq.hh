/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Determinism: events scheduled for the same tick fire in (priority,
 * insertion-sequence) order, so a run is reproducible regardless of heap
 * internals.  Descheduling is lazy: a cancelled or rescheduled entry is
 * recognised as stale when popped and skipped.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace fenceless::sim
{

class EventQueue;

/**
 * An event that can be scheduled on an EventQueue.
 *
 * Events are owned by their creators (typically as member objects of a
 * simulated component) and may be scheduled, descheduled and rescheduled
 * freely; at most one pending occurrence exists at a time.
 */
class Event
{
  public:
    /** Standard priorities; lower fires first within a tick. */
    enum Priority : int
    {
        prio_highest = 0,
        prio_default = 50,
        prio_stat = 90,
        prio_lowest = 100,
    };

    explicit Event(int priority = prio_default) : priority_(priority) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Called when the event fires. */
    virtual void process() = 0;

    /** Descriptive name for debugging. */
    virtual std::string name() const { return "event"; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    int priority() const { return priority_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    std::uint64_t stamp_ = 0; //!< queue entry identity, for lazy removal
    int priority_;
    bool scheduled_ = false;
};

/** An Event whose process() invokes a bound callable. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback, std::string name,
                         int priority = prio_default)
        : Event(priority), callback_(std::move(callback)),
          name_(std::move(name))
    {
        flAssert(static_cast<bool>(callback_),
                 "EventFunctionWrapper requires a callable");
    }

    void process() override { callback_(); }
    std::string name() const override { return name_; }

  private:
    std::function<void()> callback_;
    std::string name_;
};

/**
 * Fire-and-forget: run @p fn at absolute tick @p when.  The event owns
 * itself and is destroyed after firing.  For callbacks whose count is
 * unbounded (cache responses, message deliveries); components with a
 * fixed set of recurring events should own EventFunctionWrapper members
 * instead.
 */
void scheduleOneShot(class EventQueue &eq, Tick when,
                     std::function<void()> fn);

/**
 * The global event queue.  Single-threaded: one queue drives the whole
 * simulated system.
 */
class EventQueue
{
  public:
    Tick curTick() const { return cur_tick_; }

    bool empty() const { return num_scheduled_ == 0; }
    std::size_t numPending() const { return num_scheduled_; }

    /** Schedule @p ev to fire at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /** Remove a pending event (no-op scheduling state if not pending). */
    void deschedule(Event *ev);

    /** Move a pending (or idle) event to a new absolute tick. */
    void reschedule(Event *ev, Tick when);

    /**
     * Run until the queue drains or @p max_tick is passed.
     * @return the final current tick.
     */
    Tick run(Tick max_tick = fenceless::max_tick);

    /** Fire exactly one event if any is pending. @return true if fired. */
    bool step();

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t stamp;
        Event *event;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.stamp > b.stamp;
        }
    };

    /** Pop entries until a live one is found; nullptr when drained. */
    Event *popLive();

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    Tick cur_tick_ = 0;
    std::uint64_t next_stamp_ = 1;
    std::size_t num_scheduled_ = 0;
};

} // namespace fenceless::sim
