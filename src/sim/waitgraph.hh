/**
 * @file
 * Wait-for graph for stall dossiers.
 *
 * When a hang is detected (or a dossier is requested), every component
 * that can block progress reports "who waits on what, held by whom" as
 * directed edges: an idle core waits on its MSHR, the MSHR waits on a
 * directory transaction, a directory transaction in its forward phase
 * waits on the owning core's acknowledgement, and so on.  The graph is
 * built *on demand* by walking component state -- registering edges
 * costs nothing on the simulation hot path, and walking a quiesced
 * system is deterministic, so dossiers are byte-identical across runs
 * and across `--jobs=N` sweep placements.
 *
 * Cycle detection names true deadlocks: a cycle in the wait-for graph
 * is a set of agents each holding a resource the next one needs.  A
 * hang with *no* cycle points at a different disease (a dropped
 * message, an event never scheduled, livelock) and the dossier says so.
 */

#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/types.hh"

namespace fenceless::sim
{

/**
 * One vertex: a waiting agent or a held resource.
 *
 * Directory-side kinds (DirTxn, Directory, Dram) encode the owning
 * bank in `id` as bank + 1 so that id == 0 keeps the legacy monolithic
 * names ("l2dir", "l2dir.txn[..]", "dram") -- single-bank dossiers
 * stay byte-identical to pre-banking runs, and banked runs name the
 * individual bank ("dir.bank3", "dram.chan3").
 */
struct WaitNode
{
    enum class Kind : std::uint8_t
    {
        Core,        //!< id = core index
        StoreBuffer, //!< id = owning core index
        SpecEpoch,   //!< id = owning core index
        Mshr,        //!< id = L1 index, addr = block address
        DirTxn,      //!< addr = block address; id = bank + 1, 0 legacy
        Directory,   //!< a directory bank; id = bank + 1, 0 legacy
        Channel,     //!< id = (src << 8) | dst network endpoint pair
        Dram,        //!< a DRAM channel; id = bank + 1, 0 legacy
    };

    Kind kind = Kind::Core;
    std::uint32_t id = 0;
    Addr addr = 0;

    auto operator<=>(const WaitNode &) const = default;

    std::string toString() const;
};

/** One edge: @p from cannot make progress until @p to releases/acts. */
struct WaitEdge
{
    WaitNode from;
    WaitNode to;
    std::string label; //!< why, e.g. "load miss outstanding"
};

class WaitGraph
{
  public:
    void
    addEdge(WaitNode from, WaitNode to, std::string label)
    {
        edges_.push_back({from, to, std::move(label)});
    }

    const std::vector<WaitEdge> &edges() const { return edges_; }
    bool empty() const { return edges_.empty(); }

    /**
     * Every elementary cycle, as node sequences (first node repeated at
     * the end is implied, not stored).  Each cycle is rotated so its
     * smallest node comes first and the list is sorted, so output is
     * independent of edge registration order.
     */
    std::vector<std::vector<WaitNode>> cycles() const;

    /**
     * Human-readable dump: every edge, then each cycle highlighted, or
     * a "no wait-for cycle" note when the graph is acyclic.
     */
    void print(std::ostream &os) const;

  private:
    std::vector<WaitEdge> edges_;
};

} // namespace fenceless::sim
