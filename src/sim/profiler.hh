/**
 * @file
 * Waste-attribution profiler: per-static-instruction cycle accounting,
 * per-cache-line contention profiling, and per-rollback-cause
 * attribution for one simulated system.
 *
 * The paper frames lost performance as identifiable categories of
 * waste; this profiler answers *which guest code and which cache line*
 * each category charges to.  Three views:
 *
 *  - per-PC cycles, split into execute / fence-stall / store-buffer-
 *    full / miss-wait / rollback-discarded buckets, indexed by the
 *    DecodedProgram instruction index and symbolized via assembler
 *    labels;
 *  - per-line contention: touches, invalidations received, sharer
 *    ping-pong transitions at the directory, and false-sharing
 *    detection from the sub-block (8-byte slot) offsets each core
 *    touched;
 *  - rollbacks keyed by (cause, victim PC, triggering line) with
 *    discarded-instruction counts.
 *
 * Ownership and threading mirror trace::TraceSink: one profiler per
 * SimContext, driven by that context's single host thread, so
 * host-parallel sweeps need no locking and stay TSan-clean.  Disabled
 * cost is one cached-pointer null test per site (components cache
 * `ifEnabled()`, which is constant-null when FENCELESS_NO_PROFILER is
 * defined, letting the compiler drop the instrumentation entirely).
 *
 * Cycles spent inside a speculative epoch are *staged* per core and
 * only merged into the main per-PC buckets when the epoch commits; a
 * rollback moves every staged cycle into the rollback-discarded bucket
 * of the PC that accrued it, so wrong-path work is charged to the code
 * that performed it, not hidden.
 *
 * The profiler itself stays independent of the ISA layer: the harness
 * passes label/symbol tables in as plain vectors at configure() time.
 */

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace fenceless::prof
{

/** Where a core's cycles went (the waste taxonomy). */
enum class CycleBucket : std::uint8_t
{
    Execute,           //!< retiring instructions (useful work)
    FenceStall,        //!< ordering stalls: fences, SC loads, atomics
    SbFull,            //!< store waiting for a store-buffer slot
    MissWait,          //!< waiting on the memory system
    RollbackDiscarded, //!< speculative work squashed by a rollback
    NumBuckets,
};

constexpr std::size_t num_buckets =
    static_cast<std::size_t>(CycleBucket::NumBuckets);

/**
 * Version of the --profile-out JSON layout (see stats_schema_version
 * for the bump policy).  History:
 *   1  first versioned layout (PR 9).
 */
constexpr int profile_schema_version = 1;

const char *cycleBucketName(CycleBucket b);

/** A code label for symbolization (instruction index -> name). */
struct CodeSym
{
    std::uint64_t pc;
    std::string name;
};

/** A data symbol for line symbolization (address range -> name). */
struct DataSym
{
    Addr addr;
    std::uint64_t size;
    std::string name;
};

/**
 * A rendered, mergeable profile snapshot.  All three views are keyed
 * by symbol strings in sorted maps, so merging per-configuration
 * profiles on the sweep's main thread -- in submission order -- yields
 * byte-identical output for any --jobs=N.
 */
struct Profile
{
    struct PcRow
    {
        std::uint64_t pc = 0;    //!< representative instruction index
        std::uint64_t execs = 0; //!< committed executions
        std::array<std::uint64_t, num_buckets> cycles{};

        /** Cycles in every bucket except Execute. */
        std::uint64_t wasted() const;
    };

    struct LineRow
    {
        Addr addr = 0;
        std::uint64_t touches = 0;
        std::uint64_t invalidations = 0;
        std::uint64_t ping_pongs = 0;
        std::uint32_t cores_touched = 0;
        /**
         * >= 2 cores touched the line but no 8-byte slot was touched
         * by more than one core: the contention is purely spatial.
         */
        bool false_sharing = false;
    };

    struct RollbackRow
    {
        std::string cause;      //!< rollbackCauseName()
        std::string victim;     //!< symbolized victim PC
        std::string line;       //!< symbolized triggering line
        std::uint64_t count = 0;
        std::uint64_t discarded_insts = 0;
    };

    std::map<std::string, PcRow> pcs;
    std::map<std::string, LineRow> lines;
    std::map<std::string, RollbackRow> rollbacks;

    bool
    empty() const
    {
        return pcs.empty() && lines.empty() && rollbacks.empty();
    }

    /** Sum @p other into this profile (rows with equal keys merge). */
    void merge(const Profile &other);

    /** All three views as one JSON document. */
    void writeJson(std::ostream &os) const;

    /**
     * Per-PC cycles as folded stacks ("frame;frame value" lines),
     * directly consumable by flamegraph.pl / speedscope / inferno.
     */
    void writeFolded(std::ostream &os) const;

    /** Human-readable top-N waste table ("the ten ways" summary). */
    void writeReport(std::ostream &os, std::size_t top_n = 10) const;
};

class WasteProfiler
{
  public:
#ifdef FENCELESS_NO_PROFILER
    static constexpr bool compiled_in = false;
#else
    static constexpr bool compiled_in = true;
#endif

    /**
     * Enable profiling for a system of @p num_pcs static instructions
     * and @p num_cores cores.  Must be called before the components
     * cache their ifEnabled() pointer (i.e. before construction).
     */
    void configure(std::size_t num_pcs, std::uint32_t num_cores,
                   unsigned block_size, std::vector<CodeSym> code_syms,
                   std::vector<DataSym> data_syms);

    bool enabled() const { return enabled_; }

    /**
     * The pointer hot paths cache: null when profiling is disabled (or
     * compiled out), so the per-site disabled cost is one null test.
     */
    WasteProfiler *
    ifEnabled()
    {
        return compiled_in && enabled_ ? this : nullptr;
    }

    // --- core-side hot path ---------------------------------------------

    /**
     * Charge @p cycles at @p pc to @p bucket.  With @p spec set the
     * charge is staged and only lands on commitEpoch(); rollbackEpoch()
     * converts it to RollbackDiscarded instead.
     */
    void
    addCycles(std::uint32_t core, std::uint64_t pc, CycleBucket b,
              std::uint64_t cycles, bool spec)
    {
        if (spec) {
            staged_[core].push_back(
                {pc, static_cast<std::uint8_t>(b), cycles});
            return;
        }
        pc_cycles_[pc * num_buckets + static_cast<std::size_t>(b)] +=
            cycles;
        if (b == CycleBucket::Execute)
            ++pc_execs_[pc];
    }

    // --- memory-side hot path -------------------------------------------

    /** A load/store/AMO from @p core hit bytes of a cache line. */
    void
    touchLine(std::uint32_t core, Addr line, unsigned offset,
              unsigned size)
    {
        LineData &ld = lineData(core, line);
        ++ld.touches;
        const unsigned lo = offset >> 3;
        const unsigned hi = (offset + size - 1) >> 3;
        ld.core_slots[core] |=
            (((2ull << (hi - lo)) - 1ull) << lo);
    }

    // --- coherence events (rare) ----------------------------------------

    /** An Inv probe arrived for @p line. */
    void lineInvalidated(Addr line);

    /**
     * Ownership or access to @p line moved between cores at the
     * directory (FwdGetS/FwdGetM/Inv-broadcast service).
     */
    void linePingPong(Addr line);

    // --- epoch lifecycle (called by the speculation controller) ---------

    /** The core's epoch committed: staged charges become real. */
    void commitEpoch(std::uint32_t core);

    /**
     * The core's epoch rolled back: staged charges become
     * RollbackDiscarded, and one rollback record is accumulated under
     * (@p cause, @p victim_pc, @p trigger_line).
     */
    void rollbackEpoch(std::uint32_t core, const char *cause,
                       Addr trigger_line, std::uint64_t victim_pc,
                       std::uint64_t discarded_insts);

    // --- snapshot --------------------------------------------------------

    /**
     * Render the accumulated data as a symbolized, mergeable Profile.
     * A non-empty @p scope prefixes every key ("scope;symbol"), so
     * profiles of different configurations merge without colliding.
     */
    Profile snapshot(const std::string &scope = "") const;

    /**
     * Sum @p other's raw counters into this profiler.  Both must be
     * configured with identical dimensions.  Used by a sharded System
     * to fold per-shard profilers into one before snapshotting: every
     * counter is an integer, so the fold is exact and the merged state
     * equals what a single-shard run would have accumulated.
     */
    void absorb(const WasteProfiler &other);

  private:
    struct Staged
    {
        std::uint64_t pc;
        std::uint8_t bucket;
        std::uint64_t cycles;
    };

    struct LineData
    {
        std::uint64_t touches = 0;
        std::uint64_t invalidations = 0;
        std::uint64_t ping_pongs = 0;
        std::vector<std::uint64_t> core_slots; //!< 8B-slot masks per core
    };

    LineData &
    lineData(std::uint32_t core, Addr line)
    {
        auto &[cached_line, cached] = line_cache_[core];
        if (cached && cached_line == line)
            return *cached;
        LineData &ld = lineDataSlow(line);
        cached_line = line;
        cached = &ld;
        return ld;
    }

    LineData &lineDataSlow(Addr line);

    std::string symbolizePc(std::uint64_t pc) const;
    std::string symbolizeLine(Addr line) const;

    bool enabled_ = false;
    std::uint32_t num_cores_ = 0;
    std::vector<std::uint64_t> pc_cycles_; //!< [pc * num_buckets + b]
    std::vector<std::uint64_t> pc_execs_;
    std::vector<std::vector<Staged>> staged_;          //!< per core
    std::unordered_map<Addr, LineData> lines_;
    std::vector<std::pair<Addr, LineData *>> line_cache_; //!< per core
    std::map<std::tuple<std::string, std::uint64_t, Addr>,
             std::pair<std::uint64_t, std::uint64_t>>
        rollbacks_; //!< (cause, victim pc, line) -> (count, discarded)
    std::vector<CodeSym> code_syms_; //!< sorted by pc
    std::vector<DataSym> data_syms_; //!< sorted by addr
};

} // namespace fenceless::prof
