#include "sim/blackbox.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace fenceless::trace
{

std::vector<TraceRecord>
blackboxRecords(const TraceSink &sink)
{
    // Gather every surviving ring slot with its global push sequence,
    // then sort by that sequence: a total order over all components
    // that is stable across identical runs (ticks alone would leave
    // same-tick events from different components unordered).
    std::vector<RingEntry> entries;
    for (std::size_t c = 0; c < sink.components().size(); ++c) {
        sink.forEachRingEntry(
            static_cast<std::uint16_t>(c),
            [&](const RingEntry &e) { entries.push_back(e); });
    }
    std::sort(entries.begin(), entries.end(),
              [](const RingEntry &a, const RingEntry &b) {
                  return a.seq < b.seq;
              });
    std::vector<TraceRecord> out;
    out.reserve(entries.size());
    for (const RingEntry &e : entries)
        out.push_back(e.rec);
    return out;
}

void
writeBlackboxJson(std::ostream &os, const TraceSink &sink,
                  const std::string &provenance_json)
{
    const auto records = blackboxRecords(sink);
    // Events pushed but since overwritten: report them as dropped so
    // the dump is honest about being a tail, not the full history.
    const std::uint64_t overwritten =
        sink.ringPushes() - static_cast<std::uint64_t>(records.size());
    sink.exportChromeJsonFor(os, records, overwritten, provenance_json);
}

namespace
{

void
writeOne(std::ostream &os, const TraceSink &sink, const TraceRecord &r)
{
    const auto kind = static_cast<EventKind>(r.kind);
    os << "    @" << std::setw(12) << r.tick << "  "
       << eventKindName(kind);
    switch (kind) {
      case EventKind::CoreCommit:
        os << " insts=" << r.a0;
        break;
      case EventKind::CoreStall:
        os << " begin=" << r.a0 << " reason="
           << sink.auxName(kind, r.aux);
        break;
      case EventKind::SpecEpoch:
        os << " begin=" << r.a0 << " insts=" << r.a1 << " outcome="
           << (r.aux ? "commit" : "rollback");
        break;
      case EventKind::SpecRollback:
        os << " cause=" << sink.auxName(kind, r.aux)
           << " discarded=" << r.a1;
        break;
      case EventKind::SbOccupancy:
        os << " entries=" << r.a0;
        break;
      case EventKind::ReqIssue:
      case EventKind::ReqFill:
        os << " req=" << r.a0 << " block=0x" << std::hex << r.a1
           << std::dec;
        break;
      case EventKind::ReqDirIngress:
      case EventKind::ReqDirDone:
        os << " req=" << r.a0 << " a1=" << r.a1;
        break;
      case EventKind::NetHop:
        os << " req=" << r.a0 << " latency=" << r.a1 << " msg="
           << sink.auxName(kind, r.aux);
        break;
      case EventKind::NumKinds:
        break;
    }
    os << "\n";
}

} // namespace

void
writeBlackboxTail(std::ostream &os, const TraceSink &sink,
                  std::size_t per_component)
{
    os << "flight recorder tail (last " << per_component
       << " events per component, " << sink.ringPushes()
       << " recorded total):\n";
    for (std::size_t c = 0; c < sink.components().size(); ++c) {
        std::vector<TraceRecord> tail;
        sink.forEachRingEntry(
            static_cast<std::uint16_t>(c),
            [&](const RingEntry &e) { tail.push_back(e.rec); });
        if (tail.size() > per_component)
            tail.erase(tail.begin(),
                       tail.end() -
                           static_cast<std::ptrdiff_t>(per_component));
        os << "  " << sink.components()[c];
        if (tail.empty()) {
            os << ": (no events)\n";
            continue;
        }
        os << ":\n";
        for (const TraceRecord &r : tail)
            writeOne(os, sink, r);
    }
}

} // namespace fenceless::trace
