#include "sim/blackbox.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace fenceless::trace
{

namespace
{

/**
 * Gather one component's surviving ring entries across sinks, oldest
 * first.  Exactly one sink records for any given component (components
 * are owned by one shard), so appending in sink order is the
 * per-component stream regardless of which sink holds it.
 */
void
gatherComponent(std::uint16_t comp,
                const std::vector<const TraceSink *> &sinks,
                std::vector<TraceRecord> &out)
{
    for (const TraceSink *s : sinks) {
        if (comp >= s->components().size())
            continue;
        s->forEachRingEntry(
            comp, [&](const RingEntry &e) { out.push_back(e.rec); });
    }
}

} // namespace

std::vector<TraceRecord>
blackboxRecordsMerged(const TraceSink &meta,
                      const std::vector<const TraceSink *> &sinks)
{
    // Canonical order: gather per component (global component-id
    // order), then stable-sort by tick.  Per-component streams are
    // already tick-monotone, so this is a time merge where same-tick
    // records from different components land in component-id order --
    // a rule that does not depend on how many host threads recorded
    // the events, which keeps sharded dumps byte-identical to the
    // single-threaded reference.
    std::vector<TraceRecord> out;
    for (std::size_t c = 0; c < meta.components().size(); ++c)
        gatherComponent(static_cast<std::uint16_t>(c), sinks, out);
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.tick < b.tick;
                     });
    return out;
}

std::vector<TraceRecord>
blackboxRecords(const TraceSink &sink)
{
    return blackboxRecordsMerged(sink, {&sink});
}

void
writeBlackboxJsonMerged(std::ostream &os, const TraceSink &meta,
                        const std::vector<const TraceSink *> &sinks,
                        const std::string &provenance_json)
{
    const auto records = blackboxRecordsMerged(meta, sinks);
    // Events pushed but since overwritten: report them as dropped so
    // the dump is honest about being a tail, not the full history.
    std::uint64_t pushes = 0;
    for (const TraceSink *s : sinks)
        pushes += s->ringPushes();
    const std::uint64_t overwritten =
        pushes - static_cast<std::uint64_t>(records.size());
    meta.exportChromeJsonFor(os, records, overwritten, provenance_json);
}

void
writeBlackboxJson(std::ostream &os, const TraceSink &sink,
                  const std::string &provenance_json)
{
    writeBlackboxJsonMerged(os, sink, {&sink}, provenance_json);
}

namespace
{

void
writeOne(std::ostream &os, const TraceSink &sink, const TraceRecord &r)
{
    const auto kind = static_cast<EventKind>(r.kind);
    os << "    @" << std::setw(12) << r.tick << "  "
       << eventKindName(kind);
    switch (kind) {
      case EventKind::CoreCommit:
        os << " insts=" << r.a0;
        break;
      case EventKind::CoreStall:
        os << " begin=" << r.a0 << " reason="
           << sink.auxName(kind, r.aux);
        break;
      case EventKind::SpecEpoch:
        os << " begin=" << r.a0 << " insts=" << r.a1 << " outcome="
           << (r.aux ? "commit" : "rollback");
        break;
      case EventKind::SpecRollback:
        os << " cause=" << sink.auxName(kind, r.aux)
           << " discarded=" << r.a1;
        break;
      case EventKind::SbOccupancy:
        os << " entries=" << r.a0;
        break;
      case EventKind::ReqIssue:
      case EventKind::ReqFill:
        os << " req=" << r.a0 << " block=0x" << std::hex << r.a1
           << std::dec;
        break;
      case EventKind::ReqDirIngress:
      case EventKind::ReqDirDone:
        os << " req=" << r.a0 << " a1=" << r.a1;
        break;
      case EventKind::NetHop:
        os << " req=" << r.a0 << " latency=" << r.a1 << " msg="
           << sink.auxName(kind, r.aux);
        break;
      case EventKind::NumKinds:
        break;
    }
    os << "\n";
}

} // namespace

void
writeBlackboxTailMerged(std::ostream &os, const TraceSink &meta,
                        const std::vector<const TraceSink *> &sinks,
                        std::size_t per_component)
{
    std::uint64_t pushes = 0;
    for (const TraceSink *s : sinks)
        pushes += s->ringPushes();
    os << "flight recorder tail (last " << per_component
       << " events per component, " << pushes << " recorded total):\n";
    for (std::size_t c = 0; c < meta.components().size(); ++c) {
        std::vector<TraceRecord> tail;
        gatherComponent(static_cast<std::uint16_t>(c), sinks, tail);
        if (tail.size() > per_component)
            tail.erase(tail.begin(),
                       tail.end() -
                           static_cast<std::ptrdiff_t>(per_component));
        os << "  " << meta.components()[c];
        if (tail.empty()) {
            os << ": (no events)\n";
            continue;
        }
        os << ":\n";
        for (const TraceRecord &r : tail)
            writeOne(os, meta, r);
    }
}

void
writeBlackboxTail(std::ostream &os, const TraceSink &sink,
                  std::size_t per_component)
{
    writeBlackboxTailMerged(os, sink, {&sink}, per_component);
}

} // namespace fenceless::trace
