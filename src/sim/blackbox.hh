/**
 * @file
 * Flight-recorder ("blackbox") dumps.
 *
 * The TraceSink keeps a small always-on ring of the last N structured
 * events per component (see TraceSink::configureRing).  This module is
 * the dump side: it merges the per-component rings into one totally
 * ordered record stream (by global push sequence, so the merge is
 * deterministic even when several components record at the same tick)
 * and writes it out two ways:
 *
 *  - writeBlackboxJson(): the merged tail in the exact Chrome
 *    trace-event format `--trace-out` produces, so an incident dump
 *    loads in ui.perfetto.dev and replays through the same tooling as
 *    a full trace.
 *  - writeBlackboxTail(): a human-readable per-component tail for
 *    terminals and dossiers -- the last few events of every component
 *    with decoded payloads.
 *
 * Dumps happen on assert/panic, postcondition failure, watchdog abort,
 * or on demand (`--blackbox-out`); see harness::System.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/trace_sink.hh"

namespace fenceless::trace
{

/**
 * Default ring mask: everything except per-instruction commit counters.
 * CoreCommit fires once per retired instruction -- recording it would
 * put a ring store on the single hottest path in the simulator; the
 * stall/spec/request/network kinds that matter for incident forensics
 * fire orders of magnitude less often, which is how the always-on
 * recorder stays within its <=3% full-system budget.
 */
inline constexpr std::uint32_t default_blackbox_flags =
    static_cast<std::uint32_t>(Flag::All) &
    ~static_cast<std::uint32_t>(Flag::Core);

/**
 * The flight-recorder contents as one stream, merged across components
 * in push order (oldest surviving event first).
 */
std::vector<TraceRecord> blackboxRecords(const TraceSink &sink);

/**
 * Write the merged ring tail as a Chrome trace-event JSON document --
 * the same format as TraceSink::exportChromeJson, so the dump is a
 * valid `--trace-out` file.  @p provenance_json (may be empty) is
 * embedded as a top-level "provenance" key.
 */
void writeBlackboxJson(std::ostream &os, const TraceSink &sink,
                       const std::string &provenance_json);

/**
 * Write a human-readable tail: for each component, the last
 * @p per_component ring events with decoded arguments.  Used inside
 * stall dossiers and panic dumps.
 */
void writeBlackboxTail(std::ostream &os, const TraceSink &sink,
                       std::size_t per_component = 8);

} // namespace fenceless::trace
