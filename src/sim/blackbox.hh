/**
 * @file
 * Flight-recorder ("blackbox") dumps.
 *
 * The TraceSink keeps a small always-on ring of the last N structured
 * events per component (see TraceSink::configureRing).  This module is
 * the dump side: it merges the per-component rings into one totally
 * ordered record stream and writes it out two ways.
 *
 * Merge order is *canonical*, not capture order: records are gathered
 * per component (in global component-id order) and stable-sorted by
 * tick.  Per-component ring order is already tick-monotone, so the
 * result is a proper time merge in which same-tick records from
 * different components appear in component-id order.  That rule is
 * independent of how many host threads produced the records, which is
 * what makes a sharded run's `--blackbox-out` byte-identical to the
 * single-threaded reference: the multi-sink variants below gather each
 * component's ring from whichever shard sink owns it (component ids
 * are global across shard sinks) and apply the same rule.
 *
 * The two output forms:
 *
 *  - writeBlackboxJson(): the merged tail in the exact Chrome
 *    trace-event format `--trace-out` produces, so an incident dump
 *    loads in ui.perfetto.dev and replays through the same tooling as
 *    a full trace.
 *  - writeBlackboxTail(): a human-readable per-component tail for
 *    terminals and dossiers -- the last few events of every component
 *    with decoded payloads.
 *
 * Dumps happen on assert/panic, postcondition failure, watchdog abort,
 * or on demand (`--blackbox-out`); see harness::System.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/trace_sink.hh"

namespace fenceless::trace
{

/**
 * Default ring mask: everything except per-instruction commit counters
 * and host-side telemetry.  CoreCommit fires once per retired
 * instruction -- recording it would put a ring store on the single
 * hottest path in the simulator; the stall/spec/request/network kinds
 * that matter for incident forensics fire orders of magnitude less
 * often, which is how the always-on recorder stays within its <=3%
 * full-system budget.  Host records carry wall-clock payloads that
 * vary run to run, so keeping them out preserves the blackbox dump's
 * byte-identity across shard counts even with telemetry enabled.
 */
inline constexpr std::uint32_t default_blackbox_flags =
    static_cast<std::uint32_t>(Flag::All) &
    ~static_cast<std::uint32_t>(Flag::Core) &
    ~static_cast<std::uint32_t>(Flag::Host);

/**
 * The flight-recorder contents as one canonically ordered stream (see
 * the file comment for the merge rule).
 */
std::vector<TraceRecord> blackboxRecords(const TraceSink &sink);

/**
 * Multi-sink form for sharded systems: each component's ring entries
 * are gathered from every sink in @p sinks (exactly one shard sink
 * records for any given component, so the union is the per-component
 * stream), then merged canonically.  @p meta names the components;
 * every sink must share its component-id space (the System guarantees
 * this by pre-registering the global component list into each sink).
 */
std::vector<TraceRecord>
blackboxRecordsMerged(const TraceSink &meta,
                      const std::vector<const TraceSink *> &sinks);

/**
 * Write the merged ring tail as a Chrome trace-event JSON document --
 * the same format as TraceSink::exportChromeJson, so the dump is a
 * valid `--trace-out` file.  @p provenance_json (may be empty) is
 * embedded as a top-level "provenance" key.
 */
void writeBlackboxJson(std::ostream &os, const TraceSink &sink,
                       const std::string &provenance_json);

/** Multi-sink form of writeBlackboxJson (sharded systems). */
void writeBlackboxJsonMerged(std::ostream &os, const TraceSink &meta,
                             const std::vector<const TraceSink *> &sinks,
                             const std::string &provenance_json);

/**
 * Write a human-readable tail: for each component, the last
 * @p per_component ring events with decoded arguments.  Used inside
 * stall dossiers and panic dumps.
 */
void writeBlackboxTail(std::ostream &os, const TraceSink &sink,
                       std::size_t per_component = 8);

/** Multi-sink form of writeBlackboxTail (sharded systems). */
void writeBlackboxTailMerged(std::ostream &os, const TraceSink &meta,
                             const std::vector<const TraceSink *> &sinks,
                             std::size_t per_component = 8);

} // namespace fenceless::trace
