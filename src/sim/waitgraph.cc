#include "sim/waitgraph.hh"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

namespace fenceless::sim
{

std::string
WaitNode::toString() const
{
    std::ostringstream os;
    switch (kind) {
      case Kind::Core:
        os << "core_" << id;
        break;
      case Kind::StoreBuffer:
        os << "core_" << id << ".sb";
        break;
      case Kind::SpecEpoch:
        os << "core_" << id << ".spec";
        break;
      case Kind::Mshr:
        os << "l1_" << id << ".mshr[0x" << std::hex << addr << "]";
        break;
      case Kind::DirTxn:
        if (id == 0)
            os << "l2dir.txn[0x" << std::hex << addr << "]";
        else
            os << "dir.bank" << (id - 1) << ".txn[0x" << std::hex << addr
               << "]";
        break;
      case Kind::Directory:
        if (id == 0)
            os << "l2dir";
        else
            os << "dir.bank" << (id - 1);
        break;
      case Kind::Channel:
        os << "net[" << (id >> 8) << "->" << (id & 0xff) << "]";
        break;
      case Kind::Dram:
        if (id == 0)
            os << "dram";
        else
            os << "dram.chan" << (id - 1);
        break;
    }
    return os.str();
}

std::vector<std::vector<WaitNode>>
WaitGraph::cycles() const
{
    // Index the distinct nodes in sorted order so enumeration is
    // independent of the order edges were registered in.
    std::map<WaitNode, std::size_t> index;
    std::vector<WaitNode> nodes;
    for (const auto &e : edges_) {
        for (const WaitNode &n : {e.from, e.to}) {
            if (index.emplace(n, 0).second)
                nodes.push_back(n);
        }
    }
    std::sort(nodes.begin(), nodes.end());
    for (std::size_t i = 0; i < nodes.size(); ++i)
        index[nodes[i]] = i;

    std::vector<std::vector<std::size_t>> adj(nodes.size());
    for (const auto &e : edges_)
        adj[index[e.from]].push_back(index[e.to]);
    for (auto &a : adj) {
        std::sort(a.begin(), a.end());
        a.erase(std::unique(a.begin(), a.end()), a.end());
    }

    // Enumerate elementary cycles: DFS from each root in sorted order,
    // restricted to nodes >= root, so every cycle is found exactly once
    // and rooted at its smallest node (canonical rotation for free).
    std::vector<std::vector<WaitNode>> out;
    std::vector<std::size_t> path;
    std::vector<char> on_path(nodes.size(), 0);

    auto dfs = [&](auto &&self, std::size_t root,
                   std::size_t at) -> void {
        path.push_back(at);
        on_path[at] = 1;
        for (std::size_t next : adj[at]) {
            if (next == root) {
                std::vector<WaitNode> cyc;
                for (std::size_t i : path)
                    cyc.push_back(nodes[i]);
                out.push_back(std::move(cyc));
            } else if (next > root && !on_path[next]) {
                self(self, root, next);
            }
        }
        on_path[at] = 0;
        path.pop_back();
    };
    for (std::size_t root = 0; root < nodes.size(); ++root)
        dfs(dfs, root, root);

    std::sort(out.begin(), out.end());
    return out;
}

void
WaitGraph::print(std::ostream &os) const
{
    if (edges_.empty()) {
        os << "wait-for graph: empty (no component reports a blocked "
              "agent)\n";
        return;
    }
    os << "wait-for graph (" << edges_.size() << " edges):\n";
    for (const auto &e : edges_) {
        os << "  " << e.from.toString() << " -> " << e.to.toString()
           << "  [" << e.label << "]\n";
    }
    const auto cyc = cycles();
    if (cyc.empty()) {
        os << "no wait-for cycle: the hang is not a resource deadlock "
              "(suspect a lost message or an unscheduled event)\n";
        return;
    }
    for (const auto &c : cyc) {
        os << "DEADLOCK CYCLE:";
        for (const auto &n : c)
            os << " " << n.toString() << " ->";
        os << " " << c.front().toString() << "\n";
    }
}

} // namespace fenceless::sim
