#include "sim/trace_sink.hh"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <ostream>
#include <utility>

#include "base/logging.hh"

namespace fenceless::trace
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::CoreCommit: return "instret";
      case EventKind::CoreStall: return "stall";
      case EventKind::SpecEpoch: return "spec_epoch";
      case EventKind::SpecRollback: return "rollback";
      case EventKind::SbOccupancy: return "sb_occupancy";
      case EventKind::ReqIssue: return "req_issue";
      case EventKind::ReqDirIngress: return "dir_ingress";
      case EventKind::ReqDirDone: return "dir_done";
      case EventKind::ReqFill: return "l1_fill";
      case EventKind::NetHop: return "net_hop";
      case EventKind::HostPhase: return "host_phase";
      case EventKind::HostCoord: return "host_coord";
      case EventKind::ReqStage: return "req_stage";
      case EventKind::NumKinds: break;
    }
    return "?";
}

std::uint16_t
TraceSink::registerComponent(const std::string &name)
{
    // Idempotent by name: a sharded System pre-registers the global
    // component list into every shard's sink (in one fixed order), so
    // the later registration by the component itself must return the
    // same -- now globally meaningful -- id instead of a duplicate
    // track.
    for (std::size_t i = 0; i < components_.size(); ++i) {
        if (components_[i] == name)
            return static_cast<std::uint16_t>(i);
    }
    components_.push_back(name);
    ring_heads_.push_back(0);
    if (ring_capacity_ > 0)
        ring_.resize(components_.size() * ring_capacity_);
    return static_cast<std::uint16_t>(components_.size() - 1);
}

void
TraceSink::adoptAuxNames(const TraceSink &other)
{
    for (std::size_t k = 0; k < other.aux_names_.size(); ++k) {
        if (other.aux_names_[k].empty())
            continue;
        if (aux_names_.size() <= k)
            aux_names_.resize(k + 1);
        if (aux_names_[k].empty())
            aux_names_[k] = other.aux_names_[k];
    }
}

void
TraceSink::configureRing(std::size_t records_per_comp,
                         std::uint32_t flags)
{
    if (records_per_comp == 0 || flags == 0) {
        ring_flags_ = 0;
        ring_capacity_ = 0;
        ring_.clear();
        return;
    }
    std::size_t cap = 1;
    while (cap < records_per_comp)
        cap <<= 1;
    ring_capacity_ = cap;
    ring_flags_ = flags;
    ring_.assign(components_.size() * ring_capacity_, RingEntry{});
    std::fill(ring_heads_.begin(), ring_heads_.end(), 0);
    ring_seq_ = 0;
}

void
TraceSink::setAuxNames(EventKind kind, std::vector<std::string> names)
{
    const auto idx = static_cast<std::size_t>(kind);
    if (aux_names_.size() <= idx)
        aux_names_.resize(idx + 1);
    aux_names_[idx] = std::move(names);
}

const std::string &
TraceSink::auxName(EventKind kind, std::uint32_t aux) const
{
    static const std::string empty;
    const auto idx = static_cast<std::size_t>(kind);
    if (idx >= aux_names_.size() || aux >= aux_names_[idx].size())
        return empty;
    return aux_names_[idx][aux];
}

void
TraceSink::addChunk()
{
    chunks_.emplace_back();
    chunks_.back().reserve(chunk_records);
}

void
TraceSink::clear()
{
    chunks_.clear();
    size_ = 0;
    dropped_ = 0;
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

namespace
{

/** Comma-separated event stream writer (no trailing comma juggling). */
class EventWriter
{
  public:
    explicit EventWriter(std::ostream &os) : os_(os) {}

    std::ostream &
    next()
    {
        os_ << (first_ ? "\n    " : ",\n    ");
        first_ = false;
        return os_;
    }

  private:
    std::ostream &os_;
    bool first_ = true;
};

void
writeCommon(std::ostream &os, const char *name, const char *ph,
            Tick ts, std::uint16_t tid)
{
    os << "{\"name\": \"" << name << "\", \"ph\": \"" << ph
       << "\", \"ts\": " << ts << ", \"pid\": 0, \"tid\": " << tid;
}

using RecordVisitor = std::function<void(const TraceRecord &)>;

/**
 * The exporter body, parameterised over the record source so the full
 * chunked trace and the merged flight-recorder rings share one format
 * (a blackbox dump is a valid --trace-out file).
 */
void
writeChromeJson(std::ostream &os, const TraceSink &sink,
                const std::function<void(const RecordVisitor &)> &each,
                std::uint64_t dropped,
                const std::string &provenance_json)
{
    if (!provenance_json.empty())
        os << "{\"provenance\": " << provenance_json
           << ",\n \"traceEvents\": [";
    else
        os << "{\"traceEvents\": [";
    EventWriter w(os);

    // Track names.  One Chrome "thread" per simulated component.
    w.next() << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0"
             << ", \"args\": {\"name\": \"fenceless\"}}";
    for (std::size_t i = 0; i < sink.components().size(); ++i) {
        w.next() << "{\"name\": \"thread_name\", \"ph\": \"M\", "
                 << "\"pid\": 0, \"tid\": " << i
                 << ", \"args\": {\"name\": \"" << sink.components()[i]
                 << "\"}}";
    }
    if (dropped) {
        w.next() << "{\"name\": \"dropped_events\", \"ph\": \"M\", "
                 << "\"pid\": 0, \"args\": {\"count\": " << dropped
                 << "}}";
    }

    // Request-lifetime events are grouped per request id so the export
    // can chain them with flow arrows; everything else streams out in
    // recording order.
    std::map<std::uint64_t, std::vector<const TraceRecord *>> flows;

    // Host quantum phases are grouped per (shard track, quantum start):
    // a quantum's busy/barrier/drain wall-clock spans are scaled into
    // its tick window so the host timeline lines up with the guest
    // tracks (ticks are the shared x-axis).
    std::map<std::pair<std::uint16_t, Tick>,
             std::vector<const TraceRecord *>> host_quanta;

    // Sampled request-span stages (synthesized from the reqtrace
    // sinks) are grouped per request so each span renders as a chain
    // of stage slices connected by its own flow track.
    std::map<std::uint64_t, std::vector<const TraceRecord *>> spans;

    each([&](const TraceRecord &r) {
        const auto kind = static_cast<EventKind>(r.kind);
        const char *name = eventKindName(kind);
        switch (kind) {
          case EventKind::CoreCommit:
            writeCommon(w.next(), name, "C", r.tick, r.comp);
            os << ", \"args\": {\"insts\": " << r.a0 << "}}";
            break;

          case EventKind::SbOccupancy:
            writeCommon(w.next(), name, "C", r.tick, r.comp);
            os << ", \"args\": {\"entries\": " << r.a0 << "}}";
            break;

          case EventKind::CoreStall: {
            // Recorded once at stall end; a0 carries the begin tick.
            const Tick dur = r.tick > r.a0 ? r.tick - r.a0 : 1;
            writeCommon(w.next(), name, "X", r.a0, r.comp);
            os << ", \"dur\": " << dur << ", \"args\": {\"reason\": \""
               << sink.auxName(kind, r.aux) << "\"}}";
            break;
          }

          case EventKind::SpecEpoch: {
            const Tick dur = r.tick > r.a0 ? r.tick - r.a0 : 1;
            writeCommon(w.next(), name, "X", r.a0, r.comp);
            os << ", \"dur\": " << dur
               << ", \"args\": {\"outcome\": \""
               << (r.aux ? "commit" : "rollback")
               << "\", \"insts\": " << r.a1 << "}}";
            break;
          }

          case EventKind::SpecRollback:
            writeCommon(w.next(), name, "i", r.tick, r.comp);
            os << ", \"s\": \"t\", \"args\": {\"cause\": \""
               << sink.auxName(kind, r.aux) << "\", \"discarded_insts\": "
               << r.a1 << "}}";
            break;

          case EventKind::NetHop:
            writeCommon(w.next(), name, "i", r.tick, r.comp);
            os << ", \"s\": \"t\", \"args\": {\"req\": " << r.a0
               << ", \"latency\": " << r.a1 << ", \"msg\": \""
               << sink.auxName(kind, r.aux) << "\"}}";
            break;

          case EventKind::ReqIssue:
          case EventKind::ReqDirIngress:
          case EventKind::ReqDirDone:
          case EventKind::ReqFill:
            if (r.a0 != 0)
                flows[r.a0].push_back(&r);
            break;

          case EventKind::HostPhase:
            if (r.a1 != 0)
                host_quanta[{r.comp, r.tick}].push_back(&r);
            break;

          case EventKind::ReqStage:
            if (r.a0 != 0)
                spans[r.a0].push_back(&r);
            break;

          case EventKind::HostCoord:
            writeCommon(w.next(), name, "i", r.tick, r.comp);
            os << ", \"s\": \"t\", \"args\": {\"ns\": " << r.a1
               << ", \"cause\": \"" << sink.auxName(kind, r.aux)
               << "\"}}";
            break;

          case EventKind::NumKinds:
            break;
        }
    });

    // Lay each quantum's host phases end to end inside [start, end),
    // sized proportionally to their wall-clock share.  Fractional ticks
    // are formatted with fixed precision so the bytes are identical
    // across shard counts and platforms.
    for (const auto &[key, phases] : host_quanta) {
        const Tick qstart = key.second;
        const Tick qend = phases.front()->a0;
        const double window =
            qend > qstart ? static_cast<double>(qend - qstart) : 1.0;
        std::uint64_t total_ns = 0;
        for (const TraceRecord *r : phases)
            total_ns += r->a1;
        if (total_ns == 0)
            continue;
        double cursor = static_cast<double>(qstart);
        for (const TraceRecord *r : phases) {
            const double dur = window * static_cast<double>(r->a1)
                               / static_cast<double>(total_ns);
            static const char *const phase_names[] = {
                "host_busy", "host_barrier", "host_drain"};
            const char *pname =
                r->aux < 3 ? phase_names[r->aux] : "host_phase";
            char ts_buf[32], dur_buf[32];
            std::snprintf(ts_buf, sizeof(ts_buf), "%.3f", cursor);
            std::snprintf(dur_buf, sizeof(dur_buf), "%.3f", dur);
            w.next() << "{\"name\": \"" << pname
                     << "\", \"ph\": \"X\", \"ts\": " << ts_buf
                     << ", \"pid\": 0, \"tid\": " << key.first
                     << ", \"dur\": " << dur_buf
                     << ", \"args\": {\"ns\": " << r->a1 << "}}";
            cursor += dur;
        }
    }

    // One short slice per request phase, chained by flow events: the
    // "s"/"t"/"f" triple makes Perfetto draw arrows L1 -> directory ->
    // L1 for each traced miss.
    for (auto &[req_id, events] : flows) {
        std::stable_sort(events.begin(), events.end(),
                         [](const TraceRecord *a, const TraceRecord *b) {
                             return a->tick < b->tick;
                         });
        for (std::size_t i = 0; i < events.size(); ++i) {
            const TraceRecord &r = *events[i];
            const auto kind = static_cast<EventKind>(r.kind);
            writeCommon(w.next(), eventKindName(kind), "X", r.tick,
                        r.comp);
            os << ", \"dur\": 1, \"args\": {\"req\": " << req_id;
            if (kind == EventKind::ReqIssue ||
                kind == EventKind::ReqFill) {
                os << ", \"block\": " << r.a1;
            }
            os << "}}";

            if (events.size() < 2)
                continue;
            const char *ph = i == 0 ? "s"
                             : i + 1 == events.size() ? "f" : "t";
            writeCommon(w.next(), "req", ph, r.tick, r.comp);
            os << ", \"cat\": \"req\", \"id\": " << req_id;
            if (*ph == 'f')
                os << ", \"bp\": \"e\"";
            os << "}";
        }
    }

    // Sampled request spans: one named slice per tiled stage on the
    // component that recorded it, chained by a per-request flow (cat
    // "span") so Perfetto draws the request's path through the memory
    // system as an arrow chain under the existing guest tracks.
    for (auto &[req_id, stages] : spans) {
        std::stable_sort(stages.begin(), stages.end(),
                         [](const TraceRecord *a, const TraceRecord *b) {
                             return a->tick < b->tick;
                         });
        for (std::size_t i = 0; i < stages.size(); ++i) {
            const TraceRecord &r = *stages[i];
            const std::string &sname =
                sink.auxName(EventKind::ReqStage, r.aux);
            writeCommon(w.next(),
                        sname.empty() ? "req_stage" : sname.c_str(),
                        "X", r.tick, r.comp);
            os << ", \"dur\": " << (r.a1 ? r.a1 : 1)
               << ", \"args\": {\"req\": " << req_id
               << ", \"cycles\": " << r.a1 << "}}";

            if (stages.size() < 2)
                continue;
            const char *ph = i == 0 ? "s"
                             : i + 1 == stages.size() ? "f" : "t";
            writeCommon(w.next(), "span", ph, r.tick, r.comp);
            os << ", \"cat\": \"span\", \"id\": " << req_id;
            if (*ph == 'f')
                os << ", \"bp\": \"e\"";
            os << "}";
        }
    }

    os << "\n  ],\n  \"displayTimeUnit\": \"ns\"\n}\n";
}

} // namespace

void
TraceSink::exportChromeJson(std::ostream &os,
                            const std::string &provenance_json) const
{
    writeChromeJson(
        os, *this, [this](const RecordVisitor &fn) { forEach(fn); },
        dropped_, provenance_json);
}

void
TraceSink::exportChromeJsonFor(std::ostream &os,
                               const std::vector<TraceRecord> &records,
                               std::uint64_t dropped,
                               const std::string &provenance_json) const
{
    writeChromeJson(
        os, *this,
        [&records](const RecordVisitor &fn) {
            for (const TraceRecord &r : records)
                fn(r);
        },
        dropped, provenance_json);
}

} // namespace fenceless::trace
