#include "sim/eventq.hh"

namespace fenceless::sim
{

namespace
{

/** A self-deleting event wrapping a callable. */
class OneShotEvent : public Event
{
  public:
    explicit OneShotEvent(std::function<void()> fn) : fn_(std::move(fn)) {}

    void
    process() override
    {
        fn_();
        delete this;
    }

    std::string name() const override { return "one-shot"; }

  private:
    std::function<void()> fn_;
};

} // namespace

void
scheduleOneShot(EventQueue &eq, Tick when, std::function<void()> fn)
{
    eq.schedule(new OneShotEvent(std::move(fn)), when);
}

Event::~Event()
{
    // An event must not be destroyed while scheduled: the queue would be
    // left holding a dangling pointer.  Components must deschedule their
    // events (or drain the queue) before tearing down.
    flAssert(!scheduled_, "event '", name(), "' destroyed while scheduled");
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    flAssert(ev != nullptr, "scheduling a null event");
    flAssert(!ev->scheduled_, "event '", ev->name(),
             "' is already scheduled");
    flAssert(when >= cur_tick_, "event '", ev->name(),
             "' scheduled in the past (", when, " < ", cur_tick_, ")");

    ev->when_ = when;
    ev->stamp_ = next_stamp_++;
    ev->scheduled_ = true;
    queue_.push(Entry{when, ev->priority_, ev->stamp_, ev});
    ++num_scheduled_;
}

void
EventQueue::deschedule(Event *ev)
{
    flAssert(ev != nullptr, "descheduling a null event");
    if (!ev->scheduled_)
        return;
    // Lazy removal: the stale heap entry is skipped when popped.
    ev->scheduled_ = false;
    --num_scheduled_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    deschedule(ev);
    schedule(ev, when);
}

Event *
EventQueue::popLive()
{
    while (!queue_.empty()) {
        const Entry top = queue_.top();
        queue_.pop();
        Event *ev = top.event;
        // An entry is live iff the event is still scheduled *and* this is
        // the scheduling that created the entry (stamp matches).
        if (ev->scheduled_ && ev->stamp_ == top.stamp) {
            flAssert(top.when >= cur_tick_, "event time went backwards");
            cur_tick_ = top.when;
            ev->scheduled_ = false;
            --num_scheduled_;
            return ev;
        }
    }
    return nullptr;
}

bool
EventQueue::step()
{
    Event *ev = popLive();
    if (!ev)
        return false;
    ev->process();
    return true;
}

Tick
EventQueue::run(Tick max_tick)
{
    while (num_scheduled_ > 0) {
        // Peek at the next live event without firing it if it is beyond
        // the horizon.
        while (!queue_.empty()) {
            const Entry &top = queue_.top();
            if (top.event->scheduled_ && top.event->stamp_ == top.stamp)
                break;
            queue_.pop();
        }
        if (queue_.empty())
            break;
        if (queue_.top().when > max_tick) {
            cur_tick_ = max_tick;
            return cur_tick_;
        }
        step();
    }
    return cur_tick_;
}

} // namespace fenceless::sim
