#include "sim/eventq.hh"

namespace fenceless::sim
{

Event::~Event()
{
    // An event must not be destroyed while scheduled: the queue would be
    // left holding a dangling pointer.  Components must deschedule their
    // events (or drain the queue) before tearing down.
    flAssert(!scheduled_, "event '", name(), "' destroyed while scheduled");
}

EventQueue::~EventQueue()
{
    // One-shot nodes are owned by the queue itself, so nodes still
    // pending at teardown (a run that exhausted its cycle budget) die
    // with the queue; unarm them so Event's destroyed-while-scheduled
    // check only guards externally owned events.
    for (auto &ev : oneshot_nodes_)
        ev->scheduled_ = false;
}

EventQueue::OneShot *
EventQueue::acquireOneShot()
{
    if (OneShot *ev = oneshot_free_) {
        oneshot_free_ = ev->next_free;
        ev->next_free = nullptr;
        --oneshot_free_count_;
        return ev;
    }
    oneshot_nodes_.push_back(std::make_unique<OneShot>(*this));
    return oneshot_nodes_.back().get();
}

void
EventQueue::releaseOneShot(OneShot *ev)
{
    ev->next_free = oneshot_free_;
    oneshot_free_ = ev;
    ++oneshot_free_count_;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    flAssert(ev != nullptr, "scheduling a null event");
    flAssert(!ev->scheduled_, "event '", ev->name(),
             "' is already scheduled");
    flAssert(when >= cur_tick_, "event '", ev->name(),
             "' scheduled in the past (", when, " < ", cur_tick_, ")");

    ev->when_ = when;
    ev->stamp_ = next_stamp_++;
    ev->scheduled_ = true;
    queue_.push(Entry{when, ev->priority_, ev->stamp_, ev});
    ++num_scheduled_;
}

void
EventQueue::deschedule(Event *ev)
{
    flAssert(ev != nullptr, "descheduling a null event");
    if (!ev->scheduled_)
        return;
    // Lazy removal: the stale heap entry is skipped when popped.
    ev->scheduled_ = false;
    --num_scheduled_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    deschedule(ev);
    schedule(ev, when);
}

Event *
EventQueue::popLive()
{
    while (!queue_.empty()) {
        const Entry top = queue_.top();
        queue_.pop();
        Event *ev = top.event;
        // An entry is live iff the event is still scheduled *and* this is
        // the scheduling that created the entry (stamp matches).
        if (ev->scheduled_ && ev->stamp_ == top.stamp) {
            flAssert(top.when >= cur_tick_, "event time went backwards");
            cur_tick_ = top.when;
            ev->scheduled_ = false;
            --num_scheduled_;
            return ev;
        }
    }
    return nullptr;
}

bool
EventQueue::step()
{
    Event *ev = popLive();
    if (!ev)
        return false;
    ev->process();
    return true;
}

Tick
EventQueue::run(Tick max_tick)
{
    while (num_scheduled_ > 0) {
        // Peek at the next live event without firing it if it is beyond
        // the horizon.
        while (!queue_.empty()) {
            const Entry &top = queue_.top();
            if (top.event->scheduled_ && top.event->stamp_ == top.stamp)
                break;
            queue_.pop();
        }
        if (queue_.empty())
            break;
        if (queue_.top().when > max_tick) {
            cur_tick_ = max_tick;
            return cur_tick_;
        }
        step();
    }
    return cur_tick_;
}

} // namespace fenceless::sim
