#include "sim/eventq.hh"

namespace fenceless::sim
{

Event::~Event()
{
    // An event must not be destroyed while scheduled: the queue would be
    // left holding a dangling pointer.  Components must deschedule their
    // events (or drain the queue) before tearing down.
    flAssert(!scheduled_, "event '", name(), "' destroyed while scheduled");
}

EventQueue::~EventQueue()
{
    // One-shot nodes are owned by the queue itself, so nodes still
    // pending at teardown (a run that exhausted its cycle budget) die
    // with the queue; unarm them so Event's destroyed-while-scheduled
    // check only guards externally owned events.
    for (auto &ev : oneshot_nodes_)
        ev->scheduled_ = false;
}

EventQueue::OneShot *
EventQueue::acquireOneShot()
{
    if (OneShot *ev = oneshot_free_) {
        oneshot_free_ = ev->next_free;
        ev->next_free = nullptr;
        --oneshot_free_count_;
        return ev;
    }
    oneshot_nodes_.push_back(std::make_unique<OneShot>(*this));
    return oneshot_nodes_.back().get();
}

void
EventQueue::releaseOneShot(OneShot *ev)
{
    ev->next_free = oneshot_free_;
    oneshot_free_ = ev;
    ++oneshot_free_count_;
}

void
EventQueue::pushNear(Tick when, int priority, std::uint64_t stamp,
                     Event *ev)
{
    Bucket &b = buckets_[when & (bucket_window - 1)];
    const NearEntry e{when, stamp, ev, priority};
    // Entries are kept ascending by (priority, stamp) from head on;
    // stamps grow monotonically, so a push at (or above) the current
    // tail priority -- the overwhelmingly common uniform-priority case
    // -- is a plain append.  A bucket may also hold stale leftovers of
    // a lapped tick; they take part in the ordering harmlessly (they
    // are dropped when examined) and never need to be stepped over
    // here because the order is on (priority, stamp) alone.
    const auto before = [](const NearEntry &a, const NearEntry &x) {
        if (a.priority != x.priority)
            return a.priority < x.priority;
        return a.stamp < x.stamp;
    };
    if (b.entries.empty() || !before(e, b.entries.back())) {
        b.entries.push_back(e);
    } else {
        auto pos = std::lower_bound(b.entries.begin() + b.head,
                                    b.entries.end(), e, before);
        b.entries.insert(pos, e);
    }
    ++near_count_;
    if (when < next_hint_)
        next_hint_ = when;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    flAssert(ev != nullptr, "scheduling a null event");
    flAssert(!ev->scheduled_, "event '", ev->name(),
             "' is already scheduled");
    flAssert(when >= cur_tick_, "event '", ev->name(),
             "' scheduled in the past (", when, " < ", cur_tick_, ")");

    ev->when_ = when;
    ev->stamp_ = next_stamp_++;
    ev->scheduled_ = true;
    if (when - cur_tick_ < bucket_window)
        pushNear(when, ev->priority_, ev->stamp_, ev);
    else
        far_.push(Entry{when, ev->priority_, ev->stamp_, ev});
    ++num_scheduled_;
}

void
EventQueue::deschedule(Event *ev)
{
    flAssert(ev != nullptr, "descheduling a null event");
    if (!ev->scheduled_)
        return;
    // Lazy removal: the stale queue entry is skipped when examined.
    ev->scheduled_ = false;
    --num_scheduled_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    deschedule(ev);
    schedule(ev, when);
}

EventQueue::NextWhere
EventQueue::findNext(Tick &when_out)
{
    // Surface the far heap's live top and migrate every far entry that
    // has entered the near window, so the bucket scan below sees the
    // complete (when, priority, stamp) order.
    for (;;) {
        if (far_.empty())
            break;
        const Entry &top = far_.top();
        if (!top.event->scheduled_ || top.event->stamp_ != top.stamp) {
            far_.pop();
            ++stale_pops_;
            continue;
        }
        if (top.when - cur_tick_ >= bucket_window)
            break;
        pushNear(top.when, top.priority, top.stamp, top.event);
        far_.pop();
    }

    if (near_count_ > 0) {
        Tick t = next_hint_ > cur_tick_ ? next_hint_ : cur_tick_;
        for (; t - cur_tick_ < bucket_window; ++t) {
            Bucket &b = buckets_[t & (bucket_window - 1)];
            while (b.head < b.entries.size()) {
                const NearEntry &e = b.entries[b.head];
                // Live iff the event is still scheduled, this is the
                // scheduling that created the entry (stamp matches),
                // and the entry is not a leftover of a lapped tick.
                if (e.when == t && e.event->scheduled_ &&
                    e.event->stamp_ == e.stamp) {
                    next_hint_ = t;
                    when_out = t;
                    return NextWhere::Near;
                }
                ++b.head;
                --near_count_;
                ++stale_pops_;
                if (b.head == b.entries.size()) {
                    b.entries.clear();
                    b.head = 0;
                }
            }
            if (near_count_ == 0)
                break;
        }
        // No live entry anywhere in the window.
        next_hint_ = cur_tick_ + bucket_window;
    }

    if (far_.empty())
        return NextWhere::None;
    when_out = far_.top().when; // live: pruned above
    return NextWhere::Far;
}

Event *
EventQueue::popLive()
{
    Tick when = 0;
    const NextWhere where = findNext(when);
    if (where == NextWhere::None)
        return nullptr;

    flAssert(when >= cur_tick_, "event time went backwards");
    Event *ev = nullptr;
    if (where == NextWhere::Near) {
        Bucket &b = buckets_[when & (bucket_window - 1)];
        ev = b.entries[b.head].event;
        ++b.head;
        --near_count_;
        ++near_pops_;
        if (b.head == b.entries.size()) {
            b.entries.clear();
            b.head = 0;
        }
    } else {
        ev = far_.top().event;
        far_.pop();
        ++far_pops_;
    }
    cur_tick_ = when;
    ev->scheduled_ = false;
    --num_scheduled_;
    return ev;
}

bool
EventQueue::step()
{
    Event *ev = popLive();
    if (!ev)
        return false;
    ev->process();
    return true;
}

Tick
EventQueue::run(Tick max_tick)
{
    stop_requested_ = false;
    while (num_scheduled_ > 0 && !stop_requested_) {
        // Peek at the next live event without firing it if it is beyond
        // the horizon.  The peek leaves it at the front of its bucket
        // (or the far top), so the popLive() inside step() re-finds it
        // in O(1) via next_hint_.
        Tick when = 0;
        if (findNext(when) == NextWhere::None)
            break;
        if (when > max_tick) {
            cur_tick_ = max_tick;
            return cur_tick_;
        }
        step();
    }
    return cur_tick_;
}

} // namespace fenceless::sim
