/**
 * @file
 * Per-request span tracing: the tail-latency observability layer.
 *
 * Aggregate latency distributions (PR 2) and percentile sketches
 * (PR 7) can say *that* the p99.9 is bad, but not *why this request*
 * was slow.  This layer records, for a sampled subset of misses, a
 * timestamp at every stage boundary the request crosses on its way
 * through the memory system:
 *
 *     ReqNet   the GetS/GetM leaves the L1 toward the directory bank
 *     DirQueue queued at the bank behind an active same-block txn
 *     DirAccess bank accepted the txn (tag/directory access latency)
 *     Dram     L2 miss: DRAM channel queue + access
 *     DirBlocked waiting behind an L2 victim recall
 *     DirFwd   waiting for the current owner (FwdGetS/FwdGetM round trip)
 *     DirInv   waiting for sharer invalidation acks
 *     ReplyNet the Data* reply is in flight back to the L1
 *     FillWait data arrived at the L1 but cannot install yet
 *     Done     installed; the span ends
 *
 * Stage *durations* are never recorded -- only boundary events.  Each
 * stage's contribution is the interval to the next boundary, so the
 * per-stage cycles of a span tile the end-to-end latency exactly (to
 * the cycle), including fill-retry loops where an Inv/Fwd yanks a
 * buffered fill and the request re-enters ReqNet with the same id.
 *
 * Coalesced accesses that queue behind an existing MSHR are recorded
 * as flagged L1Queue events.  They are not part of the miss's tiled
 * path; span assembly turns each one into its own single-stage
 * "waiter" span [queue tick, fill tick], which is exactly the MSHR
 * wait that request experienced.
 *
 * Sampling must be byte-identical across --shards and --jobs, so it is
 * a pure function of the request id: ids are minted per L1 as
 * (node+1)<<40 | local-miss-sequence (shard-invariant by construction,
 * see L1Cache::handleMiss), and a request is sampled iff a splitmix64
 * hash of its id falls in the configured 1-in-N slice.  Every
 * component -- L1, directory bank, network -- can re-derive the
 * decision statelessly from msg.req_id.
 *
 * Ownership and threading mirror trace::TraceSink / prof::WasteProfiler:
 * one sink per SimContext, driven by that context's single host
 * thread, so sharded simulations need no locking.  Disabled cost is
 * one cached-pointer null test per stage site.  Span assembly happens
 * once, after the run, on the main thread: per-shard event vectors are
 * concatenated in shard order and stable-sorted by (req_id, tick),
 * which is order-independent across shard counts because any two
 * same-request events at the same tick are recorded by the same
 * component (cross-component transitions ride the network, whose
 * minimum delay is one cycle).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace fenceless::reqtrace
{

/** The stages a request span can pass through (pipeline order). */
enum class Stage : std::uint8_t
{
    L1Queue,    //!< coalesced access waiting on an existing MSHR
    ReqNet,     //!< GetS/GetM in flight toward the directory bank
    DirQueue,   //!< queued at the bank behind an active txn
    DirAccess,  //!< directory/tag access latency
    Dram,       //!< DRAM channel queue + access (L2 miss)
    DirBlocked, //!< waiting behind an L2 victim recall
    DirFwd,     //!< owner forward round trip (FwdGetS/FwdGetM)
    DirInv,     //!< sharer invalidation fan-out
    ReplyNet,   //!< Data* reply in flight back to the L1
    FillWait,   //!< fill buffered at the L1, not installable yet
    Done,       //!< installed (terminates the span)
    NumStages,
};

constexpr std::size_t num_stages =
    static_cast<std::size_t>(Stage::NumStages);

/** Short stable name ("req_net", "dir_queue", ...). */
const char *stageName(Stage s);

/** Event flags. */
constexpr std::uint8_t span_flag_retry = 1;  //!< re-request after a yank
constexpr std::uint8_t span_flag_waiter = 2; //!< coalesced MSHR waiter

/**
 * One stage-boundary record (32 bytes).  `node` is the recording
 * component's trace id (so exports can target the existing per-
 * component tracks); `a0` carries the block address (ReqNet/Done) and
 * `aux` stage-specific detail (issuing PC for ReqNet, queue depth for
 * DirQueue, ack fan-out for DirInv, waiter count for Done).
 */
struct SpanEvent
{
    std::uint64_t req_id;
    Tick tick;
    std::uint64_t a0;
    std::uint16_t node;
    std::uint8_t stage;
    std::uint8_t flags;
    std::uint32_t aux;
};

/** splitmix64 finalizer: the sampling hash (pure, stateless). */
constexpr std::uint64_t
mixReqId(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Per-SimContext span sink.  configure() before components construct
 * (they cache ifEnabled() once, like the profiler); record() is the
 * hot path behind that cached pointer.
 */
class ReqTraceSink
{
  public:
    /** Enable with 1-in-@p period sampling (0 disables, 1 = all). */
    void
    configure(std::uint64_t period)
    {
        period_ = period;
        // 1-in-N as a threshold compare on the hash, not a modulo: the
        // predicate runs at every record site of every miss, and a
        // 64-bit divide there is the difference between noise and a
        // measurable overhead (BM_FullSystemReqTrace/64).
        threshold_ = period ? ~0ULL / period : 0;
        events_.clear();
    }

    bool enabled() const { return period_ != 0; }
    std::uint64_t period() const { return period_; }

    /** Cached by components; null when span tracing is off. */
    ReqTraceSink *ifEnabled() { return enabled() ? this : nullptr; }

    /**
     * Pure sampling predicate: true iff @p req_id is traced.  Id 0
     * (control traffic: Puts, WbClean, probes) is never traced, and a
     * disabled sink samples nothing.
     */
    bool
    sampled(std::uint64_t req_id) const
    {
        if (req_id == 0 || period_ == 0)
            return false;
        return mixReqId(req_id) <= threshold_;
    }

    void
    record(std::uint64_t req_id, Tick tick, Stage stage,
           std::uint16_t node, std::uint64_t a0 = 0,
           std::uint32_t aux = 0, std::uint8_t flags = 0)
    {
        events_.push_back(SpanEvent{req_id, tick, a0, node,
                                    static_cast<std::uint8_t>(stage),
                                    flags, aux});
    }

    const std::vector<SpanEvent> &events() const { return events_; }

  private:
    std::uint64_t period_ = 0;
    std::uint64_t threshold_ = 0; //!< sample iff mixReqId(id) <= this
    std::vector<SpanEvent> events_;
};

// ---------------------------------------------------------------------
// post-run span assembly (main thread)
// ---------------------------------------------------------------------

/** One tiled stage of an assembled span. */
struct SpanStage
{
    Stage stage;
    Tick at;            //!< boundary tick (stage entry)
    Tick cycles;        //!< interval to the next boundary
    std::uint16_t node; //!< recording component's trace id
    std::uint32_t aux;
    std::uint8_t flags;
};

/** One assembled request span. */
struct Span
{
    std::uint64_t req_id = 0;
    Tick issue = 0;
    Tick done = 0;
    Addr block = 0;
    std::uint32_t pc = 0;       //!< issuing PC (ReqNet aux)
    std::uint32_t waiters = 0;  //!< coalesced accesses served by the fill
    std::uint32_t retries = 0;  //!< fill yanks (Inv/Fwd re-requests)
    bool waiter = false;        //!< single-stage coalesced-waiter span
    std::vector<SpanStage> stages;

    Tick latency() const { return done - issue; }

    /** Issuing L1's node id (minted into the id's high bits). */
    std::uint32_t
    core() const
    {
        return static_cast<std::uint32_t>(req_id >> 40) - 1;
    }

    /** Per-L1 miss sequence number (the id's low bits). */
    std::uint64_t
    seq() const
    {
        return req_id & ((1ULL << 40) - 1);
    }

    /** The stage owning the most cycles (ties: earliest stage). */
    Stage dominantStage() const;
};

/** Every complete span of a run, in canonical order. */
struct SpanSet
{
    std::uint64_t period = 0;     //!< sampling period used
    std::uint64_t incomplete = 0; //!< sampled spans cut off at run end
    std::vector<Span> spans;      //!< (req_id asc, primary before waiters)
};

/**
 * Assemble raw events (per-shard vectors concatenated in shard order)
 * into complete spans.  Deterministic for any shard count: see the
 * file comment for the ordering argument.
 */
SpanSet assembleSpans(std::vector<SpanEvent> events,
                      std::uint64_t period);

/** One row of the stage-attribution table. */
struct StageRow
{
    Stage stage;
    std::uint64_t spans = 0;  //!< spans in which the stage appears
    std::uint64_t cycles = 0; //!< total cycles attributed to the stage
    Tick p50 = 0, p95 = 0, p99 = 0, p999 = 0; //!< per-span contribution
    std::uint64_t tail_owned = 0; //!< above-p99 spans this stage dominates
};

/** The critical-path stage attribution of a run's sampled spans. */
struct TailAttribution
{
    std::uint64_t spans = 0;      //!< complete spans folded in
    std::uint64_t tail_spans = 0; //!< spans with latency > e2e p99
    Tick e2e_p50 = 0, e2e_p95 = 0, e2e_p99 = 0, e2e_p999 = 0;
    std::uint64_t e2e_cycles = 0; //!< sum of end-to-end latencies
    std::vector<StageRow> rows;   //!< stage order; stages with spans > 0

    /** Rows ranked by tail ownership (desc), ties by stage order. */
    std::vector<const StageRow *> tailRanking() const;
};

/**
 * Fold @p set into per-stage contribution percentiles and the tail-
 * ownership ranking.  Exact nearest-rank percentiles over the sampled
 * spans (all of them are in memory; no sketch estimation error here).
 */
TailAttribution attributeStages(const SpanSet &set);

/**
 * The top-@p k slowest primary spans, ordered by (latency desc,
 * req_id asc) -- the deterministic outlier-dossier selection.
 */
std::vector<const Span *> topK(const SpanSet &set, std::size_t k);

/** Exact nearest-rank percentile of a sorted sample vector. */
Tick nearestRank(const std::vector<Tick> &sorted, double q);

} // namespace fenceless::reqtrace
