#include "sim/reqtrace.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "base/logging.hh"

namespace fenceless::reqtrace
{

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::L1Queue: return "l1_queue";
      case Stage::ReqNet: return "req_net";
      case Stage::DirQueue: return "dir_queue";
      case Stage::DirAccess: return "dir_access";
      case Stage::Dram: return "dram";
      case Stage::DirBlocked: return "dir_blocked";
      case Stage::DirFwd: return "dir_fwd";
      case Stage::DirInv: return "dir_inv";
      case Stage::ReplyNet: return "reply_net";
      case Stage::FillWait: return "fill_wait";
      case Stage::Done: return "done";
      case Stage::NumStages: break;
    }
    return "?";
}

Stage
Span::dominantStage() const
{
    Tick best = 0;
    Stage owner = Stage::NumStages;
    for (const SpanStage &st : stages) {
        if (owner == Stage::NumStages || st.cycles > best) {
            best = st.cycles;
            owner = st.stage;
        }
    }
    return owner;
}

SpanSet
assembleSpans(std::vector<SpanEvent> events, std::uint64_t period)
{
    SpanSet out;
    out.period = period;

    // Canonical order: group by request, then by time.  stable_sort
    // preserves the per-shard append order inside a (req, tick) group,
    // and such a group is always recorded by a single component (see
    // the header comment), so the result is shard-count independent.
    std::stable_sort(events.begin(), events.end(),
                     [](const SpanEvent &a, const SpanEvent &b) {
                         if (a.req_id != b.req_id)
                             return a.req_id < b.req_id;
                         return a.tick < b.tick;
                     });

    // A complete span is at least two events (ReqNet + Done); sizing
    // for the worst case keeps the span vector from reallocating while
    // holding per-span stage vectors (finalize runs once per System,
    // but at --tail-sample=1 it is O(misses), so it shows up in
    // BM_FullSystemReqTrace).
    out.spans.reserve(events.size() / 2);

    std::vector<const SpanEvent *> waiters;
    std::size_t i = 0;
    while (i < events.size()) {
        const std::uint64_t req = events[i].req_id;
        std::size_t end = i;
        while (end < events.size() && events[end].req_id == req)
            ++end;

        // Split the group into the tiled primary path and the flagged
        // coalesced-waiter boundary events.
        Span span;
        span.req_id = req;
        span.stages.reserve(end - i);
        waiters.clear();
        bool complete = false;
        for (std::size_t j = i; j < end; ++j) {
            const SpanEvent &ev = events[j];
            if (ev.flags & span_flag_waiter) {
                waiters.push_back(&ev);
                continue;
            }
            const auto stage = static_cast<Stage>(ev.stage);
            if (span.stages.empty()) {
                span.issue = ev.tick;
                span.block = ev.a0;
                span.pc = ev.aux;
            }
            if (!span.stages.empty())
                span.stages.back().cycles =
                    ev.tick - span.stages.back().at;
            if (stage == Stage::Done) {
                span.done = ev.tick;
                span.waiters = ev.aux;
                complete = true;
                break;
            }
            if (ev.flags & span_flag_retry)
                ++span.retries;
            span.stages.push_back(SpanStage{stage, ev.tick, 0, ev.node,
                                            ev.aux, ev.flags});
        }
        i = end;

        if (!complete || span.stages.empty()) {
            ++out.incomplete;
            continue;
        }
        out.spans.push_back(std::move(span));

        // Each coalesced waiter becomes its own single-stage span: the
        // interval from its arrival at the L1 to the fill that served
        // it is exactly that access's MSHR wait.  (Copy the primary's
        // fields: push_back below may reallocate the vector.)
        const Tick pdone = out.spans.back().done;
        const Addr pblock = out.spans.back().block;
        for (const SpanEvent *w : waiters) {
            if (w->tick > pdone)
                continue; // queued after the fill; defensive
            Span ws;
            ws.req_id = req;
            ws.issue = w->tick;
            ws.done = pdone;
            ws.block = pblock;
            ws.pc = w->aux;
            ws.waiter = true;
            ws.stages.push_back(SpanStage{Stage::L1Queue, w->tick,
                                          pdone - w->tick,
                                          w->node, 0, w->flags});
            out.spans.push_back(std::move(ws));
        }
    }
    return out;
}

Tick
nearestRank(const std::vector<Tick> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    if (rank < 1)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

TailAttribution
attributeStages(const SpanSet &set)
{
    TailAttribution out;
    out.spans = set.spans.size();

    std::vector<Tick> e2e;
    e2e.reserve(set.spans.size());
    for (const Span &s : set.spans)
        e2e.push_back(s.latency());
    std::sort(e2e.begin(), e2e.end());
    out.e2e_p50 = nearestRank(e2e, 0.50);
    out.e2e_p95 = nearestRank(e2e, 0.95);
    out.e2e_p99 = nearestRank(e2e, 0.99);
    out.e2e_p999 = nearestRank(e2e, 0.999);
    for (Tick t : e2e)
        out.e2e_cycles += t;

    // Per-stage contribution per span (stages may appear several times
    // in one span -- retries -- and are summed per span first).
    std::vector<std::vector<Tick>> contrib(num_stages);
    std::vector<std::uint64_t> cycles(num_stages, 0);
    std::vector<std::uint64_t> owned(num_stages, 0);
    for (const Span &s : set.spans) {
        std::array<Tick, num_stages> per{};
        for (const SpanStage &st : s.stages)
            per[static_cast<std::size_t>(st.stage)] += st.cycles;
        for (std::size_t b = 0; b < num_stages; ++b) {
            if (per[b] == 0)
                continue;
            if (contrib[b].empty())
                contrib[b].reserve(set.spans.size());
            contrib[b].push_back(per[b]);
            cycles[b] += per[b];
        }
        if (s.latency() > out.e2e_p99) {
            ++out.tail_spans;
            const Stage dom = s.dominantStage();
            if (dom != Stage::NumStages)
                ++owned[static_cast<std::size_t>(dom)];
        }
    }

    for (std::size_t b = 0; b < num_stages; ++b) {
        if (contrib[b].empty())
            continue;
        StageRow row;
        row.stage = static_cast<Stage>(b);
        row.spans = contrib[b].size();
        row.cycles = cycles[b];
        std::sort(contrib[b].begin(), contrib[b].end());
        row.p50 = nearestRank(contrib[b], 0.50);
        row.p95 = nearestRank(contrib[b], 0.95);
        row.p99 = nearestRank(contrib[b], 0.99);
        row.p999 = nearestRank(contrib[b], 0.999);
        row.tail_owned = owned[b];
        out.rows.push_back(row);
    }
    return out;
}

std::vector<const StageRow *>
TailAttribution::tailRanking() const
{
    std::vector<const StageRow *> ranked;
    ranked.reserve(rows.size());
    for (const StageRow &r : rows)
        ranked.push_back(&r);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const StageRow *a, const StageRow *b) {
                         return a->tail_owned > b->tail_owned;
                     });
    return ranked;
}

std::vector<const Span *>
topK(const SpanSet &set, std::size_t k)
{
    std::vector<const Span *> all;
    for (const Span &s : set.spans) {
        if (!s.waiter)
            all.push_back(&s);
    }
    std::sort(all.begin(), all.end(),
              [](const Span *a, const Span *b) {
                  if (a->latency() != b->latency())
                      return a->latency() > b->latency();
                  return a->req_id < b->req_id;
              });
    if (all.size() > k)
        all.resize(k);
    return all;
}

} // namespace fenceless::reqtrace
