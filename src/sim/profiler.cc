#include "sim/profiler.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"
#include "base/provenance.hh"

namespace fenceless::prof
{

const char *
cycleBucketName(CycleBucket b)
{
    switch (b) {
      case CycleBucket::Execute: return "execute";
      case CycleBucket::FenceStall: return "fence_stall";
      case CycleBucket::SbFull: return "sb_full";
      case CycleBucket::MissWait: return "miss_wait";
      case CycleBucket::RollbackDiscarded: return "rollback_discarded";
      case CycleBucket::NumBuckets: break;
    }
    return "?";
}

// ---------------------------------------------------------------------
// WasteProfiler
// ---------------------------------------------------------------------

void
WasteProfiler::configure(std::size_t num_pcs, std::uint32_t num_cores,
                         unsigned block_size,
                         std::vector<CodeSym> code_syms,
                         std::vector<DataSym> data_syms)
{
    flAssert(!enabled_, "profiler configured twice");
    flAssert(block_size / 8 <= 64,
             "profiler sub-block masks support block sizes up to 512");
    enabled_ = true;
    num_cores_ = num_cores;
    pc_cycles_.assign(num_pcs * num_buckets, 0);
    pc_execs_.assign(num_pcs, 0);
    staged_.assign(num_cores, {});
    line_cache_.assign(num_cores, {0, nullptr});
    code_syms_ = std::move(code_syms);
    data_syms_ = std::move(data_syms);
    std::sort(code_syms_.begin(), code_syms_.end(),
              [](const CodeSym &a, const CodeSym &b) {
                  return a.pc < b.pc;
              });
    std::sort(data_syms_.begin(), data_syms_.end(),
              [](const DataSym &a, const DataSym &b) {
                  return a.addr < b.addr;
              });
}

WasteProfiler::LineData &
WasteProfiler::lineDataSlow(Addr line)
{
    LineData &ld = lines_[line];
    if (ld.core_slots.empty())
        ld.core_slots.assign(num_cores_, 0);
    return ld;
}

void
WasteProfiler::lineInvalidated(Addr line)
{
    ++lineDataSlow(line).invalidations;
}

void
WasteProfiler::linePingPong(Addr line)
{
    ++lineDataSlow(line).ping_pongs;
}

void
WasteProfiler::commitEpoch(std::uint32_t core)
{
    for (const Staged &s : staged_[core]) {
        pc_cycles_[s.pc * num_buckets + s.bucket] += s.cycles;
        if (s.bucket ==
            static_cast<std::uint8_t>(CycleBucket::Execute)) {
            ++pc_execs_[s.pc];
        }
    }
    staged_[core].clear();
}

void
WasteProfiler::rollbackEpoch(std::uint32_t core, const char *cause,
                             Addr trigger_line, std::uint64_t victim_pc,
                             std::uint64_t discarded_insts)
{
    // Every cycle staged in the squashed epoch -- whatever bucket it
    // was headed for -- was wasted; charge it to the PC that spent it.
    constexpr std::size_t discarded =
        static_cast<std::size_t>(CycleBucket::RollbackDiscarded);
    for (const Staged &s : staged_[core])
        pc_cycles_[s.pc * num_buckets + discarded] += s.cycles;
    staged_[core].clear();

    auto &[count, insts] =
        rollbacks_[{std::string(cause), victim_pc, trigger_line}];
    ++count;
    insts += discarded_insts;
}

void
WasteProfiler::absorb(const WasteProfiler &other)
{
    flAssert(enabled_ && other.enabled_,
             "absorb requires both profilers configured");
    flAssert(pc_cycles_.size() == other.pc_cycles_.size() &&
                 num_cores_ == other.num_cores_,
             "absorb requires identical profiler dimensions");
    for (std::size_t i = 0; i < pc_cycles_.size(); ++i)
        pc_cycles_[i] += other.pc_cycles_[i];
    for (std::size_t i = 0; i < pc_execs_.size(); ++i)
        pc_execs_[i] += other.pc_execs_[i];
    for (const auto &[addr, src] : other.lines_) {
        LineData &dst = lineDataSlow(addr);
        dst.touches += src.touches;
        dst.invalidations += src.invalidations;
        dst.ping_pongs += src.ping_pongs;
        for (std::size_t c = 0; c < src.core_slots.size(); ++c)
            dst.core_slots[c] |= src.core_slots[c];
    }
    for (const auto &[key, rec] : other.rollbacks_) {
        auto &[count, insts] = rollbacks_[key];
        count += rec.first;
        insts += rec.second;
    }
}

std::string
WasteProfiler::symbolizePc(std::uint64_t pc) const
{
    // Nearest preceding label, gem5 symbol-table style.
    auto it = std::upper_bound(
        code_syms_.begin(), code_syms_.end(), pc,
        [](std::uint64_t p, const CodeSym &s) { return p < s.pc; });
    if (it == code_syms_.begin()) {
        std::ostringstream os;
        os << "pc_" << pc;
        return os.str();
    }
    --it;
    if (it->pc == pc)
        return it->name;
    std::ostringstream os;
    os << it->name << "+" << (pc - it->pc);
    return os.str();
}

std::string
WasteProfiler::symbolizeLine(Addr line) const
{
    auto it = std::upper_bound(
        data_syms_.begin(), data_syms_.end(), line,
        [](Addr a, const DataSym &s) { return a < s.addr; });
    if (it != data_syms_.begin()) {
        --it;
        if (line < it->addr + it->size) {
            if (line == it->addr)
                return it->name;
            std::ostringstream os;
            os << it->name << "+0x" << std::hex << (line - it->addr);
            return os.str();
        }
    }
    std::ostringstream os;
    os << "0x" << std::hex << line;
    return os.str();
}

Profile
WasteProfiler::snapshot(const std::string &scope) const
{
    Profile p;
    if (!enabled_)
        return p;
    const std::string prefix = scope.empty() ? "" : scope + ";";

    for (std::size_t pc = 0; pc < pc_execs_.size(); ++pc) {
        const std::uint64_t *row = &pc_cycles_[pc * num_buckets];
        bool any = pc_execs_[pc] != 0;
        for (std::size_t b = 0; b < num_buckets && !any; ++b)
            any = row[b] != 0;
        if (!any)
            continue;
        Profile::PcRow &out = p.pcs[prefix + symbolizePc(pc)];
        out.pc = pc;
        out.execs += pc_execs_[pc];
        for (std::size_t b = 0; b < num_buckets; ++b)
            out.cycles[b] += row[b];
    }

    // unordered_map iteration order is not deterministic; sort the
    // line addresses before rendering keys.
    std::vector<Addr> addrs;
    addrs.reserve(lines_.size());
    for (const auto &[addr, ld] : lines_)
        addrs.push_back(addr);
    std::sort(addrs.begin(), addrs.end());
    for (Addr addr : addrs) {
        const LineData &ld = lines_.at(addr);
        Profile::LineRow &out = p.lines[prefix + symbolizeLine(addr)];
        out.addr = addr;
        out.touches += ld.touches;
        out.invalidations += ld.invalidations;
        out.ping_pongs += ld.ping_pongs;
        std::uint32_t cores = 0;
        std::uint64_t seen = 0, multi = 0;
        for (std::uint64_t mask : ld.core_slots) {
            if (!mask)
                continue;
            ++cores;
            multi |= seen & mask;
            seen |= mask;
        }
        out.cores_touched = std::max(out.cores_touched, cores);
        if (cores >= 2 && multi == 0)
            out.false_sharing = true;
    }

    for (const auto &[key, rec] : rollbacks_) {
        const auto &[cause, victim_pc, line] = key;
        const std::string victim = symbolizePc(victim_pc);
        const std::string line_sym = symbolizeLine(line);
        Profile::RollbackRow &out =
            p.rollbacks[prefix + cause + ";" + victim + ";" + line_sym];
        out.cause = cause;
        out.victim = prefix + victim;
        out.line = prefix + line_sym;
        out.count += rec.first;
        out.discarded_insts += rec.second;
    }
    return p;
}

// ---------------------------------------------------------------------
// Profile
// ---------------------------------------------------------------------

std::uint64_t
Profile::PcRow::wasted() const
{
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < num_buckets; ++b) {
        if (b != static_cast<std::size_t>(CycleBucket::Execute))
            total += cycles[b];
    }
    return total;
}

void
Profile::merge(const Profile &other)
{
    for (const auto &[key, row] : other.pcs) {
        PcRow &out = pcs[key];
        out.pc = row.pc;
        out.execs += row.execs;
        for (std::size_t b = 0; b < num_buckets; ++b)
            out.cycles[b] += row.cycles[b];
    }
    for (const auto &[key, row] : other.lines) {
        LineRow &out = lines[key];
        out.addr = row.addr;
        out.touches += row.touches;
        out.invalidations += row.invalidations;
        out.ping_pongs += row.ping_pongs;
        out.cores_touched =
            std::max(out.cores_touched, row.cores_touched);
        out.false_sharing = out.false_sharing || row.false_sharing;
    }
    for (const auto &[key, row] : other.rollbacks) {
        RollbackRow &out = rollbacks[key];
        out.cause = row.cause;
        out.victim = row.victim;
        out.line = row.line;
        out.count += row.count;
        out.discarded_insts += row.discarded_insts;
    }
}

namespace
{

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
}

} // namespace

void
Profile::writeJson(std::ostream &os) const
{
    // Versioned like the stats-JSON document (and checked the same way
    // by tools/fl_report); the two documents version independently.
    os << "{\n  \"schema_version\": " << profile_schema_version
       << ",\n  \"provenance\": " << provenance::jsonObject()
       << ",\n  \"buckets\": [";
    for (std::size_t b = 0; b < num_buckets; ++b) {
        os << (b ? ", " : "") << "\""
           << cycleBucketName(static_cast<CycleBucket>(b)) << "\"";
    }
    os << "],\n  \"pcs\": [";
    bool first = true;
    for (const auto &[key, row] : pcs) {
        os << (first ? "" : ",") << "\n    {\"sym\": \"";
        jsonEscape(os, key);
        os << "\", \"pc\": " << row.pc << ", \"execs\": " << row.execs
           << ", \"cycles\": {";
        for (std::size_t b = 0; b < num_buckets; ++b) {
            os << (b ? ", " : "") << "\""
               << cycleBucketName(static_cast<CycleBucket>(b))
               << "\": " << row.cycles[b];
        }
        os << "}}";
        first = false;
    }
    os << "\n  ],\n  \"lines\": [";
    first = true;
    for (const auto &[key, row] : lines) {
        os << (first ? "" : ",") << "\n    {\"sym\": \"";
        jsonEscape(os, key);
        os << "\", \"addr\": " << row.addr
           << ", \"touches\": " << row.touches
           << ", \"invalidations\": " << row.invalidations
           << ", \"ping_pongs\": " << row.ping_pongs
           << ", \"cores_touched\": " << row.cores_touched
           << ", \"false_sharing\": "
           << (row.false_sharing ? "true" : "false") << "}";
        first = false;
    }
    os << "\n  ],\n  \"rollbacks\": [";
    first = true;
    for (const auto &[key, row] : rollbacks) {
        os << (first ? "" : ",") << "\n    {\"cause\": \"";
        jsonEscape(os, row.cause);
        os << "\", \"victim\": \"";
        jsonEscape(os, row.victim);
        os << "\", \"line\": \"";
        jsonEscape(os, row.line);
        os << "\", \"count\": " << row.count
           << ", \"discarded_insts\": " << row.discarded_insts << "}";
        first = false;
    }
    os << "\n  ]\n}\n";
}

void
Profile::writeFolded(std::ostream &os) const
{
    for (const auto &[key, row] : pcs) {
        for (std::size_t b = 0; b < num_buckets; ++b) {
            if (!row.cycles[b])
                continue;
            os << key << ";"
               << cycleBucketName(static_cast<CycleBucket>(b)) << " "
               << row.cycles[b] << "\n";
        }
    }
}

namespace
{

/** Deterministic ranking: value descending, key ascending. */
template <typename Map, typename ValueOf>
std::vector<typename Map::const_iterator>
rank(const Map &map, ValueOf value_of, std::size_t top_n)
{
    std::vector<typename Map::const_iterator> its;
    for (auto it = map.begin(); it != map.end(); ++it) {
        if (value_of(it->second) > 0)
            its.push_back(it);
    }
    std::sort(its.begin(), its.end(), [&](auto a, auto b) {
        const auto va = value_of(a->second);
        const auto vb = value_of(b->second);
        if (va != vb)
            return va > vb;
        return a->first < b->first;
    });
    if (its.size() > top_n)
        its.resize(top_n);
    return its;
}

} // namespace

void
Profile::writeReport(std::ostream &os, std::size_t top_n) const
{
    // Left-aligned name column: setw alone would butt an over-long
    // symbol straight against the next column, so always keep at
    // least two spaces of separation.
    const auto name_col = [&os](const std::string &s, std::size_t w) {
        os << s;
        os << (s.size() < w ? std::string(w - s.size(), ' ') : "  ");
    };

    os << "=== waste report ===\n";

    os << "\n-- top wasted cycles by instruction --\n";
    os << std::left << std::setw(40) << "symbol" << std::right
       << std::setw(12) << "wasted" << std::setw(12) << "fence"
       << std::setw(12) << "sb_full" << std::setw(12) << "miss"
       << std::setw(12) << "rollback" << std::setw(12) << "execs"
       << "\n";
    for (auto it : rank(
             pcs, [](const PcRow &r) { return r.wasted(); }, top_n)) {
        const PcRow &r = it->second;
        name_col(it->first, 40);
        os << std::right << std::setw(12) << r.wasted() << std::setw(12)
           << r.cycles[static_cast<std::size_t>(
                  CycleBucket::FenceStall)]
           << std::setw(12)
           << r.cycles[static_cast<std::size_t>(CycleBucket::SbFull)]
           << std::setw(12)
           << r.cycles[static_cast<std::size_t>(CycleBucket::MissWait)]
           << std::setw(12)
           << r.cycles[static_cast<std::size_t>(
                  CycleBucket::RollbackDiscarded)]
           << std::setw(12) << r.execs << "\n";
    }

    os << "\n-- top contended cache lines --\n";
    os << std::left << std::setw(40) << "line" << std::right
       << std::setw(12) << "invs" << std::setw(12) << "ping_pong"
       << std::setw(12) << "touches" << std::setw(8) << "cores"
       << "  false_sharing\n";
    for (auto it : rank(
             lines,
             [](const LineRow &r) {
                 return r.invalidations + r.ping_pongs;
             },
             top_n)) {
        const LineRow &r = it->second;
        name_col(it->first, 40);
        os << std::right << std::setw(12) << r.invalidations
           << std::setw(12)
           << r.ping_pongs << std::setw(12) << r.touches << std::setw(8)
           << r.cores_touched << "  "
           << (r.false_sharing ? "YES" : "no") << "\n";
    }

    os << "\n-- rollbacks by cause / victim / line --\n";
    os << std::left << std::setw(14) << "cause" << std::setw(30)
       << "victim" << std::setw(30) << "line" << std::right
       << std::setw(8) << "count" << std::setw(12) << "discarded"
       << "\n";
    for (auto it : rank(
             rollbacks, [](const RollbackRow &r) { return r.count; },
             top_n)) {
        const RollbackRow &r = it->second;
        name_col(r.cause, 14);
        name_col(r.victim, 30);
        name_col(r.line, 30);
        os << std::right << std::setw(8) << r.count << std::setw(12)
           << r.discarded_insts << "\n";
    }
}

} // namespace fenceless::prof
