/**
 * @file
 * Functional interpreter and reference executor.
 *
 * The interpreter executes decoded instructions against a FlatMemory with
 * no timing.  The reference executor runs all guest threads to completion
 * under a configurable interleaving; its final memory image is the oracle
 * the timing simulator's results are checked against (for programs with
 * interleaving-independent results) in tests.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "base/flat_memory.hh"
#include "base/random.hh"
#include "base/types.hh"
#include "isa/decoded.hh"
#include "isa/program.hh"

namespace fenceless::isa
{

/** Architectural state of one guest thread. */
struct ThreadContext
{
    std::array<std::uint64_t, num_regs> regs{};
    std::uint64_t pc = 0;
    std::uint64_t instret = 0;
    bool halted = false;
    CoreId tid = 0;

    std::uint64_t
    reg(RegId r) const
    {
        return r == 0 ? 0 : regs[r];
    }

    void
    setReg(RegId r, std::uint64_t v)
    {
        if (r != 0)
            regs[r] = v;
    }
};

/** Load a program's initial data image into a flat memory. */
void loadImage(const Program &prog, FlatMemory &mem);

/**
 * Functional (untimed) single-step execution.
 *
 * Fences are no-ops functionally; AMOs execute atomically because the
 * interpreter is single-threaded.
 */
class Interpreter
{
  public:
    Interpreter(const Program &prog, FlatMemory &mem,
                std::uint32_t num_cores)
        : prog_(prog), decoded_(prog), mem_(mem), num_cores_(num_cores)
    {}

    /**
     * Execute one instruction of @p tc.
     * @param cycle  value returned by the Cycle CSR
     * @return false if the thread was already (or just became) halted
     */
    bool step(ThreadContext &tc, std::uint64_t cycle = 0);

    const Program &program() const { return prog_; }

  private:
    const Program &prog_;
    DecodedProgram decoded_; //!< per-pc execution classes
    FlatMemory &mem_;
    std::uint32_t num_cores_;
};

/**
 * Runs every guest thread to completion under round-robin or randomized
 * interleaving.
 */
class ReferenceExecutor
{
  public:
    /**
     * @param prog       the program (shared by all threads)
     * @param num_cores  number of guest threads
     * @param quantum    max consecutive instructions per thread before
     *                   switching (1 == fine-grained interleaving)
     */
    ReferenceExecutor(const Program &prog, std::uint32_t num_cores,
                      std::uint64_t quantum = 1);

    /** Use a randomized schedule drawn from @p seed instead of RR. */
    void randomize(std::uint64_t seed);

    /**
     * Run until every thread halts or @p max_steps total instructions.
     * @return true if all threads halted
     */
    bool run(std::uint64_t max_steps = 100'000'000);

    FlatMemory &memory() { return mem_; }
    const FlatMemory &memory() const { return mem_; }
    const ThreadContext &thread(std::uint32_t i) const
    {
        return threads_.at(i);
    }
    std::uint64_t totalInstructions() const { return total_insts_; }

  private:
    const Program &prog_;
    FlatMemory mem_;
    Interpreter interp_;
    std::vector<ThreadContext> threads_;
    std::uint64_t quantum_;
    bool randomized_ = false;
    Random rng_;
    std::uint64_t total_insts_ = 0;
};

} // namespace fenceless::isa
