/**
 * @file
 * Pre-decoded execution classes for the hot dispatch loops.
 *
 * Instructions are already stored decoded (isa::Inst), but both the
 * timing core and the functional interpreter still classified every Op
 * on every dynamic step: the ~40-way Op switch re-derives "this is an
 * ALU register op" for the same static instruction millions of times.
 * A DecodedProgram collapses each static instruction to one of ~14
 * dense ExecClass values once, at program load, so the per-step
 * dispatch becomes a small dense jump table and the operand-form
 * distinction (register vs immediate second operand) is pre-resolved.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace fenceless::isa
{

/** What a step of this instruction does, with operand form resolved. */
enum class ExecClass : std::uint8_t
{
    AluReg,  //!< rd <- aluOp(op, rs1, rs2)
    AluImm,  //!< rd <- aluOp(op, rs1, imm)
    Li,      //!< rd <- imm
    Load,
    Store,
    Amo,
    Fence,
    Branch,  //!< conditional; target in imm
    Jal,
    Jalr,
    CsrRead,
    Halt,
    Nop,
    Pause,
};

/** Map one opcode to its execution class. */
ExecClass classify(Op op);

/**
 * Per-instruction execution classes for one Program.  Built once at
 * construction; valid as long as the program's code vector is not
 * resized (programs are immutable once assembled).
 */
class DecodedProgram
{
  public:
    DecodedProgram() = default;
    explicit DecodedProgram(const Program &prog) { rebuild(prog); }

    void rebuild(const Program &prog);

    ExecClass cls(std::uint64_t pc) const { return classes_[pc]; }

  private:
    std::vector<ExecClass> classes_;
};

} // namespace fenceless::isa
