#include "isa/assembler.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace fenceless::isa
{

Addr
Program::symbol(const std::string &name) const
{
    const DataSymbol *sym = findSymbol(name);
    if (!sym)
        panic("unknown data symbol '", name, "'");
    return sym->addr;
}

const DataSymbol *
Program::findSymbol(const std::string &name) const
{
    for (const auto &s : symbols) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

Addr
Assembler::alloc(const std::string &name, std::uint64_t size,
                 std::uint64_t align)
{
    flAssert(isPowerOf2(align), "alloc alignment must be a power of two");
    const Addr addr = alignUp(next_data_, align);
    next_data_ = addr + size;
    if (!name.empty()) {
        for (const auto &s : symbols_)
            flAssert(s.name != name, "duplicate data symbol '", name, "'");
        symbols_.push_back(DataSymbol{name, addr, size});
    }
    return addr;
}

Addr
Assembler::word(const std::string &name, std::uint64_t init)
{
    const Addr addr = alloc(name, 8, 8);
    data_.write64(addr, init);
    return addr;
}

Addr
Assembler::array(const std::string &name, std::uint64_t count,
                 std::uint64_t init)
{
    const Addr addr = alloc(name, count * 8, 8);
    if (init != 0) {
        for (std::uint64_t i = 0; i < count; ++i)
            data_.write64(addr + i * 8, init);
    }
    return addr;
}

Addr
Assembler::paddedWord(const std::string &name, std::uint64_t init,
                      std::uint64_t block_size)
{
    const Addr addr = alloc(name, block_size, block_size);
    data_.write64(addr, init);
    return addr;
}

void
Assembler::init64(Addr addr, std::uint64_t value)
{
    data_.write64(addr, value);
}

void
Assembler::label(const std::string &name)
{
    flAssert(!labels_.count(name), "duplicate label '", name, "'");
    labels_[name] = code_.size();
}

void
Assembler::rrr(Op op, RegId rd, RegId rs1, RegId rs2)
{
    Inst i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    emit(i);
}

void
Assembler::rri(Op op, RegId rd, RegId rs1, std::int64_t imm)
{
    Inst i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    emit(i);
}

void
Assembler::ld(RegId rd, RegId rs1, std::int64_t disp, std::uint8_t size)
{
    Inst i;
    i.op = Op::Load;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = disp;
    i.size = size;
    emit(i);
}

void
Assembler::st(RegId rs2, RegId rs1, std::int64_t disp, std::uint8_t size)
{
    Inst i;
    i.op = Op::Store;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.imm = disp;
    i.size = size;
    emit(i);
}

void
Assembler::amoswap(RegId rd, RegId rs2, RegId addr_reg, std::uint8_t size)
{
    Inst i;
    i.op = Op::AmoSwap;
    i.rd = rd;
    i.rs1 = addr_reg;
    i.rs2 = rs2;
    i.size = size;
    emit(i);
}

void
Assembler::amoadd(RegId rd, RegId rs2, RegId addr_reg, std::uint8_t size)
{
    Inst i;
    i.op = Op::AmoAdd;
    i.rd = rd;
    i.rs1 = addr_reg;
    i.rs2 = rs2;
    i.size = size;
    emit(i);
}

void
Assembler::amocas(RegId rd, RegId expected, RegId desired, RegId addr_reg,
                  std::uint8_t size)
{
    Inst i;
    i.op = Op::AmoCas;
    i.rd = rd;
    i.rs1 = addr_reg;
    i.rs2 = expected;
    i.rs3 = desired;
    i.size = size;
    emit(i);
}

void
Assembler::fence(FenceKind kind)
{
    Inst i;
    i.op = Op::Fence;
    i.fence = kind;
    emit(i);
}

void
Assembler::branch(Op op, RegId rs1, RegId rs2, const std::string &target)
{
    Inst i;
    i.op = op;
    i.rs1 = rs1;
    i.rs2 = rs2;
    fixups_.push_back(Fixup{code_.size(), target});
    emit(i);
}

void
Assembler::beq(RegId rs1, RegId rs2, const std::string &t)
{
    branch(Op::Beq, rs1, rs2, t);
}

void
Assembler::bne(RegId rs1, RegId rs2, const std::string &t)
{
    branch(Op::Bne, rs1, rs2, t);
}

void
Assembler::blt(RegId rs1, RegId rs2, const std::string &t)
{
    branch(Op::Blt, rs1, rs2, t);
}

void
Assembler::bge(RegId rs1, RegId rs2, const std::string &t)
{
    branch(Op::Bge, rs1, rs2, t);
}

void
Assembler::bltu(RegId rs1, RegId rs2, const std::string &t)
{
    branch(Op::Bltu, rs1, rs2, t);
}

void
Assembler::bgeu(RegId rs1, RegId rs2, const std::string &t)
{
    branch(Op::Bgeu, rs1, rs2, t);
}

void
Assembler::jump(const std::string &target)
{
    Inst i;
    i.op = Op::Jal;
    i.rd = x0;
    fixups_.push_back(Fixup{code_.size(), target});
    emit(i);
}

void
Assembler::call(const std::string &target)
{
    Inst i;
    i.op = Op::Jal;
    i.rd = ra;
    fixups_.push_back(Fixup{code_.size(), target});
    emit(i);
}

void
Assembler::ret()
{
    Inst i;
    i.op = Op::Jalr;
    i.rd = x0;
    i.rs1 = ra;
    i.imm = 0;
    emit(i);
}

void
Assembler::csrr(RegId rd, Csr csr)
{
    Inst i;
    i.op = Op::CsrRead;
    i.rd = rd;
    i.csr = csr;
    emit(i);
}

void
Assembler::halt()
{
    Inst i;
    i.op = Op::Halt;
    emit(i);
}

void
Assembler::nop()
{
    Inst i;
    i.op = Op::Nop;
    emit(i);
}

void
Assembler::pause()
{
    Inst i;
    i.op = Op::Pause;
    emit(i);
}

void
Assembler::emit(const Inst &inst)
{
    if (inst.isMem()) {
        flAssert(inst.size == 1 || inst.size == 2 || inst.size == 4 ||
                 inst.size == 8, "unsupported access size ",
                 static_cast<int>(inst.size));
    }
    code_.push_back(inst);
}

Program
Assembler::finish()
{
    for (const auto &fix : fixups_) {
        auto it = labels_.find(fix.label);
        flAssert(it != labels_.end(), "undefined label '", fix.label, "'");
        code_[fix.inst_index].imm =
            static_cast<std::int64_t>(it->second);
    }

    Program prog;
    prog.code = std::move(code_);
    prog.data = std::move(data_);
    prog.data_limit = next_data_;
    prog.symbols = std::move(symbols_);
    // labels_ is sorted by name, so the first insert for an index is
    // the alphabetically-first label naming it (deterministic).
    for (const auto &[label, index] : labels_)
        prog.code_labels.try_emplace(index, label);

    code_.clear();
    labels_.clear();
    fixups_.clear();
    data_ = DataImage();
    symbols_.clear();
    next_data_ = 0x1000;

    return prog;
}

} // namespace fenceless::isa
