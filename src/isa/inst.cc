#include "isa/inst.hh"

#include <sstream>

#include "base/logging.hh"

namespace fenceless::isa
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Sll: return "sll";
      case Op::Srl: return "srl";
      case Op::Sra: return "sra";
      case Op::Slt: return "slt";
      case Op::Sltu: return "sltu";
      case Op::Mul: return "mul";
      case Op::Divu: return "divu";
      case Op::Remu: return "remu";
      case Op::Addi: return "addi";
      case Op::Andi: return "andi";
      case Op::Ori: return "ori";
      case Op::Xori: return "xori";
      case Op::Slli: return "slli";
      case Op::Srli: return "srli";
      case Op::Srai: return "srai";
      case Op::Slti: return "slti";
      case Op::Sltiu: return "sltiu";
      case Op::Li: return "li";
      case Op::Load: return "ld";
      case Op::Store: return "st";
      case Op::AmoSwap: return "amoswap";
      case Op::AmoAdd: return "amoadd";
      case Op::AmoCas: return "amocas";
      case Op::Fence: return "fence";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Bltu: return "bltu";
      case Op::Bgeu: return "bgeu";
      case Op::Jal: return "jal";
      case Op::Jalr: return "jalr";
      case Op::CsrRead: return "csrr";
      case Op::Halt: return "halt";
      case Op::Nop: return "nop";
      case Op::Pause: return "pause";
    }
    return "?";
}

namespace
{

const char *
fenceName(FenceKind k)
{
    switch (k) {
      case FenceKind::Full: return "full";
      case FenceKind::Acquire: return "acq";
      case FenceKind::Release: return "rel";
    }
    return "?";
}

const char *
csrName(Csr c)
{
    switch (c) {
      case Csr::Tid: return "tid";
      case Csr::NumCores: return "ncores";
      case Csr::Cycle: return "cycle";
      case Csr::InstRet: return "instret";
    }
    return "?";
}

} // namespace

std::string
disassemble(const Inst &inst)
{
    std::ostringstream os;
    os << opName(inst.op);
    auto r = [](RegId id) {
        std::ostringstream s;
        s << "x" << static_cast<int>(id);
        return s.str();
    };

    switch (inst.op) {
      case Op::Add: case Op::Sub: case Op::And: case Op::Or: case Op::Xor:
      case Op::Sll: case Op::Srl: case Op::Sra: case Op::Slt:
      case Op::Sltu: case Op::Mul: case Op::Divu: case Op::Remu:
        os << " " << r(inst.rd) << ", " << r(inst.rs1) << ", "
           << r(inst.rs2);
        break;
      case Op::Addi: case Op::Andi: case Op::Ori: case Op::Xori:
      case Op::Slli: case Op::Srli: case Op::Srai: case Op::Slti:
      case Op::Sltiu:
        os << " " << r(inst.rd) << ", " << r(inst.rs1) << ", " << inst.imm;
        break;
      case Op::Li:
        os << " " << r(inst.rd) << ", " << inst.imm;
        break;
      case Op::Load:
        os << static_cast<int>(inst.size) << " " << r(inst.rd) << ", "
           << inst.imm << "(" << r(inst.rs1) << ")";
        break;
      case Op::Store:
        os << static_cast<int>(inst.size) << " " << r(inst.rs2) << ", "
           << inst.imm << "(" << r(inst.rs1) << ")";
        break;
      case Op::AmoSwap: case Op::AmoAdd:
        os << static_cast<int>(inst.size) << " " << r(inst.rd) << ", "
           << r(inst.rs2) << ", (" << r(inst.rs1) << ")";
        break;
      case Op::AmoCas:
        os << static_cast<int>(inst.size) << " " << r(inst.rd) << ", "
           << r(inst.rs2) << ", " << r(inst.rs3) << ", ("
           << r(inst.rs1) << ")";
        break;
      case Op::Fence:
        os << "." << fenceName(inst.fence);
        break;
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu:
        os << " " << r(inst.rs1) << ", " << r(inst.rs2) << ", @"
           << inst.imm;
        break;
      case Op::Jal:
        os << " " << r(inst.rd) << ", @" << inst.imm;
        break;
      case Op::Jalr:
        os << " " << r(inst.rd) << ", " << r(inst.rs1) << "+" << inst.imm;
        break;
      case Op::CsrRead:
        os << " " << r(inst.rd) << ", " << csrName(inst.csr);
        break;
      case Op::Halt: case Op::Nop: case Op::Pause:
        break;
    }
    return os.str();
}

std::uint64_t
aluOp(Op op, std::uint64_t a, std::uint64_t b)
{
    using s64 = std::int64_t;
    switch (op) {
      case Op::Add: case Op::Addi: return a + b;
      case Op::Sub: return a - b;
      case Op::And: case Op::Andi: return a & b;
      case Op::Or: case Op::Ori: return a | b;
      case Op::Xor: case Op::Xori: return a ^ b;
      case Op::Sll: case Op::Slli: return a << (b & 63);
      case Op::Srl: case Op::Srli: return a >> (b & 63);
      case Op::Sra: case Op::Srai:
        return static_cast<std::uint64_t>(static_cast<s64>(a)
                                          >> (b & 63));
      case Op::Slt: case Op::Slti:
        return static_cast<s64>(a) < static_cast<s64>(b) ? 1 : 0;
      case Op::Sltu: case Op::Sltiu:
        return a < b ? 1 : 0;
      case Op::Mul: return a * b;
      case Op::Divu: return b == 0 ? ~std::uint64_t{0} : a / b;
      case Op::Remu: return b == 0 ? a : a % b;
      default:
        panic("aluOp on non-ALU opcode ", opName(op));
    }
}

bool
branchTaken(Op op, std::uint64_t a, std::uint64_t b)
{
    using s64 = std::int64_t;
    switch (op) {
      case Op::Beq: return a == b;
      case Op::Bne: return a != b;
      case Op::Blt: return static_cast<s64>(a) < static_cast<s64>(b);
      case Op::Bge: return static_cast<s64>(a) >= static_cast<s64>(b);
      case Op::Bltu: return a < b;
      case Op::Bgeu: return a >= b;
      default:
        panic("branchTaken on non-branch opcode ", opName(op));
    }
}

std::uint64_t
amoApplyOp(Op op, std::uint64_t old_value, std::uint64_t rs2_value,
           std::uint64_t rs3_value)
{
    switch (op) {
      case Op::AmoSwap:
        return rs2_value;
      case Op::AmoAdd:
        return old_value + rs2_value;
      case Op::AmoCas:
        return old_value == rs2_value ? rs3_value : old_value;
      default:
        panic("amoApply on non-AMO opcode ", opName(op));
    }
}

std::uint64_t
amoApply(const Inst &inst, std::uint64_t old_value, std::uint64_t rs2_value,
         std::uint64_t rs3_value)
{
    return amoApplyOp(inst.op, old_value, rs2_value, rs3_value);
}

} // namespace fenceless::isa
