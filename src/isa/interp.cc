#include "isa/interp.hh"

#include "base/logging.hh"

namespace fenceless::isa
{

void
loadImage(const Program &prog, FlatMemory &mem)
{
    for (const auto &[addr, byte] : prog.data.bytes())
        mem.write(addr, &byte, 1);
}

bool
Interpreter::step(ThreadContext &tc, std::uint64_t cycle)
{
    if (tc.halted)
        return false;

    flAssert(tc.pc < prog_.code.size(), "pc ", tc.pc,
             " outside program (", prog_.code.size(), " instructions)");
    const Inst &inst = prog_.code[tc.pc];
    std::uint64_t next_pc = tc.pc + 1;

    // Dispatch on the pre-decoded execution class (computed once per
    // static instruction at construction) instead of re-classifying
    // the ~40-way opcode space on every dynamic step.
    switch (decoded_.cls(tc.pc)) {
      case ExecClass::AluReg:
        tc.setReg(inst.rd,
                  aluOp(inst.op, tc.reg(inst.rs1), tc.reg(inst.rs2)));
        break;

      case ExecClass::AluImm:
        tc.setReg(inst.rd,
                  aluOp(inst.op, tc.reg(inst.rs1),
                        static_cast<std::uint64_t>(inst.imm)));
        break;

      case ExecClass::Li:
        tc.setReg(inst.rd, static_cast<std::uint64_t>(inst.imm));
        break;

      case ExecClass::Load: {
        const Addr addr = tc.reg(inst.rs1) + inst.imm;
        flAssert(addr % inst.size == 0, "misaligned load @", addr);
        tc.setReg(inst.rd, mem_.readInt(addr, inst.size));
        break;
      }

      case ExecClass::Store: {
        const Addr addr = tc.reg(inst.rs1) + inst.imm;
        flAssert(addr % inst.size == 0, "misaligned store @", addr);
        mem_.writeInt(addr, inst.size, tc.reg(inst.rs2));
        break;
      }

      case ExecClass::Amo: {
        const Addr addr = tc.reg(inst.rs1);
        flAssert(addr % inst.size == 0, "misaligned AMO @", addr);
        const std::uint64_t old_v = mem_.readInt(addr, inst.size);
        const std::uint64_t new_v =
            amoApply(inst, old_v, tc.reg(inst.rs2), tc.reg(inst.rs3));
        mem_.writeInt(addr, inst.size, new_v);
        tc.setReg(inst.rd, old_v);
        break;
      }

      case ExecClass::Fence:
        break; // no functional effect

      case ExecClass::Branch:
        if (branchTaken(inst.op, tc.reg(inst.rs1), tc.reg(inst.rs2)))
            next_pc = static_cast<std::uint64_t>(inst.imm);
        break;

      case ExecClass::Jal:
        tc.setReg(inst.rd, tc.pc + 1);
        next_pc = static_cast<std::uint64_t>(inst.imm);
        break;

      case ExecClass::Jalr:
        tc.setReg(inst.rd, tc.pc + 1);
        next_pc = tc.reg(inst.rs1) + inst.imm;
        break;

      case ExecClass::CsrRead:
        switch (inst.csr) {
          case Csr::Tid:
            tc.setReg(inst.rd, tc.tid);
            break;
          case Csr::NumCores:
            tc.setReg(inst.rd, num_cores_);
            break;
          case Csr::Cycle:
            tc.setReg(inst.rd, cycle);
            break;
          case Csr::InstRet:
            tc.setReg(inst.rd, tc.instret);
            break;
        }
        break;

      case ExecClass::Halt:
        tc.halted = true;
        ++tc.instret;
        return false;

      case ExecClass::Nop:
      case ExecClass::Pause:
        break;
    }

    tc.pc = next_pc;
    ++tc.instret;
    return true;
}

ReferenceExecutor::ReferenceExecutor(const Program &prog,
                                     std::uint32_t num_cores,
                                     std::uint64_t quantum)
    : prog_(prog), interp_(prog, mem_, num_cores), quantum_(quantum)
{
    flAssert(num_cores > 0, "need at least one thread");
    flAssert(quantum > 0, "quantum must be positive");
    loadImage(prog, mem_);
    threads_.resize(num_cores);
    for (std::uint32_t i = 0; i < num_cores; ++i) {
        threads_[i].tid = i;
        // Startup convention: tp holds the thread id.
        threads_[i].setReg(tp, i);
    }
}

void
ReferenceExecutor::randomize(std::uint64_t seed)
{
    randomized_ = true;
    rng_.seed(seed);
}

bool
ReferenceExecutor::run(std::uint64_t max_steps)
{
    std::uint32_t next = 0;
    while (total_insts_ < max_steps) {
        // Pick a runnable thread.
        std::uint32_t chosen = threads_.size();
        if (randomized_) {
            std::uint32_t live = 0;
            for (const auto &t : threads_)
                live += !t.halted;
            if (live == 0)
                return true;
            std::uint32_t pick =
                static_cast<std::uint32_t>(rng_.range(0, live - 1));
            for (std::uint32_t i = 0; i < threads_.size(); ++i) {
                if (threads_[i].halted)
                    continue;
                if (pick-- == 0) {
                    chosen = i;
                    break;
                }
            }
        } else {
            for (std::uint32_t n = 0; n < threads_.size(); ++n) {
                const std::uint32_t i = (next + n) % threads_.size();
                if (!threads_[i].halted) {
                    chosen = i;
                    next = (i + 1) % threads_.size();
                    break;
                }
            }
            if (chosen == threads_.size())
                return true;
        }

        ThreadContext &tc = threads_[chosen];
        std::uint64_t quantum = randomized_
            ? rng_.range(1, quantum_) : quantum_;
        for (std::uint64_t q = 0; q < quantum && !tc.halted; ++q) {
            interp_.step(tc, total_insts_);
            ++total_insts_;
        }
    }
    // Step budget exhausted: report whether everything halted anyway.
    for (const auto &t : threads_) {
        if (!t.halted)
            return false;
    }
    return true;
}

} // namespace fenceless::isa
