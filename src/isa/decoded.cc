#include "isa/decoded.hh"

namespace fenceless::isa
{

ExecClass
classify(Op op)
{
    switch (op) {
      case Op::Add: case Op::Sub: case Op::And: case Op::Or:
      case Op::Xor: case Op::Sll: case Op::Srl: case Op::Sra:
      case Op::Slt: case Op::Sltu: case Op::Mul: case Op::Divu:
      case Op::Remu:
        return ExecClass::AluReg;
      case Op::Addi: case Op::Andi: case Op::Ori: case Op::Xori:
      case Op::Slli: case Op::Srli: case Op::Srai: case Op::Slti:
      case Op::Sltiu:
        return ExecClass::AluImm;
      case Op::Li:
        return ExecClass::Li;
      case Op::Load:
        return ExecClass::Load;
      case Op::Store:
        return ExecClass::Store;
      case Op::AmoSwap: case Op::AmoAdd: case Op::AmoCas:
        return ExecClass::Amo;
      case Op::Fence:
        return ExecClass::Fence;
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu:
        return ExecClass::Branch;
      case Op::Jal:
        return ExecClass::Jal;
      case Op::Jalr:
        return ExecClass::Jalr;
      case Op::CsrRead:
        return ExecClass::CsrRead;
      case Op::Halt:
        return ExecClass::Halt;
      case Op::Nop:
        return ExecClass::Nop;
      case Op::Pause:
        return ExecClass::Pause;
    }
    return ExecClass::Nop; // unreachable
}

void
DecodedProgram::rebuild(const Program &prog)
{
    classes_.clear();
    classes_.reserve(prog.code.size());
    for (const Inst &inst : prog.code)
        classes_.push_back(classify(inst.op));
}

} // namespace fenceless::isa
