/**
 * @file
 * The guest mini-ISA.
 *
 * A small 64-bit RISC instruction set, rich enough to express real
 * multithreaded programs (spin locks, barriers, lock-free queues) whose
 * timing feeds back into the memory system.  Instructions are kept in
 * decoded form; the "program counter" is an instruction index.
 *
 * Registers: x0..x31, with x0 hard-wired to zero (RISC-style).
 * Memory operands are byte-addressed; loads/stores are 1/2/4/8 bytes,
 * naturally aligned, zero-extending.
 */

#pragma once

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace fenceless::isa
{

/** Number of architectural integer registers. */
inline constexpr unsigned num_regs = 32;

/** Register index type. */
using RegId = std::uint8_t;

/** Conventional register names used by the assembler and runtime. */
enum Reg : RegId
{
    x0 = 0,  //!< hard-wired zero
    ra = 1,  //!< return address (JAL link)
    sp = 2,  //!< stack pointer
    gp = 3,  //!< global pointer
    tp = 4,  //!< thread id (loaded at startup by convention)
    t0 = 5, t1 = 6, t2 = 7, t3 = 8, t4 = 9, t5 = 10, t6 = 11,
    a0 = 12, a1 = 13, a2 = 14, a3 = 15, a4 = 16, a5 = 17,
    s0 = 18, s1 = 19, s2 = 20, s3 = 21, s4 = 22, s5 = 23,
    s6 = 24, s7 = 25, s8 = 26, s9 = 27, s10 = 28, s11 = 29,
    t7 = 30, t8 = 31,
};

/** Operation codes. */
enum class Op : std::uint8_t
{
    // ALU register-register
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Mul, Divu, Remu,
    // ALU register-immediate
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti, Sltiu,
    // Load a 64-bit immediate
    Li,
    // Memory
    Load,     //!< rd <- mem[rs1 + imm]  (size bytes, zero-extended)
    Store,    //!< mem[rs1 + imm] <- rs2 (size bytes)
    // Atomics (address in rs1, no displacement, size bytes)
    AmoSwap,  //!< rd <- mem; mem <- rs2
    AmoAdd,   //!< rd <- mem; mem <- mem + rs2
    AmoCas,   //!< rd <- mem; if (mem == rs2) mem <- rs3
    // Fences
    Fence,    //!< ordering barrier; kind in Inst::fence
    // Control (targets are absolute instruction indices, in imm)
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Jal,      //!< rd <- pc + 1; pc <- imm
    Jalr,     //!< rd <- pc + 1; pc <- rs1 + imm
    // System
    CsrRead,  //!< rd <- csr (which csr in Inst::csr)
    Halt,     //!< thread finished
    Nop,
    Pause,    //!< spin-loop hint (timing: one idle cycle)
};

/** Fence flavours; baseline cost depends on the consistency model. */
enum class FenceKind : std::uint8_t
{
    Full,    //!< orders everything (e.g. Dekker, barrier publish)
    Acquire, //!< orders an acquiring load/AMO before later accesses
    Release, //!< orders earlier accesses before a releasing store
};

/** Readable control/status registers. */
enum class Csr : std::uint8_t
{
    Tid,      //!< this hardware thread's id (0-based)
    NumCores, //!< number of cores in the system
    Cycle,    //!< current cycle count
    InstRet,  //!< instructions retired by this core
};

/** One decoded instruction. */
struct Inst
{
    Op op = Op::Nop;
    RegId rd = 0;
    RegId rs1 = 0;
    RegId rs2 = 0;
    RegId rs3 = 0;
    std::uint8_t size = 8; //!< memory access size in bytes
    FenceKind fence = FenceKind::Full;
    Csr csr = Csr::Tid;
    std::int64_t imm = 0;

    bool isLoad() const { return op == Op::Load; }
    bool isStore() const { return op == Op::Store; }

    bool
    isAmo() const
    {
        return op == Op::AmoSwap || op == Op::AmoAdd || op == Op::AmoCas;
    }

    bool isFence() const { return op == Op::Fence; }
    bool isMem() const { return isLoad() || isStore() || isAmo(); }

    bool
    isBranch() const
    {
        switch (op) {
          case Op::Beq: case Op::Bne: case Op::Blt:
          case Op::Bge: case Op::Bltu: case Op::Bgeu:
          case Op::Jal: case Op::Jalr:
            return true;
          default:
            return false;
        }
    }
};

/** @return the mnemonic for @p op. */
const char *opName(Op op);

/** @return a human-readable rendering of @p inst (for traces/tests). */
std::string disassemble(const Inst &inst);

/**
 * Shared ALU semantics used by both the functional interpreter and the
 * timing core, so they cannot diverge.
 *
 * @param op   an ALU operation (register-register or register-immediate)
 * @param a    first operand value
 * @param b    second operand value (register or immediate, pre-selected)
 * @return the result value
 */
std::uint64_t aluOp(Op op, std::uint64_t a, std::uint64_t b);

/** Shared branch-taken decision for conditional branches. */
bool branchTaken(Op op, std::uint64_t a, std::uint64_t b);

/**
 * Apply an AMO to an old memory value.
 *
 * @return the new memory value (may equal @p old_value for a failed CAS).
 */
std::uint64_t amoApply(const Inst &inst, std::uint64_t old_value,
                       std::uint64_t rs2_value, std::uint64_t rs3_value);

/** Opcode-only form of amoApply, for callers that pre-read operands. */
std::uint64_t amoApplyOp(Op op, std::uint64_t old_value,
                         std::uint64_t rs2_value,
                         std::uint64_t rs3_value);

} // namespace fenceless::isa
