/**
 * @file
 * A complete guest program: code, initial data image, and layout info.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "isa/inst.hh"

namespace fenceless::isa
{

/**
 * The initial contents of the guest data segment.  Unwritten bytes are
 * zero.  Kept sparse so huge zero-filled arrays cost nothing.
 */
class DataImage
{
  public:
    void
    write(Addr addr, const void *src, std::size_t len)
    {
        const auto *bytes = static_cast<const std::uint8_t *>(src);
        for (std::size_t i = 0; i < len; ++i)
            bytes_[addr + i] = bytes[i];
    }

    void
    write64(Addr addr, std::uint64_t value)
    {
        write(addr, &value, sizeof(value));
    }

    std::uint8_t
    read(Addr addr) const
    {
        auto it = bytes_.find(addr);
        return it == bytes_.end() ? 0 : it->second;
    }

    const std::map<Addr, std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::map<Addr, std::uint8_t> bytes_;
};

/** A symbol in the data segment (name -> address, for checkers). */
struct DataSymbol
{
    std::string name;
    Addr addr;
    std::uint64_t size;
};

/** An assembled guest program shared by every core in the system. */
struct Program
{
    std::vector<Inst> code;
    DataImage data;
    Addr data_limit = 0;       //!< one past the highest allocated address
    std::vector<DataSymbol> symbols;

    /**
     * Code labels (instruction index -> label name), exported by the
     * assembler so profilers can symbolize program counters.  When
     * several labels name the same index, the alphabetically first
     * wins.
     */
    std::map<std::uint64_t, std::string> code_labels;

    /** Look up a data symbol's address; panics if absent. */
    Addr symbol(const std::string &name) const;

    /** Look up a data symbol; nullptr if absent. */
    const DataSymbol *findSymbol(const std::string &name) const;
};

} // namespace fenceless::isa
