/**
 * @file
 * An in-memory assembler for the guest mini-ISA.
 *
 * Workloads build programs through this fluent interface:
 *
 *     Assembler as;
 *     Addr counter = as.word("counter", 0);
 *     as.li(t0, 1);
 *     as.label("loop");
 *     as.amoadd(t1, t0, a0);
 *     as.bne(t1, t2, "loop");
 *     as.halt();
 *     Program prog = as.finish();
 *
 * Labels may be referenced before they are defined; all references are
 * resolved in finish(), which panics on undefined or duplicate labels.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "isa/inst.hh"
#include "isa/program.hh"

namespace fenceless::isa
{

class Assembler
{
  public:
    // --- data segment -----------------------------------------------

    /**
     * Allocate @p size bytes in the data segment.
     * @param name    symbol name (must be unique; "" for anonymous)
     * @param size    bytes to allocate
     * @param align   required alignment (power of two)
     * @return the allocated address
     */
    Addr alloc(const std::string &name, std::uint64_t size,
               std::uint64_t align = 8);

    /** Allocate and initialize one 64-bit word. */
    Addr word(const std::string &name, std::uint64_t init);

    /** Allocate an array of @p count 64-bit words, all @p init. */
    Addr array(const std::string &name, std::uint64_t count,
               std::uint64_t init = 0);

    /**
     * Allocate a 64-bit word alone in its own cache block, padding to
     * @p block_size.  Used to avoid (or create) false sharing on purpose.
     */
    Addr paddedWord(const std::string &name, std::uint64_t init,
                    std::uint64_t block_size = 64);

    /** Store a 64-bit initial value at an already-allocated address. */
    void init64(Addr addr, std::uint64_t value);

    // --- labels ------------------------------------------------------

    /** Define @p name at the current code position. */
    void label(const std::string &name);

    /** @return current instruction index (for computed jumps/tests). */
    std::size_t here() const { return code_.size(); }

    // --- ALU ---------------------------------------------------------

    void add(RegId rd, RegId rs1, RegId rs2) { rrr(Op::Add, rd, rs1, rs2); }
    void sub(RegId rd, RegId rs1, RegId rs2) { rrr(Op::Sub, rd, rs1, rs2); }
    void and_(RegId rd, RegId rs1, RegId rs2) { rrr(Op::And, rd, rs1, rs2); }
    void or_(RegId rd, RegId rs1, RegId rs2) { rrr(Op::Or, rd, rs1, rs2); }
    void xor_(RegId rd, RegId rs1, RegId rs2) { rrr(Op::Xor, rd, rs1, rs2); }
    void sll(RegId rd, RegId rs1, RegId rs2) { rrr(Op::Sll, rd, rs1, rs2); }
    void srl(RegId rd, RegId rs1, RegId rs2) { rrr(Op::Srl, rd, rs1, rs2); }
    void slt(RegId rd, RegId rs1, RegId rs2) { rrr(Op::Slt, rd, rs1, rs2); }
    void sltu(RegId rd, RegId rs1, RegId rs2)
    {
        rrr(Op::Sltu, rd, rs1, rs2);
    }
    void mul(RegId rd, RegId rs1, RegId rs2) { rrr(Op::Mul, rd, rs1, rs2); }
    void divu(RegId rd, RegId rs1, RegId rs2)
    {
        rrr(Op::Divu, rd, rs1, rs2);
    }
    void remu(RegId rd, RegId rs1, RegId rs2)
    {
        rrr(Op::Remu, rd, rs1, rs2);
    }

    void addi(RegId rd, RegId rs1, std::int64_t imm)
    {
        rri(Op::Addi, rd, rs1, imm);
    }
    void andi(RegId rd, RegId rs1, std::int64_t imm)
    {
        rri(Op::Andi, rd, rs1, imm);
    }
    void ori(RegId rd, RegId rs1, std::int64_t imm)
    {
        rri(Op::Ori, rd, rs1, imm);
    }
    void xori(RegId rd, RegId rs1, std::int64_t imm)
    {
        rri(Op::Xori, rd, rs1, imm);
    }
    void slli(RegId rd, RegId rs1, std::int64_t imm)
    {
        rri(Op::Slli, rd, rs1, imm);
    }
    void srli(RegId rd, RegId rs1, std::int64_t imm)
    {
        rri(Op::Srli, rd, rs1, imm);
    }
    void slti(RegId rd, RegId rs1, std::int64_t imm)
    {
        rri(Op::Slti, rd, rs1, imm);
    }
    void sltiu(RegId rd, RegId rs1, std::int64_t imm)
    {
        rri(Op::Sltiu, rd, rs1, imm);
    }

    /** Load a full 64-bit immediate (also used for data addresses). */
    void
    li(RegId rd, std::uint64_t imm)
    {
        Inst i;
        i.op = Op::Li;
        i.rd = rd;
        i.imm = static_cast<std::int64_t>(imm);
        emit(i);
    }

    /** rd <- rs (assembler alias for addi rd, rs, 0). */
    void mv(RegId rd, RegId rs) { addi(rd, rs, 0); }

    // --- memory ------------------------------------------------------

    void ld(RegId rd, RegId rs1, std::int64_t disp = 0,
            std::uint8_t size = 8);
    void st(RegId rs2, RegId rs1, std::int64_t disp = 0,
            std::uint8_t size = 8);

    void amoswap(RegId rd, RegId rs2, RegId addr_reg,
                 std::uint8_t size = 8);
    void amoadd(RegId rd, RegId rs2, RegId addr_reg, std::uint8_t size = 8);
    void amocas(RegId rd, RegId expected, RegId desired, RegId addr_reg,
                std::uint8_t size = 8);

    void fence(FenceKind kind = FenceKind::Full);
    void fenceAcquire() { fence(FenceKind::Acquire); }
    void fenceRelease() { fence(FenceKind::Release); }

    // --- control -----------------------------------------------------

    void beq(RegId rs1, RegId rs2, const std::string &target);
    void bne(RegId rs1, RegId rs2, const std::string &target);
    void blt(RegId rs1, RegId rs2, const std::string &target);
    void bge(RegId rs1, RegId rs2, const std::string &target);
    void bltu(RegId rs1, RegId rs2, const std::string &target);
    void bgeu(RegId rs1, RegId rs2, const std::string &target);

    /** Unconditional jump (jal x0). */
    void jump(const std::string &target);

    /** Call: jal ra, target. */
    void call(const std::string &target);

    /** Return: jalr x0, ra+0. */
    void ret();

    // --- system ------------------------------------------------------

    void csrr(RegId rd, Csr csr);
    void halt();
    void nop();
    void pause();

    // --- finalization -------------------------------------------------

    /**
     * Resolve all label references and hand over the program.
     * The assembler is left empty and reusable.
     */
    Program finish();

  private:
    void rrr(Op op, RegId rd, RegId rs1, RegId rs2);
    void rri(Op op, RegId rd, RegId rs1, std::int64_t imm);
    void branch(Op op, RegId rs1, RegId rs2, const std::string &target);
    void emit(const Inst &inst);

    struct Fixup
    {
        std::size_t inst_index;
        std::string label;
    };

    std::vector<Inst> code_;
    std::map<std::string, std::size_t> labels_;
    std::vector<Fixup> fixups_;
    DataImage data_;
    std::vector<DataSymbol> symbols_;
    Addr next_data_ = 0x1000; //!< leave low page unused to catch null derefs
};

} // namespace fenceless::isa
