/**
 * @file
 * A generic set-associative cache array with LRU replacement.
 *
 * Shared by the L1 controllers and the shared L2: the controllers define
 * their own block type (deriving from CacheBlockBase) carrying protocol
 * state; the array handles geometry, lookup, and victim selection.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace fenceless::mem
{

/**
 * A view of one block's payload inside the owning CacheArray's arena.
 *
 * Blocks do not own their storage: a cache array holds one contiguous
 * allocation for all of its blocks and binds each block's view into it
 * at construction.  This keeps building a cache to a single allocation
 * (and a single memset) instead of one heap allocation per block, which
 * dominates System construction cost when models are built frequently.
 */
class BlockData
{
  public:
    void
    bind(std::uint8_t *ptr, std::uint32_t len)
    {
        ptr_ = ptr;
        len_ = len;
    }

    std::size_t size() const { return len_; }
    std::uint8_t *data() { return ptr_; }
    const std::uint8_t *data() const { return ptr_; }

    /** Copy a full payload in (sizes must match). */
    BlockData &
    operator=(const std::vector<std::uint8_t> &v)
    {
        flAssert(v.size() == len_, "block payload size mismatch");
        std::memcpy(ptr_, v.data(), len_);
        return *this;
    }

    bool
    operator==(const BlockData &o) const
    {
        return len_ == o.len_ &&
               std::memcmp(ptr_, o.ptr_, len_) == 0;
    }
    bool operator!=(const BlockData &o) const { return !(*this == o); }

  private:
    std::uint8_t *ptr_ = nullptr;
    std::uint32_t len_ = 0;
};

/** State common to all cache blocks. */
struct CacheBlockBase
{
    Addr block_addr = invalid_addr; //!< aligned address of cached block
    bool valid = false;
    std::uint64_t use_stamp = 0;    //!< monotonic LRU stamp
    BlockData data;                 //!< payload view into the arena

    std::uint64_t
    readInt(Addr offset, unsigned size) const
    {
        flAssert(offset + size <= data.size(), "block read out of range");
        std::uint64_t v = 0;
        std::memcpy(&v, data.data() + offset, size);
        return v;
    }

    void
    writeInt(Addr offset, unsigned size, std::uint64_t value)
    {
        flAssert(offset + size <= data.size(), "block write out of range");
        std::memcpy(data.data() + offset, &value, size);
    }
};

template <typename BlockT>
class CacheArray
{
  public:
    /**
     * @param size_bytes  total capacity
     * @param assoc       ways per set
     * @param block_size  block (line) size in bytes
     * @param index_shift block-index bits skipped when selecting the
     *        set.  A directory bank serving every 2^k-th block passes
     *        k here so the addresses it actually sees spread over all
     *        of its sets instead of aliasing into 1/2^k of them.
     */
    CacheArray(std::uint64_t size_bytes, unsigned assoc,
               unsigned block_size, unsigned index_shift = 0)
        : assoc_(assoc), block_size_(block_size),
          index_shift_(index_shift)
    {
        flAssert(isPowerOf2(block_size), "block size must be a power of 2");
        flAssert(assoc > 0, "associativity must be positive");
        flAssert(size_bytes % (static_cast<std::uint64_t>(assoc)
                               * block_size) == 0,
                 "cache size not divisible by assoc*block_size");
        num_sets_ = size_bytes / (static_cast<std::uint64_t>(assoc)
                                  * block_size);
        flAssert(isPowerOf2(num_sets_), "number of sets must be a power "
                 "of 2 (got ", num_sets_, ")");
        blocks_.resize(num_sets_ * assoc_);
        arena_.assign(blocks_.size()
                      * static_cast<std::uint64_t>(block_size_), 0);
        for (std::size_t i = 0; i < blocks_.size(); ++i)
            blocks_[i].data.bind(arena_.data() + i * block_size_,
                                 block_size_);
    }

    unsigned blockSize() const { return block_size_; }
    std::uint64_t numSets() const { return num_sets_; }
    unsigned assoc() const { return assoc_; }
    std::uint64_t numBlocks() const { return blocks_.size(); }

    Addr blockAlign(Addr a) const { return alignDown(a, block_size_); }

    std::uint64_t
    setIndex(Addr a) const
    {
        return ((a / block_size_) >> index_shift_) % num_sets_;
    }

    /** @return the block holding @p addr, or nullptr. */
    BlockT *
    find(Addr addr)
    {
        const Addr ba = blockAlign(addr);
        const std::uint64_t set = setIndex(ba);
        for (unsigned w = 0; w < assoc_; ++w) {
            BlockT &b = blocks_[set * assoc_ + w];
            if (b.valid && b.block_addr == ba)
                return &b;
        }
        return nullptr;
    }

    const BlockT *
    find(Addr addr) const
    {
        return const_cast<CacheArray *>(this)->find(addr);
    }

    /** Mark @p block most-recently used. */
    void touch(BlockT &block) { block.use_stamp = ++stamp_; }

    /** @return an invalid (free) way in @p addr's set, or nullptr. */
    BlockT *
    findFreeWay(Addr addr)
    {
        const std::uint64_t set = setIndex(blockAlign(addr));
        for (unsigned w = 0; w < assoc_; ++w) {
            BlockT &b = blocks_[set * assoc_ + w];
            if (!b.valid)
                return &b;
        }
        return nullptr;
    }

    /**
     * @return the least-recently-used evictable block in @p addr's set
     *         (per @p can_evict), or nullptr if none qualifies.
     */
    template <typename Pred>
    BlockT *
    findVictim(Addr addr, Pred can_evict)
    {
        const std::uint64_t set = setIndex(blockAlign(addr));
        BlockT *victim = nullptr;
        for (unsigned w = 0; w < assoc_; ++w) {
            BlockT &b = blocks_[set * assoc_ + w];
            if (!b.valid || !can_evict(b))
                continue;
            if (!victim || b.use_stamp < victim->use_stamp)
                victim = &b;
        }
        return victim;
    }

    /** Visit every valid block. */
    template <typename Fn>
    void
    forEach(Fn fn)
    {
        for (auto &b : blocks_) {
            if (b.valid)
                fn(b);
        }
    }

    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const auto &b : blocks_) {
            if (b.valid)
                fn(b);
        }
    }

  private:
    unsigned assoc_;
    unsigned block_size_;
    unsigned index_shift_;
    std::uint64_t num_sets_ = 0;
    std::uint64_t stamp_ = 0;
    std::vector<BlockT> blocks_;
    std::vector<std::uint8_t> arena_; //!< backing store for all payloads
};

} // namespace fenceless::mem
