/**
 * @file
 * A generic set-associative cache array with LRU replacement.
 *
 * Shared by the L1 controllers and the shared L2: the controllers define
 * their own block type (deriving from CacheBlockBase) carrying protocol
 * state; the array handles geometry, lookup, and victim selection.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace fenceless::mem
{

/** State common to all cache blocks. */
struct CacheBlockBase
{
    Addr block_addr = invalid_addr; //!< aligned address of cached block
    bool valid = false;
    std::uint64_t use_stamp = 0;    //!< monotonic LRU stamp
    std::vector<std::uint8_t> data;

    std::uint64_t
    readInt(Addr offset, unsigned size) const
    {
        flAssert(offset + size <= data.size(), "block read out of range");
        std::uint64_t v = 0;
        std::memcpy(&v, data.data() + offset, size);
        return v;
    }

    void
    writeInt(Addr offset, unsigned size, std::uint64_t value)
    {
        flAssert(offset + size <= data.size(), "block write out of range");
        std::memcpy(data.data() + offset, &value, size);
    }
};

template <typename BlockT>
class CacheArray
{
  public:
    /**
     * @param size_bytes  total capacity
     * @param assoc       ways per set
     * @param block_size  block (line) size in bytes
     */
    CacheArray(std::uint64_t size_bytes, unsigned assoc,
               unsigned block_size)
        : assoc_(assoc), block_size_(block_size)
    {
        flAssert(isPowerOf2(block_size), "block size must be a power of 2");
        flAssert(assoc > 0, "associativity must be positive");
        flAssert(size_bytes % (static_cast<std::uint64_t>(assoc)
                               * block_size) == 0,
                 "cache size not divisible by assoc*block_size");
        num_sets_ = size_bytes / (static_cast<std::uint64_t>(assoc)
                                  * block_size);
        flAssert(isPowerOf2(num_sets_), "number of sets must be a power "
                 "of 2 (got ", num_sets_, ")");
        blocks_.resize(num_sets_ * assoc_);
        for (auto &b : blocks_)
            b.data.assign(block_size_, 0);
    }

    unsigned blockSize() const { return block_size_; }
    std::uint64_t numSets() const { return num_sets_; }
    unsigned assoc() const { return assoc_; }
    std::uint64_t numBlocks() const { return blocks_.size(); }

    Addr blockAlign(Addr a) const { return alignDown(a, block_size_); }

    std::uint64_t
    setIndex(Addr a) const
    {
        return (a / block_size_) % num_sets_;
    }

    /** @return the block holding @p addr, or nullptr. */
    BlockT *
    find(Addr addr)
    {
        const Addr ba = blockAlign(addr);
        const std::uint64_t set = setIndex(ba);
        for (unsigned w = 0; w < assoc_; ++w) {
            BlockT &b = blocks_[set * assoc_ + w];
            if (b.valid && b.block_addr == ba)
                return &b;
        }
        return nullptr;
    }

    const BlockT *
    find(Addr addr) const
    {
        return const_cast<CacheArray *>(this)->find(addr);
    }

    /** Mark @p block most-recently used. */
    void touch(BlockT &block) { block.use_stamp = ++stamp_; }

    /** @return an invalid (free) way in @p addr's set, or nullptr. */
    BlockT *
    findFreeWay(Addr addr)
    {
        const std::uint64_t set = setIndex(blockAlign(addr));
        for (unsigned w = 0; w < assoc_; ++w) {
            BlockT &b = blocks_[set * assoc_ + w];
            if (!b.valid)
                return &b;
        }
        return nullptr;
    }

    /**
     * @return the least-recently-used evictable block in @p addr's set
     *         (per @p can_evict), or nullptr if none qualifies.
     */
    template <typename Pred>
    BlockT *
    findVictim(Addr addr, Pred can_evict)
    {
        const std::uint64_t set = setIndex(blockAlign(addr));
        BlockT *victim = nullptr;
        for (unsigned w = 0; w < assoc_; ++w) {
            BlockT &b = blocks_[set * assoc_ + w];
            if (!b.valid || !can_evict(b))
                continue;
            if (!victim || b.use_stamp < victim->use_stamp)
                victim = &b;
        }
        return victim;
    }

    /** Visit every valid block. */
    template <typename Fn>
    void
    forEach(Fn fn)
    {
        for (auto &b : blocks_) {
            if (b.valid)
                fn(b);
        }
    }

    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const auto &b : blocks_) {
            if (b.valid)
                fn(b);
        }
    }

  private:
    unsigned assoc_;
    unsigned block_size_;
    std::uint64_t num_sets_ = 0;
    std::uint64_t stamp_ = 0;
    std::vector<BlockT> blocks_;
};

} // namespace fenceless::mem
