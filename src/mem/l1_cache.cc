#include "mem/l1_cache.hh"

#include <algorithm>

#include <sstream>

#include "base/logging.hh"
#include "base/trace.hh"

namespace fenceless::mem
{

const char *
l1StateName(L1State s)
{
    switch (s) {
      case L1State::I: return "I";
      case L1State::S: return "S";
      case L1State::E: return "E";
      case L1State::M: return "M";
      case L1State::MStale: return "MStale";
    }
    return "?";
}

L1Cache::L1Cache(sim::SimContext &ctx, const std::string &name,
                 const Params &params, CoreId core_id,
                 const DirectoryMap &dirmap, Network &network)
    : SimObject(ctx, name), params_(params), core_id_(core_id),
      node_id_(core_id), dirmap_(dirmap), network_(network),
      prof_(ctx.profiler.ifEnabled()),
      rtrace_(ctx.spans.ifEnabled()),
      array_(params.size, params.assoc, params.block_size),
      stat_loads_(statGroup().addScalar("loads", "load accesses")),
      stat_stores_(statGroup().addScalar("stores", "store accesses")),
      stat_amos_(statGroup().addScalar("amos", "atomic accesses")),
      stat_hits_(statGroup().addScalar("hits", "accesses hitting with "
                                       "sufficient permission")),
      stat_misses_(statGroup().addScalar("misses", "accesses taking the "
                                         "miss path")),
      stat_evictions_(statGroup().addScalar("evictions",
                                            "blocks evicted")),
      stat_wb_clean_(statGroup().addScalar("wb_clean", "pre-speculation "
                                           "clean writebacks (WbClean)")),
      stat_invs_(statGroup().addScalar("invs_received",
                                       "invalidations received")),
      stat_fwds_(statGroup().addScalar("fwds_received",
                                       "forwarded probes received")),
      stat_spec_conflicts_(statGroup().addScalar("spec_conflicts",
          "remote probes conflicting with live speculation tags")),
      stat_overflow_waits_(statGroup().addScalar("spec_overflow_waits",
          "fills blocked because the set was full of speculative "
          "blocks")),
      stat_fill_retries_(statGroup().addScalar("fill_retries",
          "buffered fills discarded by a probe and re-requested")),
      stat_prefetches_(statGroup().addScalar("prefetches",
          "exclusive-ownership prefetches from the store buffer")),
      stat_miss_latency_(statGroup().addDistribution("miss_latency",
          "cycles from miss issue to fill install")),
      stat_miss_fill_wait_(statGroup().addDistribution("miss_fill_wait",
          "cycles a buffered fill waited for an evictable way"))
{
    network_.registerEndpoint(node_id_, this);
}

// ---------------------------------------------------------------------
// speculation tags
// ---------------------------------------------------------------------

bool
L1Cache::srValid(const L1Block &blk) const
{
    return spec_ && spec_->specActive() &&
           blk.sr_epoch == spec_->specEpoch();
}

bool
L1Cache::swValid(const L1Block &blk) const
{
    return spec_ && spec_->specActive() &&
           blk.sw_epoch == spec_->specEpoch();
}

void
L1Cache::markSpecRead(L1Block &blk)
{
    if (srValid(blk))
        return;
    blk.sr_epoch = spec_->specEpoch();
    sr_blocks_.push_back(blk.block_addr);
}

void
L1Cache::markSpecWritten(L1Block &blk)
{
    if (swValid(blk))
        return;
    blk.sw_epoch = spec_->specEpoch();
    sw_blocks_.push_back(blk.block_addr);
}

void
L1Cache::commitSpecWrites()
{
    for (Addr addr : sw_blocks_) {
        L1Block *blk = array_.find(addr);
        flAssert(blk && blk->valid && blk->state == L1State::M,
                 name(), ": commit lost a speculatively-written block 0x",
                 std::hex, addr);
        // The speculative data becomes architectural: the block is now an
        // ordinary dirty M block (the L2 keeps the stale pre-spec copy
        // until eviction or a probe, as for any dirty block).
        blk->dirty = true;
    }
    sw_blocks_.clear();
    sr_blocks_.clear();
}

void
L1Cache::rollbackSpecWrites()
{
    for (Addr addr : sw_blocks_) {
        L1Block *blk = array_.find(addr);
        flAssert(blk && blk->valid && blk->state == L1State::M,
                 name(), ": rollback lost a speculatively-written block "
                 "0x", std::hex, addr);
        // Discard the speculative data.  The directory still records us
        // as owner and the inclusive L2 holds the pre-speculation copy
        // (guaranteed by clean-before-spec-write), so the block becomes
        // MStale: owned, data invalid.
        blk->state = L1State::MStale;
        blk->dirty = false;
#ifdef FL_DEBUG_WATCH
        if (addr == (FL_DEBUG_WATCH & ~63UL)) {
            fprintf(stderr, "[%lu] %s rollback SW block 0x%lx\n",
                    curTick(), name().c_str(), addr);
        }
#endif
    }
    sw_blocks_.clear();
    sr_blocks_.clear();
}

void
L1Cache::specCleared()
{
    // Deliberately asynchronous: this is called from deep inside
    // rollback paths that can themselves run inside a probe handler
    // (specConflict during handleFwd/handleInv) or inside
    // tryCompleteFill (specOverflow).  Retrying fills synchronously
    // there would evict -- and possibly reuse -- the very block the
    // caller still holds a pointer to.
    if (retry_scheduled_)
        return;
    retry_scheduled_ = true;
    sim::scheduleOneShot(eventq(), curTick() + 1, [this] {
        retry_scheduled_ = false;
        retryPendingFills();
    });
}

void
L1Cache::commitQueuedSpecRequests(std::uint32_t epoch)
{
    for (auto &[addr, mshr] : mshrs_) {
        for (auto &req : mshr.waiting) {
            if (req.spec && req.spec_epoch == epoch) {
                req.spec = false;
                req.spec_epoch = 0;
            }
        }
    }
}

// ---------------------------------------------------------------------
// request path
// ---------------------------------------------------------------------

void
L1Cache::access(MemRequest req)
{
    const Addr block_addr = array_.blockAlign(req.addr);
    flAssert(array_.blockAlign(req.addr + req.size - 1) == block_addr,
             name(), ": access crosses a block boundary @0x", std::hex,
             req.addr);

    switch (req.op) {
      case MemOp::Load: ++stat_loads_; break;
      case MemOp::Store: ++stat_stores_; break;
      case MemOp::Amo: ++stat_amos_; break;
      case MemOp::PrefetchEx: ++stat_prefetches_; break;
    }

    // Queue behind an outstanding miss to the same block.  The map
    // lookup is skipped entirely in the common no-outstanding-miss case.
    if (!mshrs_.empty()) {
        auto it = mshrs_.find(block_addr);
        if (it != mshrs_.end()) {
            if (rtrace_ && it->second.traced) {
                // Coalesced waiter: flagged, not on the tiled path --
                // span assembly turns it into its own L1Queue span.
                rtrace_->record(it->second.req_id, curTick(),
                                reqtrace::Stage::L1Queue, traceId(),
                                block_addr,
                                static_cast<std::uint32_t>(req.pc),
                                reqtrace::span_flag_waiter);
            }
            it->second.waiting.push_back(std::move(req));
            return;
        }
    }

    L1Block *blk = array_.find(req.addr);
    const bool present =
        blk && blk->valid && blk->state != L1State::MStale;

    if (req.isLoad()) {
        if (present) {
            ++stat_hits_;
            array_.touch(*blk);
            performLoad(*blk, req);
            return;
        }
        ++stat_misses_;
        handleMiss(std::move(req), blk && blk->valid
                   /* MStale refetches with GetM to keep one dir case */);
        return;
    }

    // Store, AMO or ownership prefetch: needs M (or upgradable E).
    if (present &&
        (blk->state == L1State::M || blk->state == L1State::E)) {
        ++stat_hits_;
        array_.touch(*blk);
        if (req.isPrefetch())
            respond(req, 0);
        else
            performWrite(*blk, req);
        return;
    }
    ++stat_misses_;
    handleMiss(std::move(req), true);
}

void
L1Cache::handleMiss(MemRequest req, bool want_m)
{
    const Addr block_addr = array_.blockAlign(req.addr);
    FL_TRACE(trace::Flag::L1, *this, "miss 0x", std::hex, block_addr,
             (want_m ? " (GetM)" : " (GetS)"));
    flAssert(mshrs_.size() < params_.num_mshrs, name(),
             ": out of MSHRs (", params_.num_mshrs, ") - the core model "
             "should bound outstanding misses");

    Mshr &mshr = mshrs_[block_addr];
    mshr.block_addr = block_addr;
    mshr.want_m = want_m;
    mshr.miss_start = curTick();
    // Request ids are minted per L1 (node in the high bits, local
    // counter below) rather than from the shard-shared trace sink, so
    // an id depends only on this cache's own miss sequence -- identical
    // however the system is sharded across host threads.
    mshr.req_id =
        (static_cast<std::uint64_t>(node_id_ + 1) << 40) | ++last_req_id_;
    if (rtrace_ && rtrace_->sampled(mshr.req_id)) {
        // Span sampling is a pure function of the id, so the directory
        // bank re-derives this decision from msg.req_id with no state.
        mshr.traced = true;
        mshr.pc = req.pc;
        rtrace_->record(mshr.req_id, curTick(),
                        reqtrace::Stage::ReqNet, traceId(), block_addr,
                        static_cast<std::uint32_t>(req.pc));
    }
    mshr.waiting.push_back(std::move(req));
    FL_TEVENT(*this, trace::EventKind::ReqIssue, mshr.req_id,
              block_addr);
    sendToDir(want_m ? MsgType::GetM : MsgType::GetS, block_addr,
              nullptr, mshr.req_id);
}

bool
L1Cache::specLive(const MemRequest &req) const
{
    return req.spec && spec_ && spec_->specActive() &&
           req.spec_epoch == spec_->specEpoch();
}

void
L1Cache::performLoad(L1Block &blk, MemRequest &req)
{
    if (specLive(req))
        markSpecRead(blk);
    const Addr offset = req.addr - blk.block_addr;
    if (prof_) {
        prof_->touchLine(core_id_, blk.block_addr,
                         static_cast<unsigned>(offset), req.size);
    }
#ifdef FL_DEBUG_WATCH
    if (req.addr == FL_DEBUG_WATCH) {
        fprintf(stderr, "[%lu] %s load 0x%lx -> %lu spec=%d state=%s\n",
                curTick(), name().c_str(), req.addr,
                blk.readInt(offset, req.size), (int)req.spec,
                l1StateName(blk.state));
    }
#endif
    respond(req, blk.readInt(offset, req.size));
}

void
L1Cache::performWrite(L1Block &blk, MemRequest &req)
{
    // An ownership prefetch only wanted the M-state fill; the data is
    // untouched and no speculation tag is set.
    if (req.isPrefetch()) {
        respond(req, 0);
        return;
    }

    // A speculative access whose epoch was rolled back while it was
    // queued in an MSHR must not modify anything: the squashed core has
    // already resumed from its checkpoint.  Complete it as a no-op (the
    // store buffer / core ignore stale completions).
    if (req.spec && !specLive(req)) {
        respond(req, 0);
        return;
    }

    flAssert(blk.state == L1State::M || blk.state == L1State::E,
             name(), ": write to block in state ", l1StateName(blk.state));
    blk.state = L1State::M; // silent E->M upgrade

    if (prof_) {
        prof_->touchLine(core_id_, blk.block_addr,
                         static_cast<unsigned>(req.addr - blk.block_addr),
                         req.size);
    }

    if (req.spec && blk.dirty) {
        // Clean-before-speculative-write: push the pre-speculation data
        // to the L2 so rollback can recover it.  FIFO ordering on our
        // channel to the directory guarantees it lands before any later
        // FwdNoDataAck we might send for this block.
        sendToDir(MsgType::WbClean, blk.block_addr, blk.data.data());
        blk.dirty = false;
        ++stat_wb_clean_;
    }

    const Addr offset = req.addr - blk.block_addr;
#ifdef FL_DEBUG_WATCH
    if (req.addr == FL_DEBUG_WATCH) {
        fprintf(stderr, "[%lu] %s write 0x%lx val=%lu spec=%d ep=%u\n",
                curTick(), name().c_str(), req.addr, req.store_data,
                (int)req.spec, req.spec_epoch);
    }
#endif
    std::uint64_t old_value = 0;
    if (req.isAmo()) {
        old_value = blk.readInt(offset, req.size);
        flAssert(req.amo_fn || static_cast<bool>(req.amo_func),
                 name(), ": AMO request without an AMO function");
        blk.writeInt(offset, req.size, req.applyAmo(old_value));
    } else {
        blk.writeInt(offset, req.size, req.store_data);
    }

    if (req.spec) {
        if (req.isAmo())
            markSpecRead(blk);
        markSpecWritten(blk);
    } else {
        blk.dirty = true;
    }
    respond(req, old_value);
}

void
L1Cache::respond(MemRequest &req, std::uint64_t value)
{
    // Fast path: the bound completion slot makes the delivery one-shot
    // a POD closure -- it fits the pool node's inline storage and is
    // trivially destructible, so an L1 hit allocates nothing at all.
    if (req.done_fn) {
        struct Deliver
        {
            MemRequest::DoneFn fn;
            void *obj;
            std::uint64_t ctx;
            std::uint64_t value;
            void operator()() const { fn(obj, ctx, value); }
        };
        sim::scheduleOneShot(eventq(), curTick() + params_.hit_latency,
                             Deliver{req.done_fn, req.done_obj,
                                     req.done_ctx, value});
        return;
    }
    flAssert(static_cast<bool>(req.callback),
             name(), ": request without completion callback");
    sim::scheduleOneShot(eventq(), curTick() + params_.hit_latency,
                         [cb = std::move(req.callback), value] {
                             cb(value);
                         });
}

// ---------------------------------------------------------------------
// fills
// ---------------------------------------------------------------------

void
L1Cache::handleData(const Msg &msg)
{
    auto it = mshrs_.find(msg.block_addr);
    flAssert(it != mshrs_.end(), name(), ": data for 0x", std::hex,
             msg.block_addr, std::dec, " with no MSHR");
    Mshr &mshr = it->second;
    flAssert(!mshr.fill_pending, name(), ": duplicate fill");
    mshr.fill = msg;
    mshr.fill_pending = true;
    mshr.fill_arrival = curTick();
    if (rtrace_ && mshr.traced) {
        rtrace_->record(mshr.req_id, curTick(),
                        reqtrace::Stage::FillWait, traceId(),
                        mshr.block_addr);
    }
    tryCompleteFill(mshr);
}

void
L1Cache::tryCompleteFill(Mshr &mshr)
{
    flAssert(mshr.fill_pending, "tryCompleteFill without buffered fill");
    const Msg &msg = mshr.fill;

    L1Block *blk = array_.find(mshr.block_addr);
    if (!blk || !blk->valid) {
        blk = array_.findFreeWay(mshr.block_addr);
        if (!blk) {
            // Pick a victim.  Blocks carrying live speculation tags
            // are pinned: evicting one would lose the ability to
            // detect conflicts.  Blocks with an outstanding same-block
            // miss (e.g. an S copy awaiting its GetM upgrade) are also
            // pinned: evicting one would let the stale writeback-buffer
            // entry answer probes meant for the re-acquired copy.  The
            // spec controller decides whether to resolve a tag overflow
            // by rolling back or by making the fill wait.
            auto evictable = [this](const L1Block &b) {
                return !srValid(b) && !swValid(b) &&
                       !mshrs_.count(b.block_addr);
            };
            auto mshr_free = [this](const L1Block &b) {
                return !mshrs_.count(b.block_addr);
            };
            L1Block *victim = array_.findVictim(mshr.block_addr,
                                                evictable);
            if (!victim && array_.findVictim(mshr.block_addr,
                                             mshr_free)) {
                // Blocked purely by live speculation tags.
                flAssert(spec_, name(), ": tagged blocks with no "
                         "speculation controller");
                // If the blocked fill serves any store or AMO, the
                // epoch's commit may depend on it (pre-epoch stores
                // always do; ordered speculative stores can too):
                // waiting would deadlock, so the controller must roll
                // back.  A pure load fill is safe to park: the blocked
                // core stops producing work, the buffer drains, the
                // epoch ends, and specCleared() retries the fill.
                bool needed = false;
                for (const auto &r : mshr.waiting) {
                    if (!r.isLoad()) {
                        needed = true;
                        break;
                    }
                }
                if (spec_->specOverflow(mshr.block_addr, needed)) {
                    // Controller rolled back; tags are clear now.
                    victim = array_.findVictim(mshr.block_addr,
                                               evictable);
                } else {
                    ++stat_overflow_waits_;
                }
            }
            if (!victim) {
                // Every candidate way is pinned (by tags awaiting the
                // epoch's end or by outstanding same-block misses).
                // Park the fill; it is retried when speculation clears
                // or when any miss completes.
                mshr.fill_blocked = true;
                return;
            }
            evict(*victim);
            blk = victim; // evict() leaves the way invalid
        }
        blk->block_addr = mshr.block_addr;
        blk->valid = true;
        blk->sr_epoch = 0;
        blk->sw_epoch = 0;
    }

    flAssert(msg.data.size() == array_.blockSize(),
             name(), ": fill with wrong payload size");
    blk->data = msg.data;
    blk->dirty = false;
    switch (msg.type) {
      case MsgType::DataS: blk->state = L1State::S; break;
      case MsgType::DataE: blk->state = L1State::E; break;
      case MsgType::DataM: blk->state = L1State::M; break;
      default:
        panic(name(), ": bad fill message ", msgTypeName(msg.type));
    }
    array_.touch(*blk);

    stat_miss_latency_.sample(
        static_cast<double>(curTick() - mshr.miss_start));
    stat_miss_fill_wait_.sample(
        static_cast<double>(curTick() - mshr.fill_arrival));
    FL_TEVENT(*this, trace::EventKind::ReqFill, mshr.req_id,
              mshr.block_addr);
    if (rtrace_ && mshr.traced) {
        rtrace_->record(mshr.req_id, curTick(), reqtrace::Stage::Done,
                        traceId(), mshr.block_addr,
                        static_cast<std::uint32_t>(
                            mshr.waiting.size() - 1));
    }

    // Retire the MSHR, then replay the queued requests in order.  A
    // replayed write may re-miss for an upgrade and allocate a fresh
    // MSHR for the same block; later replays then queue behind it.
    std::deque<MemRequest> waiting = std::move(mshr.waiting);
    mshrs_.erase(mshr.block_addr);
    for (auto &req : waiting)
        access(std::move(req));

    // A completed miss unpins its block: fills parked on a full set may
    // now have a victim (deferred: we may be deep inside a fill chain).
    specCleared();
}

void
L1Cache::retryPendingFills()
{
    // A retried fill completes and erases its MSHR (and its replays may
    // allocate new ones), so collect the candidates before touching any.
    std::vector<Addr> to_retry;
    for (const auto &[addr, mshr] : mshrs_) {
        if (mshr.fill_pending && mshr.fill_blocked)
            to_retry.push_back(addr);
    }
    for (Addr addr : to_retry) {
        auto it = mshrs_.find(addr);
        if (it == mshrs_.end() || !it->second.fill_pending)
            continue;
        it->second.fill_blocked = false;
        ++stat_fill_retries_;
        tryCompleteFill(it->second);
    }
}

// ---------------------------------------------------------------------
// evictions
// ---------------------------------------------------------------------

void
L1Cache::evict(L1Block &victim)
{
    flAssert(!srValid(victim) && !swValid(victim),
             name(), ": evicting a block with live speculation tags");
    FL_TRACE(trace::Flag::L1, *this, "evict 0x", std::hex,
             victim.block_addr, " from ", l1StateName(victim.state));
    ++stat_evictions_;

    WbEntry wb;
    wb.block_addr = victim.block_addr;
    switch (victim.state) {
      case L1State::M:
      case L1State::E:
        // Owner eviction always carries data: an E block may have been
        // silently upgraded, and the directory cannot tell.
        wb.state = WbEntry::State::MIA;
        wb.has_data = true;
        wb.data.assign(victim.data.data(),
                       victim.data.data() + victim.data.size());
        sendToDir(MsgType::PutM, victim.block_addr, victim.data.data());
        break;
      case L1State::MStale:
        wb.state = WbEntry::State::MIA;
        wb.has_data = false;
        sendToDir(MsgType::PutNoData, victim.block_addr);
        break;
      case L1State::S:
        wb.state = WbEntry::State::SIA;
        wb.has_data = false;
        sendToDir(MsgType::PutS, victim.block_addr);
        break;
      case L1State::I:
        panic(name(), ": evicting an invalid block");
    }
    wb_buffer_.push_back(std::move(wb));

    victim.valid = false;
    victim.state = L1State::I;
    victim.dirty = false;
}

L1Cache::WbEntry *
L1Cache::findWb(Addr block_addr)
{
    for (auto &wb : wb_buffer_) {
        if (wb.block_addr == block_addr)
            return &wb;
    }
    return nullptr;
}

// ---------------------------------------------------------------------
// probes and acks
// ---------------------------------------------------------------------

void
L1Cache::receiveMsg(const Msg &msg)
{
    FL_TRACE(trace::Flag::L1, *this, "recv ", msg.toString());
    switch (msg.type) {
      case MsgType::DataS:
      case MsgType::DataE:
      case MsgType::DataM:
        handleData(msg);
        break;
      case MsgType::Inv:
        handleInv(msg);
        break;
      case MsgType::FwdGetS:
      case MsgType::FwdGetM:
      case MsgType::Recall:
        handleFwd(msg);
        break;
      case MsgType::PutAck:
        handlePutAck(msg);
        break;
      default:
        panic(name(), ": unexpected message ", msg.toString());
    }
}

void
L1Cache::checkSpecConflict(L1Block &blk, bool remote_write)
{
    const bool sr = srValid(blk);
    const bool sw = swValid(blk);
    if (!sr && !sw)
        return;
    // A remote read only conflicts with a speculative *write* (it would
    // observe speculative data); a remote write conflicts with both.
    if (!remote_write && !sw)
        return;
    ++stat_spec_conflicts_;
    // The controller rolls back synchronously: SW blocks become MStale,
    // all tags are flash-invalidated, the core restores its checkpoint.
    spec_->specConflict(blk.block_addr, remote_write, sw);
    flAssert(!srValid(blk) && !swValid(blk),
             name(), ": speculation tags survived a conflict rollback");
}

void
L1Cache::handleInv(const Msg &msg)
{
    ++stat_invs_;
    if (prof_)
        prof_->lineInvalidated(msg.block_addr);

    // Writeback-buffer entry (PutS raced with the invalidation)?
    if (WbEntry *wb = findWb(msg.block_addr)) {
        const L1Block *live = array_.find(msg.block_addr);
        flAssert(!live || !live->valid, name(),
                 ": Inv matched a writeback entry while a valid array "
                 "copy of 0x", std::hex, msg.block_addr, std::dec,
                 " exists");
        flAssert(wb->state != WbEntry::State::MIA,
                 name(), ": Inv for a block being written back as owner");
        wb->state = WbEntry::State::IIA;
        sendToDir(MsgType::InvAck, msg.block_addr);
        return;
    }

    // Buffered fill that has not been installed yet (the directory
    // granted us the block and immediately served a conflicting writer)?
    auto it = mshrs_.find(msg.block_addr);
    if (it != mshrs_.end() && it->second.fill_pending) {
        Mshr &mshr = it->second;
        ++stat_fill_retries_;
        mshr.fill_pending = false;
        mshr.fill_blocked = false;
        sendToDir(MsgType::InvAck, msg.block_addr);
        // Re-request; the waiting accesses stay queued.
        if (rtrace_ && mshr.traced) {
            rtrace_->record(mshr.req_id, curTick(),
                            reqtrace::Stage::ReqNet, traceId(),
                            msg.block_addr,
                            static_cast<std::uint32_t>(mshr.pc),
                            reqtrace::span_flag_retry);
        }
        sendToDir(mshr.want_m ? MsgType::GetM : MsgType::GetS,
                  msg.block_addr, nullptr, mshr.req_id);
        return;
    }

    L1Block *blk = array_.find(msg.block_addr);
    if (!blk || !blk->valid) {
        // Possible only transiently (e.g. we were invalidated while a
        // re-request is queued at the directory); ack and move on.
        sendToDir(MsgType::InvAck, msg.block_addr);
        return;
    }

    flAssert(blk->state == L1State::S, name(), ": Inv in state ",
             l1StateName(blk->state), " for 0x", std::hex,
             msg.block_addr);
    checkSpecConflict(*blk, true);
    blk->valid = false;
    blk->state = L1State::I;
    sendToDir(MsgType::InvAck, msg.block_addr);
}

void
L1Cache::handleFwd(const Msg &msg)
{
    ++stat_fwds_;
    const bool remote_write = msg.type != MsgType::FwdGetS;

    // Writeback buffer: the probe raced with our PutM/PutNoData.
    if (WbEntry *wb = findWb(msg.block_addr)) {
        // A writeback-buffer entry and a valid array copy must never
        // coexist (evictions never target blocks with outstanding
        // same-block misses, and channel FIFO order acks the Put
        // before any re-acquired fill arrives) -- otherwise this probe
        // could be answered from the wrong copy.
        const L1Block *live = array_.find(msg.block_addr);
        flAssert(!live || !live->valid, name(),
                 ": probe matched a writeback entry while a valid "
                 "array copy of 0x", std::hex, msg.block_addr,
                 std::dec, " exists");
        if (wb->state == WbEntry::State::MIA && wb->has_data) {
            sendToDir(MsgType::FwdDataAck, msg.block_addr,
                      wb->data.data());
        } else {
            sendToDir(MsgType::FwdNoDataAck, msg.block_addr);
        }
        wb->state = WbEntry::State::IIA;
        wb->has_data = false;
        return;
    }

    // Buffered fill not yet installed: hand the data straight back and
    // re-request.
    auto it = mshrs_.find(msg.block_addr);
    if (it != mshrs_.end() && it->second.fill_pending) {
        Mshr &mshr = it->second;
        ++stat_fill_retries_;
        sendToDir(MsgType::FwdDataAck, msg.block_addr,
                  mshr.fill.data.data());
        mshr.fill_pending = false;
        mshr.fill_blocked = false;
        if (rtrace_ && mshr.traced) {
            rtrace_->record(mshr.req_id, curTick(),
                            reqtrace::Stage::ReqNet, traceId(),
                            msg.block_addr,
                            static_cast<std::uint32_t>(mshr.pc),
                            reqtrace::span_flag_retry);
        }
        sendToDir(mshr.want_m ? MsgType::GetM : MsgType::GetS,
                  msg.block_addr, nullptr, mshr.req_id);
        return;
    }

    L1Block *blk = array_.find(msg.block_addr);
    flAssert(blk && blk->valid, name(), ": ", msgTypeName(msg.type),
             " for a block we do not hold (0x", std::hex, msg.block_addr,
             std::dec, ")");

    checkSpecConflict(*blk, remote_write);

    if (blk->state == L1State::MStale) {
        // Rolled-back speculative data (either before this probe or just
        // now): the directory's L2 copy is the authoritative
        // pre-speculation value.
        sendToDir(MsgType::FwdNoDataAck, msg.block_addr);
        blk->valid = false;
        blk->state = L1State::I;
        return;
    }

    flAssert(blk->state == L1State::M || blk->state == L1State::E,
             name(), ": ", msgTypeName(msg.type), " in state ",
             l1StateName(blk->state));

    sendToDir(MsgType::FwdDataAck, msg.block_addr, blk->data.data());
    if (msg.type == MsgType::FwdGetS) {
        blk->state = L1State::S;
        blk->dirty = false; // directory updates the L2 copy
    } else {
        blk->valid = false;
        blk->state = L1State::I;
        blk->dirty = false;
    }
}

void
L1Cache::handlePutAck(const Msg &msg)
{
    for (auto it = wb_buffer_.begin(); it != wb_buffer_.end(); ++it) {
        if (it->block_addr == msg.block_addr) {
            wb_buffer_.erase(it);
            return;
        }
    }
    panic(name(), ": PutAck with no writeback-buffer entry for 0x",
          std::hex, msg.block_addr);
}

// ---------------------------------------------------------------------
// misc
// ---------------------------------------------------------------------

void
L1Cache::sendToDir(MsgType type, Addr block_addr,
                   const std::uint8_t *data,
                   std::uint64_t req_id)
{
    Msg msg;
    msg.type = type;
    msg.src = node_id_;
    msg.dst = dirmap_.nodeFor(block_addr);
    msg.block_addr = block_addr;
    msg.req_id = req_id;
    if (data)
        msg.data.assign(data, data + array_.blockSize());
    network_.send(std::move(msg));
}

bool
L1Cache::debugRead(Addr addr, unsigned size, std::uint64_t &out) const
{
    const L1Block *blk = array_.find(addr);
    if (!blk || !blk->valid)
        return false;
    if (blk->state != L1State::M && blk->state != L1State::E)
        return false;
    out = blk->readInt(addr - blk->block_addr, size);
    return true;
}

} // namespace fenceless::mem
