/**
 * @file
 * The shared, inclusive L2 cache with an integrated MESI directory.
 *
 * Blocking per block: one transaction at a time; requests to a busy
 * block queue and are dispatched in arrival order.  The directory
 * collects invalidation acks and forwards owner data itself, so L1s
 * never exchange messages directly.
 *
 * The L2 is inclusive: every block cached in any L1 has an L2 entry
 * carrying the directory state (owner, sharers).  Evicting such an
 * entry requires a recall transaction that first invalidates all L1
 * copies.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "base/flat_memory.hh"
#include "mem/cache_array.hh"
#include "mem/msg.hh"
#include "mem/network.hh"
#include "sim/sim_object.hh"

namespace fenceless::mem
{

/** Maximum cores a directory entry can track (sharer bit vector). */
inline constexpr unsigned max_cores = 64;

struct L2Block : CacheBlockBase
{
    bool dirty = false;              //!< data differs from DRAM
    CoreId owner = invalid_core;     //!< L1 holding E/M (or MStale)
    std::uint64_t sharers = 0;       //!< bit per core holding S

    bool hasOwner() const { return owner != invalid_core; }
    bool hasSharers() const { return sharers != 0; }

    bool
    isSharer(CoreId c) const
    {
        return (sharers >> c) & 1;
    }

    void addSharer(CoreId c) { sharers |= std::uint64_t{1} << c; }
    void removeSharer(CoreId c) { sharers &= ~(std::uint64_t{1} << c); }
};

class Directory : public sim::SimObject, public MsgReceiver
{
  public:
    struct Params
    {
        std::uint64_t size = 4 * 1024 * 1024;
        unsigned assoc = 16;
        unsigned block_size = 64;
        Cycles latency = 6;       //!< tag/dir access before processing
        Cycles dram_latency = 80; //!< DRAM read latency
        Cycles dram_cycle = 4;    //!< min cycles between DRAM accesses

        /**
         * Address-interleaved banking (see mem::DirectoryMap): this
         * instance is bank `bank` of `banks` (power of two), serving
         * only the blocks whose low block-index bits equal `bank`.
         * `size` is this bank's slice of the L2, not the total; each
         * bank owns its own DRAM channel (dram_cycle spacing is per
         * bank).  The 1/0 default is the monolithic directory.
         */
        std::uint32_t banks = 1;
        std::uint32_t bank = 0;
    };

    Directory(sim::SimContext &ctx, const std::string &name,
              const Params &params, NodeId node_id, std::uint32_t num_cores,
              Network &network, FlatMemory &backing);

    void receiveMsg(const Msg &msg) override;

    // --- debug / verification ------------------------------------------

    const L2Block *findBlock(Addr addr) const { return array_.find(addr); }

    /** Functional read: L2 copy if present, else DRAM. */
    std::uint64_t debugRead(Addr addr, unsigned size) const;

    template <typename Fn>
    void
    forEachBlock(Fn fn) const
    {
        array_.forEach(fn);
    }

    /** @return true when no transaction is active or queued. */
    bool quiesced() const { return active_.empty() && total_pending_ == 0; }

    // --- stall-dossier inspection ---------------------------------------

    /**
     * Snapshot of one active transaction, decoupled from the private
     * Txn so wait graphs and dossiers can walk directory state without
     * seeing protocol internals.
     */
    struct TxnView
    {
        Addr block = 0;
        const char *phase = "?";
        MsgType req_type = MsgType::GetS;
        NodeId requester = 0;
        unsigned pending_acks = 0;
        bool is_recall = false;
        Tick start_tick = 0;
        bool has_resume = false;  //!< a blocked request re-dispatches after
        Addr resume_block = 0;    //!< its block address (Blocked/recall)
        std::uint64_t req_id = 0; //!< request-lifetime trace id
        std::size_t queued = 0;   //!< same-block requests parked behind
    };

    /** Visit every active transaction in block-address order. */
    template <typename Fn>
    void
    forEachTxn(Fn fn) const
    {
        for (const auto &[addr, txn] : active_) {
            TxnView v;
            v.block = addr;
            v.phase = phaseName(txn.phase);
            v.req_type = txn.req.type;
            v.requester = txn.req.src;
            v.pending_acks = txn.pending_acks;
            v.is_recall = txn.is_recall;
            v.start_tick = txn.start_tick;
            v.has_resume = txn.resume.has_value();
            if (txn.resume)
                v.resume_block = txn.resume->block_addr;
            v.req_id = txn.req.req_id;
            if (auto it = pending_.find(addr); it != pending_.end())
                v.queued = it->second.size();
            fn(v);
        }
    }

  private:
    struct Txn
    {
        enum class Phase : std::uint8_t
        {
            Start,    //!< scheduled, not yet processed
            Dram,     //!< waiting for DRAM fill
            Fwd,      //!< waiting for the owner's Fwd*Ack
            InvAcks,  //!< waiting for sharer InvAcks
            Blocked,  //!< waiting for a recall of an L2 victim
        };

        Msg req;                   //!< request being served
        Phase phase = Phase::Start;
        unsigned pending_acks = 0;
        bool is_recall = false;    //!< internal L2-eviction transaction
        std::optional<Msg> resume; //!< request to re-dispatch afterwards
        Tick start_tick = 0;       //!< when the txn left the queue
        unsigned dram_reads = 0;   //!< DRAM fills charged to this txn
    };

    /** A request parked behind an active same-block transaction. */
    struct QueuedReq
    {
        Tick recv_tick;
        Msg msg;
    };

    static const char *phaseName(Txn::Phase p);

    // dispatch / queueing
    void dispatch(const Msg &msg);
    void startTxn(const Msg &msg, Tick recv_tick);
    void processRequest(Addr block_addr);
    void complete(Addr block_addr);

    // request handlers (block guaranteed present in L2)
    void processGetS(Txn &txn, L2Block &blk);
    void processGetM(Txn &txn, L2Block &blk);
    void processPut(Txn &txn, L2Block &blk);

    // fills and victims
    bool ensurePresent(Txn &txn, Addr block_addr);
    void startRecall(Addr victim_addr, const Msg &blocked_req);
    void finishRecall(Txn &txn, L2Block &victim);

    // responses routed into active transactions
    void handleAck(const Msg &msg);
    void handleWbClean(const Msg &msg);

    void sendToL1(MsgType type, NodeId dst, Addr block_addr,
                  const std::uint8_t *data = nullptr,
                  std::uint64_t req_id = 0);
    void sendData(MsgType type, NodeId dst, const L2Block &blk,
                  std::uint64_t req_id = 0);

    void dramWriteback(L2Block &blk);

    Params params_;
    NodeId node_id_;
    std::uint32_t num_cores_;
    Network &network_;
    FlatMemory &backing_;
    prof::WasteProfiler *const prof_; //!< null when profiling is off
    reqtrace::ReqTraceSink *const rtrace_; //!< null when spans are off

    CacheArray<L2Block> array_;
    std::map<Addr, Txn> active_;
    std::map<Addr, std::deque<QueuedReq>> pending_;
    std::size_t total_pending_ = 0;
    Tick dram_next_free_ = 0;

    statistics::Scalar &stat_gets_;
    statistics::Scalar &stat_getm_;
    statistics::Scalar &stat_puts_;
    statistics::Scalar &stat_wb_clean_;
    statistics::Scalar &stat_fwds_sent_;
    statistics::Scalar &stat_invs_sent_;
    statistics::Scalar &stat_recalls_;
    statistics::Scalar &stat_dram_reads_;
    statistics::Scalar &stat_dram_writes_;
    statistics::Distribution &stat_txn_queue_wait_;
    statistics::Distribution &stat_txn_service_;
};

} // namespace fenceless::mem
