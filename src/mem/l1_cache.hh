/**
 * @file
 * The private L1 data cache controller.
 *
 * Implements the L1 side of the directory MESI protocol plus the
 * speculation-tag machinery the fence-speculation mechanism needs:
 *
 *  - Two speculation tags per block, SR (speculatively read) and SW
 *    (speculatively written), stored as epoch ids so an entire epoch can
 *    be flash-committed or flash-discarded by bumping the controller's
 *    epoch counter.
 *  - Clean-before-speculative-write: the first speculative store to a
 *    dirty block first pushes the current (pre-speculation) data to the
 *    L2 with a WbClean message, so rollback can always recover the
 *    pre-speculation value from the inclusive L2.
 *  - Conflict detection: incoming Inv/FwdGetM on an SR or SW block, or
 *    FwdGetS/Recall on an SW block, reports a conflict through SpecHooks
 *    (which rolls the core back) before the probe is answered.
 *  - After rollback, speculatively-written blocks enter M_stale: the
 *    directory still records this L1 as owner but the local data is
 *    invalid; probes are answered with FwdNoDataAck (the directory uses
 *    its own pre-speculation copy) and local accesses refetch with GetM.
 *
 * Evictions go through a writeback buffer so the way frees immediately;
 * buffer entries remain visible to probes until the directory acks.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "mem/cache_array.hh"
#include "mem/mem_request.hh"
#include "mem/msg.hh"
#include "mem/network.hh"
#include "sim/sim_object.hh"

namespace fenceless::mem
{

/** L1 block protocol states (stable states live in the array). */
enum class L1State : std::uint8_t
{
    I,       //!< invalid
    S,       //!< shared, clean
    E,       //!< exclusive, clean
    M,       //!< modified (or exclusive after silent upgrade)
    MStale,  //!< owner per directory, local data discarded by rollback
};

const char *l1StateName(L1State s);

struct L1Block : CacheBlockBase
{
    L1State state = L1State::I;
    bool dirty = false;         //!< data differs from the L2 copy
    std::uint32_t sr_epoch = 0; //!< speculatively-read tag (epoch id)
    std::uint32_t sw_epoch = 0; //!< speculatively-written tag (epoch id)
};

class L1Cache : public sim::SimObject, public MsgReceiver
{
  public:
    struct Params
    {
        std::uint64_t size = 32 * 1024;
        unsigned assoc = 8;
        unsigned block_size = 64;
        Cycles hit_latency = 2;
        unsigned num_mshrs = 12;
    };

    L1Cache(sim::SimContext &ctx, const std::string &name,
            const Params &params, CoreId core_id,
            const DirectoryMap &dirmap, Network &network);

    /** Attach the speculation controller (nullptr = speculation off). */
    void setSpecHooks(SpecHooks *hooks) { spec_ = hooks; }

    unsigned blockSize() const { return array_.blockSize(); }
    Addr blockAlign(Addr a) const { return array_.blockAlign(a); }
    CoreId coreId() const { return core_id_; }

    // --- core-side interface -----------------------------------------

    /**
     * Present one access.  The request completes asynchronously through
     * its callback; requests to the same block as an outstanding miss
     * are queued behind it and replayed in order.
     */
    void access(MemRequest req);

    // --- network-side interface ----------------------------------------

    void receiveMsg(const Msg &msg) override;

    // --- speculation interface (called by the spec controller) ---------

    /** Number of distinct blocks carrying a live SR tag. */
    std::size_t numSpecReadBlocks() const { return sr_blocks_.size(); }

    /** Number of distinct blocks carrying a live SW tag. */
    std::size_t numSpecWrittenBlocks() const { return sw_blocks_.size(); }

    /**
     * Flash-commit the current epoch: speculatively-written blocks
     * become ordinarily dirty.  The caller bumps the epoch afterwards.
     */
    void commitSpecWrites();

    /**
     * Flash-discard the current epoch: speculatively-written blocks
     * become MStale (data invalid; directory keeps this L1 as owner and
     * the L2 holds the pre-speculation copy).  The caller bumps the
     * epoch afterwards.
     */
    void rollbackSpecWrites();

    /** The epoch ended: retry fills that were blocked on spec overflow. */
    void specCleared();

    /**
     * The epoch committed: speculative requests of @p epoch still queued
     * in MSHRs become ordinary accesses (a stale speculative store would
     * otherwise be dropped when replayed).
     */
    void commitQueuedSpecRequests(std::uint32_t epoch);

    // --- debug / verification ------------------------------------------

    /** @return the block holding @p addr, if cached (any state). */
    const L1Block *findBlock(Addr addr) const { return array_.find(addr); }

    /**
     * @return true if another miss can be accepted without exhausting
     * the MSHRs (keeps a margin for demand accesses).  The store
     * buffer checks this before issuing ownership prefetches.
     */
    bool
    canAcceptMiss() const
    {
        return mshrs_.size() + 2 < params_.num_mshrs;
    }

    /**
     * @return true if a store to @p addr would complete locally (block
     * held in M or E).  Used by the relaxed store buffer to drain
     * hitting stores ahead of misses.
     */
    bool
    hasWritePermission(Addr addr) const
    {
        const L1Block *blk = array_.find(addr);
        return blk && blk->valid &&
               (blk->state == L1State::M || blk->state == L1State::E);
    }

    /**
     * Functional read of the freshest value if this L1 is the owner.
     * @return true (and sets @p out) when this cache holds the block in
     *         M or E with valid data.
     */
    bool debugRead(Addr addr, unsigned size, std::uint64_t &out) const;

    /** Visit every valid block (for invariant audits). */
    template <typename Fn>
    void
    forEachBlock(Fn fn) const
    {
        array_.forEach(fn);
    }

    /** @return true when no miss or writeback is in flight. */
    bool quiesced() const { return mshrs_.empty() && wb_buffer_.empty(); }

    /** Miss status holding register (public: wait graphs walk these). */
    struct Mshr
    {
        Addr block_addr;
        bool want_m;                 //!< GetM (vs GetS) outstanding
        std::deque<MemRequest> waiting;
        bool fill_pending = false;   //!< fill buffered, no way available
        bool fill_blocked = false; //!< fill parked: no evictable way
        Msg fill;
        std::uint64_t req_id = 0;    //!< request-lifetime trace id
        Tick miss_start = 0;         //!< tick the miss was issued
        Tick fill_arrival = 0;       //!< tick the fill data arrived
        bool traced = false;         //!< sampled by the span tracer
        std::uint64_t pc = 0;        //!< first waiting request's PC
    };

    /** Visit every outstanding MSHR in block-address order. */
    template <typename Fn>
    void
    forEachMshr(Fn fn) const
    {
        for (const auto &[addr, mshr] : mshrs_)
            fn(mshr);
    }

  private:
    /** An in-flight eviction awaiting PutAck from the directory. */
    struct WbEntry
    {
        enum class State : std::uint8_t
        {
            MIA, //!< sent PutM/PutNoData as owner
            SIA, //!< sent PutS as sharer
            IIA, //!< answered a probe meanwhile; just awaiting PutAck
        };

        Addr block_addr;
        State state;
        bool has_data;
        std::vector<std::uint8_t> data;
    };

    // request path
    bool specLive(const MemRequest &req) const;
    void handleMiss(MemRequest req, bool want_m);
    void performLoad(L1Block &blk, MemRequest &req);
    void performWrite(L1Block &blk, MemRequest &req);
    void respond(MemRequest &req, std::uint64_t value);

    // fill path
    void handleData(const Msg &msg);
    void tryCompleteFill(Mshr &mshr);
    void retryPendingFills();

    // probes
    void handleInv(const Msg &msg);
    void handleFwd(const Msg &msg);
    void handlePutAck(const Msg &msg);
    void checkSpecConflict(L1Block &blk, bool remote_write);

    // evictions
    void evict(L1Block &victim);
    WbEntry *findWb(Addr block_addr);

    // speculation tags
    bool srValid(const L1Block &blk) const;
    bool swValid(const L1Block &blk) const;
    void markSpecRead(L1Block &blk);
    void markSpecWritten(L1Block &blk);

    // messaging
    void sendToDir(MsgType type, Addr block_addr,
                   const std::uint8_t *data = nullptr,
                   std::uint64_t req_id = 0);

    Params params_;
    CoreId core_id_;
    std::uint64_t last_req_id_ = 0; //!< per-L1 request-id sequence
    NodeId node_id_;
    DirectoryMap dirmap_; //!< routes each block to its home dir bank
    Network &network_;
    SpecHooks *spec_ = nullptr;
    prof::WasteProfiler *const prof_; //!< null when profiling is off
    reqtrace::ReqTraceSink *const rtrace_; //!< null when spans are off

    CacheArray<L1Block> array_;
    std::map<Addr, Mshr> mshrs_;
    std::deque<WbEntry> wb_buffer_;
    bool retry_scheduled_ = false; //!< deferred overflow-fill retry
    std::vector<Addr> sr_blocks_; //!< blocks with live SR tags
    std::vector<Addr> sw_blocks_; //!< blocks with live SW tags

    statistics::Scalar &stat_loads_;
    statistics::Scalar &stat_stores_;
    statistics::Scalar &stat_amos_;
    statistics::Scalar &stat_hits_;
    statistics::Scalar &stat_misses_;
    statistics::Scalar &stat_evictions_;
    statistics::Scalar &stat_wb_clean_;
    statistics::Scalar &stat_invs_;
    statistics::Scalar &stat_fwds_;
    statistics::Scalar &stat_spec_conflicts_;
    statistics::Scalar &stat_overflow_waits_;
    statistics::Scalar &stat_fill_retries_;
    statistics::Scalar &stat_prefetches_;
    statistics::Distribution &stat_miss_latency_;
    statistics::Distribution &stat_miss_fill_wait_;
};

} // namespace fenceless::mem
