/**
 * @file
 * The request interface between a core (and its store buffer) and its L1.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "base/types.hh"

namespace fenceless::mem
{

enum class MemOp : std::uint8_t
{
    Load,
    Store,
    Amo,
    PrefetchEx, //!< non-binding exclusive-ownership prefetch
};

/**
 * One memory access presented to the L1.
 *
 * The L1 completes a request asynchronously by invoking its completion
 * callback with the loaded value (the *old* value for AMOs, unused for
 * stores).  Two callback forms exist:
 *
 *  - The *bound slot* (@ref done_fn / @ref done_obj / @ref done_ctx): a
 *    plain function pointer plus a receiver object and one word of
 *    context.  This is the hot path -- building it allocates nothing,
 *    and the L1's response one-shot stays a trivially-destructible POD
 *    closure.  The issuer keeps any per-request state (destination
 *    register, issue tick) in the receiver object; @ref done_ctx
 *    typically carries a generation or sequence number so stale
 *    responses can be recognised.
 *  - The legacy @ref callback std::function, kept for tests and
 *    cold-path users.  Used only when @ref done_fn is null.
 *
 * AMOs analogously come in two forms: the raw @ref amo_fn function
 * pointer applied to (@ref amo_sel, old, @ref amo_a, @ref amo_b), or
 * the legacy @ref amo_func closure.  Both keep the memory system
 * independent of ISA details.
 */
struct MemRequest
{
    /** Bound completion: fn(obj, ctx, loaded_value). */
    using DoneFn = void (*)(void *obj, std::uint64_t ctx,
                            std::uint64_t value);

    /** Raw AMO: new_value = fn(sel, old_value, a, b). */
    using AmoFn = std::uint64_t (*)(std::uint8_t sel,
                                    std::uint64_t old_value,
                                    std::uint64_t a, std::uint64_t b);

    MemOp op = MemOp::Load;
    Addr addr = 0;
    std::uint8_t size = 8;
    std::uint64_t store_data = 0;
    bool spec = false; //!< access belongs to a speculative epoch
    std::uint32_t spec_epoch = 0; //!< epoch the access belongs to
    /**
     * Issuing static instruction (DecodedProgram index), carried for
     * observability only: a sampled miss span symbolizes it in the
     * outlier dossier.  0 for requests with no guest PC (ownership
     * prefetches, test traffic).
     */
    std::uint64_t pc = 0;

    DoneFn done_fn = nullptr;
    void *done_obj = nullptr;
    std::uint64_t done_ctx = 0;

    AmoFn amo_fn = nullptr;
    std::uint8_t amo_sel = 0; //!< operation selector for amo_fn
    std::uint64_t amo_a = 0;  //!< first AMO operand (e.g. rs2 value)
    std::uint64_t amo_b = 0;  //!< second AMO operand (e.g. rs3 value)

    std::function<std::uint64_t(std::uint64_t)> amo_func; //!< legacy
    std::function<void(std::uint64_t)> callback;          //!< legacy

    bool isLoad() const { return op == MemOp::Load; }
    bool isStore() const { return op == MemOp::Store; }
    bool isAmo() const { return op == MemOp::Amo; }
    bool isPrefetch() const { return op == MemOp::PrefetchEx; }

    /** @return true if the access needs write (M) permission. */
    bool needsWrite() const { return op != MemOp::Load; }

    /** @return true if either completion form is set. */
    bool
    hasCompletion() const
    {
        return done_fn != nullptr || static_cast<bool>(callback);
    }

    /** Apply the AMO function (either form) to @p old_value. */
    std::uint64_t
    applyAmo(std::uint64_t old_value) const
    {
        return amo_fn ? amo_fn(amo_sel, old_value, amo_a, amo_b)
                      : amo_func(old_value);
    }
};

/**
 * Interface the speculation controller exposes to its L1 cache.
 *
 * The L1 consults these hooks to validate speculation tags (epoch-based
 * flash clear), report remote conflicts, and negotiate evictions of
 * speculatively-marked blocks.  A null implementation means "speculation
 * disabled".
 */
class SpecHooks
{
  public:
    virtual ~SpecHooks() = default;

    /** @return true while a speculative epoch is live. */
    virtual bool specActive() const = 0;

    /** @return current epoch id; tags from other epochs are invalid. */
    virtual std::uint32_t specEpoch() const = 0;

    /**
     * A remote request conflicted with a live speculation tag.  The
     * implementation rolls the core back (synchronously).
     *
     * @param block_addr   the conflicting block
     * @param remote_write true for Inv/FwdGetM, false for FwdGetS
     * @param had_sw       the block carried a speculative-write tag
     */
    virtual void specConflict(Addr block_addr, bool remote_write,
                              bool had_sw) = 0;

    /**
     * Replacement wants to evict a block with live speculation tags.
     *
     * @param block_addr        the block the blocked fill is for
     * @param needed_for_commit true when the blocked fill serves a
     *        store/AMO of the current epoch: the epoch cannot commit
     *        until that access completes, so waiting would deadlock and
     *        the controller must roll back regardless of policy.
     * @return true if the controller resolved the overflow by rolling
     *         back (tags are now clear; eviction may proceed), false if
     *         the fill must wait for the epoch to end (the controller
     *         will call L1Cache::specCleared() then).
     */
    virtual bool specOverflow(Addr block_addr,
                              bool needed_for_commit) = 0;
};

} // namespace fenceless::mem
