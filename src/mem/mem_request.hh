/**
 * @file
 * The request interface between a core (and its store buffer) and its L1.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "base/types.hh"

namespace fenceless::mem
{

enum class MemOp : std::uint8_t
{
    Load,
    Store,
    Amo,
    PrefetchEx, //!< non-binding exclusive-ownership prefetch
};

/**
 * One memory access presented to the L1.
 *
 * The L1 completes a request asynchronously by invoking @ref callback with
 * the loaded value (the *old* value for AMOs, unused for stores).  For
 * AMOs, @ref amo_func computes the new memory value from the old one;
 * this keeps the memory system independent of ISA details.
 */
struct MemRequest
{
    MemOp op = MemOp::Load;
    Addr addr = 0;
    std::uint8_t size = 8;
    std::uint64_t store_data = 0;
    std::function<std::uint64_t(std::uint64_t)> amo_func;
    bool spec = false; //!< access belongs to a speculative epoch
    std::uint32_t spec_epoch = 0; //!< epoch the access belongs to
    std::function<void(std::uint64_t)> callback;

    bool isLoad() const { return op == MemOp::Load; }
    bool isStore() const { return op == MemOp::Store; }
    bool isAmo() const { return op == MemOp::Amo; }
    bool isPrefetch() const { return op == MemOp::PrefetchEx; }

    /** @return true if the access needs write (M) permission. */
    bool needsWrite() const { return op != MemOp::Load; }
};

/**
 * Interface the speculation controller exposes to its L1 cache.
 *
 * The L1 consults these hooks to validate speculation tags (epoch-based
 * flash clear), report remote conflicts, and negotiate evictions of
 * speculatively-marked blocks.  A null implementation means "speculation
 * disabled".
 */
class SpecHooks
{
  public:
    virtual ~SpecHooks() = default;

    /** @return true while a speculative epoch is live. */
    virtual bool specActive() const = 0;

    /** @return current epoch id; tags from other epochs are invalid. */
    virtual std::uint32_t specEpoch() const = 0;

    /**
     * A remote request conflicted with a live speculation tag.  The
     * implementation rolls the core back (synchronously).
     *
     * @param block_addr   the conflicting block
     * @param remote_write true for Inv/FwdGetM, false for FwdGetS
     * @param had_sw       the block carried a speculative-write tag
     */
    virtual void specConflict(Addr block_addr, bool remote_write,
                              bool had_sw) = 0;

    /**
     * Replacement wants to evict a block with live speculation tags.
     *
     * @param block_addr        the block the blocked fill is for
     * @param needed_for_commit true when the blocked fill serves a
     *        store/AMO of the current epoch: the epoch cannot commit
     *        until that access completes, so waiting would deadlock and
     *        the controller must roll back regardless of policy.
     * @return true if the controller resolved the overflow by rolling
     *         back (tags are now clear; eviction may proceed), false if
     *         the fill must wait for the epoch to end (the controller
     *         will call L1Cache::specCleared() then).
     */
    virtual bool specOverflow(Addr block_addr,
                              bool needed_for_commit) = 0;
};

} // namespace fenceless::mem
