#include "mem/network.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace fenceless::mem
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS: return "GetS";
      case MsgType::GetM: return "GetM";
      case MsgType::PutM: return "PutM";
      case MsgType::PutS: return "PutS";
      case MsgType::PutNoData: return "PutNoData";
      case MsgType::WbClean: return "WbClean";
      case MsgType::Inv: return "Inv";
      case MsgType::FwdGetS: return "FwdGetS";
      case MsgType::FwdGetM: return "FwdGetM";
      case MsgType::Recall: return "Recall";
      case MsgType::DataS: return "DataS";
      case MsgType::DataE: return "DataE";
      case MsgType::DataM: return "DataM";
      case MsgType::PutAck: return "PutAck";
      case MsgType::InvAck: return "InvAck";
      case MsgType::FwdDataAck: return "FwdDataAck";
      case MsgType::FwdNoDataAck: return "FwdNoDataAck";
    }
    return "?";
}

bool
isDirRequest(MsgType t)
{
    switch (t) {
      case MsgType::GetS:
      case MsgType::GetM:
      case MsgType::PutM:
      case MsgType::PutS:
      case MsgType::PutNoData:
        return true;
      default:
        return false;
    }
}

std::string
Msg::toString() const
{
    std::ostringstream os;
    os << msgTypeName(type) << " " << src << "->" << dst << " blk=0x"
       << std::hex << block_addr << std::dec
       << (hasData() ? " +data" : "");
    return os.str();
}

Network::Network(sim::SimContext &ctx, const std::string &name,
                 const Params &params)
    : SimObject(ctx, name), params_(params),
      stat_msgs_(statGroup().addScalar("msgs", "messages delivered")),
      stat_bytes_(statGroup().addScalar("bytes", "bytes delivered")),
      stat_data_msgs_(statGroup().addScalar("data_msgs",
                                            "data-carrying messages")),
      stat_ctrl_msgs_(statGroup().addScalar("ctrl_msgs",
                                            "control messages")),
      stat_dropped_(statGroup().addScalar("dropped_msgs",
          "messages discarded by fault injection (drop_fwd_acks_for)")),
      stat_msg_latency_(statGroup().addDistribution("msg_latency",
          "cycles from send to delivery (latency + serialization + "
          "channel backpressure)"))
{
    flAssert(params_.link_bytes_per_cycle > 0,
             "network link bandwidth must be positive");

    std::vector<std::string> msg_names;
    for (int t = 0; t <= static_cast<int>(MsgType::FwdNoDataAck); ++t)
        msg_names.push_back(msgTypeName(static_cast<MsgType>(t)));
    tracer().setAuxNames(trace::EventKind::NetHop, std::move(msg_names));
}

void
Network::registerEndpoint(NodeId id, MsgReceiver *receiver)
{
    if (endpoints_.size() <= id)
        endpoints_.resize(id + 1, nullptr);
    flAssert(!endpoints_[id], "endpoint ", id, " already registered");
    endpoints_[id] = receiver;
}

void
Network::send(Msg msg)
{
    flAssert(msg.dst < endpoints_.size() && endpoints_[msg.dst],
             "message to unregistered endpoint ", msg.dst);

    // Fault injection (tests only): swallow the owner's probe response
    // before it touches channel state, wedging the directory's forward
    // phase exactly as a lost message would.
    if ((msg.type == MsgType::FwdDataAck ||
         msg.type == MsgType::FwdNoDataAck) &&
        std::find(params_.drop_fwd_acks_for.begin(),
                  params_.drop_fwd_acks_for.end(),
                  msg.block_addr) != params_.drop_fwd_acks_for.end()) {
        ++stat_dropped_;
        return;
    }

    msg.sent_tick = curTick();

    const Cycles serialization =
        (msg.sizeBytes() + params_.link_bytes_per_cycle - 1)
        / params_.link_bytes_per_cycle;

    Channel &ch = channels_[{msg.src, msg.dst}];
    Tick arrival = curTick() + params_.latency + serialization;
    // Preserve per-channel FIFO order and serialize on link bandwidth.
    if (arrival <= ch.last_arrival)
        arrival = ch.last_arrival + serialization;
    ch.last_arrival = arrival;
    ++ch.in_flight;

    ++stat_msgs_;
    stat_bytes_ += msg.sizeBytes();
    if (msg.hasData())
        ++stat_data_msgs_;
    else
        ++stat_ctrl_msgs_;

    // The delivery event owns itself and is destroyed after firing.
    auto *ev = new DeliveryEvent(*this, std::move(msg));
    eventq().schedule(ev, arrival);
}

void
Network::DeliveryEvent::process()
{
    network.deliver(message);
    delete this;
}

void
Network::deliver(const Msg &msg)
{
    const Tick latency = curTick() - msg.sent_tick;
    --channels_[{msg.src, msg.dst}].in_flight;
    stat_msg_latency_.sample(static_cast<double>(latency));
    FL_TEVENT(*this, trace::EventKind::NetHop, msg.req_id, latency,
              static_cast<std::uint32_t>(msg.type));
    endpoints_[msg.dst]->receiveMsg(msg);
}

} // namespace fenceless::mem
