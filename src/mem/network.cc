#include "mem/network.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace fenceless::mem
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS: return "GetS";
      case MsgType::GetM: return "GetM";
      case MsgType::PutM: return "PutM";
      case MsgType::PutS: return "PutS";
      case MsgType::PutNoData: return "PutNoData";
      case MsgType::WbClean: return "WbClean";
      case MsgType::Inv: return "Inv";
      case MsgType::FwdGetS: return "FwdGetS";
      case MsgType::FwdGetM: return "FwdGetM";
      case MsgType::Recall: return "Recall";
      case MsgType::DataS: return "DataS";
      case MsgType::DataE: return "DataE";
      case MsgType::DataM: return "DataM";
      case MsgType::PutAck: return "PutAck";
      case MsgType::InvAck: return "InvAck";
      case MsgType::FwdDataAck: return "FwdDataAck";
      case MsgType::FwdNoDataAck: return "FwdNoDataAck";
    }
    return "?";
}

bool
isDirRequest(MsgType t)
{
    switch (t) {
      case MsgType::GetS:
      case MsgType::GetM:
      case MsgType::PutM:
      case MsgType::PutS:
      case MsgType::PutNoData:
        return true;
      default:
        return false;
    }
}

const char *
topologyName(Topology t)
{
    switch (t) {
      case Topology::Crossbar: return "crossbar";
      case Topology::Ring: return "ring";
      case Topology::Mesh: return "mesh";
    }
    return "?";
}

bool
parseTopology(const std::string &s, Topology &out)
{
    if (s == "crossbar") {
        out = Topology::Crossbar;
    } else if (s == "ring") {
        out = Topology::Ring;
    } else if (s == "mesh") {
        out = Topology::Mesh;
    } else {
        return false;
    }
    return true;
}

MeshDims
meshDims(std::uint32_t n)
{
    MeshDims d;
    if (n == 0)
        return d;
    d.w = 1;
    while (d.w * d.w < n)
        ++d.w;
    d.h = (n + d.w - 1) / d.w;
    return d;
}

std::uint32_t
routerSlots(Topology t, std::uint32_t n)
{
    if (t != Topology::Mesh)
        return n;
    const MeshDims d = meshDims(n);
    return d.w * d.h;
}

std::uint32_t
ringHops(std::uint32_t n, NodeId s, NodeId d)
{
    const std::uint32_t cw = (d + n - s) % n;
    return std::min(cw, n - cw);
}

bool
ringClockwise(std::uint32_t n, NodeId s, NodeId d)
{
    // Shorter direction; clockwise (increasing id) on ties, so the
    // route -- and with it the link-occupancy accounting -- is a fixed
    // function of (s, d) with no arbitration state.
    const std::uint32_t cw = (d + n - s) % n;
    return cw <= n - cw;
}

std::uint32_t
meshHops(std::uint32_t n, NodeId s, NodeId d)
{
    const MeshDims dims = meshDims(n);
    const std::int64_t dx = static_cast<std::int64_t>(d % dims.w)
                            - static_cast<std::int64_t>(s % dims.w);
    const std::int64_t dy = static_cast<std::int64_t>(d / dims.w)
                            - static_cast<std::int64_t>(s / dims.w);
    return static_cast<std::uint32_t>((dx < 0 ? -dx : dx)
                                      + (dy < 0 ? -dy : dy));
}

std::uint32_t
topologyHops(Topology t, std::uint32_t n, NodeId s, NodeId d)
{
    switch (t) {
      case Topology::Crossbar: return 1;
      case Topology::Ring: return ringHops(n, s, d);
      case Topology::Mesh: return meshHops(n, s, d);
    }
    return 1;
}

void
forEachRouteLink(Topology t, std::uint32_t n, NodeId s, NodeId d,
                 const std::function<void(std::uint32_t)> &fn)
{
    if (t == Topology::Crossbar || s == d)
        return;
    if (t == Topology::Ring) {
        const bool cw = ringClockwise(n, s, d);
        for (NodeId at = s; at != d;) {
            fn(at * 4 + (cw ? 0u : 1u));
            at = cw ? (at + 1) % n : (at + n - 1) % n;
        }
        return;
    }
    // Mesh: XY routing -- walk out the x offset first, then y.  The
    // intermediate grid slots need not host an endpoint (the last mesh
    // row may be partially filled); they are routers either way.
    const MeshDims dims = meshDims(n);
    std::uint32_t x = s % dims.w, y = s / dims.w;
    const std::uint32_t dx = d % dims.w, dy = d / dims.w;
    while (x != dx) {
        const bool east = x < dx;
        fn((y * dims.w + x) * 4 + (east ? 0u : 1u));
        x += east ? 1 : -1;
    }
    while (y != dy) {
        const bool north = y < dy;
        fn((y * dims.w + x) * 4 + (north ? 2u : 3u));
        y += north ? 1 : -1;
    }
}

std::string
linkName(Topology t, std::uint32_t link_id)
{
    static const char *const mesh_dirs[4] = {"+x", "-x", "+y", "-y"};
    static const char *const ring_dirs[4] = {"cw", "ccw", "?", "?"};
    std::ostringstream os;
    os << "rtr" << (link_id / 4) << '.'
       << (t == Topology::Ring ? ring_dirs[link_id % 4]
                               : mesh_dirs[link_id % 4]);
    return os.str();
}

std::string
Msg::toString() const
{
    std::ostringstream os;
    os << msgTypeName(type) << " " << src << "->" << dst << " blk=0x"
       << std::hex << block_addr << std::dec
       << (hasData() ? " +data" : "");
    return os.str();
}

namespace
{

/** Max-heap comparator yielding a (arrival, src, chan_seq) min-heap. */
struct PendingLater
{
    bool
    operator()(const Network::PendingMsg &a,
               const Network::PendingMsg &b) const
    {
        if (a.arrival != b.arrival)
            return a.arrival > b.arrival;
        if (a.msg.src != b.msg.src)
            return a.msg.src > b.msg.src;
        return a.chan_seq > b.chan_seq;
    }
};

} // namespace

Network::Network(sim::SimContext &ctx, const std::string &name,
                 const Params &params)
    : SimObject(ctx, name), params_(params),
      stat_msgs_(statGroup().addScalar("msgs", "messages delivered")),
      stat_bytes_(statGroup().addScalar("bytes", "bytes delivered")),
      stat_data_msgs_(statGroup().addScalar("data_msgs",
                                            "data-carrying messages")),
      stat_ctrl_msgs_(statGroup().addScalar("ctrl_msgs",
                                            "control messages")),
      stat_dropped_(statGroup().addScalar("dropped_msgs",
          "messages discarded by fault injection (drop_fwd_acks_for)")),
      stat_hops_(statGroup().addScalar("hops",
          "links crossed, summed over all messages (crossbar: 1 each)")),
      stat_links_used_(statGroup().addScalar("links_used",
          "directed links that carried at least one message "
          "(ring/mesh only)")),
      stat_hot_link_msgs_(statGroup().addScalar("hot_link_msgs",
          "messages over the busiest directed link (ring/mesh only)")),
      stat_hot_link_busy_(statGroup().addScalar("hot_link_busy",
          "serialization cycles charged to the busiest directed link "
          "(ring/mesh only)")),
      stat_msg_latency_(statGroup().addDistribution("msg_latency",
          "cycles from send to delivery (route latency + serialization "
          "+ channel backpressure)"))
{
    flAssert(params_.link_bytes_per_cycle > 0,
             "network link bandwidth must be positive");
    if (params_.topology != Topology::Crossbar) {
        flAssert(params_.num_nodes >= 2, topologyName(params_.topology),
                 " topology needs num_nodes >= 2 (got ",
                 params_.num_nodes, ")");
        flAssert(params_.hop_latency > 0,
                 "per-hop latency must be positive");
    }

    std::vector<std::string> msg_names;
    for (int t = 0; t <= static_cast<int>(MsgType::FwdNoDataAck); ++t)
        msg_names.push_back(msgTypeName(static_cast<MsgType>(t)));
    tracer().setAuxNames(trace::EventKind::NetHop, std::move(msg_names));
}

Network::~Network()
{
    for (Node &n : nodes_) {
        if (n.ingress_event && n.ingress_event->scheduled())
            n.ctx->eventq.deschedule(n.ingress_event.get());
    }
}

Network::Node &
Network::ensureNode(NodeId id)
{
    if (nodes_.size() <= id)
        nodes_.resize(id + 1);
    Node &n = nodes_[id];
    if (!n.ctx)
        n.ctx = &ctx_;
    return n;
}

void
Network::bindNode(NodeId id, sim::SimContext &ctx, std::uint32_t shard)
{
    Node &n = ensureNode(id);
    flAssert(!n.receiver, "bindNode must precede registerEndpoint for ",
             id);
    n.ctx = &ctx;
    n.shard = shard;
}

void
Network::registerEndpoint(NodeId id, MsgReceiver *receiver)
{
    Node &n = ensureNode(id);
    flAssert(!n.receiver, "endpoint ", id, " already registered");
    n.receiver = receiver;
    n.trace_id =
        n.ctx->tracer.registerComponent("net.rx" + std::to_string(id));
    n.ingress_event = std::make_unique<sim::EventFunctionWrapper>(
        [this, id] { ingressFire(id); }, "net-ingress",
        ingress_prio_base + static_cast<int>(id));
}

void
Network::send(Msg msg)
{
    flAssert(msg.dst < nodes_.size() && nodes_[msg.dst].receiver,
             "message to unregistered endpoint ", msg.dst);
    Node &src = ensureNode(msg.src);

    // Fault injection (tests only): swallow the owner's probe response
    // before it touches channel state, wedging the directory's forward
    // phase exactly as a lost message would.
    if ((msg.type == MsgType::FwdDataAck ||
         msg.type == MsgType::FwdNoDataAck) &&
        std::find(params_.drop_fwd_acks_for.begin(),
                  params_.drop_fwd_acks_for.end(),
                  msg.block_addr) != params_.drop_fwd_acks_for.end()) {
        ++src.tx_dropped;
        return;
    }

    // Stamp with the *sender's* shard clock: the only clock advanced
    // past this point, and -- because shards stay within one quantum of
    // each other -- a globally meaningful tick.
    msg.sent_tick = src.ctx->curTick();

    const Cycles serialization =
        (msg.sizeBytes() + params_.link_bytes_per_cycle - 1)
        / params_.link_bytes_per_cycle;

    Tick route_latency = params_.latency;
    std::uint32_t hops = 1;
    if (params_.topology != Topology::Crossbar) {
        flAssert(msg.src < params_.num_nodes &&
                 msg.dst < params_.num_nodes,
                 "endpoint outside the configured ",
                 topologyName(params_.topology), " (num_nodes=",
                 params_.num_nodes, ")");
        hops = topologyHops(params_.topology, params_.num_nodes,
                            msg.src, msg.dst);
        route_latency = static_cast<Tick>(hops) * params_.hop_latency;
        // Charge this message's serialization to every directed link
        // on its (fixed, deterministic) route -- sender-owned counters
        // only, folded in node order at finalizeStats().
        if (src.link_msgs.empty()) {
            const std::size_t nlinks =
                static_cast<std::size_t>(routerSlots(
                    params_.topology, params_.num_nodes)) * 4;
            src.link_msgs.assign(nlinks, 0);
            src.link_busy.assign(nlinks, 0);
        }
        forEachRouteLink(params_.topology, params_.num_nodes, msg.src,
                         msg.dst, [&](std::uint32_t link) {
                             ++src.link_msgs[link];
                             src.link_busy[link] += serialization;
                         });
    }
    msg.hops = static_cast<std::uint8_t>(
        std::min<std::uint32_t>(hops, 255));
    src.tx_hops += hops;

    if (src.chans.size() <= msg.dst)
        src.chans.resize(msg.dst + 1);
    TxChan &ch = src.chans[msg.dst];
    Tick arrival = msg.sent_tick + route_latency + serialization;
    // Preserve per-channel FIFO order and serialize on link bandwidth.
    if (arrival <= ch.last_arrival)
        arrival = ch.last_arrival + serialization;
    ch.last_arrival = arrival;
    ++ch.sent;

    ++src.tx_msgs;
    src.tx_bytes += msg.sizeBytes();
    if (msg.hasData())
        ++src.tx_data_msgs;
    else
        ++src.tx_ctrl_msgs;

    const NodeId dst_id = msg.dst;
    PendingMsg pm{std::move(msg), arrival, ++ch.seq};
    Node &dst = nodes_[dst_id];
    if (dst.shard == src.shard) {
        enqueueArrival(std::move(pm));
    } else {
        flAssert(cross_push_,
                 "cross-shard message without a mailbox route");
        cross_push_(src.shard, dst.shard, std::move(pm));
    }
}

void
Network::enqueueArrival(PendingMsg &&pm)
{
    Node &n = nodes_[pm.msg.dst];
    n.heap.push_back(std::move(pm));
    std::push_heap(n.heap.begin(), n.heap.end(), PendingLater{});
    const Tick next = n.heap.front().arrival;
    sim::Event *ev = n.ingress_event.get();
    if (!ev->scheduled())
        n.ctx->eventq.schedule(ev, next);
    else if (ev->when() > next)
        n.ctx->eventq.reschedule(ev, next);
}

void
Network::rxSample(Node &n, double v)
{
    // Same recurrence as Distribution::sample so the node-order fold in
    // finalizeStats() reproduces one long single-threaded accumulation.
    if (n.rx_count == 0) {
        n.rx_min = v;
        n.rx_max = v;
    } else {
        if (v < n.rx_min)
            n.rx_min = v;
        if (v > n.rx_max)
            n.rx_max = v;
    }
    ++n.rx_count;
    n.rx_sum += v;
    const double delta = v - n.rx_mean;
    n.rx_mean += delta / static_cast<double>(n.rx_count);
    n.rx_m2 += delta * (v - n.rx_mean);
    n.rx_sketch.add(v);
}

void
Network::ingressFire(NodeId id)
{
    Node &n = nodes_[id];
    const Tick now = n.ctx->curTick();
    while (!n.heap.empty() && n.heap.front().arrival == now) {
        std::pop_heap(n.heap.begin(), n.heap.end(), PendingLater{});
        PendingMsg pm = std::move(n.heap.back());
        n.heap.pop_back();

        const Msg &msg = pm.msg;
        const Tick latency = now - msg.sent_tick;
        rxSample(n, static_cast<double>(latency));
        if (n.delivered_from.size() <= msg.src)
            n.delivered_from.resize(msg.src + 1, 0);
        ++n.delivered_from[msg.src];
        if (n.ctx->tracer.wants(trace::Flag::Net)) {
            n.ctx->tracer.record(n.trace_id, trace::EventKind::NetHop,
                                 now, msg.req_id, latency,
                                 static_cast<std::uint32_t>(msg.type));
        }
        // receiveMsg may send() back into this very heap; arrivals are
        // strictly in the future, so they never join this tick's batch,
        // and the (re)schedule below accounts for them.
        n.receiver->receiveMsg(msg);
    }
    if (!n.heap.empty()) {
        const Tick next = n.heap.front().arrival;
        sim::Event *ev = n.ingress_event.get();
        if (!ev->scheduled())
            n.ctx->eventq.schedule(ev, next);
        else if (ev->when() > next)
            n.ctx->eventq.reschedule(ev, next);
    }
}

std::vector<std::uint64_t>
Network::foldedLinkMsgs() const
{
    if (params_.topology == Topology::Crossbar)
        return {};
    const std::size_t nlinks =
        static_cast<std::size_t>(routerSlots(params_.topology,
                                             params_.num_nodes)) * 4;
    std::vector<std::uint64_t> lmsgs(nlinks, 0);
    for (const Node &n : nodes_) {
        for (std::size_t l = 0; l < n.link_msgs.size(); ++l)
            lmsgs[l] += n.link_msgs[l];
    }
    return lmsgs;
}

void
Network::finalizeStats()
{
    if (finalized_)
        return;
    finalized_ = true;
    std::uint64_t msgs = 0, bytes = 0, data = 0, ctrl = 0, dropped = 0;
    std::uint64_t hops = 0;
    for (const Node &n : nodes_) {
        msgs += n.tx_msgs;
        bytes += n.tx_bytes;
        data += n.tx_data_msgs;
        ctrl += n.tx_ctrl_msgs;
        dropped += n.tx_dropped;
        hops += n.tx_hops;
    }
    stat_msgs_ = msgs;
    stat_bytes_ = bytes;
    stat_data_msgs_ = data;
    stat_ctrl_msgs_ = ctrl;
    stat_dropped_ = dropped;
    stat_hops_ = hops;
    if (params_.topology != Topology::Crossbar) {
        // Fold the per-sender link occupancy into per-link totals
        // (node order -- deterministic) and report the hot spot.
        const std::size_t nlinks =
            static_cast<std::size_t>(routerSlots(
                params_.topology, params_.num_nodes)) * 4;
        std::vector<std::uint64_t> lmsgs(nlinks, 0), lbusy(nlinks, 0);
        for (const Node &n : nodes_) {
            for (std::size_t l = 0; l < n.link_msgs.size(); ++l) {
                lmsgs[l] += n.link_msgs[l];
                lbusy[l] += n.link_busy[l];
            }
        }
        std::uint64_t used = 0, hot_msgs = 0, hot_busy = 0;
        for (std::size_t l = 0; l < nlinks; ++l) {
            if (lmsgs[l] == 0)
                continue;
            ++used;
            hot_msgs = std::max(hot_msgs, lmsgs[l]);
            hot_busy = std::max(hot_busy, lbusy[l]);
        }
        stat_links_used_ = used;
        stat_hot_link_msgs_ = hot_msgs;
        stat_hot_link_busy_ = hot_busy;
    }
    for (Node &n : nodes_) {
        if (n.rx_count) {
            stat_msg_latency_.merge(n.rx_count, n.rx_sum, n.rx_mean,
                                    n.rx_m2, n.rx_min, n.rx_max,
                                    &n.rx_sketch);
        }
    }
}

} // namespace fenceless::mem
