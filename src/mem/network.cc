#include "mem/network.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace fenceless::mem
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS: return "GetS";
      case MsgType::GetM: return "GetM";
      case MsgType::PutM: return "PutM";
      case MsgType::PutS: return "PutS";
      case MsgType::PutNoData: return "PutNoData";
      case MsgType::WbClean: return "WbClean";
      case MsgType::Inv: return "Inv";
      case MsgType::FwdGetS: return "FwdGetS";
      case MsgType::FwdGetM: return "FwdGetM";
      case MsgType::Recall: return "Recall";
      case MsgType::DataS: return "DataS";
      case MsgType::DataE: return "DataE";
      case MsgType::DataM: return "DataM";
      case MsgType::PutAck: return "PutAck";
      case MsgType::InvAck: return "InvAck";
      case MsgType::FwdDataAck: return "FwdDataAck";
      case MsgType::FwdNoDataAck: return "FwdNoDataAck";
    }
    return "?";
}

bool
isDirRequest(MsgType t)
{
    switch (t) {
      case MsgType::GetS:
      case MsgType::GetM:
      case MsgType::PutM:
      case MsgType::PutS:
      case MsgType::PutNoData:
        return true;
      default:
        return false;
    }
}

std::string
Msg::toString() const
{
    std::ostringstream os;
    os << msgTypeName(type) << " " << src << "->" << dst << " blk=0x"
       << std::hex << block_addr << std::dec
       << (hasData() ? " +data" : "");
    return os.str();
}

namespace
{

/** Max-heap comparator yielding a (arrival, src, chan_seq) min-heap. */
struct PendingLater
{
    bool
    operator()(const Network::PendingMsg &a,
               const Network::PendingMsg &b) const
    {
        if (a.arrival != b.arrival)
            return a.arrival > b.arrival;
        if (a.msg.src != b.msg.src)
            return a.msg.src > b.msg.src;
        return a.chan_seq > b.chan_seq;
    }
};

} // namespace

Network::Network(sim::SimContext &ctx, const std::string &name,
                 const Params &params)
    : SimObject(ctx, name), params_(params),
      stat_msgs_(statGroup().addScalar("msgs", "messages delivered")),
      stat_bytes_(statGroup().addScalar("bytes", "bytes delivered")),
      stat_data_msgs_(statGroup().addScalar("data_msgs",
                                            "data-carrying messages")),
      stat_ctrl_msgs_(statGroup().addScalar("ctrl_msgs",
                                            "control messages")),
      stat_dropped_(statGroup().addScalar("dropped_msgs",
          "messages discarded by fault injection (drop_fwd_acks_for)")),
      stat_msg_latency_(statGroup().addDistribution("msg_latency",
          "cycles from send to delivery (latency + serialization + "
          "channel backpressure)"))
{
    flAssert(params_.link_bytes_per_cycle > 0,
             "network link bandwidth must be positive");

    std::vector<std::string> msg_names;
    for (int t = 0; t <= static_cast<int>(MsgType::FwdNoDataAck); ++t)
        msg_names.push_back(msgTypeName(static_cast<MsgType>(t)));
    tracer().setAuxNames(trace::EventKind::NetHop, std::move(msg_names));
}

Network::~Network()
{
    for (Node &n : nodes_) {
        if (n.ingress_event && n.ingress_event->scheduled())
            n.ctx->eventq.deschedule(n.ingress_event.get());
    }
}

Network::Node &
Network::ensureNode(NodeId id)
{
    if (nodes_.size() <= id)
        nodes_.resize(id + 1);
    Node &n = nodes_[id];
    if (!n.ctx)
        n.ctx = &ctx_;
    return n;
}

void
Network::bindNode(NodeId id, sim::SimContext &ctx, std::uint32_t shard)
{
    Node &n = ensureNode(id);
    flAssert(!n.receiver, "bindNode must precede registerEndpoint for ",
             id);
    n.ctx = &ctx;
    n.shard = shard;
}

void
Network::registerEndpoint(NodeId id, MsgReceiver *receiver)
{
    Node &n = ensureNode(id);
    flAssert(!n.receiver, "endpoint ", id, " already registered");
    n.receiver = receiver;
    n.trace_id =
        n.ctx->tracer.registerComponent("net.rx" + std::to_string(id));
    n.ingress_event = std::make_unique<sim::EventFunctionWrapper>(
        [this, id] { ingressFire(id); }, "net-ingress",
        ingress_prio_base + static_cast<int>(id));
}

void
Network::send(Msg msg)
{
    flAssert(msg.dst < nodes_.size() && nodes_[msg.dst].receiver,
             "message to unregistered endpoint ", msg.dst);
    Node &src = ensureNode(msg.src);

    // Fault injection (tests only): swallow the owner's probe response
    // before it touches channel state, wedging the directory's forward
    // phase exactly as a lost message would.
    if ((msg.type == MsgType::FwdDataAck ||
         msg.type == MsgType::FwdNoDataAck) &&
        std::find(params_.drop_fwd_acks_for.begin(),
                  params_.drop_fwd_acks_for.end(),
                  msg.block_addr) != params_.drop_fwd_acks_for.end()) {
        ++src.tx_dropped;
        return;
    }

    // Stamp with the *sender's* shard clock: the only clock advanced
    // past this point, and -- because shards stay within one quantum of
    // each other -- a globally meaningful tick.
    msg.sent_tick = src.ctx->curTick();

    const Cycles serialization =
        (msg.sizeBytes() + params_.link_bytes_per_cycle - 1)
        / params_.link_bytes_per_cycle;

    if (src.chans.size() <= msg.dst)
        src.chans.resize(msg.dst + 1);
    TxChan &ch = src.chans[msg.dst];
    Tick arrival = msg.sent_tick + params_.latency + serialization;
    // Preserve per-channel FIFO order and serialize on link bandwidth.
    if (arrival <= ch.last_arrival)
        arrival = ch.last_arrival + serialization;
    ch.last_arrival = arrival;
    ++ch.sent;

    ++src.tx_msgs;
    src.tx_bytes += msg.sizeBytes();
    if (msg.hasData())
        ++src.tx_data_msgs;
    else
        ++src.tx_ctrl_msgs;

    const NodeId dst_id = msg.dst;
    PendingMsg pm{std::move(msg), arrival, ++ch.seq};
    Node &dst = nodes_[dst_id];
    if (dst.shard == src.shard) {
        enqueueArrival(std::move(pm));
    } else {
        flAssert(cross_push_,
                 "cross-shard message without a mailbox route");
        cross_push_(src.shard, dst.shard, std::move(pm));
    }
}

void
Network::enqueueArrival(PendingMsg &&pm)
{
    Node &n = nodes_[pm.msg.dst];
    n.heap.push_back(std::move(pm));
    std::push_heap(n.heap.begin(), n.heap.end(), PendingLater{});
    const Tick next = n.heap.front().arrival;
    sim::Event *ev = n.ingress_event.get();
    if (!ev->scheduled())
        n.ctx->eventq.schedule(ev, next);
    else if (ev->when() > next)
        n.ctx->eventq.reschedule(ev, next);
}

void
Network::rxSample(Node &n, double v)
{
    // Same recurrence as Distribution::sample so the node-order fold in
    // finalizeStats() reproduces one long single-threaded accumulation.
    if (n.rx_count == 0) {
        n.rx_min = v;
        n.rx_max = v;
    } else {
        if (v < n.rx_min)
            n.rx_min = v;
        if (v > n.rx_max)
            n.rx_max = v;
    }
    ++n.rx_count;
    n.rx_sum += v;
    const double delta = v - n.rx_mean;
    n.rx_mean += delta / static_cast<double>(n.rx_count);
    n.rx_m2 += delta * (v - n.rx_mean);
    n.rx_sketch.add(v);
}

void
Network::ingressFire(NodeId id)
{
    Node &n = nodes_[id];
    const Tick now = n.ctx->curTick();
    while (!n.heap.empty() && n.heap.front().arrival == now) {
        std::pop_heap(n.heap.begin(), n.heap.end(), PendingLater{});
        PendingMsg pm = std::move(n.heap.back());
        n.heap.pop_back();

        const Msg &msg = pm.msg;
        const Tick latency = now - msg.sent_tick;
        rxSample(n, static_cast<double>(latency));
        if (n.delivered_from.size() <= msg.src)
            n.delivered_from.resize(msg.src + 1, 0);
        ++n.delivered_from[msg.src];
        if (n.ctx->tracer.wants(trace::Flag::Net)) {
            n.ctx->tracer.record(n.trace_id, trace::EventKind::NetHop,
                                 now, msg.req_id, latency,
                                 static_cast<std::uint32_t>(msg.type));
        }
        // receiveMsg may send() back into this very heap; arrivals are
        // strictly in the future, so they never join this tick's batch,
        // and the (re)schedule below accounts for them.
        n.receiver->receiveMsg(msg);
    }
    if (!n.heap.empty()) {
        const Tick next = n.heap.front().arrival;
        sim::Event *ev = n.ingress_event.get();
        if (!ev->scheduled())
            n.ctx->eventq.schedule(ev, next);
        else if (ev->when() > next)
            n.ctx->eventq.reschedule(ev, next);
    }
}

void
Network::finalizeStats()
{
    if (finalized_)
        return;
    finalized_ = true;
    std::uint64_t msgs = 0, bytes = 0, data = 0, ctrl = 0, dropped = 0;
    for (const Node &n : nodes_) {
        msgs += n.tx_msgs;
        bytes += n.tx_bytes;
        data += n.tx_data_msgs;
        ctrl += n.tx_ctrl_msgs;
        dropped += n.tx_dropped;
    }
    stat_msgs_ = msgs;
    stat_bytes_ = bytes;
    stat_data_msgs_ = data;
    stat_ctrl_msgs_ = ctrl;
    stat_dropped_ = dropped;
    for (Node &n : nodes_) {
        if (n.rx_count) {
            stat_msg_latency_.merge(n.rx_count, n.rx_sum, n.rx_mean,
                                    n.rx_m2, n.rx_min, n.rx_max,
                                    &n.rx_sketch);
        }
    }
}

} // namespace fenceless::mem
