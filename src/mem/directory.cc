#include "mem/directory.hh"

#include <sstream>

#include "base/logging.hh"
#include "base/trace.hh"

namespace fenceless::mem
{

namespace
{

/**
 * Set-index bits a bank must skip: a bank of B sees only addresses
 * whose low log2(B) block-index bits equal its bank number, so those
 * bits carry no information for set selection.
 */
unsigned
bankIndexShift(std::uint32_t banks)
{
    flAssert(isPowerOf2(banks), "directory banks must be a power of two "
             "(got ", banks, ")");
    return floorLog2(banks);
}

} // namespace

Directory::Directory(sim::SimContext &ctx, const std::string &name,
                     const Params &params, NodeId node_id,
                     std::uint32_t num_cores, Network &network,
                     FlatMemory &backing)
    : SimObject(ctx, name), params_(params), node_id_(node_id),
      num_cores_(num_cores), network_(network), backing_(backing),
      prof_(ctx.profiler.ifEnabled()),
      rtrace_(ctx.spans.ifEnabled()),
      array_(params.size, params.assoc, params.block_size,
             bankIndexShift(params.banks)),
      stat_gets_(statGroup().addScalar("gets", "GetS transactions")),
      stat_getm_(statGroup().addScalar("getm", "GetM transactions")),
      stat_puts_(statGroup().addScalar("puts", "Put transactions")),
      stat_wb_clean_(statGroup().addScalar("wb_clean",
                                           "WbClean updates received")),
      stat_fwds_sent_(statGroup().addScalar("fwds_sent",
                                            "probes forwarded to owners")),
      stat_invs_sent_(statGroup().addScalar("invs_sent",
                                            "invalidations sent")),
      stat_recalls_(statGroup().addScalar("recalls",
                                          "L2 eviction recalls")),
      stat_dram_reads_(statGroup().addScalar("dram_reads",
                                             "DRAM block reads")),
      stat_dram_writes_(statGroup().addScalar("dram_writes",
                                              "DRAM block writebacks")),
      stat_txn_queue_wait_(statGroup().addDistribution("txn_queue_wait",
          "cycles a request waited behind an active same-block "
          "transaction")),
      stat_txn_service_(statGroup().addDistribution("txn_service",
          "cycles from transaction start to completion"))
{
    flAssert(num_cores <= max_cores, "directory supports at most ",
             max_cores, " cores");
    flAssert(params.bank < params.banks, name, ": bank index ",
             params.bank, " out of range for ", params.banks, " banks");
    network_.registerEndpoint(node_id_, this);
}

void
Directory::receiveMsg(const Msg &msg)
{
    // Every message must target this bank's address slice: a misrouted
    // request means an L1's DirectoryMap disagrees with the system's.
    flAssert(((msg.block_addr >> floorLog2(params_.block_size))
              & (params_.banks - 1)) == params_.bank,
             name(), ": ", msg.toString(), " does not belong to bank ",
             params_.bank, " of ", params_.banks);
    if (isDirRequest(msg.type)) {
        dispatch(msg);
        return;
    }
    switch (msg.type) {
      case MsgType::WbClean:
        handleWbClean(msg);
        break;
      case MsgType::InvAck:
      case MsgType::FwdDataAck:
      case MsgType::FwdNoDataAck:
        handleAck(msg);
        break;
      default:
        panic(name(), ": unexpected message ", msg.toString());
    }
}

// ---------------------------------------------------------------------
// dispatch / queueing
// ---------------------------------------------------------------------

void
Directory::dispatch(const Msg &msg)
{
    FL_TRACE(trace::Flag::Dir, *this, "dispatch ", msg.toString(),
             (active_.count(msg.block_addr) ? " (queued)" : ""));
    if (active_.count(msg.block_addr)) {
        pending_[msg.block_addr].push_back(QueuedReq{curTick(), msg});
        ++total_pending_;
        if (rtrace_ && rtrace_->sampled(msg.req_id)) {
            rtrace_->record(msg.req_id, curTick(),
                            reqtrace::Stage::DirQueue, traceId(),
                            msg.block_addr,
                            static_cast<std::uint32_t>(
                                pending_[msg.block_addr].size()));
        }
        return;
    }
    startTxn(msg, curTick());
}

void
Directory::startTxn(const Msg &msg, Tick recv_tick)
{
    stat_txn_queue_wait_.sample(
        static_cast<double>(curTick() - recv_tick));
    FL_TEVENT(*this, trace::EventKind::ReqDirIngress, msg.req_id,
              static_cast<std::uint64_t>(msg.type));
    Txn &txn = active_[msg.block_addr];
    txn.req = msg;
    txn.phase = Txn::Phase::Start;
    txn.start_tick = curTick();
    if (rtrace_ && rtrace_->sampled(msg.req_id)) {
        rtrace_->record(msg.req_id, curTick(),
                        reqtrace::Stage::DirAccess, traceId(),
                        msg.block_addr);
    }
    // Model the directory/tag access latency before processing.
    sim::scheduleOneShot(eventq(), curTick() + params_.latency,
                         [this, addr = msg.block_addr] {
                             processRequest(addr);
                         });
}

void
Directory::processRequest(Addr block_addr)
{
    auto it = active_.find(block_addr);
    flAssert(it != active_.end(), name(), ": processRequest with no "
             "active transaction");
    Txn &txn = it->second;
    const Msg &req = txn.req;

    switch (req.type) {
      case MsgType::GetS:
      case MsgType::GetM: {
        if (!ensurePresent(txn, block_addr))
            return; // waiting for DRAM or a victim recall
        L2Block *blk = array_.find(block_addr);
        array_.touch(*blk);
        if (req.type == MsgType::GetS) {
            ++stat_gets_;
            processGetS(txn, *blk);
        } else {
            ++stat_getm_;
            processGetM(txn, *blk);
        }
        break;
      }
      case MsgType::PutM:
      case MsgType::PutS:
      case MsgType::PutNoData: {
        ++stat_puts_;
        L2Block *blk = array_.find(block_addr);
        // Inclusivity: a Put can only name a block the L2 tracks, unless
        // the Put raced with a recall that already removed it.
        if (blk) {
            processPut(txn, *blk);
        } else {
            sendToL1(MsgType::PutAck, txn.req.src, block_addr);
        }
        complete(block_addr);
        break;
      }
      default:
        panic(name(), ": bad queued request ", req.toString());
    }
}

void
Directory::complete(Addr block_addr)
{
    auto active_it = active_.find(block_addr);
    flAssert(active_it != active_.end(),
             name(), ": complete with no active transaction");
    const Txn &txn = active_it->second;
    stat_txn_service_.sample(
        static_cast<double>(curTick() - txn.start_tick));
    FL_TEVENT(*this, trace::EventKind::ReqDirDone, txn.req.req_id,
              txn.dram_reads);
    active_.erase(active_it);

    auto it = pending_.find(block_addr);
    if (it == pending_.end())
        return;
    flAssert(!it->second.empty(), "empty pending queue left behind");
    QueuedReq next = it->second.front();
    it->second.pop_front();
    --total_pending_;
    if (it->second.empty())
        pending_.erase(it);
    startTxn(next.msg, next.recv_tick);
}

// ---------------------------------------------------------------------
// GetS / GetM
// ---------------------------------------------------------------------

void
Directory::processGetS(Txn &txn, L2Block &blk)
{
    const CoreId requestor = txn.req.src;

    if (blk.hasOwner() && blk.owner != requestor) {
        // Access migrates away from the current owner: read ping-pong.
        if (prof_)
            prof_->linePingPong(blk.block_addr);
        ++stat_fwds_sent_;
        sendToL1(MsgType::FwdGetS, blk.owner, blk.block_addr);
        txn.phase = Txn::Phase::Fwd;
        if (rtrace_ && rtrace_->sampled(txn.req.req_id)) {
            rtrace_->record(txn.req.req_id, curTick(),
                            reqtrace::Stage::DirFwd, traceId(),
                            blk.block_addr, blk.owner);
        }
        return;
    }
    if (blk.owner == requestor) {
        // Owner re-requesting (defensive: MStale refetch normally uses
        // GetM).  Grant M so ownership bookkeeping stays unchanged.
        sendData(MsgType::DataM, requestor, blk, txn.req.req_id);
        complete(blk.block_addr);
        return;
    }
    if (!blk.hasSharers()) {
        blk.owner = requestor;
        sendData(MsgType::DataE, requestor, blk, txn.req.req_id);
    } else {
        blk.addSharer(requestor);
        sendData(MsgType::DataS, requestor, blk, txn.req.req_id);
    }
    complete(blk.block_addr);
}

void
Directory::processGetM(Txn &txn, L2Block &blk)
{
    const CoreId requestor = txn.req.src;

    if (blk.owner == requestor) {
        // MStale refetch: the L1 lost its data to a rollback but remains
        // owner; the L2 copy is the pre-speculation value.
        sendData(MsgType::DataM, requestor, blk, txn.req.req_id);
        complete(blk.block_addr);
        return;
    }
    if (blk.hasOwner()) {
        // Ownership migrates between writers: write ping-pong.
        if (prof_)
            prof_->linePingPong(blk.block_addr);
        ++stat_fwds_sent_;
        sendToL1(MsgType::FwdGetM, blk.owner, blk.block_addr);
        txn.phase = Txn::Phase::Fwd;
        if (rtrace_ && rtrace_->sampled(txn.req.req_id)) {
            rtrace_->record(txn.req.req_id, curTick(),
                            reqtrace::Stage::DirFwd, traceId(),
                            blk.block_addr, blk.owner);
        }
        return;
    }

    blk.removeSharer(requestor); // requestor gets fresh data anyway
    if (!blk.hasSharers()) {
        blk.owner = requestor;
        blk.sharers = 0;
        sendData(MsgType::DataM, requestor, blk, txn.req.req_id);
        complete(blk.block_addr);
        return;
    }
    // A writer displacing readers is the other ping-pong transition.
    if (prof_)
        prof_->linePingPong(blk.block_addr);
    unsigned count = 0;
    for (CoreId c = 0; c < num_cores_; ++c) {
        if (blk.isSharer(c)) {
            sendToL1(MsgType::Inv, c, blk.block_addr);
            ++count;
        }
    }
    stat_invs_sent_ += count;
    txn.pending_acks = count;
    txn.phase = Txn::Phase::InvAcks;
    if (rtrace_ && rtrace_->sampled(txn.req.req_id)) {
        rtrace_->record(txn.req.req_id, curTick(),
                        reqtrace::Stage::DirInv, traceId(),
                        blk.block_addr, count);
    }
}

// ---------------------------------------------------------------------
// Puts and WbClean
// ---------------------------------------------------------------------

void
Directory::processPut(Txn &txn, L2Block &blk)
{
    const CoreId sender = txn.req.src;

    switch (txn.req.type) {
      case MsgType::PutM:
        if (blk.owner == sender) {
            flAssert(txn.req.data.size() == array_.blockSize(),
                     name(), ": PutM with bad payload");
            blk.data = txn.req.data;
            blk.dirty = true;
            blk.owner = invalid_core;
        } else {
            // Stale put: the sender was downgraded (to sharer, by a
            // FwdGetS that raced with the eviction) or invalidated.
            blk.removeSharer(sender);
        }
        break;
      case MsgType::PutNoData:
        if (blk.owner == sender) {
            // The L1's data was discarded by a rollback; the L2 copy is
            // current.
            blk.owner = invalid_core;
        } else {
            blk.removeSharer(sender);
        }
        break;
      case MsgType::PutS:
        blk.removeSharer(sender);
        break;
      default:
        panic(name(), ": processPut on ", txn.req.toString());
    }
    sendToL1(MsgType::PutAck, sender, blk.block_addr);
}

void
Directory::handleWbClean(const Msg &msg)
{
    ++stat_wb_clean_;
    L2Block *blk = array_.find(msg.block_addr);
    // Channel FIFO guarantees a WbClean arrives while its sender is
    // still the owner (it precedes any ownership-changing response from
    // that L1), and inclusivity guarantees the entry exists.
    flAssert(blk, name(), ": WbClean for an untracked block 0x",
             std::hex, msg.block_addr);
    flAssert(blk->owner == msg.src, name(), ": WbClean from non-owner ",
             msg.src);
    flAssert(msg.data.size() == array_.blockSize(),
             name(), ": WbClean with bad payload");
    blk->data = msg.data;
    blk->dirty = true;
}

// ---------------------------------------------------------------------
// acks (routed to the active transaction)
// ---------------------------------------------------------------------

void
Directory::handleAck(const Msg &msg)
{
    auto it = active_.find(msg.block_addr);
    flAssert(it != active_.end(), name(), ": ", msg.toString(),
             " with no active transaction");
    Txn &txn = it->second;
    L2Block *blk = array_.find(msg.block_addr);
    flAssert(blk, name(), ": ack for a block not in L2");

    if (msg.type == MsgType::InvAck) {
        flAssert(txn.phase == Txn::Phase::InvAcks,
                 name(), ": unexpected InvAck");
        blk->removeSharer(msg.src);
        flAssert(txn.pending_acks > 0, "InvAck underflow");
        if (--txn.pending_acks > 0)
            return;
        if (txn.is_recall) {
            finishRecall(txn, *blk);
            return;
        }
        // GetM: all sharers gone; grant M.
        blk->owner = txn.req.src;
        blk->sharers = 0;
        sendData(MsgType::DataM, txn.req.src, *blk, txn.req.req_id);
        complete(msg.block_addr);
        return;
    }

    // FwdDataAck / FwdNoDataAck from the (former) owner.
    flAssert(txn.phase == Txn::Phase::Fwd,
             name(), ": unexpected ", msg.toString());
    const CoreId old_owner = blk->owner;
    flAssert(old_owner == msg.src, name(), ": Fwd ack from ", msg.src,
             " but owner is ", old_owner);

    if (msg.type == MsgType::FwdDataAck) {
        flAssert(msg.data.size() == array_.blockSize(),
                 name(), ": FwdDataAck with bad payload");
        blk->data = msg.data;
        blk->dirty = true;
    }
    // On FwdNoDataAck the L2 copy is already the authoritative value.

    if (txn.is_recall) {
        blk->owner = invalid_core;
        finishRecall(txn, *blk);
        return;
    }

    if (txn.req.type == MsgType::GetS) {
        blk->owner = invalid_core;
        if (msg.type == MsgType::FwdDataAck)
            blk->addSharer(old_owner); // downgraded owner keeps a copy
        if (!blk->hasSharers()) {
            blk->owner = txn.req.src;
            sendData(MsgType::DataE, txn.req.src, *blk,
                     txn.req.req_id);
        } else {
            blk->addSharer(txn.req.src);
            sendData(MsgType::DataS, txn.req.src, *blk,
                     txn.req.req_id);
        }
    } else { // GetM
        blk->owner = txn.req.src;
        blk->sharers = 0;
        sendData(MsgType::DataM, txn.req.src, *blk, txn.req.req_id);
    }
    complete(msg.block_addr);
}

// ---------------------------------------------------------------------
// L2 fills and recalls
// ---------------------------------------------------------------------

bool
Directory::ensurePresent(Txn &txn, Addr block_addr)
{
    if (array_.find(block_addr))
        return true;

    if (txn.phase == Txn::Phase::Dram) {
        panic(name(), ": re-entered ensurePresent while in Dram phase");
    }

    L2Block *way = array_.findFreeWay(block_addr);
    if (!way) {
        // Prefer victims nobody caches; otherwise recall one.
        L2Block *victim = array_.findVictim(block_addr,
            [this](const L2Block &b) {
                return !active_.count(b.block_addr) && !b.hasOwner() &&
                       !b.hasSharers();
            });
        if (!victim) {
            victim = array_.findVictim(block_addr,
                [this](const L2Block &b) {
                    return !active_.count(b.block_addr);
                });
            flAssert(victim, name(), ": all L2 ways busy in set for 0x",
                     std::hex, block_addr, std::dec,
                     " - L2 too small for the transaction load");
            txn.phase = Txn::Phase::Blocked;
            if (rtrace_ && rtrace_->sampled(txn.req.req_id)) {
                rtrace_->record(txn.req.req_id, curTick(),
                                reqtrace::Stage::DirBlocked, traceId(),
                                block_addr,
                                static_cast<std::uint32_t>(
                                    victim->block_addr >>
                                    floorLog2(params_.block_size)));
            }
            startRecall(victim->block_addr, txn.req);
            return false;
        }
        dramWriteback(*victim);
        victim->valid = false;
        way = victim;
    }

    // Fetch the block from DRAM.
    txn.phase = Txn::Phase::Dram;
    if (rtrace_ && rtrace_->sampled(txn.req.req_id)) {
        rtrace_->record(txn.req.req_id, curTick(),
                        reqtrace::Stage::Dram, traceId(), block_addr);
    }
    ++stat_dram_reads_;
    ++txn.dram_reads;
    const Tick ready = std::max(curTick(), dram_next_free_)
                       + params_.dram_latency;
    dram_next_free_ = std::max(curTick(), dram_next_free_)
                      + params_.dram_cycle;

    way->valid = true;
    way->block_addr = block_addr;
    way->dirty = false;
    way->owner = invalid_core;
    way->sharers = 0;
    backing_.read(block_addr, way->data.data(), array_.blockSize());
    array_.touch(*way);

    sim::scheduleOneShot(eventq(), ready, [this, block_addr] {
        processRequest(block_addr);
    });
    return false;
}

void
Directory::startRecall(Addr victim_addr, const Msg &blocked_req)
{
    FL_TRACE(trace::Flag::Dir, *this, "recall 0x", std::hex,
             victim_addr, " to make room for 0x",
             blocked_req.block_addr);
    ++stat_recalls_;
    flAssert(!active_.count(victim_addr),
             name(), ": recalling a busy block");
    Txn &txn = active_[victim_addr];
    txn.is_recall = true;
    txn.start_tick = curTick();
    txn.resume = blocked_req;
    txn.req = Msg{}; // synthetic
    txn.req.type = MsgType::GetM;
    txn.req.block_addr = victim_addr;

    L2Block *blk = array_.find(victim_addr);
    flAssert(blk, name(), ": recall target vanished");

    if (blk->hasOwner()) {
        ++stat_fwds_sent_;
        sendToL1(MsgType::Recall, blk->owner, victim_addr);
        txn.phase = Txn::Phase::Fwd;
        return;
    }
    flAssert(blk->hasSharers(), name(), ": recall of an uncached block");
    unsigned count = 0;
    for (CoreId c = 0; c < num_cores_; ++c) {
        if (blk->isSharer(c)) {
            sendToL1(MsgType::Inv, c, victim_addr);
            ++count;
        }
    }
    stat_invs_sent_ += count;
    txn.pending_acks = count;
    txn.phase = Txn::Phase::InvAcks;
}

void
Directory::finishRecall(Txn &txn, L2Block &victim)
{
    flAssert(!victim.hasOwner() && !victim.hasSharers(),
             name(), ": recall finished with live copies");
    const Addr victim_addr = victim.block_addr;
    dramWriteback(victim);
    victim.valid = false;

    std::optional<Msg> resume = std::move(txn.resume);
    complete(victim_addr); // also dispatches queued requests for victim

    if (resume) {
        // Continue the transaction that was blocked on this recall.
        const Addr orig = resume->block_addr;
        flAssert(active_.count(orig),
                 name(), ": blocked transaction vanished");
        processRequest(orig);
    }
}

void
Directory::dramWriteback(L2Block &blk)
{
    if (!blk.dirty)
        return;
    ++stat_dram_writes_;
    backing_.write(blk.block_addr, blk.data.data(), array_.blockSize());
    blk.dirty = false;
    // Writes are buffered; only the occupancy cost is modelled.
    dram_next_free_ = std::max(curTick(), dram_next_free_)
                      + params_.dram_cycle;
}

// ---------------------------------------------------------------------
// misc
// ---------------------------------------------------------------------

void
Directory::sendToL1(MsgType type, NodeId dst, Addr block_addr,
                    const std::uint8_t *data,
                    std::uint64_t req_id)
{
    Msg msg;
    msg.type = type;
    msg.src = node_id_;
    msg.dst = dst;
    msg.block_addr = block_addr;
    msg.req_id = req_id;
    if (data)
        msg.data.assign(data, data + array_.blockSize());
    network_.send(std::move(msg));
}

void
Directory::sendData(MsgType type, NodeId dst, const L2Block &blk,
                    std::uint64_t req_id)
{
    if (rtrace_ && rtrace_->sampled(req_id)) {
        rtrace_->record(req_id, curTick(), reqtrace::Stage::ReplyNet,
                        traceId(), blk.block_addr, dst);
    }
    sendToL1(type, dst, blk.block_addr, blk.data.data(), req_id);
}

std::uint64_t
Directory::debugRead(Addr addr, unsigned size) const
{
    const L2Block *blk = array_.find(addr);
    if (blk)
        return blk->readInt(addr - blk->block_addr, size);
    return backing_.readInt(addr, size);
}

const char *
Directory::phaseName(Txn::Phase p)
{
    switch (p) {
      case Txn::Phase::Start: return "start";
      case Txn::Phase::Dram: return "dram";
      case Txn::Phase::Fwd: return "fwd";
      case Txn::Phase::InvAcks: return "inv-acks";
      case Txn::Phase::Blocked: return "blocked";
    }
    return "?";
}

} // namespace fenceless::mem
