/**
 * @file
 * The on-chip interconnect model.
 *
 * A topology layer connects the L1 controllers and the directory
 * bank(s).  Three topologies are supported:
 *
 *  - Crossbar (default): the legacy star -- every message pays the
 *    same `latency`, regardless of endpoints.
 *  - Ring: nodes 0..N-1 on a bidirectional ring; a message takes the
 *    shorter direction (clockwise on ties -- a fixed, deterministic
 *    tie-break) and pays `hop_latency` per link crossed.
 *  - Mesh: nodes laid out row-major on a ceil(sqrt(N))-wide 2D grid
 *    with deterministic XY (x-first) dimension-ordered routing;
 *    `hop_latency` per link.
 *
 * Each (src, dst) channel is a FIFO: a message arrives
 * max(now + route_latency, channel_last_arrival + serialization)
 * cycles later, where route_latency is `latency` (crossbar) or
 * hops * `hop_latency` (ring/mesh) and serialization =
 * ceil(bytes / link_bytes_per_cycle) models link bandwidth.  FIFO
 * order per channel is a protocol requirement.
 *
 * Link occupancy is modeled as per-source accounting: every message
 * charges its serialization cycles to each directed link on its route,
 * accumulated in sender-owned counters and folded deterministically at
 * finalizeStats() (hop totals, hot-link occupancy).  Shared-link
 * *timing* contention is deliberately not modeled: arrival times must
 * be a pure function of sender-owned channel state so that a sharded
 * run stays byte-identical to the single-threaded reference without
 * cross-thread synchronization on every send (see below).
 *
 * The network is also the simulator's only cross-shard edge when the
 * System is sharded across host threads (--shards=N), so delivery is
 * built around a *canonical per-destination ingress*: every node owns a
 * min-heap of pending arrivals ordered by (arrival tick, source node,
 * per-channel sequence) -- a total order whose keys are computed
 * entirely at send time -- drained by one event on the destination
 * node's shard queue.  Same-shard sends enqueue directly; cross-shard
 * sends travel through the System's mailboxes and are enqueued at the
 * next quantum boundary, which the lookahead (quantum <= latency + 1)
 * guarantees still precedes the arrival tick.  Delivery order at every
 * node is therefore a pure function of the message timing, identical
 * whether the simulation runs on one host thread or eight.
 *
 * Stats follow the same discipline: each node accumulates its own tx
 * counters and rx latency moments (touched only by its shard's
 * thread), and finalizeStats() folds them into the legacy "network"
 * stat group in node order at end of run -- deterministic and
 * lock-free in every mode.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/msg.hh"
#include "sim/sim_object.hh"

namespace fenceless::mem
{

/** Anything that can receive coherence messages from the network. */
class MsgReceiver
{
  public:
    virtual ~MsgReceiver() = default;
    virtual void receiveMsg(const Msg &msg) = 0;
};

/** Interconnect topology (see the file comment). */
enum class Topology : std::uint8_t
{
    Crossbar, //!< flat star: uniform latency (the legacy model)
    Ring,     //!< bidirectional ring, shortest direction, cw on ties
    Mesh,     //!< 2D mesh, XY dimension-ordered routing
};

/** @return the printable name of a topology. */
const char *topologyName(Topology t);

/** Parse "crossbar" / "ring" / "mesh". @return false on anything else. */
bool parseTopology(const std::string &s, Topology &out);

/** Row-major 2D mesh geometry for @p n nodes: w = ceil(sqrt(n)). */
struct MeshDims
{
    std::uint32_t w = 0;
    std::uint32_t h = 0;
};
MeshDims meshDims(std::uint32_t n);

/**
 * Router slots the topology routes through: @p n for the ring, the
 * full w x h grid for the mesh -- XY routes legally cross the empty
 * slots of a partially-filled last row, and those routers own links
 * too.  Sizes the per-link occupancy arrays (4 links per slot).
 */
std::uint32_t routerSlots(Topology t, std::uint32_t n);

/** Ring distance s -> d over @p n nodes (shorter direction). */
std::uint32_t ringHops(std::uint32_t n, NodeId s, NodeId d);

/** @return true if the ring route s -> d goes clockwise (id + 1). */
bool ringClockwise(std::uint32_t n, NodeId s, NodeId d);

/** Manhattan distance on the @p n-node mesh (XY routing length). */
std::uint32_t meshHops(std::uint32_t n, NodeId s, NodeId d);

/** Links a message s -> d crosses under @p t (crossbar: always 1). */
std::uint32_t topologyHops(Topology t, std::uint32_t n, NodeId s,
                           NodeId d);

/**
 * Directed links are identified as `node * 4 + direction`, direction
 * 0 = +x / clockwise, 1 = -x / counter-clockwise, 2 = +y, 3 = -y.
 * Visit each link id on the (deterministic) route s -> d in order.
 * The crossbar has no modeled links; the visitor is never called.
 */
void forEachRouteLink(Topology t, std::uint32_t n, NodeId s, NodeId d,
                      const std::function<void(std::uint32_t)> &fn);

/**
 * Human-readable name for a directed link id: "rtr<slot>.<dir>" where
 * dir is +x/-x/+y/-y on the mesh and cw/ccw on the ring.  Used by the
 * tail-latency dossiers to name a request's hottest link.
 */
std::string linkName(Topology t, std::uint32_t link_id);

class Network : public sim::SimObject
{
  public:
    struct Params
    {
        Topology topology = Topology::Crossbar;
        Cycles latency = 8;     //!< crossbar traversal latency
        Cycles hop_latency = 3; //!< per-link latency (ring/mesh)
        /**
         * Endpoint count, fixing the ring circumference / mesh
         * dimensions.  Required (>= 2) for ring and mesh; the crossbar
         * ignores it and grows its node table on demand.
         */
        std::uint32_t num_nodes = 0;
        std::uint32_t link_bytes_per_cycle = 16;

        /**
         * The minimum cross-node delay this topology can produce: one
         * route of minimal length plus the >= 1 serialization cycle
         * every message pays.  The sharded driver's lookahead (see
         * harness/system.hh) must not exceed this.
         */
        Tick
        minDelay() const
        {
            return static_cast<Tick>(topology == Topology::Crossbar
                                         ? latency
                                         : hop_latency) + 1;
        }
        /**
         * Fault injection: silently drop FwdDataAck/FwdNoDataAck
         * messages for these block addresses.  The owner believes it
         * answered the probe; the directory transaction waits forever
         * -- a deterministic, protocol-shaped deadlock used to test the
         * hang watchdog and wait-for-graph dossiers.  Empty in any
         * honest configuration.
         */
        std::vector<Addr> drop_fwd_acks_for;
    };

    /**
     * A message en route to its destination's ingress heap, keyed for
     * the canonical delivery order.  chan_seq is the (src, dst)
     * channel's send sequence; per-channel arrivals strictly increase,
     * so (arrival, src, chan_seq) is a strict total order per node.
     */
    struct PendingMsg
    {
        Msg msg;
        Tick arrival = 0;
        std::uint64_t chan_seq = 0;
    };

    Network(sim::SimContext &ctx, const std::string &name,
            const Params &params);

    /**
     * Pending ingress events are owned by the network; an aborted run
     * (watchdog, cycle budget) leaves them scheduled, so pull them off
     * their queues before the Event destructor asserts.
     */
    ~Network() override;

    /**
     * Declare which shard context delivers to endpoint @p id.  Must be
     * called before the endpoint registers.  Never calling it leaves
     * every node on the network's own context (shard 0) -- the
     * single-threaded default used by protocol unit tests.
     */
    void bindNode(NodeId id, sim::SimContext &ctx, std::uint32_t shard);

    /**
     * Route for cross-shard sends: invoked as (src_shard, dst_shard,
     * pending) when a message's source and destination live on
     * different shards.  The System points this at its mailbox grid;
     * the receiver re-injects via enqueueArrival() at the next quantum
     * boundary.
     */
    using CrossShardPush =
        std::function<void(std::uint32_t, std::uint32_t, PendingMsg &&)>;
    void setCrossShardPush(CrossShardPush push)
    {
        cross_push_ = std::move(push);
    }

    /** Attach the receiver for endpoint @p id. */
    void registerEndpoint(NodeId id, MsgReceiver *receiver);

    /** Send a message; delivery is scheduled on the dst shard's queue. */
    void send(Msg msg);

    /**
     * Push a pending message into its destination's ingress heap and
     * (re)arm the ingress event.  Called by send() for same-shard
     * traffic and by the System's mailbox drain for cross-shard
     * traffic; must run on the destination shard's thread with the
     * arrival tick still in that queue's future.
     */
    void enqueueArrival(PendingMsg &&pm);

    /**
     * Fold the per-node counters into the "network" stat group (node
     * order, idempotent).  The System calls this once at end of run in
     * every mode; until then the group's scalars read zero.
     */
    void finalizeStats();

    // --- stall-dossier inspection ---------------------------------------

    struct Channel
    {
        Tick last_arrival = 0;
        std::uint64_t in_flight = 0; //!< sent, not yet delivered
    };

    /** Visit every channel that has ever carried a message. */
    template <typename Fn>
    void
    forEachChannel(Fn fn) const
    {
        for (NodeId s = 0; s < nodes_.size(); ++s) {
            const Node &src = nodes_[s];
            for (NodeId d = 0; d < src.chans.size(); ++d) {
                const TxChan &ch = src.chans[d];
                if (ch.sent == 0)
                    continue;
                std::uint64_t delivered = 0;
                if (d < nodes_.size() &&
                    s < nodes_[d].delivered_from.size()) {
                    delivered = nodes_[d].delivered_from[s];
                }
                fn(s, d, Channel{ch.last_arrival, ch.sent - delivered});
            }
        }
    }

    /** The topology (dossiers reconstruct routes from it). */
    Topology topology() const { return params_.topology; }

    /**
     * Fold the per-node per-link message counters into one vector
     * (indexed by link id; empty on the crossbar).  Same node-order
     * fold as finalizeStats(), so the result is shard-independent;
     * callable at any point (end-of-run reports use it to name each
     * sampled request's hottest link).
     */
    std::vector<std::uint64_t> foldedLinkMsgs() const;

    /** Fault-injected drops so far (see Params::drop_fwd_acks_for). */
    std::uint64_t
    droppedMsgs() const
    {
        std::uint64_t total = 0;
        for (const Node &n : nodes_)
            total += n.tx_dropped;
        return total;
    }

  private:
    /** One FIFO channel's send-side state. */
    struct TxChan
    {
        Tick last_arrival = 0;
        std::uint64_t seq = 0;  //!< sends so far (becomes chan_seq)
        std::uint64_t sent = 0; //!< == seq; kept separate for clarity
    };

    /**
     * Per-node state: the tx counters this node produces as a source
     * and the ingress heap + rx accumulators it owns as a destination.
     * Everything here is touched only by the node's shard thread (the
     * coordinator reads between quanta).
     */
    struct Node
    {
        sim::SimContext *ctx = nullptr; //!< delivery context (shard)
        std::uint32_t shard = 0;
        MsgReceiver *receiver = nullptr;
        std::uint16_t trace_id = 0; //!< "net.rxN" track in ctx's sink

        // tx side (this node as msg.src)
        std::vector<TxChan> chans; //!< indexed by dst
        std::uint64_t tx_msgs = 0;
        std::uint64_t tx_bytes = 0;
        std::uint64_t tx_data_msgs = 0;
        std::uint64_t tx_ctrl_msgs = 0;
        std::uint64_t tx_dropped = 0;
        std::uint64_t tx_hops = 0; //!< links crossed by sent messages

        /**
         * Per-link occupancy charged by this node's sends (indexed by
         * link id, lazily sized; empty on the crossbar).  Single-writer
         * by construction -- only this node's shard thread sends from
         * this node -- and folded across nodes in node order at
         * finalizeStats(), so the totals are shard-count independent.
         */
        std::vector<std::uint64_t> link_msgs;
        std::vector<std::uint64_t> link_busy; //!< serialization cycles

        // rx side (this node as msg.dst)
        std::vector<PendingMsg> heap; //!< min-heap via Pending order
        std::unique_ptr<sim::EventFunctionWrapper> ingress_event;
        std::vector<std::uint64_t> delivered_from; //!< per src
        std::uint64_t rx_count = 0; //!< Welford state for msg_latency
        double rx_sum = 0.0;
        double rx_mean = 0.0;
        double rx_m2 = 0.0;
        double rx_min = 0.0;
        double rx_max = 0.0;
        statistics::PercentileSketch rx_sketch;
    };

    /**
     * Ingress events outrank every component event (prio_highest is 0)
     * and each other by node id, so all of a tick's deliveries land --
     * in node order -- before any component logic runs at that tick, a
     * rule that costs nothing and is trivially shard-independent.
     */
    static constexpr int ingress_prio_base = -100000;

    Node &ensureNode(NodeId id);
    void ingressFire(NodeId id);
    void rxSample(Node &n, double v);

    Params params_;
    std::vector<Node> nodes_;
    CrossShardPush cross_push_;
    bool finalized_ = false;

    statistics::Scalar &stat_msgs_;
    statistics::Scalar &stat_bytes_;
    statistics::Scalar &stat_data_msgs_;
    statistics::Scalar &stat_ctrl_msgs_;
    statistics::Scalar &stat_dropped_; //!< fault-injected drops
    statistics::Scalar &stat_hops_;    //!< total links crossed
    statistics::Scalar &stat_links_used_;    //!< links with traffic
    statistics::Scalar &stat_hot_link_msgs_; //!< busiest link, msgs
    statistics::Scalar &stat_hot_link_busy_; //!< busiest link, cycles
    statistics::Distribution &stat_msg_latency_;
};

} // namespace fenceless::mem
