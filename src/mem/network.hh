/**
 * @file
 * The on-chip interconnect model.
 *
 * A star network between the L1 controllers and the directory.  Each
 * (src, dst) channel is a FIFO: a message arrives
 * max(now + latency, channel_last_arrival + serialization) cycles later,
 * where serialization = ceil(bytes / link_bytes_per_cycle) models link
 * bandwidth.  FIFO order per channel is a protocol requirement.
 *
 * The network is also the simulator's only cross-shard edge when the
 * System is sharded across host threads (--shards=N), so delivery is
 * built around a *canonical per-destination ingress*: every node owns a
 * min-heap of pending arrivals ordered by (arrival tick, source node,
 * per-channel sequence) -- a total order whose keys are computed
 * entirely at send time -- drained by one event on the destination
 * node's shard queue.  Same-shard sends enqueue directly; cross-shard
 * sends travel through the System's mailboxes and are enqueued at the
 * next quantum boundary, which the lookahead (quantum <= latency + 1)
 * guarantees still precedes the arrival tick.  Delivery order at every
 * node is therefore a pure function of the message timing, identical
 * whether the simulation runs on one host thread or eight.
 *
 * Stats follow the same discipline: each node accumulates its own tx
 * counters and rx latency moments (touched only by its shard's
 * thread), and finalizeStats() folds them into the legacy "network"
 * stat group in node order at end of run -- deterministic and
 * lock-free in every mode.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/msg.hh"
#include "sim/sim_object.hh"

namespace fenceless::mem
{

/** Anything that can receive coherence messages from the network. */
class MsgReceiver
{
  public:
    virtual ~MsgReceiver() = default;
    virtual void receiveMsg(const Msg &msg) = 0;
};

class Network : public sim::SimObject
{
  public:
    struct Params
    {
        Cycles latency = 8;           //!< base traversal latency
        std::uint32_t link_bytes_per_cycle = 16;
        /**
         * Fault injection: silently drop FwdDataAck/FwdNoDataAck
         * messages for these block addresses.  The owner believes it
         * answered the probe; the directory transaction waits forever
         * -- a deterministic, protocol-shaped deadlock used to test the
         * hang watchdog and wait-for-graph dossiers.  Empty in any
         * honest configuration.
         */
        std::vector<Addr> drop_fwd_acks_for;
    };

    /**
     * A message en route to its destination's ingress heap, keyed for
     * the canonical delivery order.  chan_seq is the (src, dst)
     * channel's send sequence; per-channel arrivals strictly increase,
     * so (arrival, src, chan_seq) is a strict total order per node.
     */
    struct PendingMsg
    {
        Msg msg;
        Tick arrival = 0;
        std::uint64_t chan_seq = 0;
    };

    Network(sim::SimContext &ctx, const std::string &name,
            const Params &params);

    /**
     * Pending ingress events are owned by the network; an aborted run
     * (watchdog, cycle budget) leaves them scheduled, so pull them off
     * their queues before the Event destructor asserts.
     */
    ~Network() override;

    /**
     * Declare which shard context delivers to endpoint @p id.  Must be
     * called before the endpoint registers.  Never calling it leaves
     * every node on the network's own context (shard 0) -- the
     * single-threaded default used by protocol unit tests.
     */
    void bindNode(NodeId id, sim::SimContext &ctx, std::uint32_t shard);

    /**
     * Route for cross-shard sends: invoked as (src_shard, dst_shard,
     * pending) when a message's source and destination live on
     * different shards.  The System points this at its mailbox grid;
     * the receiver re-injects via enqueueArrival() at the next quantum
     * boundary.
     */
    using CrossShardPush =
        std::function<void(std::uint32_t, std::uint32_t, PendingMsg &&)>;
    void setCrossShardPush(CrossShardPush push)
    {
        cross_push_ = std::move(push);
    }

    /** Attach the receiver for endpoint @p id. */
    void registerEndpoint(NodeId id, MsgReceiver *receiver);

    /** Send a message; delivery is scheduled on the dst shard's queue. */
    void send(Msg msg);

    /**
     * Push a pending message into its destination's ingress heap and
     * (re)arm the ingress event.  Called by send() for same-shard
     * traffic and by the System's mailbox drain for cross-shard
     * traffic; must run on the destination shard's thread with the
     * arrival tick still in that queue's future.
     */
    void enqueueArrival(PendingMsg &&pm);

    /**
     * Fold the per-node counters into the "network" stat group (node
     * order, idempotent).  The System calls this once at end of run in
     * every mode; until then the group's scalars read zero.
     */
    void finalizeStats();

    // --- stall-dossier inspection ---------------------------------------

    struct Channel
    {
        Tick last_arrival = 0;
        std::uint64_t in_flight = 0; //!< sent, not yet delivered
    };

    /** Visit every channel that has ever carried a message. */
    template <typename Fn>
    void
    forEachChannel(Fn fn) const
    {
        for (NodeId s = 0; s < nodes_.size(); ++s) {
            const Node &src = nodes_[s];
            for (NodeId d = 0; d < src.chans.size(); ++d) {
                const TxChan &ch = src.chans[d];
                if (ch.sent == 0)
                    continue;
                std::uint64_t delivered = 0;
                if (d < nodes_.size() &&
                    s < nodes_[d].delivered_from.size()) {
                    delivered = nodes_[d].delivered_from[s];
                }
                fn(s, d, Channel{ch.last_arrival, ch.sent - delivered});
            }
        }
    }

    /** Fault-injected drops so far (see Params::drop_fwd_acks_for). */
    std::uint64_t
    droppedMsgs() const
    {
        std::uint64_t total = 0;
        for (const Node &n : nodes_)
            total += n.tx_dropped;
        return total;
    }

  private:
    /** One FIFO channel's send-side state. */
    struct TxChan
    {
        Tick last_arrival = 0;
        std::uint64_t seq = 0;  //!< sends so far (becomes chan_seq)
        std::uint64_t sent = 0; //!< == seq; kept separate for clarity
    };

    /**
     * Per-node state: the tx counters this node produces as a source
     * and the ingress heap + rx accumulators it owns as a destination.
     * Everything here is touched only by the node's shard thread (the
     * coordinator reads between quanta).
     */
    struct Node
    {
        sim::SimContext *ctx = nullptr; //!< delivery context (shard)
        std::uint32_t shard = 0;
        MsgReceiver *receiver = nullptr;
        std::uint16_t trace_id = 0; //!< "net.rxN" track in ctx's sink

        // tx side (this node as msg.src)
        std::vector<TxChan> chans; //!< indexed by dst
        std::uint64_t tx_msgs = 0;
        std::uint64_t tx_bytes = 0;
        std::uint64_t tx_data_msgs = 0;
        std::uint64_t tx_ctrl_msgs = 0;
        std::uint64_t tx_dropped = 0;

        // rx side (this node as msg.dst)
        std::vector<PendingMsg> heap; //!< min-heap via Pending order
        std::unique_ptr<sim::EventFunctionWrapper> ingress_event;
        std::vector<std::uint64_t> delivered_from; //!< per src
        std::uint64_t rx_count = 0; //!< Welford state for msg_latency
        double rx_sum = 0.0;
        double rx_mean = 0.0;
        double rx_m2 = 0.0;
        double rx_min = 0.0;
        double rx_max = 0.0;
        statistics::PercentileSketch rx_sketch;
    };

    /**
     * Ingress events outrank every component event (prio_highest is 0)
     * and each other by node id, so all of a tick's deliveries land --
     * in node order -- before any component logic runs at that tick, a
     * rule that costs nothing and is trivially shard-independent.
     */
    static constexpr int ingress_prio_base = -100000;

    Node &ensureNode(NodeId id);
    void ingressFire(NodeId id);
    void rxSample(Node &n, double v);

    Params params_;
    std::vector<Node> nodes_;
    CrossShardPush cross_push_;
    bool finalized_ = false;

    statistics::Scalar &stat_msgs_;
    statistics::Scalar &stat_bytes_;
    statistics::Scalar &stat_data_msgs_;
    statistics::Scalar &stat_ctrl_msgs_;
    statistics::Scalar &stat_dropped_; //!< fault-injected drops
    statistics::Distribution &stat_msg_latency_;
};

} // namespace fenceless::mem
