/**
 * @file
 * The on-chip interconnect model.
 *
 * A star network between the L1 controllers and the directory.  Each
 * (src, dst) channel is a FIFO: a message arrives
 * max(now + latency, channel_last_arrival + serialization) cycles later,
 * where serialization = ceil(bytes / link_bytes_per_cycle) models link
 * bandwidth.  FIFO order per channel is a protocol requirement.
 */

#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "mem/msg.hh"
#include "sim/sim_object.hh"

namespace fenceless::mem
{

/** Anything that can receive coherence messages from the network. */
class MsgReceiver
{
  public:
    virtual ~MsgReceiver() = default;
    virtual void receiveMsg(const Msg &msg) = 0;
};

class Network : public sim::SimObject
{
  public:
    struct Params
    {
        Cycles latency = 8;           //!< base traversal latency
        std::uint32_t link_bytes_per_cycle = 16;
        /**
         * Fault injection: silently drop FwdDataAck/FwdNoDataAck
         * messages for these block addresses.  The owner believes it
         * answered the probe; the directory transaction waits forever
         * -- a deterministic, protocol-shaped deadlock used to test the
         * hang watchdog and wait-for-graph dossiers.  Empty in any
         * honest configuration.
         */
        std::vector<Addr> drop_fwd_acks_for;
    };

    Network(sim::SimContext &ctx, const std::string &name,
            const Params &params);

    /** Attach the receiver for endpoint @p id. */
    void registerEndpoint(NodeId id, MsgReceiver *receiver);

    /** Send a message; delivery is scheduled on the event queue. */
    void send(Msg msg);

    // --- stall-dossier inspection ---------------------------------------

    struct Channel
    {
        Tick last_arrival = 0;
        std::uint64_t in_flight = 0; //!< sent, not yet delivered
    };

    /** Visit every channel that has ever carried a message. */
    template <typename Fn>
    void
    forEachChannel(Fn fn) const
    {
        for (const auto &[key, ch] : channels_)
            fn(key.first, key.second, ch);
    }

    /** Fault-injected drops so far (see Params::drop_fwd_acks_for). */
    std::uint64_t droppedMsgs() const
    {
        return static_cast<std::uint64_t>(stat_dropped_.value());
    }

  private:

    struct DeliveryEvent : public sim::Event
    {
        DeliveryEvent(Network &net, Msg msg)
            : network(net), message(std::move(msg))
        {}

        void process() override;
        const char *name() const override { return "net-delivery"; }

        Network &network;
        Msg message;
    };

    void deliver(const Msg &msg);

    Params params_;
    std::vector<MsgReceiver *> endpoints_;
    std::map<std::pair<NodeId, NodeId>, Channel> channels_;

    statistics::Scalar &stat_msgs_;
    statistics::Scalar &stat_bytes_;
    statistics::Scalar &stat_data_msgs_;
    statistics::Scalar &stat_ctrl_msgs_;
    statistics::Scalar &stat_dropped_; //!< fault-injected drops
    statistics::Distribution &stat_msg_latency_;
};

} // namespace fenceless::mem
