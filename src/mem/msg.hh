/**
 * @file
 * Coherence messages exchanged between L1 controllers and the directory.
 *
 * The protocol is directory-based MESI with a blocking directory that
 * collects invalidation acks itself, so all traffic flows
 * L1 <-> directory bank (logically a star per bank).  Channels preserve
 * point-to-point FIFO order, which several protocol races rely on
 * (e.g. WbClean ordered before a later FwdNoDataAck from the same L1).
 *
 * The directory may be banked by block address (see DirectoryMap): an
 * L1 computes the home bank of every block it talks about, so the
 * protocol itself never needs to know the bank count -- each bank sees
 * a disjoint address slice and runs the unmodified MESI state machine.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace fenceless::mem
{

/**
 * Network endpoint id: L1 caches are 0..N-1, the directory banks are
 * N..N+B-1 (a single-bank directory is just node N, the legacy star).
 */
using NodeId = std::uint32_t;

/**
 * The block-address -> directory-bank mapping every L1 uses to route
 * its requests.  Banks are selected by the low block-index bits
 * (`bank = (addr >> block_shift) & (banks - 1)`), so consecutive
 * blocks stripe round-robin across banks and `banks` must be a power
 * of two.  Implicitly convertible from a bare NodeId for the
 * single-bank tests and benches that predate banking.
 */
struct DirectoryMap
{
    NodeId first_node = 0;    //!< node id of bank 0 (== num cores)
    std::uint32_t banks = 1;  //!< power-of-two bank count
    unsigned block_shift = 6; //!< log2(block size)

    DirectoryMap() = default;
    DirectoryMap(NodeId single_bank_node) : first_node(single_bank_node) {}
    DirectoryMap(NodeId first, std::uint32_t nbanks, unsigned shift)
        : first_node(first), banks(nbanks), block_shift(shift)
    {
    }

    std::uint32_t
    bankOf(Addr addr) const
    {
        return static_cast<std::uint32_t>(addr >> block_shift)
               & (banks - 1);
    }

    /** The network node serving @p addr's directory bank. */
    NodeId nodeFor(Addr addr) const { return first_node + bankOf(addr); }
};

enum class MsgType : std::uint8_t
{
    // Requests, L1 -> directory (queued; blocking per block)
    GetS,        //!< read permission
    GetM,        //!< write permission
    PutM,        //!< owner eviction, carries data
    PutS,        //!< sharer eviction, no data
    PutNoData,   //!< owner eviction with no valid data (post-rollback)

    // Unsolicited update, L1 -> directory (processed immediately)
    WbClean,     //!< owner pushes current data to L2, retains ownership

    // Directory -> L1 (requests/probes)
    Inv,         //!< invalidate; reply InvAck to directory
    FwdGetS,     //!< send data to directory, downgrade M/E -> S
    FwdGetM,     //!< send data to directory, invalidate
    Recall,      //!< L2 eviction: owner returns data and invalidates

    // Directory -> L1 (responses)
    DataS,       //!< data with shared permission
    DataE,       //!< data with exclusive (clean) permission
    DataM,       //!< data with modify permission
    PutAck,      //!< eviction acknowledged

    // Responses, L1 -> directory (consumed by the active transaction)
    InvAck,      //!< invalidation done
    FwdDataAck,  //!< data in response to FwdGetS/FwdGetM/Recall
    FwdNoDataAck,//!< probe hit a block whose data was discarded; use L2
};

/** @return the printable name of a message type. */
const char *msgTypeName(MsgType t);

/** @return true for request types the directory queues per block. */
bool isDirRequest(MsgType t);

/** One coherence message. */
struct Msg
{
    MsgType type = MsgType::GetS;
    NodeId src = 0;
    NodeId dst = 0;
    Addr block_addr = 0;
    std::uint64_t req_id = 0; //!< request-lifetime id (0 = untracked)
    Tick sent_tick = 0;       //!< stamped by Network::send
    std::uint8_t hops = 0;    //!< links traversed (stamped by send)
    std::vector<std::uint8_t> data; //!< block payload, empty for ctrl msgs

    bool hasData() const { return !data.empty(); }

    /** On-wire size in bytes (header + payload). */
    std::size_t sizeBytes() const { return 8 + data.size(); }

    std::string toString() const;
};

} // namespace fenceless::mem
