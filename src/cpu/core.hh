/**
 * @file
 * The in-order timing core.
 *
 * One instruction per cycle when nothing stalls.  Loads block until the
 * L1 responds (or forward from the store buffer); stores retire into the
 * store buffer; atomics execute at the L1 after their ordering
 * requirement is met; fences behave per the consistency model.
 *
 * Every point where the baseline model would stall for *ordering* (an SC
 * load with buffered stores, a draining fence, an atomic's buffer drain)
 * is first offered to the speculation controller, which may let the core
 * proceed speculatively instead.  The controller can snapshot and
 * restore the core's architectural state; in-flight memory responses
 * from before a restore are ignored via a squash generation counter.
 */

#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "cpu/consistency.hh"
#include "cpu/store_buffer.hh"
#include "isa/decoded.hh"
#include "isa/program.hh"
#include "mem/l1_cache.hh"
#include "sim/sim_object.hh"

namespace fenceless::cpu
{

/** Why the core is not executing this cycle (for stall accounting). */
enum class StallReason
{
    ScLoadOrder, //!< SC: load waiting for the store buffer to drain
    FenceDrain,  //!< full fence waiting for the store buffer to drain
    AmoOrder,    //!< atomic waiting for its ordering requirement
    AmoData,     //!< atomic waiting for an overlapping buffered store
    SbFull,      //!< store waiting for a store-buffer slot
    LoadAccess,  //!< load waiting for the memory system
    AmoAccess,   //!< atomic executing at the L1
    FwdConflict, //!< load partially overlapping a buffered store
    HaltDrain,   //!< halt waiting for drain / speculation exit
    SpecLimit,   //!< per-store-granularity speculative storage exhausted
    NumReasons,
};

const char *stallReasonName(StallReason r);

/**
 * The core's view of the speculation controller.  A null controller
 * means baseline (no speculation): every ordering point stalls.
 */
class SpecInterface
{
  public:
    /** The kind of ordering point the core is about to stall on. */
    enum class OrderPoint
    {
        ScLoad,
        FullFence,
        Amo,
    };

    virtual ~SpecInterface() = default;

    /**
     * Called when an ordering requirement is unsatisfied.  If the
     * controller is already speculating it records the crossing
     * (advancing its commit watermark) and returns true; otherwise it
     * may begin an epoch (checkpointing the core) and return true, or
     * return false to make the core stall as in the baseline.
     */
    virtual bool shouldSpeculate(OrderPoint point) = 0;

    /** @return true while the core runs inside a speculative epoch. */
    virtual bool inSpec() const = 0;

    /** @return the current epoch id (tags accesses). */
    virtual std::uint32_t epoch() const = 0;

    /**
     * The core reached Halt while speculating: commit as soon as the
     * commit condition allows, do not open another epoch, then invoke
     * @p done.  A rollback in between cancels the request (the core
     * re-executes and will re-request).
     */
    virtual void requestStop(std::function<void()> done) = 0;

    /**
     * Reserve speculative-storage capacity for one access of the
     * current epoch.  Always succeeds at block granularity (the tags
     * live in the cache); at per-store granularity it fails once the
     * bounded speculative store queue / load CAM is full, and the core
     * must stall until the epoch ends.
     */
    virtual bool reserveSpecSlot(bool is_store) = 0;

    /** Run @p cb once when the current epoch commits or rolls back. */
    virtual void whenSpecExit(std::function<void()> cb) = 0;
};

class Core : public sim::SimObject
{
  public:
    struct Params
    {
        ConsistencyModel model = ConsistencyModel::TSO;
        unsigned sb_size = 16;
        unsigned sb_max_inflight = 4;    //!< relaxed-drain overlap
        unsigned sb_prefetch_depth = 4;  //!< ownership-prefetch window
        Cycles pause_cycles = 1;
    };

    Core(sim::SimContext &ctx, const std::string &name,
         const Params &params, CoreId core_id, const isa::Program &prog,
         mem::L1Cache &l1, std::uint32_t num_cores);

    /** Deschedules the tick event (the queue may outlive the core). */
    ~Core() override;

    void setSpec(SpecInterface *spec) { spec_ = spec; }

    /** Initialise architectural state and schedule the first cycle. */
    void reset();

    bool halted() const { return halted_; }
    void setHaltCallback(std::function<void()> cb)
    {
        halt_cb_ = std::move(cb);
    }

    CoreId coreId() const { return core_id_; }
    ConsistencyModel model() const { return params_.model; }
    StoreBuffer &storeBuffer() { return sb_; }
    const StoreBuffer &storeBuffer() const { return sb_; }
    mem::L1Cache &l1() { return l1_; }
    std::uint64_t instret() const { return instret_; }

    /** Current program counter (instruction index), for debugging. */
    std::uint64_t pc() const { return pc_; }

    std::uint64_t
    reg(isa::RegId r) const
    {
        return r == 0 ? 0 : regs_[r];
    }

    // --- speculation-controller API -------------------------------------

    /** A register-file checkpoint. */
    struct ArchSnapshot
    {
        std::array<std::uint64_t, isa::num_regs> regs;
        std::uint64_t pc;
        std::uint64_t instret;
    };

    ArchSnapshot snapshot() const;

    // --- stall-dossier inspection ---------------------------------------
    // Read-only views of why the core is not running, walked at dossier
    // time by harness::System::buildWaitGraph.  They cost nothing on
    // the execution path: the fields below are maintained anyway for
    // stall accounting and squash handling.

    /** What the single outstanding memory access is, if any. */
    enum class PendingKind : std::uint8_t { None, Load, Amo };

    /** @return true if the core is asleep (not halted, no tick queued). */
    bool idle() const { return !halted_ && !tick_event_.scheduled(); }

    /**
     * Why the core is asleep.  Pending memory accesses report their
     * access reason (LoadAccess/AmoAccess) even though the sleep was
     * entered before done_fn registration.
     */
    StallReason
    sleepReason() const
    {
        if (pending_kind_ == PendingKind::Load)
            return StallReason::LoadAccess;
        if (pending_kind_ == PendingKind::Amo)
            return StallReason::AmoAccess;
        return sleep_reason_;
    }

    Tick sleepBegin() const { return sleep_begin_; }

    /** @return true if a load/AMO is outstanding in the memory system. */
    bool hasPendingAccess() const
    {
        return pending_kind_ != PendingKind::None;
    }

    /** Target address of the outstanding access (valid when pending). */
    Addr pendingAddr() const { return pending_addr_; }

    /**
     * @return true while an atomic is executing at the L1.  A
     * checkpoint taken in that window would re-execute the (non-
     * idempotent) atomic after a rollback, so the controller must not
     * open an epoch then.
     */
    bool amoInFlight() const { return amo_in_flight_; }

    /**
     * Restore a checkpoint and resume execution next cycle.  All
     * in-flight memory responses and stall waiters become stale.
     */
    void restoreAndResume(const ArchSnapshot &snap);

  private:
    /**
     * The recurring per-cycle event.  A dedicated Event subclass (not
     * an EventFunctionWrapper) so firing a cycle is one virtual call
     * straight into tick() with no std::function indirection.
     */
    class TickEvent final : public sim::Event
    {
      public:
        TickEvent(Core &core, std::string name)
            : core_(core), name_(std::move(name))
        {}

        void process() override { core_.tick(); }
        const char *name() const override { return name_.c_str(); }

      private:
        Core &core_;
        std::string name_;
    };

    void tick();
    void scheduleTick(Cycles delay);

    /**
     * Enter an idle sleep: record @p reason and the current tick in
     * members and return the wake callback.  While asleep the core
     * schedules no tick events at all; @ref wake bulk-accounts the
     * slept cycles under the recorded reason.  Valid because the
     * in-order core has at most one wait pending per squash
     * generation, so the returned closure only needs (this, gen) and
     * fits std::function's inline storage -- entering a stall
     * allocates nothing.
     */
    std::function<void()> resumer(StallReason reason);

    /** Wake from an idle sleep (no-op if @p gen is stale). */
    void wake(std::uint64_t gen);

    /** Completion of the (single) outstanding load, via done_fn. */
    void loadResponse(std::uint64_t gen, std::uint64_t value);

    /** Completion of the (single) outstanding AMO, via done_fn. */
    void amoResponse(std::uint64_t gen, std::uint64_t old_value);

    void executeLoad(const isa::Inst &inst);
    void executeStore(const isa::Inst &inst);
    void executeAmo(const isa::Inst &inst);
    void executeFence(const isa::Inst &inst);
    void executeHalt();

    void setReg(isa::RegId r, std::uint64_t v);
    void advance(std::uint64_t next_pc, Cycles delay = 1);
    void accountStall(StallReason reason, Tick begin);

    /** Charge @p cycles at the current pc to the profiler. */
    void
    profileCycles(prof::CycleBucket bucket, std::uint64_t cycles)
    {
        prof_->addCycles(core_id_, pc_, bucket, cycles,
                         spec_ && spec_->inSpec());
    }

    Params params_;
    CoreId core_id_;
    const isa::Program &prog_;
    isa::DecodedProgram decoded_; //!< per-pc execution classes
    mem::L1Cache &l1_;
    std::uint32_t num_cores_;
    SpecInterface *spec_ = nullptr;
    prof::WasteProfiler *const prof_; //!< null when profiling is off

    StoreBuffer sb_;

    std::array<std::uint64_t, isa::num_regs> regs_{};
    std::uint64_t pc_ = 0;
    std::uint64_t instret_ = 0;
    bool halted_ = false;
    std::uint64_t squash_gen_ = 0; //!< invalidates in-flight callbacks
    bool amo_in_flight_ = false;

    // Idle-sleep bookkeeping (why and since when the core is asleep)
    // and the single outstanding memory access's writeback state.  Both
    // are single slots: the in-order core never has two waits or two
    // accesses in flight, and a squash invalidates them via squash_gen_.
    StallReason sleep_reason_ = StallReason::NumReasons;
    Tick sleep_begin_ = 0;
    isa::RegId pending_rd_ = 0;
    Tick pending_begin_ = 0;
    PendingKind pending_kind_ = PendingKind::None;
    Addr pending_addr_ = 0;

    TickEvent tick_event_;
    std::function<void()> halt_cb_;

    statistics::Scalar &stat_instructions_;
    statistics::Scalar &stat_loads_;
    statistics::Scalar &stat_stores_;
    statistics::Scalar &stat_amos_;
    statistics::Scalar &stat_fences_full_;
    statistics::Scalar &stat_fences_acq_;
    statistics::Scalar &stat_fences_rel_;
    statistics::Scalar &stat_halt_tick_;
    std::array<statistics::Scalar *,
               static_cast<std::size_t>(StallReason::NumReasons)>
        stat_stalls_{};
    statistics::Distribution &stat_load_latency_;
};

} // namespace fenceless::cpu
