/**
 * @file
 * Memory consistency models and their baseline ordering requirements.
 *
 * The in-order core completes loads before later instructions execute, so
 * load->load and load->store order is implicit.  The models therefore
 * differ only in how stores (via the store buffer), fences and atomics
 * are handled:
 *
 *  SC:   a load (or AMO) may not issue while the store buffer is
 *        non-empty; this is the classic "stores complete before the next
 *        memory operation becomes visible" implementation.  Explicit
 *        fences are no-ops (ordering is already total).
 *  TSO:  loads bypass (and forward from) the store buffer; the buffer
 *        drains strictly in order.  Full fences and atomics drain the
 *        buffer.  Acquire/release fences are free.
 *  RMO:  like TSO, but the store buffer may drain out of order (and a
 *        release fence inserts an ordering marker instead of stalling);
 *        atomics wait only for buffered stores to the same address.
 *
 * These are exactly the stalls the fence-speculation mechanism removes.
 */

#pragma once

#include <string>

namespace fenceless::cpu
{

enum class ConsistencyModel
{
    SC,
    TSO,
    RMO,
};

const char *consistencyModelName(ConsistencyModel m);

/** Parse "sc" / "tso" / "rmo" (case-insensitive). */
ConsistencyModel parseConsistencyModel(const std::string &name);

/** Baseline ordering requirements of a model. */
struct ModelPolicy
{
    /** Loads (and the load half of AMOs) wait for an empty SB. */
    static bool
    loadNeedsSbEmpty(ConsistencyModel m)
    {
        return m == ConsistencyModel::SC;
    }

    /** A full fence stalls until the SB drains. */
    static bool
    fullFenceDrains(ConsistencyModel m)
    {
        // Under SC the ordering a full fence asks for already holds.
        return m != ConsistencyModel::SC;
    }

    /** A release fence inserts an SB ordering marker (no core stall). */
    static bool
    releaseFenceMarks(ConsistencyModel m)
    {
        return m == ConsistencyModel::RMO;
    }

    /** An atomic stalls until the whole SB drains. */
    static bool
    amoDrainsSb(ConsistencyModel m)
    {
        return m == ConsistencyModel::SC || m == ConsistencyModel::TSO;
    }

    /** The SB drains strictly in program order. */
    static bool
    sbDrainsInOrder(ConsistencyModel m)
    {
        return m != ConsistencyModel::RMO;
    }
};

} // namespace fenceless::cpu
