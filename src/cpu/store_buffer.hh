/**
 * @file
 * The post-retirement store buffer.
 *
 * Stores retire into the buffer and drain to the L1 one at a time.  The
 * drain order is strict program order (SC/TSO) or relaxed (RMO): any
 * entry of the oldest barrier group with no older overlapping entry may
 * drain.  Release fences insert barrier-group boundaries under RMO.
 *
 * Entries are tagged with a monotonically increasing sequence number;
 * the speculation controller uses these to express its commit condition
 * ("all entries up to the watermark have drained") and to discard
 * speculative entries on rollback.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "mem/l1_cache.hh"
#include "sim/sim_object.hh"

namespace fenceless::cpu
{

class StoreBuffer
{
  public:
    struct Params
    {
        unsigned size = 16;
        bool drain_in_order = true;
        /**
         * Maximum concurrently outstanding drain stores.  In-order
         * drain is limited to 1 (completion order must equal program
         * order); relaxed drain overlaps several so a hitting store can
         * complete while an older miss is still fetching ownership.
         */
        unsigned max_inflight = 4;
        /**
         * How many buffered stores beyond the drain point get
         * non-binding exclusive-ownership prefetches.  This is how a
         * TSO machine overlaps store misses while still committing
         * writes in order.
         */
        unsigned prefetch_depth = 4;
    };

    struct Entry
    {
        std::uint64_t seq;
        Addr addr;
        std::uint8_t size;
        std::uint64_t data;
        bool spec;
        std::uint32_t spec_epoch;
        std::uint64_t pc = 0; //!< issuing static instruction
        std::uint32_t barrier_group;
        bool issued = false;
        bool prefetched = false; //!< ownership prefetch already sent
    };

    /** Result of a load looking for forwarding. */
    enum class Fwd
    {
        None,     //!< no overlapping entry; go to the cache
        Hit,      //!< fully forwarded
        Conflict, //!< partial overlap; must wait for the entry to drain
    };

    StoreBuffer(sim::SimContext &ctx, statistics::StatGroup &stats,
                const Params &params, mem::L1Cache &l1);

    // --- status --------------------------------------------------------

    bool empty() const { return entries_.empty(); }
    bool full() const { return entries_.size() >= params_.size; }
    std::size_t occupancy() const { return entries_.size(); }
    unsigned capacity() const { return params_.size; }

    /** Sequence number of the most recently pushed entry (0 if none). */
    std::uint64_t lastSeq() const { return next_seq_ - 1; }

    /** @return true when no entry with seq <= @p watermark remains. */
    bool allDrainedUpTo(std::uint64_t watermark) const;

    /** @return true if any entry overlaps [addr, addr+size). */
    bool hasOverlap(Addr addr, unsigned size) const;

    // --- stall-dossier inspection ----------------------------------------

    /** Buffered entries, oldest first (read-only, for wait graphs). */
    const std::deque<Entry> &entries() const { return entries_; }

    /** Sequence numbers of drains currently issued to the L1. */
    const std::vector<std::uint64_t> &inflightSeqs() const
    {
        return inflight_;
    }

    /** @return true if a drain retry is parked (MSHR backpressure). */
    bool retryPending() const { return retry_pending_; }

    // --- core-side operations -------------------------------------------

    /** Retire a store into the buffer (must not be full). */
    std::uint64_t push(Addr addr, std::uint8_t size, std::uint64_t data,
                       bool spec, std::uint32_t spec_epoch,
                       std::uint64_t pc = 0);

    /** Insert a release-fence ordering marker (RMO). */
    void pushBarrier();

    /** Attempt to forward a load from the buffer. */
    Fwd forward(Addr addr, unsigned size, std::uint64_t &out);

    // --- notifications ---------------------------------------------------

    /** Invoked after every entry completes (the spec controller). */
    void setDrainListener(std::function<void()> fn)
    {
        drain_listener_ = std::move(fn);
    }

    /** Run @p cb (once) when the buffer is empty. */
    void whenEmpty(std::function<void()> cb);

    /** Run @p cb (once) when a slot is available. */
    void whenSpace(std::function<void()> cb);

    /** Run @p cb (once) when nothing overlaps [addr, addr+size). */
    void whenNoOverlap(Addr addr, unsigned size,
                       std::function<void()> cb);

    /** Drop all one-shot waiters (used when the core squashes). */
    void clearWaiters() { waiters_.clear(); }

    // --- speculation support ---------------------------------------------

    /**
     * Discard (speculative) entries with seq > @p keep_up_to.  An entry
     * already issued to the cache completes there as a stale-epoch
     * no-op; its completion is ignored here.
     */
    void discardAfter(std::uint64_t keep_up_to);

    /**
     * The epoch committed: remaining speculative entries become ordinary
     * stores (their epoch tag would otherwise be stale when they drain).
     */
    void commitSpec();

  private:
    struct Waiter
    {
        enum class Kind
        {
            Empty,
            Space,
            NoOverlap,
        };

        Kind kind;
        Addr addr = 0;
        unsigned size = 0;
        std::function<void()> cb;
    };

    void issueNext();
    void issuePrefetches();
    void scheduleRetry();
    void complete(std::uint64_t seq);
    void fireWaiters();
    Entry *pickEligible();

    // FL_TEVENT interface (the buffer is not a SimObject; it records
    // on its own timeline track registered at construction).
    trace::TraceSink &tracer() { return ctx_.tracer; }
    std::uint16_t traceId() const { return trace_id_; }
    Tick curTick() const { return ctx_.curTick(); }
    void recordOccupancy();

    static bool
    overlaps(Addr a1, unsigned s1, Addr a2, unsigned s2)
    {
        return a1 < a2 + s2 && a2 < a1 + s1;
    }

    sim::SimContext &ctx_;
    Params params_;
    mem::L1Cache &l1_;
    std::uint16_t trace_id_;

    std::deque<Entry> entries_;
    std::uint64_t next_seq_ = 1;
    std::uint32_t barrier_group_ = 0;
    std::vector<std::uint64_t> inflight_; //!< seqs of issued drains
    bool retry_pending_ = false; //!< MSHR-pressure retry scheduled

    std::function<void()> drain_listener_;
    std::vector<Waiter> waiters_;

    statistics::Scalar &stat_pushed_;
    statistics::Scalar &stat_drained_;
    statistics::Scalar &stat_barriers_;
    statistics::Scalar &stat_discarded_;
    statistics::Scalar &stat_fwd_hits_;
    statistics::Scalar &stat_fwd_conflicts_;
    statistics::Distribution &stat_occupancy_;
};

} // namespace fenceless::cpu
