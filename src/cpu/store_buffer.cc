#include "cpu/store_buffer.hh"

#include <algorithm>

#include "base/logging.hh"
#include "mem/mem_request.hh"

namespace fenceless::cpu
{

StoreBuffer::StoreBuffer(sim::SimContext &ctx,
                         statistics::StatGroup &stats,
                         const Params &params, mem::L1Cache &l1)
    : ctx_(ctx), params_(params), l1_(l1),
      trace_id_(ctx.tracer.registerComponent(stats.name() + ".sb")),
      stat_pushed_(stats.addScalar("sb_pushed", "stores retired into "
                                   "the store buffer")),
      stat_drained_(stats.addScalar("sb_drained", "stores written to "
                                    "the cache")),
      stat_barriers_(stats.addScalar("sb_barriers",
                                     "release markers inserted")),
      stat_discarded_(stats.addScalar("sb_discarded", "speculative "
                                      "stores discarded by rollback")),
      stat_fwd_hits_(stats.addScalar("sb_fwd_hits",
                                     "loads forwarded from the buffer")),
      stat_fwd_conflicts_(stats.addScalar("sb_fwd_conflicts", "loads "
          "stalled on a partially-overlapping buffered store")),
      stat_occupancy_(stats.addDistribution("sb_occupancy",
          "buffer occupancy sampled at each push"))
{
    flAssert(params_.size > 0, "store buffer needs at least one entry");
}

void
StoreBuffer::recordOccupancy()
{
    FL_TEVENT(*this, trace::EventKind::SbOccupancy, entries_.size());
}

bool
StoreBuffer::allDrainedUpTo(std::uint64_t watermark) const
{
    for (const auto &e : entries_) {
        if (e.seq <= watermark)
            return false;
    }
    return true;
}

bool
StoreBuffer::hasOverlap(Addr addr, unsigned size) const
{
    for (const auto &e : entries_) {
        if (overlaps(e.addr, e.size, addr, size))
            return true;
    }
    return false;
}

std::uint64_t
StoreBuffer::push(Addr addr, std::uint8_t size, std::uint64_t data,
                  bool spec, std::uint32_t spec_epoch,
                  std::uint64_t pc)
{
    flAssert(!full(), "push into a full store buffer");
    Entry e;
    e.seq = next_seq_++;
    e.addr = addr;
    e.size = size;
    e.data = data;
    e.spec = spec;
    e.spec_epoch = spec_epoch;
    e.pc = pc;
    e.barrier_group = barrier_group_;
    entries_.push_back(e);
    ++stat_pushed_;
    stat_occupancy_.sample(static_cast<double>(entries_.size()));
    recordOccupancy();
    issueNext();
    return e.seq;
}

void
StoreBuffer::pushBarrier()
{
    // Only meaningful when there is something to order.
    if (!entries_.empty())
        ++barrier_group_;
    ++stat_barriers_;
}

StoreBuffer::Fwd
StoreBuffer::forward(Addr addr, unsigned size, std::uint64_t &out)
{
    // Newest overlapping entry wins.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        const Entry &e = *it;
        if (!overlaps(e.addr, e.size, addr, size))
            continue;
        if (e.addr <= addr && addr + size <= e.addr + e.size) {
            const unsigned shift =
                static_cast<unsigned>(addr - e.addr) * 8;
            std::uint64_t v = e.data >> shift;
            if (size < 8)
                v &= (std::uint64_t{1} << (size * 8)) - 1;
            out = v;
            ++stat_fwd_hits_;
            return Fwd::Hit;
        }
        ++stat_fwd_conflicts_;
        return Fwd::Conflict;
    }
    return Fwd::None;
}

StoreBuffer::Entry *
StoreBuffer::pickEligible()
{
    if (entries_.empty())
        return nullptr;
    if (params_.drain_in_order) {
        Entry &head = entries_.front();
        return head.issued ? nullptr : &head;
    }
    // Relaxed drain: any unissued entry of the oldest barrier group with
    // no older overlapping entry (per-address order is preserved).
    // Prefer entries whose block is already writable in the L1 -- this
    // opportunistic reordering of hits ahead of misses is exactly the
    // store-store relaxation RMO permits.
    const std::uint32_t oldest_group = entries_.front().barrier_group;
    Entry *fallback = nullptr;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        if (e.barrier_group != oldest_group)
            break;
        if (e.issued)
            continue;
        bool blocked = false;
        for (std::size_t j = 0; j < i; ++j) {
            if (overlaps(entries_[j].addr, entries_[j].size, e.addr,
                         e.size)) {
                blocked = true;
                break;
            }
        }
        if (blocked)
            continue;
        if (l1_.hasWritePermission(e.addr))
            return &e;
        if (!fallback)
            fallback = &e;
    }
    return fallback;
}

void
StoreBuffer::issueNext()
{
    issuePrefetches();
    const unsigned limit =
        params_.drain_in_order ? 1 : params_.max_inflight;
    while (inflight_.size() < limit) {
        Entry *e = pickEligible();
        if (!e)
            return;
        if (!l1_.hasWritePermission(e->addr) && !l1_.canAcceptMiss()) {
            // The L1 is out of miss slots; retry shortly (nothing else
            // is guaranteed to re-invoke us once the MSHRs drain).
            scheduleRetry();
            return;
        }

        e->issued = true;
        inflight_.push_back(e->seq);

        mem::MemRequest req;
        req.op = mem::MemOp::Store;
        req.addr = e->addr;
        req.size = e->size;
        req.store_data = e->data;
        req.spec = e->spec;
        req.spec_epoch = e->spec_epoch;
        req.pc = e->pc;
        req.done_fn = [](void *obj, std::uint64_t seq, std::uint64_t) {
            static_cast<StoreBuffer *>(obj)->complete(seq);
        };
        req.done_obj = this;
        req.done_ctx = e->seq;
        l1_.access(std::move(req));
    }
}

void
StoreBuffer::scheduleRetry()
{
    if (retry_pending_)
        return;
    retry_pending_ = true;
    sim::scheduleOneShot(ctx_.eventq, ctx_.curTick() + 4, [this] {
        retry_pending_ = false;
        issueNext();
    });
}

void
StoreBuffer::issuePrefetches()
{
    // Fetch write permission early for buffered stores that will drain
    // soon, so an in-order drain of several misses overlaps their
    // ownership round trips instead of serializing them.
    unsigned examined = 0;
    for (auto &e : entries_) {
        if (examined++ >= params_.prefetch_depth)
            break;
        if (e.issued || e.prefetched)
            continue;
        e.prefetched = true;
        if (l1_.hasWritePermission(e.addr) || !l1_.canAcceptMiss())
            continue;
        mem::MemRequest req;
        req.op = mem::MemOp::PrefetchEx;
        req.addr = e.addr;
        req.size = e.size;
        req.pc = e.pc;
        req.done_fn = [](void *, std::uint64_t, std::uint64_t) {};
        l1_.access(std::move(req));
    }
}

void
StoreBuffer::complete(std::uint64_t seq)
{
    auto inflight_it = std::find(inflight_.begin(), inflight_.end(),
                                 seq);
    if (inflight_it != inflight_.end())
        inflight_.erase(inflight_it);
    // The entry may have been discarded by a rollback while in flight;
    // in that case there is nothing to remove (the L1 dropped the write
    // as a stale-epoch no-op).
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [seq](const Entry &e) { return e.seq == seq; });
    if (it != entries_.end()) {
        entries_.erase(it);
        ++stat_drained_;
        recordOccupancy();
    }
    if (entries_.empty())
        barrier_group_ = 0;

    if (drain_listener_)
        drain_listener_();
    fireWaiters();
    issueNext();
}

void
StoreBuffer::whenEmpty(std::function<void()> cb)
{
    if (empty()) {
        sim::scheduleOneShot(ctx_.eventq, ctx_.curTick() + 1,
                             std::move(cb));
        return;
    }
    waiters_.push_back(Waiter{Waiter::Kind::Empty, 0, 0, std::move(cb)});
}

void
StoreBuffer::whenSpace(std::function<void()> cb)
{
    if (!full()) {
        sim::scheduleOneShot(ctx_.eventq, ctx_.curTick() + 1,
                             std::move(cb));
        return;
    }
    waiters_.push_back(Waiter{Waiter::Kind::Space, 0, 0, std::move(cb)});
}

void
StoreBuffer::whenNoOverlap(Addr addr, unsigned size,
                           std::function<void()> cb)
{
    if (!hasOverlap(addr, size)) {
        sim::scheduleOneShot(ctx_.eventq, ctx_.curTick() + 1,
                             std::move(cb));
        return;
    }
    waiters_.push_back(Waiter{Waiter::Kind::NoOverlap, addr, size,
                              std::move(cb)});
}

void
StoreBuffer::fireWaiters()
{
    // A firing waiter may register a new one; collect first.
    std::vector<std::function<void()>> ready;
    for (auto it = waiters_.begin(); it != waiters_.end();) {
        bool fire = false;
        switch (it->kind) {
          case Waiter::Kind::Empty:
            fire = empty();
            break;
          case Waiter::Kind::Space:
            fire = !full();
            break;
          case Waiter::Kind::NoOverlap:
            fire = !hasOverlap(it->addr, it->size);
            break;
        }
        if (fire) {
            ready.push_back(std::move(it->cb));
            it = waiters_.erase(it);
        } else {
            ++it;
        }
    }
    for (auto &cb : ready)
        cb();
}

void
StoreBuffer::commitSpec()
{
    for (auto &e : entries_) {
        e.spec = false;
        e.spec_epoch = 0;
    }
}

void
StoreBuffer::discardAfter(std::uint64_t keep_up_to)
{
    std::size_t removed = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->seq > keep_up_to) {
            flAssert(it->spec, "discarding a non-speculative store (seq ",
                     it->seq, ")");
            // A discarded entry that is already in flight completes
            // at the L1 as a stale-epoch no-op; complete() drops it
            // from inflight_ then.
            it = entries_.erase(it);
            ++removed;
        } else {
            ++it;
        }
    }
    stat_discarded_ += removed;
    if (removed)
        recordOccupancy();
    if (entries_.empty())
        barrier_group_ = 0;
}

} // namespace fenceless::cpu
