#include "cpu/core.hh"

#include <sstream>

#include "base/logging.hh"
#include "base/trace.hh"
#include "mem/mem_request.hh"

namespace fenceless::cpu
{

using isa::Inst;
using isa::Op;

const char *
consistencyModelName(ConsistencyModel m)
{
    switch (m) {
      case ConsistencyModel::SC: return "SC";
      case ConsistencyModel::TSO: return "TSO";
      case ConsistencyModel::RMO: return "RMO";
    }
    return "?";
}

ConsistencyModel
parseConsistencyModel(const std::string &name)
{
    std::string lower;
    for (char c : name)
        lower += static_cast<char>(std::tolower(c));
    if (lower == "sc")
        return ConsistencyModel::SC;
    if (lower == "tso")
        return ConsistencyModel::TSO;
    if (lower == "rmo")
        return ConsistencyModel::RMO;
    fatal("unknown consistency model '", name, "'");
}

const char *
stallReasonName(StallReason r)
{
    switch (r) {
      case StallReason::ScLoadOrder: return "sc_load_order";
      case StallReason::FenceDrain: return "fence_drain";
      case StallReason::AmoOrder: return "amo_order";
      case StallReason::AmoData: return "amo_data";
      case StallReason::SbFull: return "sb_full";
      case StallReason::LoadAccess: return "load_access";
      case StallReason::AmoAccess: return "amo_access";
      case StallReason::FwdConflict: return "fwd_conflict";
      case StallReason::HaltDrain: return "halt_drain";
      case StallReason::SpecLimit: return "spec_limit";
      case StallReason::NumReasons: break;
    }
    return "?";
}

Core::Core(sim::SimContext &ctx, const std::string &name,
           const Params &params, CoreId core_id, const isa::Program &prog,
           mem::L1Cache &l1, std::uint32_t num_cores)
    : SimObject(ctx, name), params_(params), core_id_(core_id),
      prog_(prog), decoded_(prog), l1_(l1), num_cores_(num_cores),
      prof_(ctx.profiler.ifEnabled()),
      sb_(ctx, statGroup(),
          StoreBuffer::Params{params.sb_size,
                              ModelPolicy::sbDrainsInOrder(params.model),
                              params.sb_max_inflight,
                              params.sb_prefetch_depth},
          l1),
      tick_event_(*this, name + ".tick"),
      stat_instructions_(statGroup().addScalar("instructions",
                                               "instructions retired")),
      stat_loads_(statGroup().addScalar("loads", "loads executed")),
      stat_stores_(statGroup().addScalar("stores", "stores executed")),
      stat_amos_(statGroup().addScalar("amos", "atomics executed")),
      stat_fences_full_(statGroup().addScalar("fences_full",
                                              "full fences executed")),
      stat_fences_acq_(statGroup().addScalar("fences_acquire",
                                             "acquire fences executed")),
      stat_fences_rel_(statGroup().addScalar("fences_release",
                                             "release fences executed")),
      stat_halt_tick_(statGroup().addScalar("halt_tick",
                                            "cycle the core halted")),
      stat_load_latency_(statGroup().addDistribution("load_latency",
          "cycles from load issue to writeback (cache path only)"))
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(StallReason::NumReasons); ++i) {
        stat_stalls_[i] = &statGroup().addScalar(
            std::string("stall_") +
                stallReasonName(static_cast<StallReason>(i)),
            "cycles stalled: " +
                std::string(stallReasonName(static_cast<StallReason>(i))));
    }
    statGroup().addFormula("ipc", "instructions per cycle up to halt",
                           [this] {
                               const auto cycles =
                                   stat_halt_tick_.count();
                               return cycles ? stat_instructions_.value()
                                                   / cycles
                                             : 0.0;
                           });

    std::vector<std::string> stall_names;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(StallReason::NumReasons); ++i)
        stall_names.push_back(stallReasonName(static_cast<StallReason>(i)));
    tracer().setAuxNames(trace::EventKind::CoreStall,
                         std::move(stall_names));
}

Core::~Core()
{
    if (tick_event_.scheduled())
        eventq().deschedule(&tick_event_);
}

void
Core::reset()
{
    regs_.fill(0);
    regs_[isa::tp] = core_id_;
    pc_ = 0;
    instret_ = 0;
    halted_ = false;
    pending_kind_ = PendingKind::None;
    scheduleTick(1);
}

void
Core::setReg(isa::RegId r, std::uint64_t v)
{
    if (r != 0)
        regs_[r] = v;
}

void
Core::scheduleTick(Cycles delay)
{
    if (!tick_event_.scheduled())
        scheduleIn(&tick_event_, delay);
}

namespace
{

/** Map the fine-grained stall taxonomy onto the waste buckets. */
prof::CycleBucket
profileBucket(StallReason reason)
{
    switch (reason) {
      case StallReason::SbFull:
        return prof::CycleBucket::SbFull;
      case StallReason::LoadAccess:
      case StallReason::AmoAccess:
      case StallReason::FwdConflict:
        return prof::CycleBucket::MissWait;
      // Everything else is an ordering stall: the fence-stall family.
      case StallReason::ScLoadOrder:
      case StallReason::FenceDrain:
      case StallReason::AmoOrder:
      case StallReason::AmoData:
      case StallReason::HaltDrain:
      case StallReason::SpecLimit:
      case StallReason::NumReasons:
        break;
    }
    return prof::CycleBucket::FenceStall;
}

} // namespace

void
Core::advance(std::uint64_t next_pc, Cycles delay)
{
    if (prof_) // pc_ still names the instruction that just executed
        profileCycles(prof::CycleBucket::Execute, delay);
    pc_ = next_pc;
    ++instret_;
    ++stat_instructions_;
    FL_TEVENT(*this, trace::EventKind::CoreCommit, instret_);
    scheduleTick(delay);
}

void
Core::accountStall(StallReason reason, Tick begin)
{
    *stat_stalls_[static_cast<std::size_t>(reason)] += curTick() - begin;
    if (prof_)
        profileCycles(profileBucket(reason), curTick() - begin);
    FL_TEVENT(*this, trace::EventKind::CoreStall, begin, 0,
              static_cast<std::uint32_t>(reason));
}

std::function<void()>
Core::resumer(StallReason reason)
{
    // Idle-sleep entry: while waiting, the core schedules nothing --
    // no tick events fire for the dead cycles -- and wake() accounts
    // the whole slept interval in one shot, so the stall statistics
    // are exactly what per-cycle accounting would have produced.
    sleep_reason_ = reason;
    sleep_begin_ = curTick();
    return [this, gen = squash_gen_] { wake(gen); };
}

void
Core::wake(std::uint64_t gen)
{
    if (gen != squash_gen_)
        return; // stale: the core was squashed while asleep
    accountStall(sleep_reason_, sleep_begin_);
    scheduleTick(1);
}

void
Core::loadResponse(std::uint64_t gen, std::uint64_t value)
{
    if (gen != squash_gen_)
        return; // stale: the core was squashed while the load flew
    pending_kind_ = PendingKind::None;
    accountStall(StallReason::LoadAccess, pending_begin_);
    stat_load_latency_.sample(
        static_cast<double>(curTick() - pending_begin_));
    setReg(pending_rd_, value);
    advance(pc_ + 1);
}

void
Core::amoResponse(std::uint64_t gen, std::uint64_t old_value)
{
    if (gen != squash_gen_)
        return; // stale: the core was squashed while the AMO flew
    amo_in_flight_ = false;
    pending_kind_ = PendingKind::None;
    accountStall(StallReason::AmoAccess, pending_begin_);
    setReg(pending_rd_, old_value);
    advance(pc_ + 1);
}

Core::ArchSnapshot
Core::snapshot() const
{
    return ArchSnapshot{regs_, pc_, instret_};
}

void
Core::restoreAndResume(const ArchSnapshot &snap)
{
    FL_TRACE(trace::Flag::Core, *this, "squash: pc ", pc_, " -> ",
             snap.pc, " (", instret_ - snap.instret,
             " insts discarded)");
    ++squash_gen_;
    amo_in_flight_ = false;
    pending_kind_ = PendingKind::None;
    regs_ = snap.regs;
    pc_ = snap.pc;
    stat_instructions_ = snap.instret; // discard wrong-path retirement
    instret_ = snap.instret;
    sb_.clearWaiters();
    if (tick_event_.scheduled())
        eventq().deschedule(&tick_event_);
    flAssert(!halted_, name(), ": rollback after halt");
    scheduleTick(1);
}

// ---------------------------------------------------------------------
// the pipeline
// ---------------------------------------------------------------------

void
Core::tick()
{
    if (halted_)
        return;
    flAssert(pc_ < prog_.code.size(), name(), ": pc ", pc_,
             " out of range");
    const Inst &inst = prog_.code[pc_];

    // Dispatch on the pre-decoded execution class (computed once per
    // static instruction at construction) instead of re-classifying
    // the ~40-way opcode space on every dynamic step.
    switch (decoded_.cls(pc_)) {
      case isa::ExecClass::AluReg:
        setReg(inst.rd, isa::aluOp(inst.op, reg(inst.rs1),
                                   reg(inst.rs2)));
        advance(pc_ + 1);
        break;

      case isa::ExecClass::AluImm:
        setReg(inst.rd, isa::aluOp(inst.op, reg(inst.rs1),
                                   static_cast<std::uint64_t>(inst.imm)));
        advance(pc_ + 1);
        break;

      case isa::ExecClass::Li:
        setReg(inst.rd, static_cast<std::uint64_t>(inst.imm));
        advance(pc_ + 1);
        break;

      case isa::ExecClass::Load:
        executeLoad(inst);
        break;
      case isa::ExecClass::Store:
        executeStore(inst);
        break;
      case isa::ExecClass::Amo:
        executeAmo(inst);
        break;
      case isa::ExecClass::Fence:
        executeFence(inst);
        break;

      case isa::ExecClass::Branch:
        advance(isa::branchTaken(inst.op, reg(inst.rs1), reg(inst.rs2))
                ? static_cast<std::uint64_t>(inst.imm) : pc_ + 1);
        break;

      case isa::ExecClass::Jal:
        setReg(inst.rd, pc_ + 1);
        advance(static_cast<std::uint64_t>(inst.imm));
        break;

      case isa::ExecClass::Jalr: {
        const std::uint64_t target = reg(inst.rs1) + inst.imm;
        setReg(inst.rd, pc_ + 1);
        advance(target);
        break;
      }

      case isa::ExecClass::CsrRead:
        switch (inst.csr) {
          case isa::Csr::Tid:
            setReg(inst.rd, core_id_);
            break;
          case isa::Csr::NumCores:
            setReg(inst.rd, num_cores_);
            break;
          case isa::Csr::Cycle:
            setReg(inst.rd, curTick());
            break;
          case isa::Csr::InstRet:
            setReg(inst.rd, instret_);
            break;
        }
        advance(pc_ + 1);
        break;

      case isa::ExecClass::Halt:
        executeHalt();
        break;

      case isa::ExecClass::Nop:
        advance(pc_ + 1);
        break;
      case isa::ExecClass::Pause:
        advance(pc_ + 1, params_.pause_cycles);
        break;
    }
}

void
Core::executeLoad(const Inst &inst)
{
    const Addr addr = reg(inst.rs1) + inst.imm;
    flAssert(addr % inst.size == 0, name(), ": misaligned load @0x",
             std::hex, addr);

    bool spec_now = spec_ && spec_->inSpec();

    // SC: a load may not issue while stores are buffered -- unless the
    // speculation controller lets us proceed past the ordering point.
    // Inside an epoch the controller extends its commit watermark on
    // every such crossing: SC requires all earlier stores to be ordered
    // before this load, so the epoch may not commit until they drain.
    if (ModelPolicy::loadNeedsSbEmpty(params_.model) && !sb_.empty()) {
        if (spec_ &&
            spec_->shouldSpeculate(SpecInterface::OrderPoint::ScLoad)) {
            spec_now = true;
        } else {
            sb_.whenEmpty(resumer(StallReason::ScLoadOrder));
            return;
        }
    }

    if (spec_now && !spec_->reserveSpecSlot(false)) {
        spec_->whenSpecExit(resumer(StallReason::SpecLimit));
        return;
    }

    // Store-buffer forwarding.
    std::uint64_t fwd_value = 0;
    switch (sb_.forward(addr, inst.size, fwd_value)) {
      case StoreBuffer::Fwd::Hit:
        ++stat_loads_;
        setReg(inst.rd, fwd_value);
        advance(pc_ + 1);
        return;
      case StoreBuffer::Fwd::Conflict:
        sb_.whenNoOverlap(addr, inst.size,
                          resumer(StallReason::FwdConflict));
        return;
      case StoreBuffer::Fwd::None:
        break;
    }

    ++stat_loads_;
    // Per-request state lives in the single pending-access slot (the
    // in-order core has at most one access outstanding); the bound
    // completion carries only the squash generation, so issuing a load
    // builds no closure and allocates nothing.
    pending_rd_ = inst.rd;
    pending_begin_ = curTick();
    pending_kind_ = PendingKind::Load;
    pending_addr_ = addr;
    mem::MemRequest req;
    req.op = mem::MemOp::Load;
    req.addr = addr;
    req.size = inst.size;
    req.spec = spec_now;
    req.spec_epoch = spec_now ? spec_->epoch() : 0;
    req.pc = pc_;
    req.done_fn = [](void *obj, std::uint64_t gen, std::uint64_t value) {
        static_cast<Core *>(obj)->loadResponse(gen, value);
    };
    req.done_obj = this;
    req.done_ctx = squash_gen_;
    l1_.access(std::move(req));
}

void
Core::executeStore(const Inst &inst)
{
    const Addr addr = reg(inst.rs1) + inst.imm;
    flAssert(addr % inst.size == 0, name(), ": misaligned store @0x",
             std::hex, addr);

    if (sb_.full()) {
        sb_.whenSpace(resumer(StallReason::SbFull));
        return;
    }

    const bool spec_now = spec_ && spec_->inSpec();
    if (spec_now && !spec_->reserveSpecSlot(true)) {
        spec_->whenSpecExit(resumer(StallReason::SpecLimit));
        return;
    }
    sb_.push(addr, inst.size, reg(inst.rs2), spec_now,
             spec_now ? spec_->epoch() : 0, pc_);
    ++stat_stores_;
    advance(pc_ + 1);
}

void
Core::executeAmo(const Inst &inst)
{
    const Addr addr = reg(inst.rs1);
    flAssert(addr % inst.size == 0, name(), ": misaligned AMO @0x",
             std::hex, addr);

    // Value dependency: a buffered store to the same bytes must reach
    // the cache before the read-modify-write, regardless of model or
    // speculation.
    if (sb_.hasOverlap(addr, inst.size)) {
        sb_.whenNoOverlap(addr, inst.size, resumer(StallReason::AmoData));
        return;
    }

    bool spec_now = spec_ && spec_->inSpec();

    // Ordering: SC/TSO atomics drain the whole buffer first (inside an
    // epoch the crossing extends the commit watermark instead).
    if (ModelPolicy::amoDrainsSb(params_.model) && !sb_.empty()) {
        if (spec_ &&
            spec_->shouldSpeculate(SpecInterface::OrderPoint::Amo)) {
            spec_now = true;
        } else {
            sb_.whenEmpty(resumer(StallReason::AmoOrder));
            return;
        }
    }

    if (spec_now && !(spec_->reserveSpecSlot(true) &&
                      spec_->reserveSpecSlot(false))) {
        spec_->whenSpecExit(resumer(StallReason::SpecLimit));
        return;
    }

    ++stat_amos_;
    amo_in_flight_ = true;
    pending_rd_ = inst.rd;
    pending_begin_ = curTick();
    pending_kind_ = PendingKind::Amo;
    pending_addr_ = addr;
    mem::MemRequest req;
    req.op = mem::MemOp::Amo;
    req.addr = addr;
    req.size = inst.size;
    req.spec = spec_now;
    req.spec_epoch = spec_now ? spec_->epoch() : 0;
    req.pc = pc_;
    req.amo_fn = [](std::uint8_t sel, std::uint64_t old_value,
                    std::uint64_t a, std::uint64_t b) {
        return isa::amoApplyOp(static_cast<Op>(sel), old_value, a, b);
    };
    req.amo_sel = static_cast<std::uint8_t>(inst.op);
    req.amo_a = reg(inst.rs2);
    req.amo_b = reg(inst.rs3);
    req.done_fn = [](void *obj, std::uint64_t gen,
                     std::uint64_t old_value) {
        static_cast<Core *>(obj)->amoResponse(gen, old_value);
    };
    req.done_obj = this;
    req.done_ctx = squash_gen_;
    l1_.access(std::move(req));
}

void
Core::executeFence(const Inst &inst)
{
    switch (inst.fence) {
      case isa::FenceKind::Full:
        ++stat_fences_full_;
        if (ModelPolicy::fullFenceDrains(params_.model) && !sb_.empty()) {
            // shouldSpeculate() either opens an epoch, extends the
            // commit watermark of the current one, or declines (stall).
            if (!(spec_ && spec_->shouldSpeculate(
                      SpecInterface::OrderPoint::FullFence))) {
                sb_.whenEmpty(resumer(StallReason::FenceDrain));
                return;
            }
        }
        advance(pc_ + 1);
        break;

      case isa::FenceKind::Acquire:
        // Free on an in-order core: the acquiring load/AMO completed
        // before this instruction executes.
        ++stat_fences_acq_;
        advance(pc_ + 1);
        break;

      case isa::FenceKind::Release:
        ++stat_fences_rel_;
        if (ModelPolicy::releaseFenceMarks(params_.model))
            sb_.pushBarrier();
        advance(pc_ + 1);
        break;
    }
}

void
Core::executeHalt()
{
    if (!sb_.empty()) {
        sb_.whenEmpty(resumer(StallReason::HaltDrain));
        return;
    }
    if (spec_ && spec_->inSpec()) {
        spec_->requestStop(resumer(StallReason::HaltDrain));
        return;
    }
    if (prof_)
        profileCycles(prof::CycleBucket::Execute, 1);
    ++instret_;
    ++stat_instructions_;
    halted_ = true;
    stat_halt_tick_ = curTick();
    if (halt_cb_)
        halt_cb_();
}

} // namespace fenceless::cpu
