/**
 * @file
 * Synthetic SPLASH-class kernels: barrier-structured scientific code
 * (stencil), fine-grained-locking irregular updates, and an atomic
 * counting sort partition.  Each is checked against a host-side model
 * of the identical computation.
 */

#pragma once

#include <vector>

#include "workload/workload.hh"

namespace fenceless::workload
{

/**
 * Jacobi 4-point stencil on an (n+2)^2 grid, rows distributed
 * cyclically, one barrier per sweep (ocean-like).
 */
class Stencil2D : public Workload
{
  public:
    struct Params
    {
        std::uint64_t n = 16;    //!< interior grid dimension
        std::uint64_t iters = 4; //!< sweeps
        std::uint64_t seed = 7;  //!< initial grid values
    };

    Stencil2D() = default;
    explicit Stencil2D(const Params &p) : params_(p) {}

    std::string name() const override { return "stencil2d"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;

  private:
    Params params_;
    Addr grid_a_ = 0;
    Addr grid_b_ = 0;
};

/**
 * Irregular updates: each thread applies pseudo-random deltas to
 * pseudo-randomly chosen bins, each protected by its own spin lock
 * (barnes-like fine-grained locking).
 */
class IrregularUpdate : public Workload
{
  public:
    struct Params
    {
        std::uint64_t updates = 256; //!< per thread
        unsigned bins = 32;          //!< power of two
        std::uint64_t seed = 11;
        unsigned bin_shift = 5;      //!< state bits selecting the bin
    };

    IrregularUpdate() = default;
    explicit IrregularUpdate(const Params &p) : params_(p) {}

    std::string name() const override { return "irregular-update"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;

  private:
    Params params_;
    Addr vals_addr_ = 0;
};

/**
 * One pass of a radix partition: atomic per-bucket counting, a serial
 * prefix scan, then an atomic scatter (radix-sort-like).
 */
class RadixPartition : public Workload
{
  public:
    struct Params
    {
        std::uint64_t items_per_thread = 128;
        unsigned buckets = 16; //!< power of two
        std::uint64_t seed = 13;
    };

    RadixPartition() = default;
    explicit RadixPartition(const Params &p) : params_(p) {}

    std::string name() const override { return "radix-partition"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;

  private:
    Params params_;
    Addr out_addr_ = 0;
    Addr counts_addr_ = 0;
    std::vector<std::uint64_t> inputs_;
};

/**
 * Dense matrix multiply (C = A x B, wrapping uint64 arithmetic), rows
 * distributed cyclically.  Inputs are read-shared by every core; the
 * outputs are disjoint -- a data-parallel kernel whose only ordering
 * point is the terminal barrier (lu-like read sharing).
 */
class MatmulBlocked : public Workload
{
  public:
    struct Params
    {
        std::uint64_t n = 12;   //!< matrix dimension
        std::uint64_t seed = 17;
    };

    MatmulBlocked() = default;
    explicit MatmulBlocked(const Params &p) : params_(p) {}

    std::string name() const override { return "matmul"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;

  private:
    Params params_;
    Addr c_addr_ = 0;
    std::vector<std::uint64_t> a_, b_;
};

/**
 * A software pipeline: thread 0 produces a stream, every intermediate
 * stage transforms (+1) and forwards through its own single-producer/
 * single-consumer channel, the final stage accumulates.  A chain of
 * release/acquire publications (streamcluster-like stage handoff).
 */
class Pipeline : public Workload
{
  public:
    struct Params
    {
        std::uint64_t items = 128;
    };

    Pipeline() = default;
    explicit Pipeline(const Params &p) : params_(p) {}

    std::string name() const override { return "pipeline"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;
    std::uint32_t minThreads() const override { return 2; }

  private:
    Params params_;
    Addr sum_addr_ = 0;
};

} // namespace fenceless::workload
