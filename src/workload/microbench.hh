/**
 * @file
 * Synchronization microbenchmarks.
 *
 * Each stresses one class of ordering point: lock handoff (spin and
 * ticket locks), full fences (Dekker), barriers, release/acquire
 * publication (SPSC queues, seqlock), and atomics (MPMC queue,
 * histogram).  Guest-side violation counters turn any consistency or
 * speculation bug into a failed postcondition.
 */

#pragma once

#include "workload/workload.hh"

namespace fenceless::workload
{

/** Threads increment a shared counter inside a test-and-set spin lock. */
class SpinlockCrit : public Workload
{
  public:
    struct Params
    {
        std::uint64_t iters = 100;       //!< critical sections per thread
        std::uint64_t crit_work = 4;     //!< delay iterations inside CS
        std::uint64_t non_crit_work = 16;//!< delay iterations outside CS
        unsigned counters = 1;           //!< shared counters bumped in CS
    };

    SpinlockCrit() = default;
    explicit SpinlockCrit(const Params &p) : params_(p) {}

    std::string name() const override { return "spinlock-crit"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;

  private:
    Params params_;
    Addr counters_addr_ = 0;
};

/** Same contention pattern under a FIFO ticket lock. */
class TicketLockCrit : public Workload
{
  public:
    struct Params
    {
        std::uint64_t iters = 100;
        std::uint64_t crit_work = 4;
        std::uint64_t non_crit_work = 16;
    };

    TicketLockCrit() = default;
    explicit TicketLockCrit(const Params &p) : params_(p) {}

    std::string name() const override { return "ticketlock-crit"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;

  private:
    Params params_;
    Addr counter_addr_ = 0;
};

/**
 * Barrier-separated phases.  In each phase every thread publishes its
 * phase number, crosses the barrier, and verifies its neighbour's slot
 * -- catching both barrier bugs and speculation-atomicity bugs.
 */
class BarrierPhase : public Workload
{
  public:
    struct Params
    {
        std::uint64_t phases = 32;
        std::uint64_t work = 16; //!< delay iterations per phase
    };

    BarrierPhase() = default;
    explicit BarrierPhase(const Params &p) : params_(p) {}

    std::string name() const override { return "barrier-phase"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;
    std::uint32_t minThreads() const override { return 2; }

  private:
    Params params_;
    Addr slots_addr_ = 0;
    Addr violations_addr_ = 0;
};

/**
 * Dekker's mutual-exclusion algorithm between two threads, relying on
 * full fences (store flag -> fence -> load other flag).  The canonical
 * fence-cost workload: every entry pays a full fence under TSO/RMO.
 */
class Dekker : public Workload
{
  public:
    struct Params
    {
        std::uint64_t iters = 200;
        std::uint64_t crit_work = 2;
    };

    Dekker() = default;
    explicit Dekker(const Params &p) : params_(p) {}

    std::string name() const override { return "dekker"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;
    std::uint32_t minThreads() const override { return 2; }

  private:
    Params params_;
    Addr counter_addr_ = 0;
};

/**
 * Single-producer/single-consumer ring buffers with release/acquire
 * publication; threads are paired (even producer, odd consumer).
 */
class ProdCons : public Workload
{
  public:
    struct Params
    {
        std::uint64_t items = 256;   //!< items per pair
        std::uint64_t capacity = 16; //!< ring capacity (power of two)
    };

    ProdCons() = default;
    explicit ProdCons(const Params &p) : params_(p) {}

    std::string name() const override { return "prodcons"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;
    std::uint32_t minThreads() const override { return 2; }

  private:
    Params params_;
    Addr sums_addr_ = 0;
};

/**
 * A ticket-based multi-producer/multi-consumer queue: producers
 * fetch-and-add the tail, consumers the head; slots are published with
 * a release store to a ready flag.
 */
class MpmcQueue : public Workload
{
  public:
    struct Params
    {
        std::uint64_t items_per_producer = 128;
    };

    MpmcQueue() = default;
    explicit MpmcQueue(const Params &p) : params_(p) {}

    std::string name() const override { return "mpmc-queue"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;
    std::uint32_t minThreads() const override { return 2; }

  private:
    Params params_;
    Addr sums_addr_ = 0;
    Addr violations_addr_ = 0;
};

/**
 * A seqlock: thread 0 writes (a, b) pairs under an odd/even sequence
 * protocol; the others read snapshots and count torn reads (must be 0).
 */
class SeqlockReaders : public Workload
{
  public:
    struct Params
    {
        std::uint64_t writes = 128;
        std::uint64_t reads = 256; //!< per reader
    };

    SeqlockReaders() = default;
    explicit SeqlockReaders(const Params &p) : params_(p) {}

    std::string name() const override { return "seqlock-readers"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;
    std::uint32_t minThreads() const override { return 2; }

  private:
    Params params_;
    Addr violations_addr_ = 0;
};

/**
 * Uncontended synchronization: each thread streams stores through a
 * cold region (keeping its store buffer busy), then takes its *own*
 * lock around a private counter update.  Pure ordering overhead: the
 * acquire's atomic must drain the streaming stores under SC/TSO, and
 * fence speculation overlaps them -- the mostly-uncontended-lock
 * pattern that dominates real multithreaded code.
 */
class LocalLockStream : public Workload
{
  public:
    struct Params
    {
        std::uint64_t iters = 64;   //!< lock sections per thread
        unsigned stream_stores = 4; //!< cold-block stores per iter
    };

    LocalLockStream() = default;
    explicit LocalLockStream(const Params &p) : params_(p) {}

    std::string name() const override { return "local-locks"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;

  private:
    Params params_;
    Addr counters_addr_ = 0;
    Addr stream_addr_ = 0;
};

/**
 * Deadlock seed for the hang watchdog and stall-dossier tests (not in
 * the standard suite).  Thread 0 takes block Y into M state, thread 1
 * block X; after a barrier each loads the other's block, so the
 * directory must forward both requests to the current owners.  The
 * workload is correct and terminates on a healthy machine -- `check`
 * verifies the cross-loaded values -- but under the
 * Network::Params::drop_fwd_acks_for fault injection (drop the
 * Fwd*Ack for blocks X and Y) both directory transactions wedge in
 * their forward phase and the run becomes a true resource deadlock:
 * core_0 -> mshr[X] -> txn[X] -> core_1 -> mshr[Y] -> txn[Y] ->
 * core_0.
 */
class SeededDeadlock : public Workload
{
  public:
    SeededDeadlock() = default;

    std::string name() const override { return "seeded-deadlock"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;
    std::uint32_t minThreads() const override { return 2; }

    /** Block addresses for drop_fwd_acks_for (valid after build). */
    Addr blockX() const { return x_addr_; }
    Addr blockY() const { return y_addr_; }

  private:
    Addr x_addr_ = 0;
    Addr y_addr_ = 0;
    Addr done_addr_ = 0;
    Addr result_addr_ = 0;
};

/**
 * Atomic histogram: threads bin host-generated random values with
 * fetch-and-add on shared (contended) bucket counters.
 */
class AtomicHistogram : public Workload
{
  public:
    struct Params
    {
        std::uint64_t items_per_thread = 256;
        unsigned bins = 16;      //!< power of two
        std::uint64_t seed = 42; //!< host-side data generation seed
    };

    AtomicHistogram() = default;
    explicit AtomicHistogram(const Params &p) : params_(p) {}

    std::string name() const override { return "atomic-histogram"; }
    isa::Program build(std::uint32_t num_threads) override;
    bool check(const MemReader &read, std::uint32_t num_threads,
               std::string &error) const override;

  private:
    Params params_;
    Addr bins_addr_ = 0;
    std::vector<std::uint64_t> expected_;
};

} // namespace fenceless::workload
