#include "workload/runtime.hh"

#include "isa/inst.hh"

namespace fenceless::workload
{

using namespace isa;

std::string
uniqueLabel(const Assembler &as, const std::string &tag)
{
    // Derived from the emission position rather than a global counter:
    // building the same program always yields the same label names, no
    // matter how many programs other (possibly concurrent) builds have
    // assembled before.  The waste profiler symbolizes PCs through
    // these names, so they must be a pure function of the program.
    return "rt" + std::to_string(as.here()) + "_" + tag;
}

void
emitSpinLockAcquire(Assembler &as, RegId lock_addr, RegId scratch0,
                    RegId scratch1)
{
    const std::string l_try = uniqueLabel(as, "try");
    const std::string l_spin = uniqueLabel(as, "spin");
    const std::string l_got = uniqueLabel(as, "got");

    as.li(scratch1, 1);
    as.label(l_try);
    as.amoswap(scratch0, scratch1, lock_addr);
    as.beq(scratch0, x0, l_got);
    as.label(l_spin);
    as.pause();
    as.ld(scratch0, lock_addr);
    as.bne(scratch0, x0, l_spin);
    as.jump(l_try);
    as.label(l_got);
    as.fenceAcquire();
}

void
emitSpinLockRelease(Assembler &as, RegId lock_addr)
{
    as.fenceRelease();
    as.st(x0, lock_addr);
}

void
emitTicketLockAcquire(Assembler &as, RegId next_addr, RegId serving_addr,
                      RegId scratch0, RegId scratch1)
{
    const std::string l_spin = uniqueLabel(as, "tkspin");
    const std::string l_got = uniqueLabel(as, "tkgot");

    as.li(scratch1, 1);
    as.amoadd(scratch0, scratch1, next_addr); // scratch0 = my ticket
    as.label(l_spin);
    as.ld(scratch1, serving_addr);
    as.beq(scratch1, scratch0, l_got);
    as.pause();
    as.jump(l_spin);
    as.label(l_got);
    as.fenceAcquire();
}

void
emitTicketLockRelease(Assembler &as, RegId serving_addr, RegId scratch0)
{
    as.fenceRelease();
    // Only the lock holder writes now-serving; a plain RMW is safe.
    as.ld(scratch0, serving_addr);
    as.addi(scratch0, scratch0, 1);
    as.st(scratch0, serving_addr);
}

void
emitBarrier(Assembler &as, RegId count_addr, RegId sense_addr,
            RegId local_sense, RegId num_threads, RegId scratch0,
            RegId scratch1)
{
    const std::string l_wait = uniqueLabel(as, "bwait");
    const std::string l_done = uniqueLabel(as, "bdone");

    as.xori(local_sense, local_sense, 1);
    as.li(scratch1, 1);
    as.amoadd(scratch0, scratch1, count_addr);
    as.addi(scratch0, scratch0, 1);
    as.bne(scratch0, num_threads, l_wait);
    // Last arriver: reset the count, then publish the new sense.  The
    // release edge orders the reset before the publication.
    as.st(x0, count_addr);
    as.fenceRelease();
    as.st(local_sense, sense_addr);
    as.jump(l_done);
    as.label(l_wait);
    as.ld(scratch0, sense_addr);
    as.beq(scratch0, local_sense, l_done);
    as.pause();
    as.jump(l_wait);
    as.label(l_done);
    as.fenceAcquire();
}

void
emitXorshift(Assembler &as, RegId state_reg, RegId scratch)
{
    // x ^= x << 13; x ^= x >> 7; x ^= x << 17
    as.slli(scratch, state_reg, 13);
    as.xor_(state_reg, state_reg, scratch);
    as.srli(scratch, state_reg, 7);
    as.xor_(state_reg, state_reg, scratch);
    as.slli(scratch, state_reg, 17);
    as.xor_(state_reg, state_reg, scratch);
}

void
emitDelay(Assembler &as, RegId scratch, std::uint64_t iterations)
{
    if (iterations == 0)
        return;
    const std::string l_loop = uniqueLabel(as, "delay");
    as.li(scratch, iterations);
    as.label(l_loop);
    as.addi(scratch, scratch, -1);
    as.bne(scratch, x0, l_loop);
}

} // namespace fenceless::workload
