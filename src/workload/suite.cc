#include "workload/workload.hh"

#include "workload/kernels.hh"
#include "workload/microbench.hh"

namespace fenceless::workload
{

std::vector<WorkloadPtr>
microSuite(unsigned scale)
{
    std::vector<WorkloadPtr> suite;

    SpinlockCrit::Params spin;
    spin.iters = 100ULL * scale;
    suite.push_back(std::make_unique<SpinlockCrit>(spin));

    TicketLockCrit::Params ticket;
    ticket.iters = 100ULL * scale;
    suite.push_back(std::make_unique<TicketLockCrit>(ticket));

    BarrierPhase::Params barrier;
    barrier.phases = 32ULL * scale;
    suite.push_back(std::make_unique<BarrierPhase>(barrier));

    Dekker::Params dekker;
    dekker.iters = 200ULL * scale;
    suite.push_back(std::make_unique<Dekker>(dekker));

    ProdCons::Params pc;
    pc.items = 256ULL * scale;
    suite.push_back(std::make_unique<ProdCons>(pc));

    MpmcQueue::Params mpmc;
    mpmc.items_per_producer = 128ULL * scale;
    suite.push_back(std::make_unique<MpmcQueue>(mpmc));

    SeqlockReaders::Params seqlock;
    seqlock.writes = 128ULL * scale;
    seqlock.reads = 256ULL * scale;
    suite.push_back(std::make_unique<SeqlockReaders>(seqlock));

    LocalLockStream::Params local;
    local.iters = 64ULL * scale;
    suite.push_back(std::make_unique<LocalLockStream>(local));

    AtomicHistogram::Params hist;
    hist.items_per_thread = 256ULL * scale;
    suite.push_back(std::make_unique<AtomicHistogram>(hist));

    return suite;
}

std::vector<WorkloadPtr>
kernelSuite(unsigned scale)
{
    std::vector<WorkloadPtr> suite;

    Stencil2D::Params stencil;
    stencil.n = 16;
    stencil.iters = 4ULL * scale;
    suite.push_back(std::make_unique<Stencil2D>(stencil));

    IrregularUpdate::Params irregular;
    irregular.updates = 256ULL * scale;
    suite.push_back(std::make_unique<IrregularUpdate>(irregular));

    RadixPartition::Params radix;
    radix.items_per_thread = 128ULL * scale;
    suite.push_back(std::make_unique<RadixPartition>(radix));

    MatmulBlocked::Params matmul;
    matmul.n = 8 + 4ULL * scale;
    suite.push_back(std::make_unique<MatmulBlocked>(matmul));

    Pipeline::Params pipeline;
    pipeline.items = 128ULL * scale;
    suite.push_back(std::make_unique<Pipeline>(pipeline));

    return suite;
}

std::vector<WorkloadPtr>
standardSuite(unsigned scale)
{
    auto suite = microSuite(scale);
    for (auto &k : kernelSuite(scale))
        suite.push_back(std::move(k));
    return suite;
}

} // namespace fenceless::workload
