#include "workload/litmus.hh"

#include "base/logging.hh"
#include "harness/system.hh"
#include "isa/assembler.hh"
#include "workload/runtime.hh"

namespace fenceless::workload
{

using namespace isa;

namespace
{

/**
 * Busy-wait long enough for warm-up coherence traffic (and any
 * speculative epoch the warm-up fence opened) to settle before the
 * timed body runs.
 */
constexpr std::uint64_t settle_iterations = 800;

std::uint64_t
skewOf(const std::vector<std::uint64_t> &skews, std::uint32_t t)
{
    return t < skews.size() ? skews[t] : 0;
}

/** Dispatch: thread t jumps to label "t<t>"; extra threads halt. */
void
emitDispatch(Assembler &as, std::uint32_t participants)
{
    for (std::uint32_t t = 0; t < participants; ++t) {
        as.li(t0, t);
        as.beq(tp, t0, "t" + std::to_string(t));
    }
    as.halt();
}

/** Warm-up epilogue: drain, settle, then apply this thread's skew. */
void
emitSettleAndSkew(Assembler &as, std::uint64_t skew)
{
    as.fence();
    emitDelay(as, t1, settle_iterations);
    emitDelay(as, t1, skew);
}

} // namespace

isa::Program
LitmusSB::build(const std::vector<std::uint64_t> &skews) const
{
    Assembler as;
    const Addr x = as.paddedWord("X", 0);
    const Addr y = as.paddedWord("Y", 0);
    const Addr results = as.alloc("results", 2 * 64, 64);
    result_base_ = results;

    emitDispatch(as, 2);

    // T0: X = 1; r0 = Y
    as.label("t0");
    as.li(a0, x);
    as.li(a1, y);
    // Warm both blocks so the body load can hit while the store is
    // still fetching ownership -- the classic store-buffering window.
    as.ld(t1, a0);
    as.ld(t1, a1);
    emitSettleAndSkew(as, skewOf(skews, 0));
    as.li(t0, 1);
    as.st(t0, a0);
    if (with_fences_)
        as.fence();
    as.ld(t1, a1);
    as.li(a2, results);
    as.st(t1, a2);
    as.halt();

    // T1: Y = 1; r1 = X
    as.label("t1");
    as.li(a0, y);
    as.li(a1, x);
    as.ld(t1, a0);
    as.ld(t1, a1);
    emitSettleAndSkew(as, skewOf(skews, 1));
    as.li(t0, 1);
    as.st(t0, a0);
    if (with_fences_)
        as.fence();
    as.ld(t1, a1);
    as.li(a2, results + 64);
    as.st(t1, a2);
    as.halt();

    return as.finish();
}

isa::Program
LitmusMP::build(const std::vector<std::uint64_t> &skews) const
{
    Assembler as;
    const Addr data = as.paddedWord("data", 0);
    const Addr flag = as.paddedWord("flag", 0);
    // Cold blocks written before the data store.  They occupy the
    // relaxed store buffer's drain slots so the (cold) data store
    // becomes visible long after the (hitting, preferentially drained)
    // flag store -- widening the reordering window an in-order reader
    // can observe.
    constexpr unsigned num_delayers = 6;
    const Addr delayers = as.alloc("delayers", num_delayers * 64, 64);
    const Addr results = as.alloc("results", 2 * 64, 64);
    result_base_ = results;

    emitDispatch(as, 2);

    // T0: delayers...; data = 1; [release] flag = 1
    as.label("t0");
    as.li(a0, data);
    as.li(a1, flag);
    // Warm the flag block writable so the relaxed store buffer can
    // drain the flag store (a hit) ahead of the cold stores.
    as.st(x0, a1);
    emitSettleAndSkew(as, skewOf(skews, 0));
    as.li(a2, delayers);
    as.li(t0, 1);
    for (unsigned d = 0; d < num_delayers; ++d)
        as.st(t0, a2, static_cast<std::int64_t>(d) * 64);
    as.st(t0, a0);
    if (with_release_)
        as.fenceRelease();
    as.st(t0, a1);
    as.halt();

    // T1: r0 = flag; r1 = data
    as.label("t1");
    as.li(a0, flag);
    as.li(a1, data);
    // Warm the data block so the second load can hit a stale copy.
    as.ld(t1, a1);
    emitSettleAndSkew(as, skewOf(skews, 1));
    as.ld(t0, a0);
    as.ld(t1, a1);
    as.li(a2, results);
    as.st(t0, a2);
    as.li(a2, results + 64);
    as.st(t1, a2);
    as.halt();

    return as.finish();
}

isa::Program
LitmusIRIW::build(const std::vector<std::uint64_t> &skews) const
{
    Assembler as;
    const Addr x = as.paddedWord("X", 0);
    const Addr y = as.paddedWord("Y", 0);
    const Addr results = as.alloc("results", 4 * 64, 64);
    result_base_ = results;

    emitDispatch(as, 4);

    // T0: X = 1                       T1: Y = 1
    // T2: r0 = X; r1 = Y              T3: r2 = Y; r3 = X
    as.label("t0");
    as.li(a0, x);
    emitSettleAndSkew(as, skewOf(skews, 0));
    as.li(t0, 1);
    as.st(t0, a0);
    as.halt();

    as.label("t1");
    as.li(a0, y);
    emitSettleAndSkew(as, skewOf(skews, 1));
    as.li(t0, 1);
    as.st(t0, a0);
    as.halt();

    as.label("t2");
    as.li(a0, x);
    as.li(a1, y);
    as.ld(t2, a0);
    as.ld(t2, a1);
    emitSettleAndSkew(as, skewOf(skews, 2));
    as.ld(t2, a0);
    if (with_fences_)
        as.fence();
    as.ld(t3, a1);
    as.li(a2, results);
    as.st(t2, a2);
    as.li(a2, results + 64);
    as.st(t3, a2);
    as.halt();

    as.label("t3");
    as.li(a0, y);
    as.li(a1, x);
    as.ld(t2, a0);
    as.ld(t2, a1);
    emitSettleAndSkew(as, skewOf(skews, 3));
    as.ld(t2, a0);
    if (with_fences_)
        as.fence();
    as.ld(t3, a1);
    as.li(a2, results + 128);
    as.st(t2, a2);
    as.li(a2, results + 192);
    as.st(t3, a2);
    as.halt();

    return as.finish();
}

isa::Program
LitmusCoRR::build(const std::vector<std::uint64_t> &skews) const
{
    Assembler as;
    const Addr x = as.paddedWord("X", 0);
    const Addr results = as.alloc("results", 2 * 64, 64);
    result_base_ = results;

    emitDispatch(as, 2);

    // T0: X = 1
    as.label("t0");
    as.li(a0, x);
    emitSettleAndSkew(as, skewOf(skews, 0));
    as.li(t0, 1);
    as.st(t0, a0);
    as.halt();

    // T1: r0 = X; r1 = X
    as.label("t1");
    as.li(a0, x);
    as.ld(t1, a0); // warm (S) so both reads can hit around the Inv
    emitSettleAndSkew(as, skewOf(skews, 1));
    as.ld(t0, a0);
    as.ld(t1, a0);
    as.li(a2, results);
    as.st(t0, a2);
    as.li(a2, results + 64);
    as.st(t1, a2);
    as.halt();

    return as.finish();
}

isa::Program
Litmus22W::build(const std::vector<std::uint64_t> &skews) const
{
    Assembler as;
    const Addr x = as.paddedWord("X", 0);
    const Addr y = as.paddedWord("Y", 0);
    // Delayers make the first store of each thread slow relative to
    // its (hitting) second store, as in the MP shape.
    constexpr unsigned num_delayers = 4;
    const Addr delayers = as.alloc("delayers",
                                   2 * num_delayers * 64, 64);
    const Addr results = as.alloc("results", 2 * 64, 64);
    (void)results;
    // The observed outcome of 2+2W is the final memory state itself.
    result_base_ = x; // slot 0 = X, slot 1 = Y (both padded to 64 B)

    emitDispatch(as, 2);

    // T0: X = 1; Y = 2   (warm Y writable so Y=2 drains first)
    as.label("t0");
    as.li(a0, x);
    as.li(a1, y);
    as.st(x0, a1);
    emitSettleAndSkew(as, skewOf(skews, 0));
    as.li(a2, delayers);
    as.li(t0, 1);
    for (unsigned d = 0; d < num_delayers; ++d)
        as.st(t0, a2, static_cast<std::int64_t>(d) * 64);
    as.st(t0, a0); // X = 1 (cold)
    if (with_release_)
        as.fenceRelease();
    as.li(t0, 2);
    as.st(t0, a1); // Y = 2 (hit)
    as.halt();

    // T1: Y = 1; X = 2   (warm X writable so X=2 drains first)
    as.label("t1");
    as.li(a0, y);
    as.li(a1, x);
    as.st(x0, a1);
    emitSettleAndSkew(as, skewOf(skews, 1));
    as.li(a2, delayers + num_delayers * 64);
    as.li(t0, 1);
    for (unsigned d = 0; d < num_delayers; ++d)
        as.st(t0, a2, static_cast<std::int64_t>(d) * 64);
    as.st(t0, a0); // Y = 1 (cold)
    if (with_release_)
        as.fenceRelease();
    as.li(t0, 2);
    as.st(t0, a1); // X = 2 (hit)
    as.halt();

    return as.finish();
}

std::set<LitmusOutcome>
runLitmus(const LitmusTest &test, const harness::SystemConfig &config,
          std::uint64_t max_skew, std::uint64_t stride)
{
    std::set<LitmusOutcome> outcomes;
    const std::uint32_t n = test.numThreads();

    // Sweep skews of the first two threads (the interesting relative
    // timing); later threads get a derived skew.
    for (std::uint64_t s0 = 0; s0 < max_skew; s0 += stride) {
        for (std::uint64_t s1 = 0; s1 < max_skew; s1 += stride) {
            std::vector<std::uint64_t> skews(n, 0);
            skews[0] = s0;
            if (n > 1)
                skews[1] = s1;
            for (std::uint32_t t = 2; t < n; ++t)
                skews[t] = (s0 * 7 + s1 * 13 + t * 3) % max_skew;

            isa::Program prog = test.build(skews);
            harness::SystemConfig cfg = config;
            cfg.num_cores = std::max(cfg.num_cores, n);
            harness::System sys(cfg, prog);
            const bool done = sys.run();
            flAssert(done, "litmus '", test.name(),
                     "' did not terminate");

            LitmusOutcome outcome;
            for (unsigned r = 0; r < test.numResults(); ++r)
                outcome.push_back(sys.debugRead(test.resultAddr(r), 8));
            outcomes.insert(outcome);
        }
    }
    return outcomes;
}

bool
contains(const std::set<LitmusOutcome> &outcomes,
         const LitmusOutcome &outcome)
{
    return outcomes.count(outcome) > 0;
}

} // namespace fenceless::workload
