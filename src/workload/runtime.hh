/**
 * @file
 * The guest-side parallel runtime: synchronization primitives emitted as
 * mini-ISA code sequences.
 *
 * Each emitter inlines one operation at the current assembly position,
 * using caller-provided scratch registers and internally generated
 * unique labels.  These are the code sequences whose ordering points
 * (atomics, acquire/release/full fences) the fence-speculation hardware
 * targets, so they are written exactly as a production runtime would
 * write them for each consistency model: lock acquire ends in an acquire
 * fence, release starts with a release fence, the sense-reversing
 * barrier publishes with a release edge and consumes with an acquire
 * edge.
 */

#pragma once

#include <string>

#include "base/types.hh"
#include "isa/assembler.hh"

namespace fenceless::workload
{

using isa::Assembler;
using isa::RegId;

/**
 * Produce a fresh unique label with the given tag, derived from the
 * assembler's current position: building the same program always
 * yields the same names (the waste profiler symbolizes PCs through
 * them), unlike a process-global counter.
 */
std::string uniqueLabel(const Assembler &as, const std::string &tag);

/**
 * Test-and-test-and-set spin lock acquire.
 * The lock word (8 bytes) lives at the address in @p lock_addr.
 * Clobbers @p scratch0 and @p scratch1.
 */
void emitSpinLockAcquire(Assembler &as, RegId lock_addr, RegId scratch0,
                         RegId scratch1);

/** Spin lock release (release fence + store 0). */
void emitSpinLockRelease(Assembler &as, RegId lock_addr);

/**
 * Ticket lock acquire.  The lock is two padded words: next-ticket at
 * @p next_addr, now-serving at @p serving_addr (register operands).
 * Clobbers @p scratch0 and @p scratch1.
 */
void emitTicketLockAcquire(Assembler &as, RegId next_addr,
                           RegId serving_addr, RegId scratch0,
                           RegId scratch1);

/** Ticket lock release (release fence + increment now-serving). */
void emitTicketLockRelease(Assembler &as, RegId serving_addr,
                           RegId scratch0);

/**
 * Sense-reversing centralized barrier.
 *
 * The barrier is two padded words: arrival count at @p count_addr and
 * the global sense at @p sense_addr.  @p local_sense must be a register
 * dedicated to this barrier, initialised to 0 before first use; the
 * emitter toggles it.  @p num_threads holds the participant count.
 * Clobbers @p scratch0 and @p scratch1.
 */
void emitBarrier(Assembler &as, RegId count_addr, RegId sense_addr,
                 RegId local_sense, RegId num_threads, RegId scratch0,
                 RegId scratch1);

/**
 * A deterministic xorshift64 step on @p state_reg (a cheap in-guest
 * PRNG used by irregular workloads).  Clobbers @p scratch.
 */
void emitXorshift(Assembler &as, RegId state_reg, RegId scratch);

/**
 * A busy-wait of @p cycles iterations (2 instructions each) used to
 * model non-critical work.  Clobbers @p scratch.
 */
void emitDelay(Assembler &as, RegId scratch, std::uint64_t iterations);

} // namespace fenceless::workload
