/**
 * @file
 * Memory-model litmus tests.
 *
 * Classic two-thread (and four-thread) shapes whose outcome sets
 * distinguish SC, TSO and RMO -- and validate that fence speculation is
 * *performance*-transparent, not semantics-changing: a speculative
 * configuration must produce exactly the outcomes its consistency model
 * allows.
 *
 * Each program takes per-thread startup skews (busy-wait iterations) so
 * a deterministic simulator still explores many interleavings: the
 * runner sweeps skew pairs and collects the set of observed outcomes.
 */

#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "isa/program.hh"

namespace fenceless::harness
{
struct SystemConfig;
}

namespace fenceless::workload
{

/** Observed final values of the litmus result registers. */
using LitmusOutcome = std::vector<std::uint64_t>;

/** A litmus shape: builds a program for given startup skews. */
class LitmusTest
{
  public:
    virtual ~LitmusTest() = default;

    virtual const char *name() const = 0;

    /** Number of observed result slots. */
    virtual unsigned numResults() const = 0;

    /** Threads the shape needs. */
    virtual std::uint32_t numThreads() const { return 2; }

    /**
     * Build the program.
     * @param skews  per-thread startup busy-wait iterations
     */
    virtual isa::Program build(
        const std::vector<std::uint64_t> &skews) const = 0;

    /** Address of result slot @p i (valid after build). */
    Addr resultAddr(unsigned i) const { return result_base_ + i * 64; }

  protected:
    mutable Addr result_base_ = 0;
};

/**
 * Store buffering (Dekker core):
 *   T0: X=1; r0=Y        T1: Y=1; r1=X
 * (r0,r1) == (0,0) is forbidden under SC, observable under TSO/RMO
 * without fences, forbidden again with a full fence between the store
 * and the load.
 */
class LitmusSB : public LitmusTest
{
  public:
    explicit LitmusSB(bool with_fences) : with_fences_(with_fences) {}

    const char *name() const override
    {
        return with_fences_ ? "SB+fences" : "SB";
    }

    unsigned numResults() const override { return 2; }
    isa::Program build(
        const std::vector<std::uint64_t> &skews) const override;

  private:
    bool with_fences_;
};

/**
 * Message passing:
 *   T0: data=1; flag=1   T1: r0=flag; r1=data
 * (r0,r1) == (1,0) is forbidden under SC/TSO (store-store and
 * load-load order), observable under RMO without a release fence
 * between the data and flag stores, forbidden with it.
 */
class LitmusMP : public LitmusTest
{
  public:
    explicit LitmusMP(bool with_release) : with_release_(with_release) {}

    const char *name() const override
    {
        return with_release_ ? "MP+release" : "MP";
    }

    unsigned numResults() const override { return 2; }
    isa::Program build(
        const std::vector<std::uint64_t> &skews) const override;

  private:
    bool with_release_;
};

/**
 * Independent reads of independent writes (4 threads): writers W(X)=1,
 * W(Y)=1; readers observe (X,Y) in opposite orders.  Readers disagreeing
 * on the write order -- (1,0) and (1,0) crosswise -- is forbidden under
 * SC; with full fences between the reader loads it is forbidden under
 * every model this simulator implements (write atomicity comes from the
 * invalidation protocol).
 */
class LitmusIRIW : public LitmusTest
{
  public:
    explicit LitmusIRIW(bool with_fences) : with_fences_(with_fences) {}

    const char *name() const override
    {
        return with_fences_ ? "IRIW+fences" : "IRIW";
    }

    unsigned numResults() const override { return 4; }
    std::uint32_t numThreads() const override { return 4; }
    isa::Program build(
        const std::vector<std::uint64_t> &skews) const override;

  private:
    bool with_fences_;
};

/**
 * Coherence read-read (CoRR): T0 writes X=1; T1 reads X twice.
 * (r0, r1) == (1, 0) -- new then old -- is forbidden under *every*
 * model: per-location coherence order is not relaxable.
 */
class LitmusCoRR : public LitmusTest
{
  public:
    const char *name() const override { return "CoRR"; }
    unsigned numResults() const override { return 2; }
    isa::Program build(
        const std::vector<std::uint64_t> &skews) const override;
};

/**
 * 2+2W: T0 {X=1; Y=2}  T1 {Y=1; X=2}.  The final state (X,Y) == (1,1)
 * requires both second writes to be ordered before both first writes
 * -- forbidden under SC/TSO (store-store order), observable under RMO.
 */
class Litmus22W : public LitmusTest
{
  public:
    explicit Litmus22W(bool with_release) : with_release_(with_release)
    {}

    const char *name() const override
    {
        return with_release_ ? "2+2W+release" : "2+2W";
    }

    unsigned numResults() const override { return 2; }
    isa::Program build(
        const std::vector<std::uint64_t> &skews) const override;

  private:
    bool with_release_;
};

/**
 * Run @p test under @p config for every skew combination in
 * [0, max_skew) x stride and collect the set of outcomes.
 */
std::set<LitmusOutcome> runLitmus(const LitmusTest &test,
                                  const harness::SystemConfig &config,
                                  std::uint64_t max_skew = 24,
                                  std::uint64_t stride = 3);

/** @return true if @p outcomes contains @p outcome. */
bool contains(const std::set<LitmusOutcome> &outcomes,
              const LitmusOutcome &outcome);

} // namespace fenceless::workload
